//! Concrete generators: [`StdRng`] and [`ThreadRng`].

use crate::{RngCore, SeedableRng};

/// SplitMix64 step: the shared engine behind both generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard deterministic generator (SplitMix64 under the hood).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}

/// A fresh clock-seeded generator returned by [`crate::thread_rng`].
#[derive(Debug, Clone)]
pub struct ThreadRng {
    inner: StdRng,
}

impl ThreadRng {
    pub(crate) fn new() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0xDEAD_BEEF);
        ThreadRng { inner: StdRng::seed_from_u64(nanos) }
    }
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
