//! Distributions: the [`Distribution`] trait, [`Standard`], and uniform
//! range sampling.

use crate::Rng;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" full-range distribution for primitive types.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {
        $(impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod uniform {
    //! Uniform sampling over ranges, as used by [`crate::Rng::gen_range`].

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Ranges that [`crate::Rng::gen_range`] accepts.
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! range_impl {
        ($($t:ty),*) => {
            $(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = rng.next_u64() as u128 % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = rng.next_u64() as u128 % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*
        };
    }

    range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}
