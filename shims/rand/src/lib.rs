//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim vendors the small slice of the rand 0.8 API the F1 crates
//! actually use: [`RngCore`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`, `sample`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`thread_rng`], and
//! [`distributions::Distribution`]/[`distributions::Standard`].
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! fine for test vectors and randomized property checks; it is *not*
//! cryptographically secure (neither is a seeded `StdRng` used for
//! reproducible tests). If/when the real crate becomes available, deleting
//! the `shims/` path entries from the workspace manifests is the only
//! change required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// Core trait every random-number generator implements.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Extension trait with the user-facing sampling methods.
///
/// Blanket-implemented for every [`RngCore`], mirroring rand 0.8.
pub trait Rng: RngCore {
    /// Samples a value whose type has a [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Returns a lazily-seeded generator for quick, non-reproducible use.
///
/// Unlike the real crate this is not thread-local state; each call returns
/// a fresh generator seeded from the system clock.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}
