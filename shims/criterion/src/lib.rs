//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Exposes the macro/API surface the F1 benches use — [`Criterion`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`], benchmark
//! groups, and the [`criterion_group!`]/[`criterion_main!`] macros — backed
//! by a simple wall-clock harness: warm up, time `sample_size` samples,
//! report min/median/mean ns per iteration on stdout. No statistics
//! beyond that, no HTML reports, no CLI parsing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, re-exported for benches.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim treats all variants
/// identically (one setup per measured invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark manager: holds measurement settings, runs benches.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            samples: self.sample_size,
            per_iter_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Prints the final summary (no-op in the shim).
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing the parent settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; times the routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((budget / per_iter) as u64).clamp(1, 1 << 24);

        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.per_iter_ns.push(ns);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            std_black_box(routine(input));
        }

        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            let ns = t.elapsed().as_nanos() as f64;
            std_black_box(out);
            self.per_iter_ns.push(ns);
        }
    }

    fn report(&mut self, id: &str) {
        if self.per_iter_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let min = self.per_iter_ns[0];
        let median = self.per_iter_ns[self.per_iter_ns.len() / 2];
        let mean: f64 = self.per_iter_ns.iter().sum::<f64>() / self.per_iter_ns.len() as f64;
        println!("{id:<40} min {min:>12.1} ns  median {median:>12.1} ns  mean {mean:>12.1} ns");
    }
}

/// Declares a group of benchmark targets, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
