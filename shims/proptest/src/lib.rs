//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest 1.x surface the F1 test suites
//! use: the [`proptest!`] macro (with an optional inline
//! `#![proptest_config(..)]`), the [`strategy::Strategy`] trait with
//! `prop_map`, integer-range and [`collection::vec`] strategies,
//! [`test_runner::ProptestConfig`], and the `prop_assert*` macros.
//!
//! Semantics: each property runs `cases` times against values drawn from a
//! deterministic generator seeded per-test. There is **no shrinking** — a
//! failing case panics with the standard `assert!` message. That is a
//! weaker debugging experience than real proptest but identical
//! pass/fail power for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-importable prelude, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests.
///
/// Supports the common proptest form:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The `#[test]` in the example is the macro's canonical usage; the
// doctest only checks that it expands and compiles.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };

    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Seed per test name so properties draw distinct streams
                // but rerun identically from one invocation to the next.
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };

    (
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default())
            $($(#[$meta])+ fn $name($($arg in $strat),*) $body)*);
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
