//! Test-runner configuration and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; we keep a smaller default so the
        // shim stays cheap when a suite forgets to configure itself.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from the property name: distinct streams per
    /// test, identical streams across runs.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xF1F1_F1F1_F1F1_F1F1u64;
        for b in name.bytes() {
            seed = seed.rotate_left(7) ^ b as u64;
            seed = seed.wrapping_mul(0x100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
