//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// The size argument of [`vec`](fn@vec): a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
