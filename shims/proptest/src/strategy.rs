//! The [`Strategy`] trait and primitive strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an output type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
