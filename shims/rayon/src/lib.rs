//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this shim provides the
//! tiny fork/join subset the workspace uses — [`scope`], [`join`] and
//! [`current_num_threads`] — backed by `std::thread::scope`. There is no
//! work-stealing pool: every spawned task is an OS thread, so callers are
//! expected to spawn a few coarse tasks (e.g. one per limb group), not one
//! per element. Swapping the real crate back in is a manifest-only change.
//!
//! API difference kept deliberately small: `scope` hands the closure
//! `&std::thread::Scope` directly (whose `spawn` takes a plain `FnOnce()`),
//! rather than rayon's `&Scope` with `FnOnce(&Scope)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped task spawner, re-exported from the standard library.
///
/// `scope(|s| { s.spawn(|| ...); ... })` blocks until every spawned task
/// finishes, so borrows of stack data may cross into tasks.
pub use std::thread::scope;

/// The scope handle passed to the [`scope`] closure.
pub use std::thread::Scope;

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Mirrors `rayon::join`: `b` runs on a freshly spawned scoped thread while
/// `a` runs on the caller's thread.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(oper_b);
        let ra = oper_a();
        let rb = hb.join().expect("rayon shim: joined task panicked");
        (ra, rb)
    })
}

/// The number of threads the shim will use for parallel work: the host's
/// available parallelism (1 if it cannot be determined).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Scoped parallel map with **deterministic output order**: `out[i]` is
/// always `f(&items[i])` regardless of thread count or timing, so a
/// parallel caller produces byte-identical results to a serial one.
///
/// Stands in for rayon's `par_iter().map().collect()`. The shim has no
/// work-stealing pool, so the slice is cut into at most `threads`
/// contiguous chunks, one OS thread each — appropriate for coarse tasks
/// (a compute cluster, a benchmark), not per-element work. `threads <= 1`
/// (or a 0/1-element slice) runs entirely on the caller's thread with no
/// spawns, which is the `F1_PAR_COMPILE=1` escape hatch.
///
/// # Panics
///
/// Propagates any panic from `f` once all spawned threads finish.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads.min(n));
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let f = &f;
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("rayon shim: par_map slot unfilled")).collect()
}

/// [`par_map_threads`] across [`current_num_threads`] threads.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(current_num_threads(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_spawns_and_joins() {
        let mut data = vec![0u32; 8];
        let (lo, hi) = data.split_at_mut(4);
        scope(|s| {
            s.spawn(|| lo.iter_mut().for_each(|x| *x = 1));
            s.spawn(|| hi.iter_mut().for_each(|x| *x = 2));
        });
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map_threads(threads, &items, |x| x * x), expect, "{threads} threads");
        }
        assert_eq!(par_map(&items, |x| x * x), expect);
        assert_eq!(par_map_threads(4, &[] as &[u64], |x| *x), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn par_map_propagates_panics() {
        par_map_threads(4, &[1u32, 2, 3, 4, 5, 6, 7, 8], |x| {
            assert!(*x != 6, "boom");
            *x
        });
    }
}
