//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this shim provides the
//! tiny fork/join subset the workspace uses — [`scope`], [`join`] and
//! [`current_num_threads`] — backed by `std::thread::scope`. There is no
//! work-stealing pool: every spawned task is an OS thread, so callers are
//! expected to spawn a few coarse tasks (e.g. one per limb group), not one
//! per element. Swapping the real crate back in is a manifest-only change.
//!
//! API difference kept deliberately small: `scope` hands the closure
//! `&std::thread::Scope` directly (whose `spawn` takes a plain `FnOnce()`),
//! rather than rayon's `&Scope` with `FnOnce(&Scope)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped task spawner, re-exported from the standard library.
///
/// `scope(|s| { s.spawn(|| ...); ... })` blocks until every spawned task
/// finishes, so borrows of stack data may cross into tasks.
pub use std::thread::scope;

/// The scope handle passed to the [`scope`] closure.
pub use std::thread::Scope;

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Mirrors `rayon::join`: `b` runs on a freshly spawned scoped thread while
/// `a` runs on the caller's thread.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(oper_b);
        let ra = oper_a();
        let rb = hb.join().expect("rayon shim: joined task panicked");
        (ra, rb)
    })
}

/// The number of threads the shim will use for parallel work: the host's
/// available parallelism (1 if it cannot be determined).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_spawns_and_joins() {
        let mut data = vec![0u32; 8];
        let (lo, hi) = data.split_at_mut(4);
        scope(|s| {
            s.spawn(|| lo.iter_mut().for_each(|x| *x = 1));
            s.spawn(|| hi.iter_mut().for_each(|x| *x = 2));
        });
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
