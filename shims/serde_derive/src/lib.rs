//! Offline stand-in for `serde_derive`.
//!
//! Generates real `::serde::Serialize` / `::serde::Deserialize` impls for
//! the shim's direct binary format (see `shims/serde`): struct fields in
//! declaration order, enum variants tagged by declaration index. Written
//! against `proc_macro` alone — no `syn`/`quote` in an offline build — so
//! the parser handles exactly the shapes this workspace uses: non-generic
//! structs (named, tuple, unit) and enums (unit, tuple, struct variants).
//! Anything fancier (generics, unions) is a compile error with a clear
//! message rather than silently wrong code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a type we can derive for.
enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S(A, B);` with the arity.
    TupleStruct(usize),
    /// `struct S { a: A, b: B }` with field names in order.
    NamedStruct(Vec<String>),
    /// `enum E { ... }` with `(variant name, fields)` in order.
    Enum(Vec<(String, VariantFields)>),
}

/// Fields of one enum variant.
enum VariantFields {
    /// `V`
    Unit,
    /// `V(A, B)` with the arity.
    Tuple(usize),
    /// `V { a: A }` with field names in order.
    Named(Vec<String>),
}

/// Derives `::serde::Serialize` for the shim's binary format.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match &shape {
        Shape::UnitStruct => String::new(),
        Shape::TupleStruct(arity) => (0..*arity)
            .map(|i| format!("::serde::Serialize::serialize(&self.{i}, out);\n"))
            .collect(),
        Shape::NamedStruct(fields) => fields
            .iter()
            .map(|f| format!("::serde::Serialize::serialize(&self.{f}, out);\n"))
            .collect(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (tag, (v, fields)) in variants.iter().enumerate() {
                match fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "Self::{v} => ::serde::write_varint(out, {tag}u64),\n"
                        ));
                    }
                    VariantFields::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let writes: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b}, out);\n"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{v}({binds}) => {{ ::serde::write_varint(out, {tag}u64);\n{writes} }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantFields::Named(names) => {
                        let writes: String = names
                            .iter()
                            .map(|n| format!("::serde::Serialize::serialize({n}, out);\n"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{v} {{ {binds} }} => {{ ::serde::write_varint(out, {tag}u64);\n{writes} }}\n",
                            binds = names.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self, out: &mut ::std::vec::Vec<u8>) {{\n\
         let _ = out;\n{body}}}\n}}\n"
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives `::serde::Deserialize` for the shim's binary format.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match &shape {
        Shape::UnitStruct => "Ok(Self)\n".to_string(),
        Shape::TupleStruct(arity) => {
            let fields: Vec<String> =
                (0..*arity).map(|_| "::serde::Deserialize::deserialize(r)?".to_string()).collect();
            format!("Ok(Self({}))\n", fields.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(r)?,\n"))
                .collect();
            format!("Ok(Self {{\n{inits}}})\n")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (tag, (v, fields)) in variants.iter().enumerate() {
                match fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!("{tag}u64 => Ok(Self::{v}),\n"));
                    }
                    VariantFields::Tuple(arity) => {
                        let reads: Vec<String> = (0..*arity)
                            .map(|_| "::serde::Deserialize::deserialize(r)?".to_string())
                            .collect();
                        arms.push_str(&format!(
                            "{tag}u64 => Ok(Self::{v}({})),\n",
                            reads.join(", ")
                        ));
                    }
                    VariantFields::Named(names) => {
                        let inits: String = names
                            .iter()
                            .map(|n| format!("{n}: ::serde::Deserialize::deserialize(r)?,\n"))
                            .collect();
                        arms.push_str(&format!("{tag}u64 => Ok(Self::{v} {{\n{inits}}}),\n"));
                    }
                }
            }
            format!(
                "match ::serde::read_varint(r)? {{\n{arms}\
                 tag => Err(::serde::Error::InvalidTag {{ ty: \"{name}\", tag }}),\n}}\n"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(r: &mut ::serde::Reader<'_>) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let _ = &r;\n{body}}}\n}}\n"
    );
    out.parse().expect("generated Deserialize impl parses")
}

/// Parses a derive input down to (type name, [`Shape`]).
fn parse(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim derive: expected `struct` or `enum`, found `{t}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim derive: expected type name, found `{t}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported (add a manual impl)");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            None => (name, Shape::UnitStruct),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::UnitStruct),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                (name, Shape::NamedStruct(fields))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                (name, Shape::TupleStruct(arity))
            }
            Some(t) => panic!("serde shim derive: unexpected token `{t}` in struct `{name}`"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream());
                (name, Shape::Enum(variants))
            }
            _ => panic!("serde shim derive: expected enum body for `{name}`"),
        },
        other => {
            panic!("serde shim derive: cannot derive for `{other} {name}` (unions unsupported)")
        }
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token sequence on top-level commas (angle-bracket depth 0),
/// returning the non-empty segments.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                segments.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(t);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Field names, in order, from a named-fields body
/// (`#[attr] pub name: Type, ...`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("serde shim derive: expected field name, found `{t}`"),
            }
        })
        .collect()
}

/// Arity of a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Enum variants in declaration order. Explicit discriminants
/// (`V = 3`) are rejected: the wire tag is the declaration index.
fn parse_variants(stream: TokenStream) -> Vec<(String, VariantFields)> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            let name = match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("serde shim derive: expected variant name, found `{t}`"),
            };
            i += 1;
            let fields = match seg.get(i) {
                None => VariantFields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                    "serde shim derive: explicit discriminant on variant `{name}` unsupported"
                ),
                Some(t) => {
                    panic!("serde shim derive: unexpected token `{t}` after variant `{name}`")
                }
            };
            (name, fields)
        })
        .collect()
}
