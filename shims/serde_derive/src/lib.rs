//! Offline stand-in for `serde_derive`.
//!
//! The F1 crates annotate types with `#[derive(Serialize, Deserialize)]`
//! but never call a serializer at runtime (no `serde_json` etc. in the
//! tree), so these derives expand to nothing. Swapping in the real serde
//! is purely a manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
