//! Offline stand-in for the [`serde`](https://serde.rs) facade.
//!
//! The F1 crates use serde only as `#[derive(Serialize, Deserialize)]`
//! annotations on config/report types; nothing in the tree serializes at
//! runtime. This shim re-exports no-op derives so the annotations compile
//! unchanged, keeping the door open for the real crate later.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
