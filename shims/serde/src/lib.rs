//! Offline stand-in for the [`serde`](https://serde.rs) facade.
//!
//! Unlike the real serde's visitor architecture, this shim is a direct
//! binary (de)serializer: [`Serialize`] appends to a byte buffer,
//! [`Deserialize`] reads back from a [`Reader`], and the derive macros in
//! `serde_derive` generate field-by-field impls. The format is private to
//! this workspace (it backs the content-addressed schedule cache and the
//! round-trip tests) and is **deterministic by construction**: struct
//! fields serialize in declaration order, enum variants carry their
//! declaration index as a varint tag, and hash maps sort their entries by
//! key before writing — so equal values always produce equal bytes, which
//! is what content addressing requires.
//!
//! Encoding: unsigned integers are LEB128 varints; signed integers are
//! zigzag varints; `f64`/`f32` are little-endian IEEE bits; `bool` is one
//! byte (0/1); strings and sequences are a varint length followed by
//! their contents; `Option` is a 0/1 tag byte.
//!
//! Failures surface as typed [`Error`]s, never panics: a truncated or
//! bit-flipped artifact yields `UnexpectedEof` / `InvalidTag` /
//! `InvalidUtf8` and callers (the schedule cache) fall back to a fresh
//! compile. Swapping in the real serde remains a manifest change plus a
//! re-export shuffle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// Typed (de)serialization failure. Deserializing attacker- or
/// bit-rot-controlled bytes must fail loudly but recoverably; every
/// variant identifies what the decoder expected and what it found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the value did.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually left.
        available: usize,
    },
    /// [`from_bytes`] decoded a complete value with input left over.
    TrailingBytes {
        /// Unconsumed byte count.
        count: usize,
    },
    /// An enum/option/bool tag was out of range for the type.
    InvalidTag {
        /// Type being decoded (e.g. `"FuType"`).
        ty: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A string's bytes were not valid UTF-8.
    InvalidUtf8,
    /// A LEB128 varint ran past 10 bytes (no valid `u64` does).
    VarintOverflow,
    /// A fixed-size array's encoded length disagreed with the type.
    InvalidLen {
        /// Length the type requires.
        expected: usize,
        /// Length found in the input.
        found: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { needed, available } => {
                write!(f, "unexpected end of input: needed {needed} bytes, {available} left")
            }
            Error::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete value")
            }
            Error::InvalidTag { ty, tag } => write!(f, "invalid tag {tag} for {ty}"),
            Error::InvalidUtf8 => write!(f, "string bytes are not valid UTF-8"),
            Error::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            Error::InvalidLen { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// A cursor over the bytes being deserialized.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes and returns the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof { needed: n, available: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes one byte.
    pub fn take_u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }
}

/// Appends `v` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
pub fn read_varint(r: &mut Reader<'_>) -> Result<u64, Error> {
    // Single-byte fast path: values below 128 dominate real artifacts
    // (stream deltas, small ids, lengths), and skipping the loop setup
    // and bounds re-checks is a measurable win on multi-MB cache loads.
    if let Some(&b) = r.buf.get(r.pos) {
        if b < 0x80 {
            r.pos += 1;
            return Ok(u64::from(b));
        }
    }
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = r.take_u8()?;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(Error::VarintOverflow)
}

/// Value → deterministic bytes (append-based; see the module docs for
/// the format).
pub trait Serialize {
    /// Appends this value's encoding to `out`.
    fn serialize(&self, out: &mut Vec<u8>);
}

/// Bytes → value, consuming from a [`Reader`].
pub trait Deserialize: Sized {
    /// Decodes one value, advancing the reader past it.
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error>;
}

/// Serializes `value` to a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.serialize(&mut out);
    out
}

/// Deserializes exactly one `T` from `bytes`; trailing input is an error
/// (a cache artifact is one value, nothing else).
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut r = Reader::new(bytes);
    let value = T::deserialize(&mut r)?;
    if r.remaining() != 0 {
        return Err(Error::TrailingBytes { count: r.remaining() });
    }
    Ok(value)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut Vec<u8>) {
        (**self).serialize(out);
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Vec<u8>) {
                write_varint(out, *self as u64);
            }
        }
        impl Deserialize for $t {
            fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
                let v = read_varint(r)?;
                <$t>::try_from(v).map_err(|_| Error::InvalidTag { ty: stringify!($t), tag: v })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Vec<u8>) {
                // Zigzag: small magnitudes of either sign stay small.
                let v = *self as i64;
                write_varint(out, ((v << 1) ^ (v >> 63)) as u64);
            }
        }
        impl Deserialize for $t {
            fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
                let z = read_varint(r)?;
                let v = ((z >> 1) as i64) ^ -((z & 1) as i64);
                <$t>::try_from(v).map_err(|_| Error::InvalidTag { ty: stringify!($t), tag: z })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}
impl Deserialize for bool {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::InvalidTag { ty: "bool", tag: u64::from(b) }),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}
impl Deserialize for f64 {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let b = r.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().expect("8 bytes"))))
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}
impl Deserialize for f32 {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let b = r.take(4)?;
        Ok(f32::from_bits(u32::from_le_bytes(b.try_into().expect("4 bytes"))))
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.as_str().serialize(out);
    }
}
impl Deserialize for String {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let len = read_varint(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::InvalidUtf8)
    }
}

impl Deserialize for &'static str {
    /// Decodes by leaking a `String`. Only interned-by-design fields use
    /// this (benchmark names: a handful of short strings per process);
    /// do not deserialize unbounded streams of `&'static str`.
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let s = String::deserialize(r)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.serialize(out);
            }
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(r)?)),
            b => Err(Error::InvalidTag { ty: "Option", tag: u64::from(b) }),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.serialize(out);
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.as_slice().serialize(out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let len = read_varint(r)? as usize;
        // A corrupted length must not trigger a huge allocation: cap the
        // reservation by the bytes actually present (each element costs
        // at least one byte in this format for the types we store).
        let mut v = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            v.push(T::deserialize(r)?);
        }
        Ok(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut Vec<u8>) {
        // No length prefix: the type fixes it.
        for item in self {
            item.serialize(out);
        }
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::deserialize(r)?);
        }
        v.try_into().map_err(|v: Vec<T>| Error::InvalidLen { expected: N, found: v.len() })
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, out: &mut Vec<u8>) {
                $(self.$n.serialize(out);)+
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
                Ok(($($t::deserialize(r)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let len = read_varint(r)? as usize;
        let mut m = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(r)?;
            let v = V::deserialize(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.serialize(out);
        }
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let len = read_varint(r)? as usize;
        let mut s = BTreeSet::new();
        for _ in 0..len {
            s.insert(T::deserialize(r)?);
        }
        Ok(s)
    }
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    /// Entries are written **sorted by key** so equal maps produce equal
    /// bytes regardless of hash-iteration order — required both for
    /// content addressing and for PR 5's byte-identical determinism.
    fn serialize(&self, out: &mut Vec<u8>) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        write_varint(out, entries.len() as u64);
        for (k, v) in entries {
            k.serialize(out);
            v.serialize(out);
        }
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let len = read_varint(r)? as usize;
        let mut m = HashMap::with_capacity_and_hasher(len.min(r.remaining()), S::default());
        for _ in 0..len {
            let k = K::deserialize(r)?;
            let v = V::deserialize(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Serialize + Ord, S> Serialize for HashSet<T, S> {
    /// Sorted like [`HashMap`], for the same determinism reasons.
    fn serialize(&self, out: &mut Vec<u8>) {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        write_varint(out, items.len() as u64);
        for item in items {
            item.serialize(out);
        }
    }
}
impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, Error> {
        let len = read_varint(r)? as usize;
        let mut s = HashSet::with_capacity_and_hasher(len.min(r.remaining()), S::default());
        for _ in 0..len {
            s.insert(T::deserialize(r)?);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::needless_pass_by_value)] // by-value keeps call sites literal
    fn round_trip<T: Serialize + Deserialize + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(300usize);
        round_trip(-1i64);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(3.25f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(String::from("κλῶνος"));
        round_trip(Some(vec![1u32, 2, 3]));
        round_trip(Option::<u8>::None);
        round_trip([7u64, 8, 9, 10]);
        round_trip((1u32, String::from("x"), vec![false, true]));
    }

    #[test]
    fn varint_is_compact_and_canonical() {
        assert_eq!(to_bytes(&0u64), [0]);
        assert_eq!(to_bytes(&127u64), [127]);
        assert_eq!(to_bytes(&128u64), [0x80, 1]);
        assert_eq!(to_bytes(&u64::MAX).len(), 10);
    }

    #[test]
    fn hashmap_bytes_are_sorted_deterministic() {
        let mut m = HashMap::new();
        for k in (0u32..100).rev() {
            m.insert(k, k * 2);
        }
        let a = to_bytes(&m);
        let b = to_bytes(&m.clone());
        assert_eq!(a, b);
        // Sorted by key: the map encodes identically to its BTreeMap twin.
        let bt: BTreeMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, to_bytes(&bt));
        round_trip(m);
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Vec<u64>>(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, Error::UnexpectedEof { .. }), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        assert_eq!(from_bytes::<u64>(&bytes), Err(Error::TrailingBytes { count: 1 }));
    }

    #[test]
    fn corrupt_length_does_not_overallocate() {
        // A length claiming 2^60 elements with 2 bytes of input must fail
        // with EOF, not attempt a capacity reservation.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 1u64 << 60);
        bytes.push(0);
        assert!(matches!(from_bytes::<Vec<u64>>(&bytes), Err(Error::UnexpectedEof { .. })));
    }

    #[test]
    fn invalid_tags_are_typed() {
        assert_eq!(from_bytes::<bool>(&[2]), Err(Error::InvalidTag { ty: "bool", tag: 2 }));
        assert_eq!(from_bytes::<Option<u8>>(&[9]), Err(Error::InvalidTag { ty: "Option", tag: 9 }));
        assert!(matches!(from_bytes::<u8>(&to_bytes(&300u64)), Err(Error::InvalidTag { .. })));
    }

    #[test]
    fn utf8_guard() {
        let bytes = vec![2, 0xff, 0xfe];
        assert_eq!(from_bytes::<String>(&bytes), Err(Error::InvalidUtf8));
    }
}
