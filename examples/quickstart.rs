//! Quickstart: encrypt data with BGV, compute on it homomorphically,
//! compile the same computation for F1 through the typed IR frontend,
//! and compare execution estimates.
//!
//! Run with: `cargo run -p f1 --release --example quickstart`

use f1::arch::ArchConfig;
use f1::compiler::ir::{FheProgram, Scheme};
use f1::fhe::bgv::{KeySet, Plaintext};
use f1::fhe::params::BgvParams;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // --- 1. Software FHE: encrypt, compute, decrypt.
    let params = BgvParams::test_small(1024, 3);
    let keys = KeySet::generate(&params, &mut rng);
    let x = Plaintext::from_coeffs(&params, &[7]);
    let y = Plaintext::from_coeffs(&params, &[6]);
    let ct = keys.encrypt(&x, &mut rng).mul(&keys.encrypt(&y, &mut rng), keys.relin_hint());
    println!("homomorphic 7 * 6 = {}", keys.decrypt(&ct).coeff(0));
    assert_eq!(keys.decrypt(&ct).coeff(0), 42);

    // --- 2. The same computation as a typed F1 program, run through the
    // IR passes and statically scheduled.
    let mut p = FheProgram::new(1 << 14, Scheme::Bgv);
    let a = p.input(16);
    let b = p.input(16);
    let prod = p.mul(a, b);
    p.output(prod);
    let arch = ArchConfig::f1_default();
    let (_, _, ex, plan, cycles) = f1::compiler::compile_fhe(&p, &arch);
    let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
    println!(
        "one homomorphic multiply at N=16K, L=16: {} instructions, {} cycles ({:.2} µs), {} MB off-chip",
        ex.dfg.instrs().len(),
        report.makespan,
        report.seconds * 1e6,
        report.traffic.total() / (1024 * 1024),
    );
    println!(
        "key-switch hints fetched: {} MB via {} key-switching (decomposition would move the paper's 32 MB hint, §2.4)",
        plan.traffic.ksh_compulsory / (1024 * 1024),
        if ex.used_ghs { "GHS" } else { "decomposition" },
    );
}
