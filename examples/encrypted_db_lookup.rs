//! A real (tiny) encrypted key-value lookup with BGV, following the shape
//! of HElib's BGV_country_db_lookup: equality test via Fermat's little
//! theorem, masking, and aggregation — all under encryption.
//!
//! Run with: `cargo run -p f1 --release --example encrypted_db_lookup`

use f1::fhe::bgv::{Ciphertext, KeySet, Plaintext};
use f1::fhe::params::BgvParams;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    // t = 257 keeps Fermat exponentiation shallow: x^(t-1) = x^256, eight
    // squarings.
    let params = BgvParams::new(64, 10, 0, 257);
    let keys = KeySet::generate(&params, &mut rng);
    let db: [(u64, u64); 4] = [(3, 111), (17, 222), (42, 198), (99, 255)];
    let query_key = 42u64;
    let query = keys.encrypt(&Plaintext::from_coeffs(&params, &[query_key]), &mut rng);

    let mut acc: Option<Ciphertext> = None;
    for (key, value) in db {
        // diff = query - key; eq = 1 - diff^(t-1) is 1 iff key matches.
        let diff = query.add_plain(
            &Plaintext::from_coeffs(&params, &[params.plaintext_modulus - key]),
            &params,
        );
        let mut pow = diff.clone();
        for _ in 0..8 {
            if pow.level() > 2 {
                pow = pow.mod_switch(&params);
            }
            pow = pow.square(keys.relin_hint());
        }
        let one = Plaintext::from_coeffs(&params, &[1]);
        let eq = pow.neg().add_plain(&one, &params);
        let masked = eq.mul_plain(&Plaintext::from_coeffs(&params, &[value]), &params);
        acc = Some(match acc {
            None => masked,
            Some(a) => a.add(&masked),
        });
    }
    let result = keys.decrypt(&acc.unwrap());
    println!("lookup({query_key}) = {} (expected 198)", result.coeff(0));
    assert_eq!(result.coeff(0), 198);
    println!("4-entry encrypted lookup verified under BGV (t = 257, depth 8).");
}
