//! Real BGV bootstrapping at toy parameters: take an exhausted level-1
//! ciphertext and refresh it homomorphically (§2.2.2's procedure, the
//! workload behind the paper's BGV-bootstrapping benchmark).
//!
//! Run with: `cargo run -p f1 --release --example bootstrap_demo`

use f1::fhe::bgv::{KeySet, Plaintext};
use f1::fhe::bootstrap::BgvBootstrapper;
use f1::fhe::params::BgvParams;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
    // N = 32 (nu = 5), rho = 7, binary plaintexts, FHE-friendly chain.
    let params = BgvParams::new_fhe_friendly(32, 12, 0, 2);
    let keys = KeySet::generate(&params, &mut rng);
    let boot = BgvBootstrapper::new(&params, keys.secret_key(), 7, &mut rng);
    for bit in [0u64, 1] {
        let exhausted =
            keys.encrypt_at_level(&Plaintext::from_coeffs(&params, &[bit]), 1, &mut rng);
        println!(
            "bit {bit}: level {} budget {:.1} bits",
            exhausted.level(),
            exhausted.noise_budget_bits()
        );
        let fresh = boot.bootstrap(&exhausted);
        println!(
            "  -> bootstrapped: level {} budget {:.1} bits, decrypts to {}",
            fresh.level(),
            fresh.noise_budget_bits(),
            keys.decrypt(&fresh).coeff(0)
        );
        assert_eq!(keys.decrypt(&fresh).coeff(0), bit);
    }
    println!("\nBoth bits survived a full homomorphic decryption + digit extraction.");
}
