//! Listing 2's matrix-vector multiply on the typed `FheProgram`
//! frontend: functional verification on real BGV, then the F1
//! compilation pipeline — IR passes included — with its hint-reuse
//! schedule.
//!
//! Run with: `cargo run -p f1 --release --example matvec`

use f1::arch::ArchConfig;
use f1::compiler::ir::{FheProgram, IrId, Scheme};
use f1::fhe::encoding::SlotEncoder;
use f1::fhe::params::BgvParams;
use f1::sim::BgvExecutor;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    // Functional run at a small ring for speed.
    let n = 128usize;
    let rows = 4usize;
    let params = BgvParams::test_small(n, 4);
    let enc = SlotEncoder::new(&params);
    let mut p = FheProgram::new(n, Scheme::Bgv);
    let m_rows: Vec<IrId> = (0..rows).map(|_| p.input(4)).collect();
    let v = p.input(4);
    for &row in &m_rows {
        let prod = p.mul(row, v);
        let sum = p.inner_sum(prod, n / 2);
        p.output(sum);
    }
    let lowered = p.lower();
    let ct = |id: IrId| lowered.ct_of[id.0 as usize];
    let exec = BgvExecutor::new(params.clone(), &lowered.program, &mut rng);
    let vec_data: Vec<u64> = (0..n / 2).map(|j| (j % 9) as u64).collect();
    let mut inputs = HashMap::new();
    let mut expected = Vec::new();
    for (r, &id) in m_rows.iter().enumerate() {
        let row: Vec<u64> = (0..n / 2).map(|j| ((3 * j + r) % 7) as u64).collect();
        expected.push(
            row.iter().zip(&vec_data).map(|(&a, &b)| a * b).sum::<u64>() % params.plaintext_modulus,
        );
        inputs.insert(ct(id), enc.encode(&[row.clone(), row], &params));
    }
    inputs.insert(ct(v), enc.encode(&[vec_data.clone(), vec_data], &params));
    let run = exec.run(&lowered.program, &inputs, &HashMap::new(), &mut rng);
    for (r, out) in run.outputs.iter().enumerate() {
        let got = enc.decode(out)[0][0];
        println!("row {r}: dot product = {got} (expected {})", expected[r]);
        assert_eq!(got, expected[r]);
    }
    println!("functional run: {} hom ops in {:?}\n", run.hom_ops, run.eval_time);

    // F1 compilation of the full-size version (Listing 2's 4 x 16K),
    // through the IR pass pipeline.
    let full = FheProgram::listing2_matvec(1 << 14, 16, 4);
    let arch = ArchConfig::f1_default();
    let (_, stats, ex, plan, cycles) = f1::compiler::compile_fhe(&full, &arch);
    let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
    println!("F1 schedule for 4x16K matvec at L=16:");
    println!(
        "  IR passes: {} hom ops -> {}, key-switches {} -> {} (innerSum's last",
        stats.nodes_before, stats.nodes_after, stats.keyswitch_before, stats.keyswitch_after
    );
    println!("   rotation wraps to the identity σ_1 — one dead key-switch per row)");
    println!(
        "  {} vector instructions, makespan {} cycles ({:.3} ms)",
        ex.dfg.instrs().len(),
        report.makespan,
        report.seconds * 1e3
    );
    println!(
        "  off-chip traffic {} MB, of which {:.1}% compulsory",
        report.traffic.total() / (1024 * 1024),
        report.traffic.compulsory() as f64 / report.traffic.total() as f64 * 100.0
    );
    println!("  (the §4.2 example: naive order would fetch 480 MB of hints; the");
    println!("   hint-reuse schedule fetches each hint once)");
}
