//! Private deep learning inference (the paper's motivating application,
//! §1): compile the full-size LoLa-MNIST for F1 and compare against the
//! measured CPU baseline — the "20 minutes to 241 milliseconds" story.
//!
//! Run with: `cargo run -p f1 --release --example private_inference`

use f1::arch::ArchConfig;
use f1::workloads::benchmarks::lola_mnist_uw;
use f1::workloads::CpuBaseline;

fn main() {
    let b = lola_mnist_uw(1);
    let arch = ArchConfig::f1_default();
    let (ex, plan, cycles) = f1::compiler_compile(&b.program, &arch);
    let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
    let baseline = CpuBaseline::measure(&b.program, 1024);
    let cpu_s = baseline.estimate_seconds_parallel(&b.program, b.n);
    println!("{} ({}, scale 1/{}):", b.name, b.scheme, b.scale);
    println!(
        "  IR passes: {} hom ops -> {} before key-switch expansion",
        b.opt.nodes_before, b.opt.nodes_after
    );
    println!(
        "  F1:  {:.3} ms  ({} instructions, {} cycles, {} key-switching)",
        report.seconds * 1e3,
        ex.dfg.instrs().len(),
        report.makespan,
        if ex.used_ghs { "GHS" } else { "decomposition" }
    );
    println!(
        "  CPU: {:.1} ms  (measured f1-fhe per-op costs, {:.1}x parallel)",
        cpu_s * 1e3,
        baseline.parallel_speedup
    );
    println!("  speedup: {:.0}x", cpu_s / report.seconds);
    println!("  avg FU utilization {:.0}% (paper: ~30%) — loads stream on {} HBM channels concurrently with compute",
        report.avg_fu_utilization * 100.0, arch.hbm_channels);
}
