//! NTT-friendly and FHE-friendly prime generation (§2.3, §5.3).
//!
//! Every RNS limb modulus in F1 must admit a negacyclic NTT of the ring
//! dimension `N`, which requires `q ≡ 1 (mod 2N)`. The FHE-friendly
//! multiplier additionally pins the low half-word of `q` (our convention:
//! `q ≡ 1 (mod 2^16)`, see DESIGN.md §2.7), which simultaneously guarantees
//! NTT-friendliness for every `N ≤ 2^15`.

/// Deterministic Miller–Rabin primality test, exact for all `n < 3.3 * 10^24`
/// (we only use it below `2^63`).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    // This witness set is deterministic for all n < 3,317,044,064,679,887,385,961,981.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Generates `count` distinct primes of exactly `bits` bits with
/// `q ≡ 1 (mod modulus_step)`, scanning downward from `2^bits`.
///
/// # Panics
///
/// Panics if fewer than `count` such primes exist below `2^bits`, if
/// `bits` is not in `(17, 32]`... in practice F1 uses 24–31 bit primes.
pub fn primes_one_mod(bits: u32, modulus_step: u64, count: usize) -> Vec<u32> {
    assert!((18..=31).contains(&bits), "prime width out of range: {bits}");
    let top = 1u64 << bits;
    let mut found = Vec::with_capacity(count);
    // Largest candidate ≡ 1 mod step strictly below 2^bits.
    let mut cand = ((top - 2) / modulus_step) * modulus_step + 1;
    while found.len() < count && cand > (1u64 << (bits - 1)) {
        if is_prime(cand) {
            found.push(cand as u32);
        }
        cand = cand.saturating_sub(modulus_step);
    }
    assert!(
        found.len() == count,
        "only {} primes of {} bits ≡ 1 mod {} exist; requested {}",
        found.len(),
        bits,
        modulus_step,
        count
    );
    found
}

/// Generates `count` NTT-friendly primes (`q ≡ 1 mod 2n`) of `bits` bits.
///
/// These are the moduli the paper's functional simulator samples (§8.5):
/// NTT-friendly primes, roughly 24 bits long in their setup; we default to
/// 30-bit primes for extra noise headroom but the width is a parameter.
pub fn ntt_friendly_primes(n: usize, bits: u32, count: usize) -> Vec<u32> {
    assert!(n.is_power_of_two(), "ring dimension must be a power of two");
    primes_one_mod(bits, 2 * n as u64, count)
}

/// Generates `count` FHE-friendly primes: `q ≡ 1 (mod 2^16)` (§5.3, mirrored
/// sign convention), NTT-friendly for every `N ≤ 2^15`.
pub fn fhe_friendly_primes(bits: u32, count: usize) -> Vec<u32> {
    primes_one_mod(bits, 1 << 16, count)
}

/// Counts all primes `q < 2^32` in the residue class `q ≡ a (mod 2^16)`.
///
/// The paper's FHE-friendly class is `q ≡ -1 (mod 2^16)` (§5.3), i.e.
/// `a = 2^16 - 1`, which holds exactly 6,148 primes below `2^32` — see
/// [`paper_prime_census`]. (The paper's text says "6,186", which is the
/// count of the mirrored `+1` class; both sit near the Dirichlet-density
/// prediction `π(2^32)/φ(2^16) ≈ 6,203`.) Exhaustively checks 65,535
/// candidates, so it runs in well under a second.
pub fn prime_census_mod_2_16(a: u32) -> usize {
    assert!(a % 2 == 1, "even residue classes contain at most one prime");
    let step = 1u64 << 16;
    let mut count = 0usize;
    let mut cand = a as u64;
    if cand < 2 {
        cand += step;
    }
    while cand < (1u64 << 32) {
        if is_prime(cand) {
            count += 1;
        }
        cand += step;
    }
    count
}

/// The §5.3 census of the paper's own FHE-friendly class,
/// `q ≡ -1 (mod 2^16)`: 6,148 prime moduli below `2^32`.
pub fn paper_prime_census() -> usize {
    prime_census_mod_2_16((1 << 16) - 1)
}

/// Splits a target modulus width `log Q` into a chain of `L = ceil(logQ/width)`
/// primes of `width` bits each, as RNS representation requires (§2.3).
///
/// All returned primes are NTT-friendly for ring dimension `n` and mutually
/// distinct.
pub fn rns_modulus_chain(n: usize, width: u32, l: usize) -> Vec<u32> {
    ntt_friendly_primes(n, width, l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miller_rabin_agrees_with_trial_division() {
        fn trial(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        }
        for n in 0..2000u64 {
            assert_eq!(is_prime(n), trial(n), "n={n}");
        }
        // A few structured cases around powers of two.
        for n in [(1u64 << 31) - 1, (1 << 31) + 11, 4294967291, 4294967295] {
            assert_eq!(is_prime(n), trial(n), "n={n}");
        }
    }

    #[test]
    fn generated_primes_satisfy_congruence() {
        let primes = ntt_friendly_primes(1 << 14, 30, 8);
        assert_eq!(primes.len(), 8);
        for &q in &primes {
            assert!(is_prime(q as u64));
            assert_eq!((q as u64 - 1) % (1 << 15), 0, "q={q} not ≡ 1 mod 2N");
            assert_eq!(q >> 29, 1, "q={q} not 30 bits");
        }
        let mut sorted = primes.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), primes.len(), "primes must be distinct");
    }

    #[test]
    fn fhe_friendly_implies_ntt_friendly() {
        for &q in &fhe_friendly_primes(30, 4) {
            assert_eq!(q & 0xFFFF, 1);
            for log_n in [10u32, 12, 14, 15] {
                assert_eq!((q as u64 - 1) % (1u64 << (log_n + 1)), 0);
            }
        }
    }

    #[test]
    fn census_counts_the_papers_class() {
        // §5.3 restricts moduli to q ≡ -1 (mod 2^16); that class holds
        // exactly 6,148 primes below 2^32. (The paper's text says "6,186",
        // which is the mirrored +1 class's count — the calibration note in
        // ROADMAP.md tracks the discrepancy.)
        assert_eq!(paper_prime_census(), 6148);
        assert_eq!(prime_census_mod_2_16(1), 6186, "mirrored +1 class");
    }

    #[test]
    fn census_small_class_sanity() {
        // Census of class 3 mod 2^16 over a small range via direct check:
        // compare against a brute-force count to validate the census loop
        // logic on a truncated range.
        let mut brute = 0;
        let mut cand = 3u64;
        while cand < 1 << 24 {
            if is_prime(cand) {
                brute += 1;
            }
            cand += 1 << 16;
        }
        assert!(brute > 0);
    }
}
