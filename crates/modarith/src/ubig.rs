//! A minimal unsigned big integer for CRT reconstruction.
//!
//! F1 itself never performs wide arithmetic — RNS representation keeps every
//! datapath at 32 bits (§2.3). Wide integers are only needed *around* the
//! accelerator: to reconstruct plaintexts at decryption time and to measure
//! ciphertext noise against `Q/2`. This module implements exactly the
//! operations that requires and nothing more.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer, little-endian `u64` limbs.
///
/// Invariant: no trailing zero limbs (the canonical representation of zero
/// is an empty limb vector).
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// Creates a big integer from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// Creates a big integer from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut r = Self { limbs: vec![lo, hi] };
        r.normalize();
        r
    }

    /// The product of a slice of small factors (e.g. an RNS modulus chain).
    pub fn product_of(factors: impl IntoIterator<Item = u64>) -> Self {
        let mut acc = Self::one();
        for f in factors {
            acc = acc.mul_u64(f);
        }
        acc
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Sum of two big integers.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self >= other, "UBig::sub would underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Product with a `u64`.
    pub fn mul_u64(&self, m: u64) -> Self {
        if m == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let p = l as u128 * m as u128 + carry;
            out.push(p as u64);
            carry = p >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        Self { limbs: out }
    }

    /// Quotient and remainder when dividing by a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (Self, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut q = Self { limbs: out };
        q.normalize();
        (q, rem as u64)
    }

    /// Remainder modulo a `u64`.
    pub fn rem_u64(&self, d: u64) -> u64 {
        self.div_rem_u64(d).1
    }

    /// Halves the value, rounding down.
    pub fn half(&self) -> Self {
        let mut out = vec![0u64; self.limbs.len()];
        let mut carry = 0u64;
        for i in (0..self.limbs.len()).rev() {
            out[i] = (self.limbs[i] >> 1) | (carry << 63);
            carry = self.limbs[i] & 1;
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Reduces `self` modulo `m` by repeated subtraction of shifted copies.
    ///
    /// Efficient enough for our use (the dividend is at most `L·m` after a
    /// CRT accumulation, so only a handful of subtractions happen).
    pub fn rem(&self, m: &Self) -> Self {
        assert!(!m.is_zero(), "division by zero");
        let mut r = self.clone();
        while &r >= m {
            // Shift m up as far as possible while staying <= r.
            let shift = r.bit_len().saturating_sub(m.bit_len());
            let mut cand = m.shl_bits(shift);
            if cand > r {
                cand = m.shl_bits(shift - 1);
            }
            r = r.sub(&cand);
        }
        r
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: u32) -> Self {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Approximate conversion to `f64` (for logging noise magnitudes).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 2f64.powi(64) + l as f64;
        }
        acc
    }

    /// Base-2 logarithm, `-inf` for zero.
    pub fn log2(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        // Use the top two limbs for mantissa precision.
        let n = self.limbs.len();
        let top = self.limbs[n - 1] as f64;
        let next = if n >= 2 { self.limbs[n - 2] as f64 } else { 0.0 };
        let mant = top + next / 2f64.powi(64);
        mant.log2() + ((n - 1) as f64) * 64.0
    }

    /// Exact conversion to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Exact conversion to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            digits.push(r);
            cur = q;
        }
        let mut s = format!("{}", digits.pop().unwrap());
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:019}"));
        }
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_normalization() {
        assert!(UBig::zero().is_zero());
        assert_eq!(UBig::from_u64(0), UBig::zero());
        assert_eq!(UBig::from_u128(u64::MAX as u128 + 1).bit_len(), 65);
        assert_eq!(UBig::from_u64(1).bit_len(), 1);
        assert_eq!(UBig::from_u64(255).bit_len(), 8);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = UBig::from_u128(0xDEAD_BEEF_DEAD_BEEF_0123_4567_89AB_CDEF);
        let b = UBig::from_u128(0x0101_0101_FFFF_FFFF_FFFF_FFFF_0000_0001);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.add(&b).sub(&a), b);
        assert_eq!(a.sub(&a), UBig::zero());
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = UBig::product_of([0x3FFC_0001u64, 0x3FED_0001, 0x3FDE_0001]);
        for d in [3u64, 0x3FFC_0001, u64::MAX] {
            let (q, r) = a.mul_u64(d).div_rem_u64(d);
            assert_eq!(q, a);
            assert_eq!(r, 0);
        }
        let (q, r) = a.div_rem_u64(7);
        assert_eq!(q.mul_u64(7).add(&UBig::from_u64(r)), a);
    }

    #[test]
    fn rem_matches_u128_reference() {
        let a = UBig::from_u128(123_456_789_012_345_678_901_234_567_890u128);
        let m = UBig::from_u128(987_654_321_987u128);
        let want = 123_456_789_012_345_678_901_234_567_890u128 % 987_654_321_987u128;
        assert_eq!(a.rem(&m).to_u128(), Some(want));
    }

    #[test]
    fn ordering_and_comparison() {
        let small = UBig::from_u64(5);
        let big = UBig::from_u128(1u128 << 100);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big), Ordering::Equal);
    }

    #[test]
    fn shift_and_half() {
        let a = UBig::from_u64(0b1011);
        assert_eq!(a.shl_bits(1).half(), a);
        assert_eq!(a.shl_bits(64).div_rem_u64(2).0, a.shl_bits(63));
        assert_eq!(UBig::from_u64(7).half(), UBig::from_u64(3));
    }

    #[test]
    fn display_decimal() {
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!(UBig::from_u64(42).to_string(), "42");
        let v = UBig::from_u128(340_282_366_920_938_463_463_374_607_431_768_211_455u128);
        assert_eq!(v.to_string(), "340282366920938463463374607431768211455");
    }

    #[test]
    fn log2_is_close() {
        let v = UBig::from_u64(1).shl_bits(100);
        assert!((v.log2() - 100.0).abs() < 1e-9);
        let w = v.mul_u64(3);
        assert!((w.log2() - (100.0 + 3f64.log2())).abs() < 1e-9);
    }

    #[test]
    fn product_of_chain_matches_rem() {
        let primes = [0x3FFC_0001u64, 0x3FED_0001, 0x3FDE_0001, 0x3FD2_0001];
        let q = UBig::product_of(primes);
        for &p in &primes {
            assert_eq!(q.rem_u64(p), 0);
        }
        assert!(q.rem_u64(11) != 0 || q.rem_u64(13) != 0);
    }
}
