//! # f1-modarith — modular arithmetic substrate for the F1 reproduction
//!
//! F1 (MICRO 2021) performs all ciphertext arithmetic on vectors of 32-bit
//! residues; the modular multiplier is "the most expensive and frequent
//! operation" (paper §5.3). This crate provides:
//!
//! * [`Modulus`] — a word-sized prime modulus with every precomputed constant
//!   the four multiplier designs need (Barrett µ, Montgomery constants,
//!   word-level Montgomery constants, Shoup constants for fixed operands).
//! * [`mul`] — the four modular-multiplier designs compared in the paper's
//!   Table 1: Barrett, Montgomery, NTT-friendly (word-level Montgomery of
//!   Mert et al. \[51\]) and F1's FHE-friendly multiplier.
//! * [`primes`] — NTT-friendly and FHE-friendly prime generation plus the
//!   prime census backing the paper's "6,186 prime moduli" claim (§5.3).
//! * [`slice_ops`] — batched element-wise kernels (`add_slice`, `mul_slice`,
//!   `fma_slice`, …): the software analogue of F1's vector FUs, written so
//!   the compiler can auto-vectorize the hot loops.
//! * [`cost`] — the structural hardware cost model that regenerates Table 1.
//! * [`ubig`] — a minimal unsigned big integer used for CRT reconstruction
//!   of wide-coefficient values (decryption and noise measurement only;
//!   the accelerator itself never touches wide arithmetic, §2.3).
//!
//! # Example
//!
//! ```
//! use f1_modarith::{Modulus, primes};
//!
//! // A 30-bit FHE-friendly prime: q ≡ 1 (mod 2^16), so it supports
//! // negacyclic NTTs up to N = 2^15 *and* the cheap reduction of §5.3.
//! let q = primes::fhe_friendly_primes(30, 1)[0];
//! let m = Modulus::new(q);
//! let a = 123_456_789 % q;
//! let b = 987_654_321 % q;
//! assert_eq!(m.mul(a, b), ((a as u64 * b as u64) % q as u64) as u32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod modulus;
pub mod mul;
pub mod primes;
pub mod slice_ops;
pub mod ubig;

pub use cost::{MultiplierCost, MultiplierKind};
pub use modulus::Modulus;
pub use ubig::UBig;

/// The machine word width of the accelerator datapath, in bits.
///
/// F1 fixes the RNS limb width to one 32-bit word (§2.3): every residue
/// polynomial coefficient is an integer modulo a prime that fits in
/// [`WORD_BITS`] bits.
pub const WORD_BITS: u32 = 32;

/// The sub-word width used by the word-level Montgomery multipliers (§5.3).
///
/// The NTT-friendly and FHE-friendly designs reduce a 64-bit product in
/// 16-bit steps; FHE-friendly moduli satisfy `q ≡ 1 (mod 2^HALF_WORD_BITS)`.
pub const HALF_WORD_BITS: u32 = 16;
