//! Batched element-wise modular kernels over residue slices.
//!
//! These are the software analogue of F1's vector functional units: one
//! modulus, whole-`RVec` operands. Add/sub/neg are written branchlessly
//! (`min` of the wrapped and unwrapped candidate) so the compiler can
//! auto-vectorize them; multiplies use Barrett reduction per element, and
//! scalar multiplies hoist a Shoup constant out of the loop. All kernels
//! require canonical inputs (`< q`) and produce canonical outputs.

use crate::mul::ShoupMul;
use crate::Modulus;

/// `dst[i] = dst[i] + src[i] mod q`, branchless.
#[inline]
pub fn add_slice(m: &Modulus, dst: &mut [u32], src: &[u32]) {
    assert_eq!(dst.len(), src.len());
    let q = m.value();
    for (x, &y) in dst.iter_mut().zip(src) {
        debug_assert!(*x < q && y < q);
        let s = *x + y;
        // If s < q the wrapped candidate underflows to a huge value and
        // `min` keeps s; otherwise it keeps s - q.
        *x = s.min(s.wrapping_sub(q));
    }
}

/// `dst[i] = dst[i] - src[i] mod q`, branchless.
#[inline]
pub fn sub_slice(m: &Modulus, dst: &mut [u32], src: &[u32]) {
    assert_eq!(dst.len(), src.len());
    let q = m.value();
    for (x, &y) in dst.iter_mut().zip(src) {
        debug_assert!(*x < q && y < q);
        let d = x.wrapping_sub(y);
        *x = d.min(d.wrapping_add(q));
    }
}

/// `dst[i] = -dst[i] mod q`, branchless.
#[inline]
pub fn neg_slice(m: &Modulus, dst: &mut [u32]) {
    let q = m.value();
    for x in dst.iter_mut() {
        debug_assert!(*x < q);
        let r = q - *x; // in [1, q]; r == q exactly when *x == 0
        *x = r.min(r.wrapping_sub(q));
    }
}

/// `dst[i] = dst[i] * src[i] mod q` (element-wise Barrett multiply).
///
/// Operands are canonical residues, so each product is `< q² < 2^62` —
/// inside `reduce_u64`'s Barrett fast path (likewise in the two variants
/// below).
#[inline]
pub fn mul_slice(m: &Modulus, dst: &mut [u32], src: &[u32]) {
    assert_eq!(dst.len(), src.len());
    for (x, &y) in dst.iter_mut().zip(src) {
        *x = m.reduce_u64(*x as u64 * y as u64);
    }
}

/// `out[i] = a[i] * b[i] mod q`, writing into a caller-provided buffer.
#[inline]
pub fn mul_slice_into(m: &Modulus, out: &mut [u32], a: &[u32], b: &[u32]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = m.reduce_u64(x as u64 * y as u64);
    }
}

/// `acc[i] = acc[i] + a[i] * b[i] mod q` — the multiply-accumulate inner
/// loop of key-switching (Listing 1 lines 9-10).
#[inline]
pub fn fma_slice(m: &Modulus, acc: &mut [u32], a: &[u32], b: &[u32]) {
    assert_eq!(acc.len(), a.len());
    assert_eq!(acc.len(), b.len());
    let q = m.value();
    for ((o, &x), &y) in acc.iter_mut().zip(a).zip(b) {
        let p = m.reduce_u64(x as u64 * y as u64);
        let s = *o + p;
        *o = s.min(s.wrapping_sub(q));
    }
}

/// `dst[i] = dst[i] * s mod q` with a hoisted Shoup constant.
#[inline]
pub fn scalar_mul_slice(m: &Modulus, dst: &mut [u32], s: u32) {
    let q = m.value();
    let sh = ShoupMul::new(s % q, m);
    for x in dst.iter_mut() {
        *x = sh.mul(*x, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes;
    use rand::{Rng, SeedableRng};

    fn setup() -> (Modulus, Vec<u32>, Vec<u32>) {
        let m = Modulus::new(primes::ntt_friendly_primes(64, 30, 1)[0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x51ce);
        let a: Vec<u32> = (0..257).map(|_| rng.gen_range(0..m.value())).collect();
        let b: Vec<u32> = (0..257).map(|_| rng.gen_range(0..m.value())).collect();
        (m, a, b)
    }

    #[test]
    fn slice_kernels_match_scalar_ops() {
        let (m, a, b) = setup();
        let mut add = a.clone();
        add_slice(&m, &mut add, &b);
        let mut sub = a.clone();
        sub_slice(&m, &mut sub, &b);
        let mut neg = a.clone();
        neg_slice(&m, &mut neg);
        let mut mul = a.clone();
        mul_slice(&m, &mut mul, &b);
        let mut fma = a.clone();
        fma_slice(&m, &mut fma, &a, &b);
        let mut sc = a.clone();
        scalar_mul_slice(&m, &mut sc, 12345);
        let mut into = vec![0u32; a.len()];
        mul_slice_into(&m, &mut into, &a, &b);
        for i in 0..a.len() {
            assert_eq!(add[i], m.add(a[i], b[i]));
            assert_eq!(sub[i], m.sub(a[i], b[i]));
            assert_eq!(neg[i], m.neg(a[i]));
            assert_eq!(mul[i], m.mul(a[i], b[i]));
            assert_eq!(into[i], m.mul(a[i], b[i]));
            assert_eq!(fma[i], m.add(a[i], m.mul(a[i], b[i])));
            assert_eq!(sc[i], m.mul(a[i], 12345 % m.value()));
        }
    }

    #[test]
    fn edge_values_stay_canonical() {
        let (m, _, _) = setup();
        let q = m.value();
        let edges = [0u32, 1, q / 2, q - 2, q - 1];
        for &x in &edges {
            for &y in &edges {
                let mut d = [x];
                add_slice(&m, &mut d, &[y]);
                assert!(d[0] < q);
                assert_eq!(d[0], m.add(x, y));
                let mut d = [x];
                sub_slice(&m, &mut d, &[y]);
                assert!(d[0] < q);
                assert_eq!(d[0], m.sub(x, y));
                let mut d = [x];
                fma_slice(&m, &mut d, &[x], &[y]);
                assert!(d[0] < q);
            }
            let mut d = [x];
            neg_slice(&m, &mut d);
            assert_eq!(d[0], m.neg(x));
        }
    }
}
