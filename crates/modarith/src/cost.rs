//! Structural hardware cost model for the four modular multipliers (Table 1).
//!
//! The paper synthesizes the designs in a commercial 14/12 nm process; we
//! cannot run RTL synthesis, so Table 1 is regenerated from a *structural*
//! model: each design is described by how many multiplier/adder/register
//! stages its pipeline needs, and per-structure unit costs are calibrated so
//! that the model lands on the paper's published numbers. The point the
//! experiment makes — each specialization removes pipeline structure, and
//! F1's FHE-friendly restriction removes one multiplier stage from the
//! word-level design, cutting area by 19% and power by 30% — is preserved
//! because those deltas *are* the structural differences.

use std::fmt;

/// Identifies one of the four modular multiplier designs of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiplierKind {
    /// Generic Barrett multiplier: no restriction on the modulus.
    Barrett,
    /// Generic Montgomery multiplier: odd modulus.
    Montgomery,
    /// Word-level Montgomery with trivial `q'` multiply (Mert et al. \[51\]).
    NttFriendly,
    /// F1's design (§5.3): fixed 16-bit two-stage datapath, one multiplier
    /// stage removed; requires `q ≡ ±1 (mod 2^16)`.
    FheFriendly,
}

impl MultiplierKind {
    /// All four designs, in Table 1 order.
    pub const ALL: [MultiplierKind; 4] = [
        MultiplierKind::Barrett,
        MultiplierKind::Montgomery,
        MultiplierKind::NttFriendly,
        MultiplierKind::FheFriendly,
    ];

    /// Human-readable row label matching Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            MultiplierKind::Barrett => "Barrett",
            MultiplierKind::Montgomery => "Montgomery",
            MultiplierKind::NttFriendly => "NTT-friendly",
            MultiplierKind::FheFriendly => "FHE-friendly (ours)",
        }
    }
}

impl fmt::Display for MultiplierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Structural description of a pipelined modular multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplierStructure {
    /// Equivalent count of 16×16 partial-product multiplier stages.
    ///
    /// A full 32×32 product costs 4 such stages; the Barrett reciprocal
    /// estimate (64×34 high-half) costs ~8; a 16×32 fold costs 2.
    pub mult16_stages: u32,
    /// Wide (64-bit datapath) fold/correct stages with high toggle activity:
    /// the Barrett subtract-and-correct and the Montgomery 32-bit folds.
    pub fold64_stages: u32,
    /// Pipeline register ranks.
    pub pipeline_regs: u32,
    /// Critical-path multiplier levels (sets delay).
    pub critical_mult_levels: u32,
}

impl MultiplierKind {
    /// The structural pipeline description of this design.
    ///
    /// Stage counts follow the published architectures: Barrett needs the
    /// operand product, the µ estimate over a 64-bit value and the
    /// q-correction product plus wide subtract-and-correct stages;
    /// Montgomery needs the operand product, the `q'` fold and the `q`
    /// product with two 64-bit accumulate stages; the word-level
    /// NTT-friendly design replaces the 32-bit folds by two 16-bit stages
    /// whose `q'` multiply is trivial (Mert et al.); FHE-friendly hardwires
    /// the remaining `q'` structure away, removing one equivalent
    /// multiplier stage per the paper's 19%-area claim.
    pub fn structure(&self) -> MultiplierStructure {
        match self {
            MultiplierKind::Barrett => MultiplierStructure {
                mult16_stages: 13,
                fold64_stages: 3,
                pipeline_regs: 6,
                critical_mult_levels: 3,
            },
            MultiplierKind::Montgomery => MultiplierStructure {
                mult16_stages: 7,
                fold64_stages: 2,
                pipeline_regs: 4,
                critical_mult_levels: 2,
            },
            MultiplierKind::NttFriendly => MultiplierStructure {
                mult16_stages: 6,
                fold64_stages: 0,
                pipeline_regs: 3,
                critical_mult_levels: 2,
            },
            MultiplierKind::FheFriendly => MultiplierStructure {
                mult16_stages: 5,
                fold64_stages: 0,
                pipeline_regs: 3,
                critical_mult_levels: 2,
            },
        }
    }

    /// Evaluates the calibrated cost model for this design.
    pub fn cost(&self) -> MultiplierCost {
        let s = self.structure();
        // Unit constants calibrated against Table 1 (14/12 nm, 1 GHz target):
        //   16x16 multiplier stage    ~ 348 um^2, 0.68 mW
        //   64-bit fold/correct stage ~ 188 um^2, 1.60 mW
        //   pipeline register rank    ~  26 um^2, 0.28 mW
        //   delay: 640 ps base + 225 ps per critical multiplier level
        const A_MULT16: f64 = 348.0;
        const A_FOLD64: f64 = 188.0;
        const A_REG: f64 = 26.0;
        const P_MULT16: f64 = 0.68;
        const P_FOLD64: f64 = 1.60;
        const P_REG: f64 = 0.28;
        const D_BASE: f64 = 640.0;
        const D_MULT_LEVEL: f64 = 225.0;

        let area_um2 = s.mult16_stages as f64 * A_MULT16
            + s.fold64_stages as f64 * A_FOLD64
            + s.pipeline_regs as f64 * A_REG;
        let power_mw = s.mult16_stages as f64 * P_MULT16
            + s.fold64_stages as f64 * P_FOLD64
            + s.pipeline_regs as f64 * P_REG;
        let delay_ps = D_BASE + s.critical_mult_levels as f64 * D_MULT_LEVEL;
        MultiplierCost { kind: *self, area_um2, power_mw, delay_ps }
    }

    /// The paper's published Table 1 row for this design, for comparison.
    pub fn paper_cost(&self) -> MultiplierCost {
        let (area_um2, power_mw, delay_ps) = match self {
            MultiplierKind::Barrett => (5271.0, 18.40, 1317.0),
            MultiplierKind::Montgomery => (2916.0, 9.29, 1040.0),
            MultiplierKind::NttFriendly => (2165.0, 5.36, 1000.0),
            MultiplierKind::FheFriendly => (1817.0, 4.10, 1000.0),
        };
        MultiplierCost { kind: *self, area_um2, power_mw, delay_ps }
    }
}

/// Area, power and delay of a modular multiplier design (Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplierCost {
    /// Which design this cost describes.
    pub kind: MultiplierKind,
    /// Cell area in square micrometers.
    pub area_um2: f64,
    /// Power at 1 GHz in milliwatts.
    pub power_mw: f64,
    /// Critical-path delay in picoseconds.
    pub delay_ps: f64,
}

impl fmt::Display for MultiplierCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<20} {:>8.0} {:>8.2} {:>8.0}",
            self.kind.label(),
            self.area_um2,
            self.power_mw,
            self.delay_ps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_ranks_designs_like_the_paper() {
        let costs: Vec<_> = MultiplierKind::ALL.iter().map(|k| k.cost()).collect();
        for w in costs.windows(2) {
            assert!(w[0].area_um2 > w[1].area_um2, "area must strictly improve down Table 1");
            assert!(w[0].power_mw > w[1].power_mw, "power must strictly improve down Table 1");
            assert!(w[0].delay_ps >= w[1].delay_ps, "delay must not regress down Table 1");
        }
    }

    #[test]
    fn model_tracks_paper_within_tolerance() {
        // The structural model shares its unit constants across all four
        // rows (it is calibrated, not fitted per row); require every row to
        // land within 2% area / 20% power / 10% delay of the synthesis
        // numbers. Power is loosest because synthesis power depends on
        // switching activity the structural model cannot see.
        for kind in MultiplierKind::ALL {
            let model = kind.cost();
            let paper = kind.paper_cost();
            let rel = |a: f64, b: f64| (a - b).abs() / b;
            assert!(
                rel(model.area_um2, paper.area_um2) < 0.02,
                "{kind}: area {model:?} vs {paper:?}"
            );
            assert!(
                rel(model.power_mw, paper.power_mw) < 0.20,
                "{kind}: power {model:?} vs {paper:?}"
            );
            assert!(
                rel(model.delay_ps, paper.delay_ps) < 0.10,
                "{kind}: delay {model:?} vs {paper:?}"
            );
        }
    }

    #[test]
    fn fhe_friendly_saves_one_multiplier_stage() {
        let ntt = MultiplierKind::NttFriendly.structure();
        let fhe = MultiplierKind::FheFriendly.structure();
        assert_eq!(ntt.mult16_stages - fhe.mult16_stages, 1);
        let area_saving = 1.0
            - MultiplierKind::FheFriendly.cost().area_um2
                / MultiplierKind::NttFriendly.cost().area_um2;
        // Paper: "reduces area by 19%".
        assert!((0.10..0.25).contains(&area_saving), "area saving {area_saving}");
    }
}
