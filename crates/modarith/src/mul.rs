//! The four modular-multiplier designs of Table 1.
//!
//! F1's functional units spend most of their area and power on modular
//! multipliers, so §5.3 compares four designs:
//!
//! | design | idea | restriction on `q` |
//! |---|---|---|
//! | [`barrett`] | reciprocal-estimate division | none |
//! | [`montgomery`] | single 32-bit Montgomery fold | odd `q` |
//! | [`ntt_friendly`] | word-level Montgomery, trivial `q'` multiply (Mert et al. \[51\]) | `q ≡ 1 mod 2^m`, program-dependent `m = log 2N` |
//! | [`fhe_friendly`] | F1's design: fixed two-stage 16-bit datapath, one multiplier stage removed | `q ≡ 1 mod 2^16` (paper uses the mirror class `≡ −1`; DESIGN.md §2.7) |
//!
//! All four are implemented bit-exactly in software so that correctness can
//! be cross-checked; the *hardware* area/power/delay ranking is produced by
//! the structural model in [`crate::cost`]. The Montgomery-family functions
//! return values with a `2^{-32}` factor, as the hardware does inside NTT
//! datapaths where the factor is folded into the twiddles; use the
//! `*_normalized` helpers to compare against plain products.

use crate::Modulus;

/// Barrett modular multiplication: `a * b mod q` with no restriction on `q`.
///
/// This mirrors a classic two-multiplier hardware Barrett unit: one 32×32
/// product, one 64×34 reciprocal estimate, one subtract-and-correct.
#[inline]
pub fn barrett(m: &Modulus, a: u32, b: u32) -> u32 {
    debug_assert!(a < m.value() && b < m.value());
    let x = a as u64 * b as u64;
    let t = ((x as u128 * m.barrett_mu() as u128) >> 64) as u64;
    let mut r = x - t * m.value() as u64;
    while r >= m.value() as u64 {
        r -= m.value() as u64;
    }
    r as u32
}

/// Montgomery modular multiplication: returns `a * b * 2^{-32} mod q`.
///
/// One 32×32 product plus one 32×32 fold by `-q^{-1} mod 2^32` and one
/// 32×32 product by `q`: three multiplier stages in hardware.
#[inline]
pub fn montgomery(m: &Modulus, a: u32, b: u32) -> u32 {
    debug_assert!(a < m.value() && b < m.value());
    let t = a as u64 * b as u64;
    mont_reduce(m, t)
}

/// Montgomery reduction of a 64-bit value: `t * 2^{-32} mod q`.
#[inline]
pub fn mont_reduce(m: &Modulus, t: u64) -> u32 {
    let k = (t as u32).wrapping_mul(m.mont_qinv_neg());
    let folded = (t.wrapping_add(k as u64 * m.value() as u64)) >> 32;
    // t + k*q < 2^62 + 2^63 so no u64 overflow; result < 2q.
    let r = folded;
    if r >= m.value() as u64 {
        (r - m.value() as u64) as u32
    } else {
        r as u32
    }
}

/// Montgomery multiplication normalized back to the plain domain.
///
/// Computes `a * b mod q` by post-multiplying with `2^64 mod q` inside a
/// second Montgomery fold. Used by tests; real datapaths keep values in
/// Montgomery form.
#[inline]
pub fn montgomery_normalized(m: &Modulus, a: u32, b: u32) -> u32 {
    let ab_r_inv = montgomery(m, a, b);
    montgomery(m, ab_r_inv, m.mont_r2())
}

/// Word-level Montgomery multiplication (Mert et al. \[51\]): returns
/// `a * b * 2^{-32} mod q`, reducing the 64-bit product in 16-bit steps.
///
/// The generic design multiplies the low word by `q' = -q^{-1} mod 2^16`
/// at each step; because every NTT-friendly modulus with `2N ≥ 2^16`
/// satisfies `q ≡ 1 mod 2^16`, `q'` is `0xFFFF ≡ -1` and the multiply is a
/// two's-complement negation. For smaller `2N` the `q'` multiply is a real
/// 16×16 multiplier stage; [`crate::cost`] accounts for the difference.
#[inline]
pub fn ntt_friendly(m: &Modulus, a: u32, b: u32) -> u32 {
    debug_assert!(a < m.value() && b < m.value());
    let mut t = a as u64 * b as u64;
    for _ in 0..2 {
        let t_low = (t & 0xFFFF) as u16;
        // k = t_low * q' mod 2^16, with q' = -q^{-1} mod 2^16.
        let k = t_low.wrapping_mul(m.word_qinv_neg());
        t = (t + k as u64 * m.value() as u64) >> 16;
    }
    let r = t;
    debug_assert!(r < 2 * m.value() as u64);
    if r >= m.value() as u64 {
        (r - m.value() as u64) as u32
    } else {
        r as u32
    }
}

/// F1's FHE-friendly multiplier (§5.3): returns `a * b * 2^{-32} mod q`.
///
/// Requires `q ≡ 1 (mod 2^16)` (checked by a debug assertion), which pins
/// `q' = -q^{-1} ≡ -1 (mod 2^16)`: the per-stage `q'` multiplier of the
/// generic word-level design degenerates into a negation that is hardwired
/// here, removing a multiplier stage from the pipeline (19% area, 30% power
/// in the paper's synthesis).
#[inline]
pub fn fhe_friendly(m: &Modulus, a: u32, b: u32) -> u32 {
    debug_assert!(a < m.value() && b < m.value());
    debug_assert!(m.is_fhe_friendly(), "fhe_friendly requires q ≡ 1 mod 2^16");
    let mut t = a as u64 * b as u64;
    for _ in 0..2 {
        let t_low = (t & 0xFFFF) as u16;
        // q' ≡ -1 (mod 2^16): k = (-t_low) mod 2^16, no multiplier needed.
        let k = t_low.wrapping_neg();
        t = (t + k as u64 * m.value() as u64) >> 16;
    }
    let r = t;
    if r >= m.value() as u64 {
        (r - m.value() as u64) as u32
    } else {
        r as u32
    }
}

/// A precomputed Shoup constant for multiplying by a *fixed* operand `w`.
///
/// NTT butterflies multiply by fixed twiddles, so software (and the paper's
/// CPU baseline) precompute `w' = floor(w * 2^32 / q)` once and reduce each
/// product with a single high-multiply — the fastest software path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupMul {
    /// The fixed multiplicand, reduced mod `q`.
    pub operand: u32,
    /// `floor(operand * 2^32 / q)`.
    pub quotient: u32,
}

impl ShoupMul {
    /// Precomputes the Shoup constant for `operand` under `m`.
    pub fn new(operand: u32, m: &Modulus) -> Self {
        debug_assert!(operand < m.value());
        let quotient = (((operand as u64) << 32) / m.value() as u64) as u32;
        Self { operand, quotient }
    }

    /// Computes `x * operand mod q` with one high-half multiply.
    #[inline(always)]
    pub fn mul(&self, x: u32, q: u32) -> u32 {
        let r = self.mul_lazy(x, q);
        if r >= q {
            r - q
        } else {
            r
        }
    }

    /// Harvey's lazy Shoup multiply: returns `x * operand mod q` as a
    /// representative in `[0, 2q)`, skipping the final conditional subtract.
    ///
    /// Correct for *any* `x: u32` (the quotient estimate
    /// `hi = floor(x * quotient / 2^32)` undershoots the true quotient by
    /// less than `1 + x/2^32 < 2`, so the remainder lands in `[0, 2q)`; the
    /// wrapping arithmetic is exact because `2q < 2^32`). This is the
    /// butterfly primitive of the lazy-reduction NTT kernels.
    #[inline(always)]
    pub fn mul_lazy(&self, x: u32, q: u32) -> u32 {
        let hi = ((x as u64 * self.quotient as u64) >> 32) as u32;
        let r = (x.wrapping_mul(self.operand)).wrapping_sub(hi.wrapping_mul(q));
        debug_assert!((r as u64) < 2 * q as u64);
        r
    }
}

/// Identifies one of the four multiplier designs for dispatch in benches.
pub fn by_kind(kind: crate::MultiplierKind, m: &Modulus, a: u32, b: u32) -> u32 {
    use crate::MultiplierKind::*;
    match kind {
        Barrett => barrett(m, a, b),
        Montgomery => montgomery_normalized(m, a, b),
        NttFriendly => normalize_word_level(m, ntt_friendly(m, a, b)),
        FheFriendly => normalize_word_level(m, fhe_friendly(m, a, b)),
    }
}

/// Removes the `2^{-32}` factor of a word-level Montgomery result.
#[inline]
pub fn normalize_word_level(m: &Modulus, r: u32) -> u32 {
    m.mul(r, m.r_mod_q())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes;
    use rand::{Rng, SeedableRng};

    fn fhe_modulus() -> Modulus {
        Modulus::new(primes::fhe_friendly_primes(30, 1)[0])
    }

    #[test]
    fn all_designs_agree_with_reference() {
        let m = fhe_modulus();
        let q = m.value() as u64;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1);
        for _ in 0..2000 {
            let a = rng.gen_range(0..m.value());
            let b = rng.gen_range(0..m.value());
            let want = ((a as u64 * b as u64) % q) as u32;
            assert_eq!(barrett(&m, a, b), want, "barrett");
            assert_eq!(montgomery_normalized(&m, a, b), want, "montgomery");
            assert_eq!(normalize_word_level(&m, ntt_friendly(&m, a, b)), want, "ntt_friendly");
            assert_eq!(normalize_word_level(&m, fhe_friendly(&m, a, b)), want, "fhe_friendly");
        }
    }

    #[test]
    fn montgomery_family_shares_domain() {
        // All three Montgomery-style designs must return the identical
        // 2^{-32}-scaled representative.
        let m = fhe_modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let a = rng.gen_range(0..m.value());
            let b = rng.gen_range(0..m.value());
            let mont = montgomery(&m, a, b);
            assert_eq!(ntt_friendly(&m, a, b), mont);
            assert_eq!(fhe_friendly(&m, a, b), mont);
        }
    }

    #[test]
    fn shoup_matches_barrett() {
        let m = fhe_modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let w = rng.gen_range(0..m.value());
            let s = ShoupMul::new(w, &m);
            for _ in 0..20 {
                let x = rng.gen_range(0..m.value());
                assert_eq!(s.mul(x, m.value()), m.mul(x, w));
            }
        }
    }

    #[test]
    fn edge_operands() {
        let m = fhe_modulus();
        let q = m.value();
        for (a, b) in [(0, 0), (0, q - 1), (q - 1, q - 1), (1, 1), (1, q - 1)] {
            let want = ((a as u64 * b as u64) % q as u64) as u32;
            assert_eq!(barrett(&m, a, b), want);
            assert_eq!(montgomery_normalized(&m, a, b), want);
            assert_eq!(normalize_word_level(&m, fhe_friendly(&m, a, b)), want);
        }
    }

    #[test]
    fn by_kind_dispatches_every_design() {
        let m = fhe_modulus();
        let want = m.mul(12345, 67890);
        for kind in crate::MultiplierKind::ALL {
            assert_eq!(by_kind(kind, &m, 12345, 67890), want, "{kind:?}");
        }
    }
}
