//! Word-sized prime moduli with precomputed reduction constants.

use crate::primes;

/// A prime modulus `q < 2^31` with precomputed constants for every reduction
/// strategy used in the F1 datapath and its software baseline.
///
/// All moduli used by the accelerator are NTT-friendly primes
/// (`q ≡ 1 mod 2N` for the largest supported `N`); see
/// [`crate::primes::ntt_friendly_primes`]. Keeping `q < 2^31` leaves one bit
/// of headroom so that lazy sums of two residues never overflow a `u32` and
/// products fit comfortably in a `u64`.
///
/// The struct is `Copy` and small; clone it freely into hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    /// The modulus value.
    q: u32,
    /// Barrett constant: `floor(2^64 / q)`.
    barrett_mu: u64,
    /// Montgomery constant: `-q^{-1} mod 2^32`.
    mont_qinv_neg: u32,
    /// Montgomery constant: `2^64 mod q` (to convert into Montgomery form).
    mont_r2: u32,
    /// Word-level Montgomery constant: `-q^{-1} mod 2^16`.
    word_qinv_neg: u16,
    /// `2^32 mod q`, used to undo the `2^{-32}` factor of word-level designs.
    r_mod_q: u32,
}

impl Modulus {
    /// Creates a modulus and precomputes all reduction constants.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not an odd prime in `(2, 2^31)`. Primality is
    /// checked with a deterministic Miller–Rabin test.
    pub fn new(q: u32) -> Self {
        assert!(q > 2 && q < (1 << 31), "modulus must be in (2, 2^31): {q}");
        assert!(q % 2 == 1, "modulus must be odd: {q}");
        assert!(primes::is_prime(q as u64), "modulus must be prime: {q}");
        // mu = floor(2^64/q); floor((2^64-1)/q) is identical because an odd
        // prime q never divides 2^64.
        let barrett_mu = u64::MAX / q as u64;
        let mont_qinv = inv_mod_2_32(q);
        let mont_qinv_neg = mont_qinv.wrapping_neg();
        let r_mod_q = (((1u64 << 32) % q as u64) as u32) % q;
        let mont_r2 = ((r_mod_q as u64 * r_mod_q as u64) % q as u64) as u32;
        let word_qinv_neg = (mont_qinv_neg & 0xFFFF) as u16;
        Self { q, barrett_mu, mont_qinv_neg, mont_r2, word_qinv_neg, r_mod_q }
    }

    /// The modulus value.
    #[inline(always)]
    pub fn value(&self) -> u32 {
        self.q
    }

    /// `floor(2^64 / q)`, the Barrett reciprocal.
    #[inline(always)]
    pub fn barrett_mu(&self) -> u64 {
        self.barrett_mu
    }

    /// `-q^{-1} mod 2^32`, the Montgomery folding constant.
    #[inline(always)]
    pub fn mont_qinv_neg(&self) -> u32 {
        self.mont_qinv_neg
    }

    /// `2^64 mod q`, used to enter Montgomery form.
    #[inline(always)]
    pub fn mont_r2(&self) -> u32 {
        self.mont_r2
    }

    /// `-q^{-1} mod 2^16`, the word-level Montgomery folding constant.
    ///
    /// For FHE-friendly moduli (`q ≡ 1 mod 2^16`) this equals `0xFFFF`,
    /// i.e. multiplication by it degenerates to negation — the hardware
    /// simplification of §5.3.
    #[inline(always)]
    pub fn word_qinv_neg(&self) -> u16 {
        self.word_qinv_neg
    }

    /// `2^32 mod q`.
    #[inline(always)]
    pub fn r_mod_q(&self) -> u32 {
        self.r_mod_q
    }

    /// True if `q ≡ 1 (mod 2n)`, i.e. a negacyclic NTT of size `n` exists.
    pub fn supports_ntt(&self, n: usize) -> bool {
        let two_n = 2 * n as u64;
        (self.q as u64 - 1).is_multiple_of(two_n)
    }

    /// True if the modulus satisfies the FHE-friendly condition of §5.3
    /// (our sign convention: `q ≡ 1 mod 2^16`; see DESIGN.md §2.7).
    pub fn is_fhe_friendly(&self) -> bool {
        self.q & 0xFFFF == 1
    }

    /// Modular addition. Inputs must already be reduced.
    #[inline(always)]
    pub fn add(&self, a: u32, b: u32) -> u32 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Modular subtraction. Inputs must already be reduced.
    #[inline(always)]
    pub fn sub(&self, a: u32, b: u32) -> u32 {
        debug_assert!(a < self.q && b < self.q);
        let (d, borrow) = a.overflowing_sub(b);
        if borrow {
            d.wrapping_add(self.q)
        } else {
            d
        }
    }

    /// Modular negation. Input must already be reduced.
    #[inline(always)]
    pub fn neg(&self, a: u32) -> u32 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// Modular multiplication via Barrett reduction (the software default).
    #[inline(always)]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce_u64(a as u64 * b as u64)
    }

    /// Reduces a 64-bit value modulo `q`, correct over the full `u64`
    /// range.
    ///
    /// The fast path is Barrett reduction, valid for `x < 2^63`: there
    /// the quotient estimate `t = floor(x * mu / 2^64)` with
    /// `mu = floor(2^64/q)` is off by at most 1, so a single conditional
    /// subtract canonicalizes. Every hot caller stays far inside that
    /// bound — residue products are `< q² < 2^62` (`q < 2^31` is enforced
    /// by [`Modulus::new`]) and the key-switch accumulators are sums of
    /// `< 2^13` reduced terms, `< 2^44` — so the `x ≥ 2^63` fallback is a
    /// `#[cold]` plain division rather than a debug-only precondition:
    /// release builds reduce correctly for any input instead of silently
    /// returning garbage.
    #[inline(always)]
    pub fn reduce_u64(&self, x: u64) -> u32 {
        if x >= 1 << 63 {
            return self.reduce_u64_wide(x);
        }
        let t = ((x as u128 * self.barrett_mu as u128) >> 64) as u64;
        let r = x - t * self.q as u64;
        let q = self.q as u64;
        debug_assert!(r < 2 * q);
        (if r >= q { r - q } else { r }) as u32
    }

    /// Out-of-line exact reduction for `x ≥ 2^63`, where the Barrett
    /// quotient estimate can be off by more than 1. No hot path reaches
    /// this; keeping it `#[cold]` keeps the branch free on the fast path.
    #[cold]
    fn reduce_u64_wide(&self, x: u64) -> u32 {
        (x % self.q as u64) as u32
    }

    /// Modular exponentiation by squaring.
    pub fn pow(&self, mut base: u32, mut exp: u64) -> u32 {
        base %= self.q;
        let mut acc: u32 = 1 % self.q;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse via Fermat's little theorem (`q` is prime).
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u32) -> u32 {
        assert!(!a.is_multiple_of(self.q), "zero has no modular inverse");
        self.pow(a, self.q as u64 - 2)
    }

    /// Finds a primitive `order`-th root of unity modulo `q`.
    ///
    /// `order` must be a power of two dividing `q - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `order` does not divide `q - 1` or is not a power of two.
    pub fn primitive_root_of_unity(&self, order: u64) -> u32 {
        assert!(order.is_power_of_two(), "order must be a power of two");
        assert_eq!((self.q as u64 - 1) % order, 0, "order must divide q-1");
        let cofactor = (self.q as u64 - 1) / order;
        // Deterministic search: try small generator candidates g and return
        // g^cofactor once it has exact multiplicative order `order`.
        for g in 2..self.q {
            let w = self.pow(g, cofactor);
            if order == 1 {
                return 1;
            }
            if self.pow(w, order / 2) != 1 {
                return w;
            }
        }
        unreachable!("a primitive root exists for every prime modulus")
    }

    /// Converts a signed 64-bit value into a reduced residue.
    #[inline]
    pub fn reduce_i64(&self, x: i64) -> u32 {
        let q = self.q as i64;
        let r = x.rem_euclid(q);
        r as u32
    }

    /// Lifts a residue to the centered representative in `(-q/2, q/2]`.
    #[inline]
    pub fn center(&self, a: u32) -> i64 {
        debug_assert!(a < self.q);
        if a as u64 > (self.q as u64) / 2 {
            a as i64 - self.q as i64
        } else {
            a as i64
        }
    }
}

/// Computes `q^{-1} mod 2^32` for odd `q` by Newton–Hensel iteration.
fn inv_mod_2_32(q: u32) -> u32 {
    debug_assert!(q % 2 == 1);
    // x_{k+1} = x_k (2 - q x_k) doubles correct low bits each step.
    let mut x: u32 = q; // correct to 3 bits for odd q
    for _ in 0..5 {
        x = x.wrapping_mul(2u32.wrapping_sub(q.wrapping_mul(x)));
    }
    debug_assert_eq!(q.wrapping_mul(x), 1);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u32 = 0x3FFC_0001; // 2^30 - 2^18 + 1, prime, q ≡ 1 mod 2^18

    #[test]
    fn constants_are_consistent() {
        let m = Modulus::new(Q);
        assert_eq!(m.value(), Q);
        assert_eq!(m.barrett_mu(), u64::MAX / Q as u64);
        assert_eq!(Q.wrapping_mul(m.mont_qinv_neg()), u32::MAX); // q * (-q^{-1}) ≡ -1 (mod 2^32)
        assert_eq!(Q.wrapping_mul(m.mont_qinv_neg().wrapping_neg()), 1);
        assert_eq!(m.r_mod_q() as u64, (1u64 << 32) % Q as u64);
    }

    #[test]
    fn reduce_u64_is_exact_across_the_barrett_boundary() {
        // The Barrett fast path covers x < 2^63; beyond it the #[cold]
        // fallback must keep reduce_u64 exact all the way to u64::MAX.
        for q in [Q, 999_983, 3, 0x7FFF_FFED] {
            let m = Modulus::new(q);
            for x in [
                0u64,
                q as u64 - 1,
                q as u64 * q as u64, // largest residue-product shape
                (1 << 63) - 1,       // last fast-path value
                1 << 63,             // first fallback value
                (1 << 63) + 12345,
                u64::MAX - 1,
                u64::MAX,
            ] {
                assert_eq!(m.reduce_u64(x) as u64, x % q as u64, "q={q} x={x}");
            }
        }
    }

    #[test]
    fn fhe_friendly_detection() {
        let m = Modulus::new(Q);
        assert!(m.is_fhe_friendly());
        assert_eq!(m.word_qinv_neg(), 0xFFFF);
        let m2 = Modulus::new(999_983); // prime, not ≡ 1 mod 2^16
        assert!(!m2.is_fhe_friendly());
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let m = Modulus::new(Q);
        for (a, b) in [(0u32, 0u32), (1, Q - 1), (Q / 2, Q / 2 + 1), (12345, 67890)] {
            assert_eq!(m.sub(m.add(a, b), b), a);
            assert_eq!(m.add(m.neg(a), a), 0);
        }
    }

    #[test]
    fn mul_matches_u64_reference() {
        let m = Modulus::new(Q);
        let cases = [(0, 0), (1, 1), (Q - 1, Q - 1), (123_456_789 % Q, 987_654_321 % Q)];
        for (a, b) in cases {
            assert_eq!(m.mul(a, b), ((a as u64 * b as u64) % Q as u64) as u32);
        }
    }

    #[test]
    fn pow_and_inv() {
        let m = Modulus::new(Q);
        assert_eq!(m.pow(3, 0), 1);
        assert_eq!(m.pow(3, 1), 3);
        assert_eq!(m.pow(3, Q as u64 - 1), 1, "Fermat");
        let a = 987_654_321 % Q;
        assert_eq!(m.mul(a, m.inv(a)), 1);
    }

    #[test]
    fn primitive_roots_have_exact_order() {
        let m = Modulus::new(Q);
        for log_order in [1u32, 4, 10, 15] {
            let order = 1u64 << log_order;
            let w = m.primitive_root_of_unity(order);
            assert_eq!(m.pow(w, order), 1);
            assert_ne!(m.pow(w, order / 2), 1);
        }
    }

    #[test]
    fn center_is_symmetric() {
        let m = Modulus::new(Q);
        assert_eq!(m.center(0), 0);
        assert_eq!(m.center(1), 1);
        assert_eq!(m.center(Q - 1), -1);
        assert_eq!(m.center(Q / 2), (Q / 2) as i64);
        assert_eq!(m.center(Q / 2 + 1), -((Q / 2) as i64));
    }

    #[test]
    fn supports_ntt_matches_factorization() {
        let m = Modulus::new(Q);
        assert!(m.supports_ntt(1 << 14));
        assert!(m.supports_ntt(1 << 17)); // q ≡ 1 mod 2^18
        assert!(!m.supports_ntt(1 << 18));
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn rejects_composite() {
        Modulus::new(0x3FFE_0003);
    }
}
