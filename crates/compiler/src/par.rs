//! Compile-time parallelism policy.
//!
//! Every parallel region in the scheduling passes asks [`compile_threads`]
//! how wide to go, so one knob — the `F1_PAR_COMPILE` environment variable,
//! mirroring `F1_PAR_LIMBS` in `f1-poly` — caps or disables (`=1`) all of
//! them at once. Parallel regions are required to be *result-preserving*:
//! any thread count must produce byte-identical pass outputs (deterministic
//! reduction order), so this knob only trades wall-clock for cores.
//!
//! Tests that compare serial and parallel compiles in-process use
//! [`with_compile_threads`] rather than mutating the environment, which
//! would race with other tests in the same binary.

use std::cell::Cell;

thread_local! {
    /// In-process override; takes precedence over the environment.
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads compiler passes may use for parallel regions.
///
/// Resolution order: [`with_compile_threads`] override on this thread,
/// then the `F1_PAR_COMPILE` environment variable, then the host's
/// available parallelism. Always at least 1.
///
/// # Panics
///
/// Panics if `F1_PAR_COMPILE` is set but not a positive integer, so typos
/// fail loudly instead of silently serializing the build.
pub fn compile_threads() -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    match std::env::var("F1_PAR_COMPILE") {
        Ok(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| panic!("F1_PAR_COMPILE must be a positive integer, got {s:?}")),
        Err(_) => rayon::current_num_threads().max(1),
    }
}

/// Runs `f` with [`compile_threads`] pinned to `threads` on the current
/// thread (restored afterwards, even on panic). The override does not
/// propagate into threads spawned inside `f` — fine for the passes, whose
/// parallel regions decide their width on the calling thread.
pub fn with_compile_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(threads.max(1)))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_restores() {
        let outer = compile_threads();
        assert!(outer >= 1);
        with_compile_threads(3, || {
            assert_eq!(compile_threads(), 3);
            with_compile_threads(1, || assert_eq!(compile_threads(), 1));
            assert_eq!(compile_threads(), 3);
        });
        assert_eq!(compile_threads(), outer);
    }

    #[test]
    fn zero_override_clamps_to_one() {
        with_compile_threads(0, || assert_eq!(compile_threads(), 1));
    }
}
