//! The CSR baseline scheduler for the Table 5 sensitivity study.
//!
//! Goodman & Hsu's "Code Scheduling to minimize Register usage" \[37\] is a
//! register-pressure-aware list scheduler: among ready instructions it
//! prefers the one that frees the most operands (reduces the live set),
//! breaking ties by how few new values it creates. The paper applies it
//! to F1's scratchpad as the off-chip data movement scheduler and finds
//! it produces schedules whose live intermediates blow up, thrashing the
//! scratchpad (gmean 4.2× slowdown) — and that it cannot scale to the
//! largest benchmarks ("CSR is intractable for this benchmark").

use f1_isa::dfg::{Dfg, InstrId};

/// Memoization key for the unit-weight critical depths the CSR tie-break
/// uses (distinct from pass 3's streaming-weight key space: that key is
/// an FNV hash of real weights, while unit weights are keyed by this
/// reserved constant).
const UNIT_DEPTH_KEY: u64 = u64::MAX;

/// Upper bound on instructions CSR will attempt: the quadratic-ish live
/// set maintenance makes larger graphs impractical, mirroring the paper's
/// "intractable" entries.
pub const CSR_TRACTABLE_LIMIT: usize = 400_000;

/// Computes the CSR instruction order, or `None` when the graph exceeds
/// the tractability limit (the paper's dashes in Table 5).
pub fn csr_order(dfg: &Dfg) -> Option<Vec<InstrId>> {
    let n = dfg.instrs().len();
    if n > CSR_TRACTABLE_LIMIT {
        return None;
    }
    // remaining_users[v]: unissued consumers of value v (dense — value
    // ids index directly, and the counts are read on every score).
    let mut remaining_users: Vec<u32> = vec![0; dfg.values().len()];
    for instr in dfg.instrs() {
        for &v in &instr.inputs {
            remaining_users[v.0 as usize] += 1;
        }
    }
    // Tie-break: critical-path depth (deepest first), as in list
    // schedulers of the CSR era. Deliberately NOT pass 1's priority —
    // that would leak F1's hint-reuse grouping into the baseline the
    // ablation is meant to compare against.
    let depth = dfg.critical_depths_cached(UNIT_DEPTH_KEY, &|_| 1);
    let mut indegree: Vec<usize> = dfg
        .instrs()
        .iter()
        .map(|i| i.inputs.iter().filter(|v| dfg.producer(**v).is_some()).count())
        .collect();
    let score = |dfg: &Dfg, remaining: &[u32], i: InstrId| -> i64 {
        let instr = dfg.instr(i);
        let freed = instr.inputs.iter().filter(|v| remaining[v.0 as usize] == 1).count() as i64;
        freed - 1 // every instruction creates one value
    };
    // Scores go stale as values die; we re-derive the candidate set each
    // pop from a ready list for correctness.
    let mut ready_list: Vec<InstrId> =
        (0..n).filter(|&i| indegree[i] == 0).map(|i| InstrId(i as u32)).collect();
    let mut order = Vec::with_capacity(n);
    let mut issued = vec![false; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for instr in dfg.instrs() {
        for &v in &instr.inputs {
            if let Some(p) = dfg.producer(v) {
                succs[p.0 as usize].push(instr.id.0 as usize);
            }
        }
    }
    while let Some(pos) = {
        // Pick the ready instruction freeing the most live values.
        ready_list
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| (score(dfg, &remaining_users, i), depth[i.0 as usize]))
            .map(|(p, _)| p)
    } {
        let chosen = ready_list.swap_remove(pos);
        let ci = chosen.0 as usize;
        debug_assert!(!issued[ci]);
        issued[ci] = true;
        order.push(chosen);
        for &v in &dfg.instr(chosen).inputs {
            remaining_users[v.0 as usize] -= 1;
        }
        for &s in &succs[ci] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready_list.push(InstrId(s as u32));
            }
        }
    }
    assert_eq!(order.len(), n, "CSR failed to schedule every instruction");
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Program;
    use crate::expand::{expand, ExpandOptions};

    #[test]
    fn csr_is_a_valid_topological_order() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let ex = expand(&p, &ExpandOptions::default());
        let order = csr_order(&ex.dfg).unwrap();
        let mut pos = vec![usize::MAX; ex.dfg.instrs().len()];
        for (k, &i) in order.iter().enumerate() {
            pos[i.0 as usize] = k;
        }
        for instr in ex.dfg.instrs() {
            for &v in &instr.inputs {
                if let Some(prod) = ex.dfg.producer(v) {
                    assert!(pos[prod.0 as usize] < pos[instr.id.0 as usize]);
                }
            }
        }
    }

    #[test]
    fn csr_diverges_from_hint_order() {
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let ex = expand(&p, &ExpandOptions::default());
        let order = csr_order(&ex.dfg).unwrap();
        let priority_order: Vec<InstrId> = {
            let mut v: Vec<InstrId> = ex.dfg.instrs().iter().map(|i| i.id).collect();
            v.sort_by_key(|&i| ex.dfg.instr(i).priority);
            v
        };
        assert_ne!(order, priority_order, "CSR should reorder (else the ablation is vacuous)");
    }

    #[test]
    fn csr_declares_large_graphs_intractable() {
        // Fabricate a size check without building a huge graph.
        let mut g = f1_isa::dfg::Dfg::new(1024);
        let v = g.add_value(f1_isa::dfg::ValueKind::Input, None);
        let _ = g.add_instr(f1_isa::dfg::VectorOp::Ntt, vec![v], 0);
        assert!(g.instrs().len() <= CSR_TRACTABLE_LIMIT, "tiny graphs are tractable");
        assert!(csr_order(&g).is_some());
    }
}
