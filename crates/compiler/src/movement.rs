//! Pass 2 — the off-chip data movement scheduler (§4.3).
//!
//! Consumes the instruction DFG and produces an approximate schedule with
//! decoupled data transfers. Uses the paper's simplified machine model
//! (functional units directly attached to the scratchpad) and its greedy
//! algorithm: instructions issue in priority order among *ready* ones
//! (operands resident); loads get priority from their earliest user and
//! issue as bandwidth allows; evictions pick dead values first, then the
//! value with the furthest expected reuse — an approximation of Belady's
//! optimal policy [8]. Dirty evictions add spill stores (and later fills)
//! to the plan.

use f1_arch::ArchConfig;
use f1_isa::dfg::{Dfg, InstrId, ValueId, ValueKind};
use f1_isa::streams::MemDir;
use f1_isa::FuType;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::expand::Expanded;

/// Off-chip traffic split by data class and necessity — the Fig 9a
/// categories.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficBreakdown {
    /// First-time loads of key-switch hints.
    pub ksh_compulsory: u64,
    /// Hint reloads forced by capacity.
    pub ksh_non_compulsory: u64,
    /// First-time loads of inputs plus final output stores.
    pub input_compulsory: u64,
    /// Input reloads forced by capacity.
    pub input_non_compulsory: u64,
    /// Loads of spilled intermediates.
    pub interm_load: u64,
    /// Stores of spilled intermediates.
    pub interm_store: u64,
}

impl TrafficBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.ksh_compulsory
            + self.ksh_non_compulsory
            + self.input_compulsory
            + self.input_non_compulsory
            + self.interm_load
            + self.interm_store
    }

    /// Compulsory bytes (the lower bound a perfect scheduler approaches).
    pub fn compulsory(&self) -> u64 {
        self.ksh_compulsory + self.input_compulsory
    }
}

/// One planned off-chip transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedXfer {
    /// Approximate issue cycle (pass-2 clock).
    pub cycle: u64,
    /// Load or store.
    pub dir: MemDir,
    /// The value moved.
    pub value: ValueId,
    /// Bytes.
    pub bytes: u64,
}

/// The pass-2 result: an instruction issue order plus transfer plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MovePlan {
    /// Instructions in issue order.
    pub order: Vec<InstrId>,
    /// Planned transfers in issue order.
    pub xfers: Vec<PlannedXfer>,
    /// Approximate pass-2 compute cycle at which each value is first
    /// consumed. Pass 3 prioritizes load issue across HBM channels by
    /// this (earliest-need first) instead of replaying the flat transfer
    /// order.
    pub earliest_need: HashMap<ValueId, u64>,
    /// Traffic accounting.
    pub traffic: TrafficBreakdown,
    /// Approximate makespan of the simplified model, in cycles.
    pub approx_cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residency {
    OffChip,
    Resident,
    /// Spilled intermediate currently in HBM.
    Spilled,
}

/// Runs the data-movement scheduler with the DFG's priority order.
pub fn schedule(expanded: &Expanded, arch: &ArchConfig) -> MovePlan {
    schedule_with_order(expanded, arch, None)
}

/// Runs the scheduler with an explicit instruction order (used by the CSR
/// baseline of §8.3); `None` uses DFG priorities.
pub fn schedule_with_order(
    expanded: &Expanded,
    arch: &ArchConfig,
    order_override: Option<Vec<InstrId>>,
) -> MovePlan {
    Scheduler::new(expanded, arch, order_override).run()
}

struct Scheduler<'a> {
    dfg: &'a Dfg,
    arch: &'a ArchConfig,
    free_bytes: u64,
    residency: HashMap<ValueId, Residency>,
    dirty: HashSet<ValueId>,
    resident_set: HashSet<ValueId>,
    /// Per-value cursor into its (priority-ordered) user list.
    user_cursor: HashMap<ValueId, usize>,
    issued: Vec<bool>,
    /// rank[instr] = issue-order key (priority by default, CSR override).
    rank: Vec<u64>,
    /// Ready instructions (all operands resident): min-heap by rank.
    ready: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    /// Operands still missing per instruction.
    missing: Vec<usize>,
    /// Pending load requests: min-heap by (earliest-user rank, value).
    pending_loads: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    requested: HashSet<ValueId>,
    mem_cycle: u64,
    compute_cycle: [f64; 4],
    out: MovePlan,
}

impl<'a> Scheduler<'a> {
    fn new(
        expanded: &'a Expanded,
        arch: &'a ArchConfig,
        order_override: Option<Vec<InstrId>>,
    ) -> Self {
        let dfg = &expanded.dfg;
        let n_instr = dfg.instrs().len();
        let mut rank: Vec<u64> = dfg.instrs().iter().map(|i| i.priority).collect();
        if let Some(order) = &order_override {
            assert_eq!(order.len(), n_instr, "override must order every instruction");
            for (pos, &i) in order.iter().enumerate() {
                rank[i.0 as usize] = pos as u64;
            }
        }
        let mut missing = vec![0usize; n_instr];
        let mut ready = BinaryHeap::new();
        for instr in dfg.instrs() {
            missing[instr.id.0 as usize] = instr.inputs.len();
            if instr.inputs.is_empty() {
                ready.push(std::cmp::Reverse((rank[instr.id.0 as usize], instr.id.0)));
            }
        }
        Self {
            dfg,
            arch,
            free_bytes: arch.scratchpad_bytes(),
            residency: HashMap::new(),
            dirty: HashSet::new(),
            resident_set: HashSet::new(),
            user_cursor: HashMap::new(),
            issued: vec![false; n_instr],
            rank,
            ready,
            missing,
            pending_loads: BinaryHeap::new(),
            requested: HashSet::new(),
            mem_cycle: 0,
            compute_cycle: [0.0; 4],
            out: MovePlan {
                order: Vec::with_capacity(n_instr),
                xfers: Vec::new(),
                earliest_need: HashMap::new(),
                traffic: TrafficBreakdown::default(),
                approx_cycles: 0,
            },
        }
    }

    fn run(mut self) -> MovePlan {
        // Seed load requests for every loadable value that has users.
        for v in self.dfg.values() {
            let loadable = matches!(v.kind, ValueKind::Input | ValueKind::KeySwitchHint);
            if loadable {
                self.residency.insert(v.id, Residency::OffChip);
                if !self.dfg.users(v.id).is_empty() {
                    self.request_load(v.id);
                }
            }
        }
        let total = self.dfg.instrs().len();
        let mut guard = 0u64;
        while self.out.order.len() < total {
            guard += 1;
            assert!(
                guard < 40 * total as u64 + 10_000,
                "movement scheduler livelock at {}/{total}",
                self.out.order.len()
            );
            // Decoupled prefetch: stay ahead of compute while space lasts.
            self.drain_loads();
            if let Some(i) = self.pop_ready() {
                self.issue(i);
            } else {
                // Blocked on memory: force the most urgent load through,
                // evicting live data if necessary.
                assert!(
                    self.force_one_load(),
                    "scheduler deadlock: nothing ready and nothing loadable"
                );
            }
        }
        // Store outputs (compulsory output traffic).
        for &v in self.dfg.outputs() {
            let bytes = self.dfg.value(v).bytes;
            self.mem_cycle += self.arch.mem_cycles(bytes);
            self.out.traffic.input_compulsory += bytes;
            self.out.xfers.push(PlannedXfer {
                cycle: self.mem_cycle,
                dir: MemDir::Store,
                value: v,
                bytes,
            });
        }
        let compute = self.compute_cycle.iter().cloned().fold(0.0f64, f64::max) as u64;
        self.out.approx_cycles = compute.max(self.mem_cycle);
        self.out
    }

    fn compute_front(&self) -> u64 {
        self.compute_cycle.iter().cloned().fold(0.0f64, f64::max) as u64
    }

    /// Issues pending loads while memory is not too far ahead of compute
    /// and space is free (evicting only dead or clean-and-distant data).
    fn drain_loads(&mut self) {
        const LOOKAHEAD: u64 = 20_000;
        while let Some(&std::cmp::Reverse((_, vid))) = self.pending_loads.peek() {
            let v = ValueId(vid);
            if self.resident_set.contains(&v) {
                self.pending_loads.pop();
                continue;
            }
            let have_ready = !self.ready.is_empty();
            if have_ready && self.mem_cycle > self.compute_front() + LOOKAHEAD {
                break;
            }
            let bytes = self.dfg.value(v).bytes;
            if !self.make_space(bytes, false) {
                break;
            }
            self.pending_loads.pop();
            self.do_load(v, bytes);
        }
    }

    fn force_one_load(&mut self) -> bool {
        while let Some(std::cmp::Reverse((_, vid))) = self.pending_loads.pop() {
            let v = ValueId(vid);
            if self.resident_set.contains(&v) {
                continue;
            }
            let bytes = self.dfg.value(v).bytes;
            assert!(self.make_space(bytes, true), "cannot evict enough for one value");
            self.do_load(v, bytes);
            return true;
        }
        false
    }

    fn do_load(&mut self, v: ValueId, bytes: u64) {
        let first_time = self.residency.get(&v) == Some(&Residency::OffChip);
        let kind = self.dfg.value(v).kind;
        match (kind, first_time) {
            (ValueKind::KeySwitchHint, true) => self.out.traffic.ksh_compulsory += bytes,
            (ValueKind::KeySwitchHint, false) => self.out.traffic.ksh_non_compulsory += bytes,
            (ValueKind::Input, true) => self.out.traffic.input_compulsory += bytes,
            (ValueKind::Input, false) => self.out.traffic.input_non_compulsory += bytes,
            _ => self.out.traffic.interm_load += bytes,
        }
        self.mem_cycle += self.arch.mem_cycles(bytes);
        self.out.xfers.push(PlannedXfer {
            cycle: self.mem_cycle,
            dir: MemDir::Load,
            value: v,
            bytes,
        });
        self.requested.remove(&v);
        self.mark_resident(v, bytes, false);
    }

    fn mark_resident(&mut self, v: ValueId, bytes: u64, dirty: bool) {
        debug_assert!(self.free_bytes >= bytes);
        self.free_bytes -= bytes;
        self.resident_set.insert(v);
        self.residency.insert(v, Residency::Resident);
        if dirty {
            self.dirty.insert(v);
        }
        // Wake users whose operands are now all resident.
        for &u in self.dfg.users(v) {
            let ui = u.0 as usize;
            if self.issued[ui] {
                continue;
            }
            self.missing[ui] = self.missing[ui].saturating_sub(1);
            if self.missing[ui] == 0 {
                self.ready.push(std::cmp::Reverse((self.rank[ui], u.0)));
            }
        }
    }

    fn pop_ready(&mut self) -> Option<InstrId> {
        while let Some(&std::cmp::Reverse((_, id))) = self.ready.peek() {
            let i = InstrId(id);
            let ii = id as usize;
            if self.issued[ii] {
                self.ready.pop();
                continue;
            }
            // Revalidate: an operand may have been evicted since.
            let instr = self.dfg.instr(i);
            let missing: Vec<ValueId> =
                instr.inputs.iter().copied().filter(|v| !self.resident_set.contains(v)).collect();
            if missing.is_empty() {
                self.ready.pop();
                return Some(i);
            }
            self.ready.pop();
            self.missing[ii] = missing.len();
            for v in missing {
                self.request_load(v);
            }
        }
        None
    }

    fn request_load(&mut self, v: ValueId) {
        if self.resident_set.contains(&v) || !self.requested.insert(v) {
            return;
        }
        let urgency = self.next_use_rank(v);
        self.pending_loads.push(std::cmp::Reverse((urgency, v.0)));
    }

    fn issue(&mut self, i: InstrId) {
        let instr = self.dfg.instr(i).clone();
        // Record when each operand is first needed (pass-2 clock): pass 3
        // uses this to order loads across channels.
        let front = self.compute_front();
        for &v in &instr.inputs {
            self.out.earliest_need.entry(v).or_insert(front);
        }
        // Pin operands; account compute time on the FU class.
        let occ = self.arch.occupancy(instr.op.fu_type(), self.dfg.n) as f64;
        let fus = (self.arch.fus_per_cluster(instr.op.fu_type()) * self.arch.clusters) as f64;
        let idx = fu_idx(instr.op.fu_type());
        self.compute_cycle[idx] += occ / fus;
        // Make room for the result (operands pinned).
        let bytes = self.dfg.value(instr.output).bytes;
        let pinned: HashSet<ValueId> = instr.inputs.iter().copied().collect();
        assert!(self.make_space_pinned(bytes, true, &pinned), "cannot allocate result space");
        self.issued[i.0 as usize] = true;
        self.out.order.push(i);
        self.mark_resident(instr.output, bytes, true);
        // Free operands that just died.
        for &v in &instr.inputs {
            self.advance_cursor(v);
            if self.next_use_rank(v) == u64::MAX && !self.dfg.outputs().contains(&v) {
                self.evict(v, false);
            }
        }
    }

    /// Rank of the next unissued user of `v` (`u64::MAX` if none).
    fn next_use_rank(&mut self, v: ValueId) -> u64 {
        let users = self.dfg.users(v);
        let cur = self.user_cursor.entry(v).or_insert(0);
        while *cur < users.len() && self.issued[users[*cur].0 as usize] {
            *cur += 1;
        }
        users
            .iter()
            .skip(*cur)
            .filter(|u| !self.issued[u.0 as usize])
            .map(|u| self.rank[u.0 as usize])
            .min()
            .unwrap_or(u64::MAX)
    }

    fn advance_cursor(&mut self, v: ValueId) {
        let users = self.dfg.users(v);
        let cur = self.user_cursor.entry(v).or_insert(0);
        while *cur < users.len() && self.issued[users[*cur].0 as usize] {
            *cur += 1;
        }
    }

    fn make_space(&mut self, bytes: u64, allow_live: bool) -> bool {
        self.make_space_pinned(bytes, allow_live, &HashSet::new())
    }

    /// Frees at least `bytes`, evicting dead values first, then (if
    /// allowed) the live value with the furthest next use (§4.3's
    /// Belady-style policy).
    fn make_space_pinned(
        &mut self,
        bytes: u64,
        allow_live: bool,
        pinned: &HashSet<ValueId>,
    ) -> bool {
        if self.free_bytes >= bytes {
            return true;
        }
        // Collect (next_use, value) for every resident candidate.
        let mut candidates: Vec<(u64, ValueId)> = Vec::new();
        let resident: Vec<ValueId> = self.resident_set.iter().copied().collect();
        for v in resident {
            if pinned.contains(&v) || self.dfg.outputs().contains(&v) {
                continue;
            }
            candidates.push((self.next_use_rank(v), v));
        }
        // Furthest reuse first (dead values have rank MAX).
        candidates.sort_unstable_by_key(|c| std::cmp::Reverse(c.0));
        for (next_use, v) in candidates {
            if self.free_bytes >= bytes {
                return true;
            }
            if next_use != u64::MAX && !allow_live {
                return self.free_bytes >= bytes;
            }
            self.evict(v, next_use != u64::MAX);
        }
        self.free_bytes >= bytes
    }

    fn evict(&mut self, v: ValueId, still_needed: bool) {
        if !self.resident_set.remove(&v) {
            return;
        }
        let bytes = self.dfg.value(v).bytes;
        self.free_bytes += bytes;
        let was_dirty = self.dirty.remove(&v);
        let kind = self.dfg.value(v).kind;
        if was_dirty && still_needed {
            // Spill store (fill happens on the later reload).
            self.out.traffic.interm_store += bytes;
            self.mem_cycle += self.arch.mem_cycles(bytes);
            self.out.xfers.push(PlannedXfer {
                cycle: self.mem_cycle,
                dir: MemDir::Store,
                value: v,
                bytes,
            });
            self.residency.insert(v, Residency::Spilled);
        } else if matches!(kind, ValueKind::Input | ValueKind::KeySwitchHint) {
            // Clean: still in HBM; mark for (non-compulsory) reload.
            if self.residency.get(&v) != Some(&Residency::OffChip) {
                self.residency.insert(v, Residency::Spilled);
            }
        }
        if still_needed {
            // Users will re-request on revalidation; proactively enqueue.
            self.requested.remove(&v);
            self.request_load(v);
        }
    }
}

fn fu_idx(fu: FuType) -> usize {
    match fu {
        FuType::Ntt => 0,
        FuType::Aut => 1,
        FuType::Mul => 2,
        FuType::Add => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Program;
    use crate::expand::{expand, ExpandOptions};

    fn plan_for(p: &Program, arch: &ArchConfig) -> (Expanded, MovePlan) {
        let ex = expand(p, &ExpandOptions::default());
        let plan = schedule(&ex, arch);
        (ex, plan)
    }

    #[test]
    fn small_program_has_only_compulsory_traffic() {
        let mut p = Program::new(1 << 12);
        let x = p.input(4);
        let y = p.input(4);
        let m = p.mul(x, y);
        p.output(m);
        let arch = ArchConfig::f1_default();
        let (ex, plan) = plan_for(&p, &arch);
        assert_eq!(plan.order.len(), ex.dfg.instrs().len());
        let t = plan.traffic;
        assert_eq!(t.ksh_non_compulsory, 0);
        assert_eq!(t.input_non_compulsory, 0);
        assert_eq!(t.interm_load + t.interm_store, 0);
        // Compulsory = all hints + all inputs + outputs.
        let expect_inputs = 4 * 4 * (1 << 12) * 4u64; // 2 cts × 2 polys × 4 limbs
        let expect_out = 2 * 4 * (1 << 12) * 4u64;
        assert_eq!(t.input_compulsory, expect_inputs + expect_out);
        assert_eq!(t.ksh_compulsory, 2 * 16 * (1 << 12) * 4);
    }

    #[test]
    fn order_respects_dependences() {
        let p = Program::listing2_matvec(1 << 12, 4, 4);
        let arch = ArchConfig::f1_default();
        let (ex, plan) = plan_for(&p, &arch);
        let mut produced: std::collections::HashSet<ValueId> = ex
            .dfg
            .values()
            .iter()
            .filter(|v| ex.dfg.producer(v.id).is_none())
            .map(|v| v.id)
            .collect();
        for &i in &plan.order {
            for &inp in &ex.dfg.instr(i).inputs {
                assert!(produced.contains(&inp), "instr {i:?} uses unproduced {inp:?}");
            }
            produced.insert(ex.dfg.instr(i).output);
        }
    }

    #[test]
    fn tiny_scratchpad_forces_noncompulsory_traffic() {
        // Shrink the scratchpad below the hint working set: hints must be
        // re-fetched (the §4.2 thrashing scenario).
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let mut arch = ArchConfig::f1_default();
        arch.scratchpad_banks = 1;
        arch.bank_bytes = 4 * 1024 * 1024; // 4 MB << 15 hints × 2 MB
        let (_, plan) = plan_for(&p, &arch);
        let big = plan.traffic;
        let mut arch2 = ArchConfig::f1_default();
        arch2.scratchpad_banks = 16;
        let (_, plan2) = plan_for(&Program::listing2_matvec(1 << 12, 8, 4), &arch2);
        let small = plan2.traffic;
        assert!(
            big.total() > small.total(),
            "tiny scratchpad {} must move more than full {}",
            big.total(),
            small.total()
        );
        assert_eq!(small.ksh_non_compulsory, 0, "64 MB pad fits the matvec working set");
    }

    #[test]
    fn hint_reuse_keeps_traffic_near_compulsory() {
        // The paper's headline scheduling result (§8.2): non-compulsory
        // traffic is a small fraction for reuse-friendly programs.
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let arch = ArchConfig::f1_default();
        let (_, plan) = plan_for(&p, &arch);
        let t = plan.traffic;
        let frac = (t.total() - t.compulsory()) as f64 / t.total() as f64;
        assert!(frac < 0.2, "non-compulsory fraction {frac:.2}");
    }

    #[test]
    fn loads_are_planned_before_users() {
        let mut p = Program::new(1 << 12);
        let x = p.input(2);
        let y = p.input(2);
        let s = p.add(x, y);
        p.output(s);
        let arch = ArchConfig::f1_default();
        let (ex, plan) = plan_for(&p, &arch);
        // Every input value must appear as a load in the plan.
        let loaded: std::collections::HashSet<ValueId> =
            plan.xfers.iter().filter(|x| x.dir == MemDir::Load).map(|x| x.value).collect();
        for v in ex.dfg.values() {
            if v.kind == ValueKind::Input && !ex.dfg.users(v.id).is_empty() {
                assert!(loaded.contains(&v.id), "input {:?} never loaded", v.id);
            }
        }
    }
}
