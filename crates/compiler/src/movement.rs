//! Pass 2 — the off-chip data movement scheduler (§4.3).
//!
//! Consumes the instruction DFG and produces an approximate schedule with
//! decoupled data transfers. Uses the paper's simplified machine model
//! (functional units directly attached to the scratchpad) and its greedy
//! algorithm: instructions issue in priority order among *ready* ones
//! (operands resident); loads get priority from their earliest user and
//! issue as bandwidth allows; evictions pick dead values first, then the
//! value with the furthest expected reuse — an approximation of Belady's
//! optimal policy \[8\]. Dirty evictions add spill stores (and later fills)
//! to the plan.
//!
//! The pass's product is a **residency event script** ([`MoveEvent`]):
//! every load, instruction issue, spill store, refetch, silent drop and
//! output store, in simulation order, with each allocation carrying the
//! *byte lineage* of the scratchpad space it occupies (`space_from`: the
//! release events whose freed bytes it reuses). Pass 3 schedules this
//! script against real resource timelines; gating every allocation on its
//! donors' release times guarantees — byte by byte — that the resident
//! set never exceeds capacity at any cycle, which the `f1-sim` checker
//! verifies independently.

use f1_arch::ArchConfig;
use f1_isa::dfg::{Dfg, InstrId, ValueId, ValueKind};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashSet, VecDeque};

use crate::expand::Expanded;

/// Index of an event in [`MovePlan::events`].
pub type EventId = u32;

/// Off-chip traffic split by data class and necessity — the Fig 9a
/// categories.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficBreakdown {
    /// First-time loads of key-switch hints.
    pub ksh_compulsory: u64,
    /// Hint reloads forced by capacity.
    pub ksh_non_compulsory: u64,
    /// First-time loads of inputs plus final output stores.
    pub input_compulsory: u64,
    /// Input reloads forced by capacity.
    pub input_non_compulsory: u64,
    /// Loads of spilled intermediates.
    pub interm_load: u64,
    /// Stores of spilled intermediates.
    pub interm_store: u64,
}

impl TrafficBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.ksh_compulsory
            + self.ksh_non_compulsory
            + self.input_compulsory
            + self.input_non_compulsory
            + self.interm_load
            + self.interm_store
    }

    /// Compulsory bytes (the lower bound a perfect scheduler approaches).
    pub fn compulsory(&self) -> u64 {
        self.ksh_compulsory + self.input_compulsory
    }

    /// Capacity-induced (non-compulsory) bytes.
    pub fn non_compulsory(&self) -> u64 {
        self.total() - self.compulsory()
    }
}

/// One step of the residency script pass 2 hands to pass 3.
///
/// Events appear in pass-2 simulation order, which is a legal order for
/// every constraint they encode: an allocation's `space_from` donors
/// always precede it, a refetch always follows the eviction it undoes,
/// and every release follows the reads it must wait out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MoveEvent {
    /// Fetch `value` from HBM into the scratchpad (first load *or*
    /// capacity refetch — pass 3 schedules both on the HBM channel
    /// timelines and gates consumers on their completion).
    Load {
        /// The value fetched.
        value: ValueId,
        /// Bytes moved.
        bytes: u64,
        /// `true` when this re-fetches a previously evicted value.
        refetch: bool,
        /// Liveness-derived deadline: the issue rank of the earliest
        /// unissued consumer (lower = needed sooner). Pass 3 drains
        /// ready loads in this order.
        deadline: u64,
        /// Release events whose freed bytes this allocation reuses.
        space_from: Vec<EventId>,
    },
    /// Issue an instruction; its output value is allocated here.
    Issue {
        /// The instruction issued.
        instr: InstrId,
        /// Release events whose freed bytes the output reuses.
        space_from: Vec<EventId>,
    },
    /// Evict a dirty, still-needed `value`: write it back to HBM. The
    /// bytes are free once the store completes; a later [`MoveEvent::Load`]
    /// with `refetch = true` brings it back.
    SpillStore {
        /// The value spilled.
        value: ValueId,
        /// Bytes moved.
        bytes: u64,
    },
    /// Release a clean or dead copy of `value` (no writeback: the HBM
    /// copy is still valid, or nothing reads the value again).
    Drop {
        /// The value dropped.
        value: ValueId,
        /// Bytes freed.
        bytes: u64,
    },
    /// Store a program output to HBM. With `frees` set this doubles as
    /// the value's eviction (a dead output squeezed out by capacity —
    /// its store is compulsory anyway, so eviction costs nothing extra).
    OutputStore {
        /// The output value stored.
        value: ValueId,
        /// Bytes moved.
        bytes: u64,
        /// Whether the scratchpad bytes are freed at store completion.
        frees: bool,
    },
}

impl MoveEvent {
    /// The value this event moves or releases (`None` for `Issue`).
    pub fn value(&self) -> Option<ValueId> {
        match self {
            MoveEvent::Load { value, .. }
            | MoveEvent::SpillStore { value, .. }
            | MoveEvent::Drop { value, .. }
            | MoveEvent::OutputStore { value, .. } => Some(*value),
            MoveEvent::Issue { .. } => None,
        }
    }

    /// Whether this event releases scratchpad bytes.
    pub fn frees_space(&self) -> bool {
        matches!(
            self,
            MoveEvent::SpillStore { .. }
                | MoveEvent::Drop { .. }
                | MoveEvent::OutputStore { frees: true, .. }
        )
    }
}

/// The pass-2 result: an instruction issue order plus the residency
/// event script and traffic accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MovePlan {
    /// Instructions in issue order.
    pub order: Vec<InstrId>,
    /// The residency script, in simulation order (see [`MoveEvent`]).
    pub events: Vec<MoveEvent>,
    /// Traffic accounting.
    pub traffic: TrafficBreakdown,
    /// Approximate makespan of the simplified model, in cycles.
    pub approx_cycles: u64,
}

impl MovePlan {
    /// Values loaded at least once (convenience for tests/diagnostics).
    pub fn loaded_values(&self) -> HashSet<ValueId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                MoveEvent::Load { value, .. } => Some(*value),
                _ => None,
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residency {
    OffChip,
    Resident,
    /// Spilled intermediate (or evicted clean value) currently in HBM.
    Spilled,
}

/// Runs the data-movement scheduler with the DFG's priority order.
pub fn schedule(expanded: &Expanded, arch: &ArchConfig) -> MovePlan {
    schedule_with_order(expanded, arch, None)
}

/// Runs the scheduler with an explicit instruction order (used by the CSR
/// baseline of §8.3); `None` uses DFG priorities.
pub fn schedule_with_order(
    expanded: &Expanded,
    arch: &ArchConfig,
    order_override: Option<&[InstrId]>,
) -> MovePlan {
    Scheduler::new(expanded, arch, order_override).run()
}

struct Scheduler<'a> {
    dfg: &'a Dfg,
    arch: &'a ArchConfig,
    free_bytes: u64,
    /// Free scratchpad chunks in FIFO order, each tagged with the release
    /// event that freed it (`None` = the initial empty pad). Consuming a
    /// chunk makes its release event a `space_from` donor.
    free_pool: VecDeque<(u64, Option<EventId>)>,
    // All per-value state is dense (indexed by ValueId): the scheduler
    // touches it several times per instruction, and hashing dominated the
    // pass at full-size benchmark scale. `Option<Residency>` stands in for
    // the old map's "absent" state.
    residency: Vec<Option<Residency>>,
    dirty: Vec<bool>,
    resident: Vec<bool>,
    /// Resident values in insertion order (lazily compacted); gives the
    /// eviction scan a deterministic candidate order, where the old
    /// hash-set iteration made tie-breaks — and thus whole schedules —
    /// vary run to run.
    resident_list: Vec<ValueId>,
    /// Whether a value currently appears in `resident_list` (entries
    /// linger after eviction until the next compaction; this flag stops
    /// evict-then-reload cycles from pushing duplicates).
    in_list: Vec<bool>,
    output_set: Vec<bool>,
    stored_outputs: Vec<bool>,
    /// Per-value user lists sorted by `(rank, instruction id)`. With the
    /// cursor below, [`Self::next_use_rank`] is amortized O(1): the first
    /// unissued entry at/after the cursor *is* the minimum-rank unissued
    /// user. (The DFG's creation-order lists made it a scan of every
    /// remaining user — O(users²) per value over a run, which dominated
    /// the pass on high-fanout key-switch hints at full scale.)
    sorted_users: Vec<Vec<u32>>,
    /// Per-value cursor into its `sorted_users` list.
    user_cursor: Vec<u32>,
    issued: Vec<bool>,
    /// rank[instr] = issue-order key (priority by default, CSR override).
    rank: Vec<u64>,
    /// Ready instructions (all operands resident): min-heap by rank.
    ready: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    /// Operands still missing per instruction.
    missing: Vec<usize>,
    /// Pending load requests: min-heap by (earliest-user rank, value).
    pending_loads: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    requested: Vec<bool>,
    mem_cycle: u64,
    compute_cycle: [f64; 4],
    out: MovePlan,
}

impl<'a> Scheduler<'a> {
    fn new(
        expanded: &'a Expanded,
        arch: &'a ArchConfig,
        order_override: Option<&[InstrId]>,
    ) -> Self {
        let dfg = &expanded.dfg;
        let n_instr = dfg.instrs().len();
        let mut rank: Vec<u64> = dfg.instrs().iter().map(|i| i.priority).collect();
        if let Some(order) = order_override {
            assert_eq!(order.len(), n_instr, "override must order every instruction");
            for (pos, &i) in order.iter().enumerate() {
                rank[i.0 as usize] = pos as u64;
            }
        }
        let mut missing = vec![0usize; n_instr];
        let mut ready = BinaryHeap::new();
        for instr in dfg.instrs() {
            missing[instr.id.0 as usize] = instr.inputs.len();
            if instr.inputs.is_empty() {
                ready.push(std::cmp::Reverse((rank[instr.id.0 as usize], instr.id.0)));
            }
        }
        let capacity = arch.scratchpad_bytes();
        let n_values = dfg.values().len();
        let mut output_set = vec![false; n_values];
        for &v in dfg.outputs() {
            output_set[v.0 as usize] = true;
        }
        // Per-value lineage/liveness tables: each value's users sorted by
        // final rank. Values are independent, so the build fans out across
        // F1_PAR_COMPILE threads; output order is by value id either way.
        let value_ids: Vec<u32> = (0..n_values as u32).collect();
        let sorted_users: Vec<Vec<u32>> =
            rayon::par_map_threads(crate::par::compile_threads(), &value_ids, |&vi| {
                let mut us: Vec<u32> = dfg.users(ValueId(vi)).iter().map(|u| u.0).collect();
                us.sort_unstable_by_key(|&u| (rank[u as usize], u));
                us
            });
        Self {
            dfg,
            arch,
            free_bytes: capacity,
            free_pool: VecDeque::from([(capacity, None)]),
            residency: vec![None; n_values],
            dirty: vec![false; n_values],
            resident: vec![false; n_values],
            resident_list: Vec::new(),
            in_list: vec![false; n_values],
            output_set,
            stored_outputs: vec![false; n_values],
            sorted_users,
            user_cursor: vec![0; n_values],
            issued: vec![false; n_instr],
            rank,
            ready,
            missing,
            pending_loads: BinaryHeap::new(),
            requested: vec![false; n_values],
            mem_cycle: 0,
            compute_cycle: [0.0; 4],
            out: MovePlan {
                order: Vec::with_capacity(n_instr),
                events: Vec::new(),
                traffic: TrafficBreakdown::default(),
                approx_cycles: 0,
            },
        }
    }

    fn run(mut self) -> MovePlan {
        // Seed load requests for every loadable value that has users.
        // (User-less pass-through outputs stay off-chip: HBM already
        // holds their authoritative bits, so no load or store is owed.)
        for v in self.dfg.values() {
            let loadable = matches!(v.kind, ValueKind::Input | ValueKind::KeySwitchHint);
            if loadable {
                self.residency[v.id.0 as usize] = Some(Residency::OffChip);
                if !self.dfg.users(v.id).is_empty() {
                    self.request_load(v.id);
                }
            }
        }
        let total = self.dfg.instrs().len();
        let mut guard = 0u64;
        while self.out.order.len() < total {
            guard += 1;
            assert!(
                guard < 40 * total as u64 + 10_000,
                "movement scheduler livelock at {}/{total}",
                self.out.order.len()
            );
            // Decoupled prefetch: stay ahead of compute while space lasts.
            self.drain_loads();
            if let Some(i) = self.pop_ready() {
                self.issue(i);
            } else {
                // Blocked on memory: force the most urgent load through,
                // evicting live data if necessary.
                assert!(
                    self.force_one_load(),
                    "scheduler deadlock: nothing ready and nothing loadable"
                );
            }
        }
        // Store outputs not already squeezed out by capacity (compulsory
        // output traffic). Outputs whose authoritative copy already sits
        // in HBM — never-touched pass-through inputs, or clean copies
        // dropped after an earlier spill — have nothing on chip to move,
        // so no store is emitted (and none charged): a store of bytes the
        // scratchpad does not hold would be physically unrealizable, and
        // the checker rejects exactly that.
        for &v in self.dfg.outputs() {
            let vi = v.0 as usize;
            if self.stored_outputs[vi] {
                continue;
            }
            self.stored_outputs[vi] = true;
            if !self.resident[vi] {
                match self.residency[vi] {
                    Some(Residency::OffChip) | Some(Residency::Spilled) => continue,
                    state => panic!("output {v:?} is neither on chip nor in HBM ({state:?})"),
                }
            }
            let bytes = self.dfg.value(v).bytes;
            self.mem_cycle += self.arch.mem_cycles(bytes);
            self.out.traffic.input_compulsory += bytes;
            self.out.events.push(MoveEvent::OutputStore { value: v, bytes, frees: false });
        }
        let compute = self.compute_cycle.iter().cloned().fold(0.0f64, f64::max) as u64;
        self.out.approx_cycles = compute.max(self.mem_cycle);
        self.out
    }

    fn compute_front(&self) -> u64 {
        self.compute_cycle.iter().cloned().fold(0.0f64, f64::max) as u64
    }

    /// Claims `bytes` from the free pool, returning the distinct release
    /// events whose space is being reused (the allocation's byte lineage).
    fn take_space(&mut self, bytes: u64) -> Vec<EventId> {
        assert!(self.free_bytes >= bytes, "allocation without space");
        self.free_bytes -= bytes;
        let mut need = bytes;
        let mut donors = Vec::new();
        while need > 0 {
            let (sz, src) = self.free_pool.pop_front().expect("free pool out of sync");
            if let Some(e) = src {
                if !donors.contains(&e) {
                    donors.push(e);
                }
            }
            if sz > need {
                self.free_pool.push_front((sz - need, src));
                need = 0;
            } else {
                need -= sz;
            }
        }
        donors
    }

    /// Returns `bytes` to the free pool, tagged with the release event.
    fn release_space(&mut self, bytes: u64, donor: EventId) {
        self.free_bytes += bytes;
        self.free_pool.push_back((bytes, Some(donor)));
    }

    /// Whether a pending load request is still worth serving: the value
    /// has an unissued consumer. (A request can go stale when every user
    /// issued after the value was re-requested — loading a dead value
    /// back would even be unsound for dropped intermediates, whose bits
    /// no longer exist in HBM. Outputs never need loading for their
    /// final store: one that is off-chip already has valid HBM bits.)
    fn still_wanted(&mut self, v: ValueId) -> bool {
        self.next_use_rank(v) != u64::MAX
    }

    /// Issues pending loads while memory is not too far ahead of compute
    /// and space is free (evicting only dead or clean-and-distant data).
    fn drain_loads(&mut self) {
        const LOOKAHEAD: u64 = 20_000;
        while let Some(&std::cmp::Reverse((_, vid))) = self.pending_loads.peek() {
            let v = ValueId(vid);
            if self.resident[vid as usize] || !self.still_wanted(v) {
                self.pending_loads.pop();
                self.requested[vid as usize] = false;
                continue;
            }
            let have_ready = !self.ready.is_empty();
            if have_ready && self.mem_cycle > self.compute_front() + LOOKAHEAD {
                break;
            }
            let bytes = self.dfg.value(v).bytes;
            if !self.make_space(bytes, false) {
                break;
            }
            self.pending_loads.pop();
            self.do_load(v, bytes);
        }
    }

    fn force_one_load(&mut self) -> bool {
        while let Some(std::cmp::Reverse((_, vid))) = self.pending_loads.pop() {
            let v = ValueId(vid);
            if self.resident[vid as usize] || !self.still_wanted(v) {
                self.requested[vid as usize] = false;
                continue;
            }
            let bytes = self.dfg.value(v).bytes;
            assert!(self.make_space(bytes, true), "cannot evict enough for one value");
            self.do_load(v, bytes);
            return true;
        }
        false
    }

    fn do_load(&mut self, v: ValueId, bytes: u64) {
        debug_assert!(
            self.dfg.producer(v).is_none_or(|p| self.issued[p.0 as usize]),
            "load of unproduced {v:?}"
        );
        let first_time = self.residency[v.0 as usize] == Some(Residency::OffChip);
        let kind = self.dfg.value(v).kind;
        match (kind, first_time) {
            (ValueKind::KeySwitchHint, true) => self.out.traffic.ksh_compulsory += bytes,
            (ValueKind::KeySwitchHint, false) => self.out.traffic.ksh_non_compulsory += bytes,
            (ValueKind::Input, true) => self.out.traffic.input_compulsory += bytes,
            (ValueKind::Input, false) => self.out.traffic.input_non_compulsory += bytes,
            _ => self.out.traffic.interm_load += bytes,
        }
        self.mem_cycle += self.arch.mem_cycles(bytes);
        let space_from = self.take_space(bytes);
        let deadline = self.next_use_rank(v);
        self.out.events.push(MoveEvent::Load {
            value: v,
            bytes,
            refetch: !first_time,
            deadline,
            space_from,
        });
        self.requested[v.0 as usize] = false;
        self.mark_resident(v, false);
    }

    /// Records residency (space must already be claimed via
    /// [`Self::take_space`]) and wakes users whose operands are now all
    /// resident.
    fn mark_resident(&mut self, v: ValueId, dirty: bool) {
        let vi = v.0 as usize;
        self.resident[vi] = true;
        if !self.in_list[vi] {
            self.in_list[vi] = true;
            self.resident_list.push(v);
        }
        self.residency[vi] = Some(Residency::Resident);
        if dirty {
            self.dirty[vi] = true;
        }
        for &u in self.dfg.users(v) {
            let ui = u.0 as usize;
            if self.issued[ui] {
                continue;
            }
            self.missing[ui] = self.missing[ui].saturating_sub(1);
            if self.missing[ui] == 0 {
                self.ready.push(std::cmp::Reverse((self.rank[ui], u.0)));
            }
        }
    }

    fn pop_ready(&mut self) -> Option<InstrId> {
        while let Some(&std::cmp::Reverse((_, id))) = self.ready.peek() {
            let i = InstrId(id);
            let ii = id as usize;
            if self.issued[ii] {
                self.ready.pop();
                continue;
            }
            // Revalidate: an operand may have been evicted since.
            let instr = self.dfg.instr(i);
            let missing: Vec<ValueId> =
                instr.inputs.iter().copied().filter(|v| !self.resident[v.0 as usize]).collect();
            if missing.is_empty() {
                self.ready.pop();
                return Some(i);
            }
            self.ready.pop();
            self.missing[ii] = missing.len();
            for v in missing {
                // Only request values that exist somewhere: loadable
                // graph inputs, or intermediates whose producer has
                // issued (an unissued producer will wake this consumer
                // via mark_resident when it runs — requesting a load for
                // its output would fetch bits HBM never held).
                let producible = match self.dfg.producer(v) {
                    None => true,
                    Some(p) => self.issued[p.0 as usize],
                };
                if producible {
                    self.request_load(v);
                }
            }
        }
        None
    }

    fn request_load(&mut self, v: ValueId) {
        let vi = v.0 as usize;
        if self.resident[vi] || self.requested[vi] {
            return;
        }
        self.requested[vi] = true;
        let urgency = self.next_use_rank(v);
        self.pending_loads.push(std::cmp::Reverse((urgency, v.0)));
    }

    fn issue(&mut self, i: InstrId) {
        let instr = self.dfg.instr(i);
        let fu = instr.op.fu_type();
        let output = instr.output;
        // Pin operands; account compute time on the FU class.
        let occ = self.arch.occupancy(fu, self.dfg.n) as f64;
        let fus = (self.arch.fus_per_cluster(fu) * self.arch.clusters) as f64;
        self.compute_cycle[fu.index()] += occ / fus;
        // Make room for the result (operands pinned).
        let bytes = self.dfg.value(output).bytes;
        assert!(self.make_space_pinned(bytes, true, i), "cannot allocate result space");
        let space_from = self.take_space(bytes);
        self.out.events.push(MoveEvent::Issue { instr: i, space_from });
        self.issued[i.0 as usize] = true;
        self.out.order.push(i);
        self.mark_resident(output, true);
        // Free operands that just died.
        let n_inputs = self.dfg.instr(i).inputs.len();
        for k in 0..n_inputs {
            let v = self.dfg.instr(i).inputs[k];
            self.advance_cursor(v);
            if self.next_use_rank(v) == u64::MAX && !self.output_set[v.0 as usize] {
                self.evict(v, false);
            }
        }
    }

    /// Rank of the next unissued user of `v` (`u64::MAX` if none). The
    /// user list is rank-sorted, so the first unissued entry at/after the
    /// cursor is the minimum.
    fn next_use_rank(&mut self, v: ValueId) -> u64 {
        let users = &self.sorted_users[v.0 as usize];
        let cur = &mut self.user_cursor[v.0 as usize];
        while (*cur as usize) < users.len() && self.issued[users[*cur as usize] as usize] {
            *cur += 1;
        }
        match users.get(*cur as usize) {
            Some(&u) => self.rank[u as usize],
            None => u64::MAX,
        }
    }

    fn advance_cursor(&mut self, v: ValueId) {
        let users = &self.sorted_users[v.0 as usize];
        let cur = &mut self.user_cursor[v.0 as usize];
        while (*cur as usize) < users.len() && self.issued[users[*cur as usize] as usize] {
            *cur += 1;
        }
    }

    fn make_space(&mut self, bytes: u64, allow_live: bool) -> bool {
        self.make_space_pinned(bytes, allow_live, InstrId(u32::MAX))
    }

    /// Frees at least `bytes`, evicting dead values first, then (if
    /// allowed) the live value with the furthest next use (§4.3's
    /// Belady-style policy). Dead outputs are evictable: their eviction
    /// doubles as the compulsory output store. `pinned` names the
    /// instruction whose operands must stay resident (`u32::MAX` = none).
    fn make_space_pinned(&mut self, bytes: u64, allow_live: bool, pinned: InstrId) -> bool {
        if self.free_bytes >= bytes {
            return true;
        }
        // Collect (next_use, value) for every resident candidate, in
        // deterministic insertion order (compacting the lazy list). Live
        // outputs (still-consumed values marked as outputs) are pinned
        // like any live value until dead.
        let mut list = std::mem::take(&mut self.resident_list);
        list.retain(|&v| {
            let keep = self.resident[v.0 as usize];
            if !keep {
                self.in_list[v.0 as usize] = false;
            }
            keep
        });
        let mut candidates: Vec<(u64, ValueId)> = Vec::new();
        for k in 0..list.len() {
            let v = list[k];
            let vi = v.0 as usize;
            if pinned.0 != u32::MAX && self.dfg.instr(pinned).inputs.contains(&v) {
                continue;
            }
            let next = self.next_use_rank(v);
            if self.output_set[vi] && next != u64::MAX {
                continue;
            }
            candidates.push((next, v));
        }
        self.resident_list = list;
        // Furthest reuse first (dead values have rank MAX); ties broken
        // by value id so the whole pass stays deterministic.
        candidates.sort_unstable_by_key(|&(next, v)| (std::cmp::Reverse(next), v.0));
        for (next_use, v) in candidates {
            if self.free_bytes >= bytes {
                return true;
            }
            if next_use != u64::MAX && !allow_live {
                return self.free_bytes >= bytes;
            }
            self.evict(v, next_use != u64::MAX);
        }
        self.free_bytes >= bytes
    }

    fn evict(&mut self, v: ValueId, still_needed: bool) {
        let vi = v.0 as usize;
        if !self.resident[vi] {
            return;
        }
        self.resident[vi] = false;
        let bytes = self.dfg.value(v).bytes;
        let was_dirty = self.dirty[vi];
        self.dirty[vi] = false;
        let eid = self.out.events.len() as EventId;
        if was_dirty && still_needed {
            // Spill store (the later refetch is gated on its completion).
            self.out.traffic.interm_store += bytes;
            self.mem_cycle += self.arch.mem_cycles(bytes);
            self.out.events.push(MoveEvent::SpillStore { value: v, bytes });
            self.residency[vi] = Some(Residency::Spilled);
        } else if was_dirty && self.output_set[vi] && !self.stored_outputs[vi] {
            // Dead output squeezed out: store it now (compulsory anyway).
            self.out.traffic.input_compulsory += bytes;
            self.mem_cycle += self.arch.mem_cycles(bytes);
            self.out.events.push(MoveEvent::OutputStore { value: v, bytes, frees: true });
            self.stored_outputs[vi] = true;
            self.residency[vi] = Some(Residency::Spilled);
        } else {
            self.out.events.push(MoveEvent::Drop { value: v, bytes });
            if !was_dirty && self.residency[vi] != Some(Residency::OffChip) {
                // Clean copies (loadable values, or intermediates brought
                // back by a refetch) still exist in HBM; record that so
                // reloads classify as non-compulsory and final output
                // stores know nothing on chip needs moving.
                self.residency[vi] = Some(Residency::Spilled);
            }
        }
        self.release_space(bytes, eid);
        if still_needed {
            // Users will re-request on revalidation; proactively enqueue.
            self.requested[vi] = false;
            self.request_load(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Program;
    use crate::expand::{expand, ExpandOptions};
    use std::collections::HashMap;

    fn plan_for(p: &Program, arch: &ArchConfig) -> (Expanded, MovePlan) {
        let ex = expand(p, &ExpandOptions::default());
        let plan = schedule(&ex, arch);
        (ex, plan)
    }

    #[test]
    fn small_program_has_only_compulsory_traffic() {
        let mut p = Program::new(1 << 12);
        let x = p.input(4);
        let y = p.input(4);
        let m = p.mul(x, y);
        p.output(m);
        let arch = ArchConfig::f1_default();
        let (ex, plan) = plan_for(&p, &arch);
        assert_eq!(plan.order.len(), ex.dfg.instrs().len());
        let t = plan.traffic;
        assert_eq!(t.ksh_non_compulsory, 0);
        assert_eq!(t.input_non_compulsory, 0);
        assert_eq!(t.interm_load + t.interm_store, 0);
        // Compulsory = all hints + all inputs + outputs.
        let expect_inputs = 4 * 4 * (1 << 12) * 4u64; // 2 cts × 2 polys × 4 limbs
        let expect_out = 2 * 4 * (1 << 12) * 4u64;
        assert_eq!(t.input_compulsory, expect_inputs + expect_out);
        assert_eq!(t.ksh_compulsory, 2 * 16 * (1 << 12) * 4);
    }

    #[test]
    fn order_respects_dependences() {
        let p = Program::listing2_matvec(1 << 12, 4, 4);
        let arch = ArchConfig::f1_default();
        let (ex, plan) = plan_for(&p, &arch);
        let mut produced: std::collections::HashSet<ValueId> = ex
            .dfg
            .values()
            .iter()
            .filter(|v| ex.dfg.producer(v.id).is_none())
            .map(|v| v.id)
            .collect();
        for &i in &plan.order {
            for &inp in &ex.dfg.instr(i).inputs {
                assert!(produced.contains(&inp), "instr {i:?} uses unproduced {inp:?}");
            }
            produced.insert(ex.dfg.instr(i).output);
        }
    }

    #[test]
    fn tiny_scratchpad_forces_noncompulsory_traffic() {
        // Shrink the scratchpad below the hint working set: hints must be
        // re-fetched (the §4.2 thrashing scenario).
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let mut arch = ArchConfig::f1_default();
        arch.scratchpad_banks = 1;
        arch.bank_bytes = 4 * 1024 * 1024; // 4 MB << 15 hints × 2 MB
        let (_, plan) = plan_for(&p, &arch);
        let big = plan.traffic;
        let mut arch2 = ArchConfig::f1_default();
        arch2.scratchpad_banks = 16;
        let (_, plan2) = plan_for(&Program::listing2_matvec(1 << 12, 8, 4), &arch2);
        let small = plan2.traffic;
        assert!(
            big.total() > small.total(),
            "tiny scratchpad {} must move more than full {}",
            big.total(),
            small.total()
        );
        assert_eq!(small.ksh_non_compulsory, 0, "64 MB pad fits the matvec working set");
    }

    #[test]
    fn hint_reuse_keeps_traffic_near_compulsory() {
        // The paper's headline scheduling result (§8.2): non-compulsory
        // traffic is a small fraction for reuse-friendly programs.
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let arch = ArchConfig::f1_default();
        let (_, plan) = plan_for(&p, &arch);
        let t = plan.traffic;
        let frac = (t.total() - t.compulsory()) as f64 / t.total() as f64;
        assert!(frac < 0.2, "non-compulsory fraction {frac:.2}");
    }

    #[test]
    fn loads_are_planned_before_users() {
        let mut p = Program::new(1 << 12);
        let x = p.input(2);
        let y = p.input(2);
        let s = p.add(x, y);
        p.output(s);
        let arch = ArchConfig::f1_default();
        let (ex, plan) = plan_for(&p, &arch);
        // Every input value must appear as a load in the plan, before the
        // first instruction consuming it.
        let loaded = plan.loaded_values();
        for v in ex.dfg.values() {
            if v.kind == ValueKind::Input && !ex.dfg.users(v.id).is_empty() {
                assert!(loaded.contains(&v.id), "input {:?} never loaded", v.id);
            }
        }
        for (i, ev) in plan.events.iter().enumerate() {
            if let MoveEvent::Issue { instr, .. } = ev {
                for &inp in &ex.dfg.instr(*instr).inputs {
                    let pos = plan.events[..i].iter().position(|e| {
                        matches!(e, MoveEvent::Load { value, .. } if *value == inp)
                            || matches!(e, MoveEvent::Issue { instr: p, .. }
                                if ex.dfg.instr(*p).output == inp)
                    });
                    assert!(pos.is_some(), "operand {inp:?} not resident before issue");
                }
            }
        }
    }

    #[test]
    fn event_script_is_internally_consistent() {
        // Replay the script with a byte-exact scratchpad: allocations must
        // reference donors that already freed their space, occupancy must
        // never exceed capacity, and refetches must follow evictions.
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let mut arch = ArchConfig::f1_default();
        arch.scratchpad_banks = 1;
        arch.bank_bytes = 2 * 1024 * 1024; // thrash hard
        let (ex, plan) = plan_for(&p, &arch);
        let cap = arch.scratchpad_bytes();
        let mut occupied = 0u64;
        let mut freed_bytes: HashMap<EventId, u64> = HashMap::new();
        let mut resident: HashSet<ValueId> = HashSet::new();
        for (i, ev) in plan.events.iter().enumerate() {
            match ev {
                MoveEvent::Load { value, bytes, refetch, space_from, .. } => {
                    assert!(!resident.contains(value), "double load of {value:?}");
                    if *refetch {
                        let prior = plan.events[..i]
                            .iter()
                            .any(|e| e.frees_space() && e.value() == Some(*value));
                        assert!(prior, "refetch of {value:?} with no prior eviction");
                    }
                    for d in space_from {
                        assert!(freed_bytes.contains_key(d), "donor {d} has not freed yet");
                    }
                    occupied += bytes;
                    resident.insert(*value);
                }
                MoveEvent::Issue { instr, space_from } => {
                    for d in space_from {
                        assert!(freed_bytes.contains_key(d), "donor {d} has not freed yet");
                    }
                    occupied += ex.dfg.value(ex.dfg.instr(*instr).output).bytes;
                    resident.insert(ex.dfg.instr(*instr).output);
                }
                MoveEvent::SpillStore { value, bytes }
                | MoveEvent::Drop { value, bytes }
                | MoveEvent::OutputStore { value, bytes, frees: true } => {
                    assert!(resident.remove(value), "eviction of non-resident {value:?}");
                    occupied -= bytes;
                    freed_bytes.insert(i as EventId, *bytes);
                }
                MoveEvent::OutputStore { .. } => {}
            }
            assert!(occupied <= cap, "script exceeds capacity at event {i}");
        }
        assert!(plan.traffic.interm_store > 0, "this configuration must spill");
        let refetches = plan
            .events
            .iter()
            .filter(|e| matches!(e, MoveEvent::Load { refetch: true, .. }))
            .count();
        assert!(refetches > 0, "this configuration must refetch");
    }

    #[test]
    fn dead_outputs_can_be_squeezed_out() {
        // Many outputs + a pad smaller than their sum: the scheduler must
        // store outputs early instead of deadlocking, and total output
        // traffic must stay compulsory (each output stored exactly once).
        let mut p = Program::new(1 << 12);
        let l = 4usize;
        let mut outs = Vec::new();
        for _ in 0..8 {
            let x = p.input(l);
            let y = p.input(l);
            outs.push(p.mul(x, y));
        }
        for o in outs {
            p.output(o);
        }
        let mut arch = ArchConfig::f1_default();
        arch.scratchpad_banks = 1;
        arch.bank_bytes = 1024 * 1024;
        let (ex, plan) = plan_for(&p, &arch);
        let store_count =
            plan.events.iter().filter(|e| matches!(e, MoveEvent::OutputStore { .. })).count();
        let unique_outputs: HashSet<ValueId> = ex.dfg.outputs().iter().copied().collect();
        assert_eq!(store_count, unique_outputs.len(), "each output stored exactly once");
    }
}
