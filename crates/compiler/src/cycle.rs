//! Pass 3 — the cycle-level scheduler (§4.4).
//!
//! Takes the data-movement plan and assigns every instruction to a
//! cluster and functional unit at an exact cycle, modeling FU occupancy
//! and latency, operand transfers over the crossbars, register files and
//! off-chip bandwidth. It never adds loads or stores (it is fully
//! constrained by pass 2's off-chip schedule) but moves loads to their
//! earliest possible issue cycle to avoid stalls. Resource hazards are
//! resolved by delaying. Because the schedule is fully static, this pass
//! doubles as the performance model.

use crate::expand::Expanded;
use crate::movement::MovePlan;
use f1_arch::energy::EnergyCounters;
use f1_arch::ArchConfig;
use f1_isa::dfg::ValueId;
use f1_isa::streams::{ComputeEntry, MemDir, MemEntry, NetEntry, StaticSchedule};
use f1_isa::{ComponentId, FuType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The cycle-level schedule plus accounting the simulator verifies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleSchedule {
    /// Per-component static streams.
    pub schedule: StaticSchedule,
    /// Exact issue cycle per DFG instruction (indexed by instruction id).
    pub issue_cycle: Vec<u64>,
    /// Exact completion cycle per DFG instruction.
    pub done_cycle: Vec<u64>,
    /// Total makespan in compute cycles.
    pub makespan: u64,
    /// Energy/traffic counters accumulated while scheduling (the
    /// simulator re-derives and cross-checks them).
    pub counters: EnergyCounters,
}

impl CycleSchedule {
    /// Execution time in seconds at the configuration's clock.
    pub fn seconds(&self, arch: &ArchConfig) -> f64 {
        self.makespan as f64 / (arch.freq_ghz * 1e9)
    }
}

/// Schedules the plan onto the machine.
pub fn schedule(expanded: &Expanded, plan: &MovePlan, arch: &ArchConfig) -> CycleSchedule {
    let dfg = &expanded.dfg;
    let n_instr = dfg.instrs().len();
    let n = dfg.n;
    let mut out = StaticSchedule::new(arch.clusters);
    let mut counters = EnergyCounters::default();

    // --- Off-chip transfers: sequential over aggregate bandwidth, loads
    // hoisted as early as possible (their plan order already reflects
    // priority; pass 3 just packs them back-to-back).
    let mut avail: HashMap<ValueId, u64> = HashMap::new();
    let mut home: HashMap<ValueId, ComponentId> = HashMap::new();
    let mut mem_free = 0u64;
    let mut store_pending: Vec<(ValueId, u64)> = Vec::new();
    for x in &plan.xfers {
        match x.dir {
            MemDir::Load => {
                let start = mem_free;
                mem_free = start + arch.mem_cycles(x.bytes);
                let bank = (x.value.0 as usize) % arch.scratchpad_banks;
                out.mem.push(MemEntry {
                    cycle: start,
                    dir: MemDir::Load,
                    value: x.value,
                    bytes: x.bytes,
                    bank,
                });
                counters.hbm_bytes += x.bytes;
                counters.scratchpad_bytes += x.bytes;
                let done = mem_free + arch.hbm_latency_cycles;
                // Reloads overwrite the availability time.
                avail.insert(x.value, done);
                home.insert(x.value, ComponentId::Bank(bank));
            }
            MemDir::Store => {
                // Stores wait until the value exists; defer resolution.
                store_pending.push((x.value, x.bytes));
            }
        }
    }

    // --- Compute: greedy earliest-start on the least-loaded cluster.
    let mut fu_free: Vec<HashMap<FuType, Vec<u64>>> = (0..arch.clusters)
        .map(|_| {
            FuType::ALL
                .iter()
                .map(|&fu| (fu, vec![0u64; arch.fus_per_cluster(fu)]))
                .collect()
        })
        .collect();
    let mut issue_cycle = vec![0u64; n_instr];
    let mut done_cycle = vec![0u64; n_instr];
    let mut makespan = 0u64;
    let net_latency = 8u64; // single-stage bit-sliced crossbar traversal

    for &iid in &plan.order {
        let instr = dfg.instr(iid);
        let fu = instr.op.fu_type();
        let occ = arch.occupancy(fu, n);
        let lat = arch.latency(fu, n);
        // Operand readiness (worst over inputs) + transfer if non-local.
        let mut best: Option<(u64, usize, usize)> = None;
        for c in 0..arch.clusters {
            let mut ready = 0u64;
            for &v in &instr.inputs {
                let t = avail.get(&v).copied().unwrap_or(0);
                let local = home.get(&v) == Some(&ComponentId::Cluster(c));
                let arr = if local { t } else { t + net_latency };
                ready = ready.max(arr);
            }
            let (slot, free_at) = fu_free[c][&fu]
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .map(|(s, &t)| (s, t))
                .unwrap();
            let start = ready.max(free_at);
            if best.map(|(b, _, _)| start < b).unwrap_or(true) {
                best = Some((start, c, slot));
            }
        }
        let (start, cluster, slot) = best.unwrap();
        fu_free[cluster].get_mut(&fu).unwrap()[slot] = start + occ;
        issue_cycle[iid.0 as usize] = start;
        let done = start + occ + lat;
        done_cycle[iid.0 as usize] = done;
        makespan = makespan.max(done);
        avail.insert(instr.output, done);
        home.insert(instr.output, ComponentId::Cluster(cluster));
        counters.add_fu_busy(fu, occ);
        // Traffic: operands stream through RF (and NoC when remote).
        for &v in &instr.inputs {
            let bytes = dfg.value(v).bytes;
            counters.rf_bytes += bytes;
            if home.get(&v) != Some(&ComponentId::Cluster(cluster)) {
                counters.noc_bytes += bytes;
                out.net.push(NetEntry {
                    cycle: start.saturating_sub(net_latency),
                    value: v,
                    from: *home.get(&v).unwrap_or(&ComponentId::Bank(0)),
                    to: ComponentId::Cluster(cluster),
                    bytes,
                });
            }
        }
        counters.rf_bytes += dfg.value(instr.output).bytes;
        out.compute[cluster].push(ComputeEntry { cycle: start, instr: iid, fu, fu_index: slot });
    }

    // --- Stores: issue once the value is complete, packed on bandwidth.
    for (v, bytes) in store_pending {
        let ready = avail.get(&v).copied().unwrap_or(0);
        let start = mem_free.max(ready);
        mem_free = start + arch.mem_cycles(bytes);
        makespan = makespan.max(mem_free);
        counters.hbm_bytes += bytes;
        counters.scratchpad_bytes += bytes;
        let bank = (v.0 as usize) % arch.scratchpad_banks;
        out.mem.push(MemEntry { cycle: start, dir: MemDir::Store, value: v, bytes, bank });
    }
    makespan = makespan.max(mem_free);
    out.mem.sort_by_key(|m| m.cycle);
    for stream in out.compute.iter_mut() {
        stream.sort_by_key(|e| e.cycle);
    }
    out.net.sort_by_key(|e| e.cycle);
    out.makespan = makespan;
    out.validate_monotone();

    CycleSchedule { schedule: out, issue_cycle, done_cycle, makespan, counters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Program;
    use crate::expand::{expand, ExpandOptions};
    use crate::movement;

    fn compile(p: &Program, arch: &ArchConfig) -> (Expanded, MovePlan, CycleSchedule) {
        let ex = expand(p, &ExpandOptions::default());
        let plan = movement::schedule(&ex, arch);
        let cs = schedule(&ex, &plan, arch);
        (ex, plan, cs)
    }

    #[test]
    fn dependences_hold_in_time() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let arch = ArchConfig::f1_default();
        let (ex, _, cs) = compile(&p, &arch);
        for instr in ex.dfg.instrs() {
            for &v in &instr.inputs {
                if let Some(prod) = ex.dfg.producer(v) {
                    assert!(
                        cs.done_cycle[prod.0 as usize] <= cs.issue_cycle[instr.id.0 as usize] + arch.latency(instr.op.fu_type(), ex.dfg.n),
                        "instr {:?} starts before its operand {:?} completes",
                        instr.id,
                        v
                    );
                }
            }
        }
        assert!(cs.makespan > 0);
    }

    #[test]
    fn more_clusters_run_faster() {
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let mut small = ArchConfig::f1_default();
        small.clusters = 2;
        let big = ArchConfig::f1_default();
        let (_, _, cs_small) = compile(&p, &small);
        let (_, _, cs_big) = compile(&p, &big);
        assert!(
            cs_big.makespan < cs_small.makespan,
            "16 clusters ({}) should beat 2 ({})",
            cs_big.makespan,
            cs_small.makespan
        );
    }

    #[test]
    fn low_throughput_ntt_is_slower() {
        // Table 5, column "LT NTT": same aggregate throughput, worse time.
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let base = ArchConfig::f1_default();
        let mut lt = ArchConfig::f1_default();
        lt.low_throughput_ntt = true;
        let (_, _, cs_base) = compile(&p, &base);
        let (_, _, cs_lt) = compile(&p, &lt);
        assert!(
            cs_lt.makespan > cs_base.makespan,
            "LT NTT {} must be slower than baseline {}",
            cs_lt.makespan,
            cs_base.makespan
        );
    }

    #[test]
    fn counters_accumulate() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let arch = ArchConfig::f1_default();
        let (_, plan, cs) = compile(&p, &arch);
        assert_eq!(cs.counters.hbm_bytes, plan.traffic.total());
        assert!(cs.counters.rf_bytes > 0);
        assert!(cs.counters.fu_busy_cycles.iter().sum::<u64>() > 0);
    }

    #[test]
    fn seconds_conversion() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let arch = ArchConfig::f1_default();
        let (_, _, cs) = compile(&p, &arch);
        let s = cs.seconds(&arch);
        assert!((s - cs.makespan as f64 * 1e-9).abs() < 1e-15);
    }
}
