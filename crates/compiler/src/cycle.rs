//! Pass 3 — the cycle-level scheduler (§4.4), as a resource-explicit
//! list scheduler over pass 2's residency event graph.
//!
//! Takes the data-movement plan and assigns every instruction **and every
//! data-movement event** (first loads, spill stores, capacity refetches,
//! scratchpad releases, output stores) to a resource at an exact cycle.
//! Every contended resource is modeled explicitly with its own occupancy
//! timeline:
//!
//! * **HBM channels** — `arch.hbm_channels` independent streams, each at
//!   the per-channel bandwidth. Loads, refetches and spill stores all
//!   compete for the same channel timelines and run *concurrently with
//!   compute*; ready loads drain in pass 2's liveness-deadline order.
//! * **Functional units** — per (cluster, class, instance) interval
//!   timelines with first-fit gap insertion, so a late-ready instruction
//!   never blocks an idle window.
//! * **Crossbar ports** — per (source, destination) lane occupancy
//!   (`net_busy`), `arch.xbar_ports` lanes per pair. Consumers prefer
//!   their operands' home cluster; register-file overflow writes values
//!   back to their scratchpad bank over the same lanes.
//!
//! **Scratchpad capacity is a scheduling constraint, not an accounting
//! afterthought.** Pass 2 hands over a byte lineage: each allocation
//! names the release events (`space_from`) whose freed bytes it reuses.
//! The scheduler turns those into gating edges — an allocation may not
//! start before its donors' release cycles, a release may not happen
//! before the value's producer has drained and every reader has streamed
//! it, and a refetch may not start before the spill store that put the
//! value off-chip completes. Consumers of a refetched value are gated on
//! the refetch's completion. Because every byte of the scratchpad then
//! serves temporally disjoint residency intervals, the resident set
//! provably never exceeds capacity at any cycle — which the `f1-sim`
//! checker re-verifies from the emitted streams alone.
//!
//! On-chip, produced values live in their cluster's register file until
//! its capacity (`arch.rf_bytes_per_cluster`) overflows; the scheduler
//! then *re-homes* the oldest values to their scratchpad bank with a
//! crossbar writeback, and later consumers fetch them from the bank.
//!
//! Ready instructions are ranked by critical-path depth on the DFG
//! (longest streaming path to a sink, [`f1_isa::dfg::Dfg::critical_depths`]),
//! not by pass-2 order.
//!
//! Timing uses F1's rate-matched streaming semantics: every standard unit
//! and 512-byte port produces and consumes at `lanes` elements per cycle,
//! so a dependent instruction can issue `latency` cycles after its
//! producer (Cray-style chaining), reading elements exactly as they are
//! produced. `done_cycle` records that availability cycle; the full
//! vector has drained `occupancy` cycles later, which is what `makespan`
//! accounts. Slow producers (the low-throughput ablation units) add a
//! catch-up term so a standard-rate consumer never outruns them. Because
//! the schedule is fully static, this pass doubles as the performance
//! model.

use crate::expand::Expanded;
use crate::movement::{MoveEvent, MovePlan};
use f1_arch::energy::EnergyCounters;
use f1_arch::ArchConfig;
use f1_isa::dfg::{Dfg, InstrId, ValueId};
use f1_isa::streams::{ComputeEntry, EvictEntry, MemDir, MemEntry, NetEntry, StaticSchedule};
use f1_isa::{ComponentId, FuType};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, VecDeque};

/// Cycles a value spends crossing one bit-sliced crossbar switch. The
/// transfer then streams behind the wavefront at the port rate, holding
/// its lane for `net_cycles(bytes)`.
pub const XBAR_HOP_CYCLES: u64 = 1;

/// The cycle-level schedule plus accounting the simulator verifies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleSchedule {
    /// Per-component static streams.
    pub schedule: StaticSchedule,
    /// Exact issue cycle per DFG instruction (indexed by instruction id).
    pub issue_cycle: Vec<u64>,
    /// Cycle each instruction's result becomes available to rate-matched
    /// consumers: `issue + latency`, plus the catch-up correction when
    /// the producer streams slower than the standard rate. The full
    /// vector has drained `occupancy` cycles later (accounted in
    /// `makespan`).
    pub done_cycle: Vec<u64>,
    /// Total makespan in compute cycles (last drained result or store).
    pub makespan: u64,
    /// Energy/traffic counters accumulated while scheduling (the
    /// simulator re-derives and cross-checks them).
    pub counters: EnergyCounters,
}

impl CycleSchedule {
    /// Execution time in seconds at the configuration's clock.
    pub fn seconds(&self, arch: &ArchConfig) -> f64 {
        self.makespan as f64 / (arch.freq_ghz * 1e9)
    }
}

/// Streaming availability weight of one instruction: how long after its
/// issue cycle a rate-matched consumer may issue. `latency` for standard
/// units; slow units add the cycles by which they trail the standard
/// streaming rate so consumers never read elements that do not exist yet.
pub fn stream_weight(arch: &ArchConfig, fu: FuType, n: usize) -> u64 {
    let base = (n / arch.lanes).max(1) as u64;
    let occ = arch.occupancy(fu, n);
    arch.latency(fu, n) + occ.saturating_sub(base)
}

/// Sorted, disjoint busy intervals for one exclusive resource (FU
/// instance, crossbar lane, HBM channel) with first-fit gap insertion.
#[derive(Debug, Default, Clone)]
struct Occupancy {
    busy: Vec<(u64, u64)>,
}

impl Occupancy {
    /// Earliest `start >= ready` such that `[start, start + len)` is free.
    fn probe(&self, ready: u64, len: u64) -> u64 {
        let mut t = ready;
        let i = self.busy.partition_point(|&(_, end)| end <= t);
        for &(s, e) in &self.busy[i..] {
            if t + len <= s {
                break;
            }
            t = t.max(e);
        }
        t
    }

    /// Reserves `[start, start + len)`; the caller must have probed.
    ///
    /// Adjacent intervals are coalesced: a fully packed timeline (the
    /// common case for hot FU slots and HBM channels) stays a handful of
    /// intervals, keeping [`Occupancy::probe`] effectively O(log k)
    /// instead of degrading into a linear walk of every past commit.
    fn commit(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let pos = self.busy.partition_point(|&(s, _)| s < start);
        debug_assert!(pos == 0 || self.busy[pos - 1].1 <= start, "overlapping commit");
        debug_assert!(pos == self.busy.len() || end <= self.busy[pos].0);
        let glue_prev = pos > 0 && self.busy[pos - 1].1 == start;
        let glue_next = pos < self.busy.len() && self.busy[pos].0 == end;
        match (glue_prev, glue_next) {
            (true, true) => {
                self.busy[pos - 1].1 = self.busy[pos].1;
                self.busy.remove(pos);
            }
            (true, false) => self.busy[pos - 1].1 = end,
            (false, true) => self.busy[pos].0 = start,
            (false, false) => self.busy.insert(pos, (start, end)),
        }
    }
}

/// How a predecessor's commit time gates a successor's earliest start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    /// Ordering only; timing flows through the value-availability maps.
    Order,
    /// Wait until the predecessor (a reader) has streamed the value:
    /// `issue + occupancy`.
    ReaderHold,
    /// Wait until the predecessor (the producer of the value being
    /// released) has fully drained it: `issue + occupancy + latency`.
    Drain,
    /// Wait for the predecessor's completion time (a release cycle,
    /// store completion, or load completion).
    Done,
}

/// Non-instruction node kinds (instruction nodes are `0..n_instr`).
#[derive(Debug, Clone, Copy)]
enum MemNode {
    Load { ev: u32 },
    Store { ev: u32 },
    Drop { ev: u32 },
}

/// Fingerprint of the [`stream_weight`] function the cycle scheduler and
/// expand's makespan estimator rank instructions by — the memoization key
/// for [`Dfg::critical_depths_cached`]. Two `(arch, n)` pairs that weight
/// every FU class identically share a key (and may share the cached
/// depths, which is exactly the point).
pub fn depth_key(arch: &ArchConfig, n: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(n as u64);
    for &fu in FuType::ALL.iter() {
        mix(stream_weight(arch, fu, n));
    }
    h
}

/// Schedules the plan onto the machine.
pub fn schedule(expanded: &Expanded, plan: &MovePlan, arch: &ArchConfig) -> CycleSchedule {
    CycleScheduler::new(expanded, plan, arch).run()
}

/// Sentinel for "no entry" in the dense per-value tables.
const NONE_U32: u32 = u32::MAX;

struct CycleScheduler<'a> {
    dfg: &'a Dfg,
    plan: &'a MovePlan,
    arch: &'a ArchConfig,
    n_instr: usize,
    /// Event nodes (ids `n_instr + k`).
    mem_nodes: Vec<MemNode>,
    /// Successor edges in CSR form: node `i`'s successors are
    /// `succ_dat[succ_off[i]..succ_off[i + 1]]`, in the order pass 2's
    /// replay discovered them. One flat allocation instead of millions of
    /// short `Vec`s — the event-graph build dominated `new()` at full
    /// benchmark scale.
    succ_off: Vec<u32>,
    succ_dat: Vec<(u32, Gate)>,
    indeg: Vec<u32>,
    /// Earliest start each node inherits from its gating predecessors.
    gate_time: Vec<u64>,
    depth: std::sync::Arc<Vec<u64>>,
    /// Per-FU-class `occupancy` / [`stream_weight`] / `latency` at ring
    /// size `n`, indexed by [`FuType::index`] (identical for every
    /// instruction of a class — no need to re-derive per commit).
    fu_occ: [u64; 4],
    fu_weight: [u64; 4],
    fu_lat: [u64; 4],
    // Resources. All per-value and per-resource state is held in dense
    // Vec-indexed tables (ValueIds and FU classes are dense): the
    // scheduler touches them hundreds of times per instruction, and
    // hashing dominated the pass at full-size benchmark scale.
    channels: Vec<Occupancy>,
    /// `fu_slots[cluster][FuType::index()][instance]`.
    fu_slots: Vec<[Vec<Occupancy>; 4]>,
    /// `net_busy[comp_index(from) * n_comp + comp_index(to)][lane]`.
    net_busy: Vec<Vec<Occupancy>>,
    n_comp: usize,
    // Value state (indexed by ValueId).
    avail: Vec<u64>,
    home: Vec<Option<ComponentId>>,
    /// Per-value remote copies: small (cluster, arrival) lists.
    copies: Vec<Vec<(u32, u64)>>,
    /// When a re-homed value's bank copy lands (transfers from the bank
    /// may not start earlier).
    bank_ready: Vec<u64>,
    /// Writeback completion per re-homed value (its release must wait).
    wb_done: Vec<u64>,
    // Register-file occupancy model.
    rf_used: Vec<u64>,
    rf_queue: Vec<VecDeque<ValueId>>,
    /// Cluster whose register file holds the value, `NONE_U32` if none.
    rf_member: Vec<u32>,
    /// Reusable operand buffer (avoids cloning instruction input lists).
    input_buf: Vec<ValueId>,
    /// Reusable `(lower bound, cluster)` scratch for the pruned probe.
    order_buf: Vec<(u64, usize)>,
    // Ready queues.
    instr_ready: BinaryHeap<(u64, std::cmp::Reverse<u32>)>,
    mem_ready: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    // Output.
    out: StaticSchedule,
    issue_cycle: Vec<u64>,
    done_cycle: Vec<u64>,
    makespan: u64,
    counters: EnergyCounters,
}

impl<'a> CycleScheduler<'a> {
    fn new(expanded: &'a Expanded, plan: &'a MovePlan, arch: &'a ArchConfig) -> Self {
        let dfg = &expanded.dfg;
        let n = dfg.n;
        let n_instr = dfg.instrs().len();
        assert_eq!(plan.order.len(), n_instr, "plan must issue every instruction");

        // --- Build the event graph by replaying pass 2's script. All
        // bookkeeping tables are dense (indexed by event id / value id).
        // Edges are collected into one flat list and scattered into CSR
        // afterwards (stable, so each node's successor order is exactly
        // the replay's discovery order).
        let n_values = dfg.values().len();
        let n_mem = plan.events.iter().filter(|e| !matches!(e, MoveEvent::Issue { .. })).count();
        let total = n_instr + n_mem;
        let mut mem_nodes = Vec::with_capacity(n_mem);
        let mut edges: Vec<(u32, u32, Gate)> = Vec::with_capacity(total * 2);
        let mut indeg = vec![0u32; total];
        let mut ev_node: Vec<u32> = vec![NONE_U32; plan.events.len()];
        let mut cur_alloc: Vec<u32> = vec![NONE_U32; n_values];
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n_values];
        let mut last_release: Vec<u32> = vec![NONE_U32; n_values];
        let edge = |edges: &mut Vec<(u32, u32, Gate)>,
                    indeg: &mut Vec<u32>,
                    from: u32,
                    to: u32,
                    g: Gate| {
            edges.push((from, to, g));
            indeg[to as usize] += 1;
        };
        for (ei, ev) in plan.events.iter().enumerate() {
            match ev {
                MoveEvent::Issue { instr, space_from } => {
                    let nid = instr.0;
                    for &v in &dfg.instr(*instr).inputs {
                        let a = cur_alloc[v.0 as usize];
                        if a != NONE_U32 {
                            edge(&mut edges, &mut indeg, a, nid, Gate::Order);
                        }
                        readers[v.0 as usize].push(nid);
                    }
                    for &d in space_from {
                        edge(&mut edges, &mut indeg, ev_node[d as usize], nid, Gate::Done);
                    }
                    let out = dfg.instr(*instr).output.0 as usize;
                    cur_alloc[out] = nid;
                    readers[out].clear();
                }
                MoveEvent::Load { value, space_from, .. } => {
                    let nid = (n_instr + mem_nodes.len()) as u32;
                    mem_nodes.push(MemNode::Load { ev: ei as u32 });
                    for &d in space_from {
                        edge(&mut edges, &mut indeg, ev_node[d as usize], nid, Gate::Done);
                    }
                    // A reload may not start before the previous copy's
                    // release (and, for spills, the writeback) completes.
                    let r = last_release[value.0 as usize];
                    if r != NONE_U32 {
                        edge(&mut edges, &mut indeg, r, nid, Gate::Done);
                    }
                    let vi = value.0 as usize;
                    cur_alloc[vi] = nid;
                    readers[vi].clear();
                }
                MoveEvent::SpillStore { value, .. }
                | MoveEvent::Drop { value, .. }
                | MoveEvent::OutputStore { value, .. } => {
                    let nid = (n_instr + mem_nodes.len()) as u32;
                    mem_nodes.push(if matches!(ev, MoveEvent::Drop { .. }) {
                        MemNode::Drop { ev: ei as u32 }
                    } else {
                        MemNode::Store { ev: ei as u32 }
                    });
                    let vi = value.0 as usize;
                    let a = cur_alloc[vi];
                    if a != NONE_U32 {
                        let g = if (a as usize) < n_instr { Gate::Drain } else { Gate::Done };
                        edge(&mut edges, &mut indeg, a, nid, g);
                    }
                    for &r in &readers[vi] {
                        edge(&mut edges, &mut indeg, r, nid, Gate::ReaderHold);
                    }
                    ev_node[ei] = nid;
                    if ev.frees_space() {
                        cur_alloc[vi] = NONE_U32;
                        readers[vi].clear();
                        last_release[vi] = nid;
                    }
                }
            }
        }
        // Counts → prefix sums → stable scatter.
        let mut succ_off = vec![0u32; total + 1];
        for &(from, _, _) in &edges {
            succ_off[from as usize + 1] += 1;
        }
        for i in 0..total {
            succ_off[i + 1] += succ_off[i];
        }
        let mut cursor: Vec<u32> = succ_off[..total].to_vec();
        let mut succ_dat = vec![(0u32, Gate::Order); edges.len()];
        for &(from, to, g) in &edges {
            let slot = &mut cursor[from as usize];
            succ_dat[*slot as usize] = (to, g);
            *slot += 1;
        }
        drop(edges);

        // Rank = streaming critical-path depth (matches the availability
        // semantics the schedule is checked under). Memoized on the DFG:
        // expand's makespan estimator uses the same weighting, and pass-3
        // reruns over one expansion (the Table 5 ablations) hit it too.
        let depth = dfg.critical_depths_cached(depth_key(arch, n), &|i| {
            stream_weight(arch, i.op.fu_type(), n)
        });

        let mut fu_occ = [0u64; 4];
        let mut fu_weight = [0u64; 4];
        let mut fu_lat = [0u64; 4];
        for &fu in FuType::ALL.iter() {
            fu_occ[fu.index()] = arch.occupancy(fu, n);
            fu_weight[fu.index()] = stream_weight(arch, fu, n);
            fu_lat[fu.index()] = arch.latency(fu, n);
        }

        let fu_slots = (0..arch.clusters)
            .map(|_| {
                let mut slots: [Vec<Occupancy>; 4] = Default::default();
                for &fu in FuType::ALL.iter() {
                    slots[fu.index()] = vec![Occupancy::default(); arch.fus_per_cluster(fu)];
                }
                slots
            })
            .collect();
        let n_comp = arch.clusters + arch.scratchpad_banks;
        let net_busy = vec![vec![Occupancy::default(); arch.xbar_ports.max(1)]; n_comp * n_comp];

        let mut s = Self {
            dfg,
            plan,
            arch,
            n_instr,
            mem_nodes,
            succ_off,
            succ_dat,
            indeg,
            gate_time: vec![0; total],
            depth,
            fu_occ,
            fu_weight,
            fu_lat,
            channels: vec![Occupancy::default(); arch.hbm_channels.max(1)],
            fu_slots,
            net_busy,
            n_comp,
            avail: vec![0; n_values],
            home: vec![None; n_values],
            copies: vec![Vec::new(); n_values],
            bank_ready: vec![0; n_values],
            wb_done: vec![0; n_values],
            rf_used: vec![0; arch.clusters],
            rf_queue: vec![VecDeque::new(); arch.clusters],
            rf_member: vec![NONE_U32; n_values],
            input_buf: Vec::new(),
            order_buf: Vec::new(),
            instr_ready: BinaryHeap::new(),
            mem_ready: BinaryHeap::new(),
            out: StaticSchedule::new(arch.clusters),
            issue_cycle: vec![0; n_instr],
            done_cycle: vec![0; n_instr],
            makespan: 0,
            counters: EnergyCounters::default(),
        };
        for nid in 0..total as u32 {
            if s.indeg[nid as usize] == 0 {
                s.enqueue(nid);
            }
        }
        s
    }

    fn enqueue(&mut self, nid: u32) {
        if (nid as usize) < self.n_instr {
            self.instr_ready.push((self.depth[nid as usize], std::cmp::Reverse(nid)));
        } else {
            let key = match self.mem_nodes[nid as usize - self.n_instr] {
                MemNode::Load { ev } => match &self.plan.events[ev as usize] {
                    MoveEvent::Load { deadline, .. } => *deadline,
                    _ => 0,
                },
                _ => 0,
            };
            self.mem_ready.push(std::cmp::Reverse((key, nid)));
        }
    }

    /// Propagates a committed node's gating times to its successors and
    /// enqueues the newly ready ones. `hold`/`drain` only matter for
    /// instruction predecessors; mem nodes pass their completion time.
    fn finish(&mut self, nid: u32, hold: u64, drain: u64, done: u64) {
        let lo = self.succ_off[nid as usize] as usize;
        let hi = self.succ_off[nid as usize + 1] as usize;
        for k in lo..hi {
            let (s, g) = self.succ_dat[k];
            let t = match g {
                Gate::Order => 0,
                Gate::ReaderHold => hold,
                Gate::Drain => drain,
                Gate::Done => done,
            };
            let si = s as usize;
            self.gate_time[si] = self.gate_time[si].max(t);
            self.indeg[si] -= 1;
            if self.indeg[si] == 0 {
                self.enqueue(s);
            }
        }
    }

    fn run(mut self) -> CycleSchedule {
        let total = self.n_instr + self.mem_nodes.len();
        let mut committed = 0usize;
        while committed < total {
            let mut progressed = false;
            while let Some(std::cmp::Reverse((_, nid))) = self.mem_ready.pop() {
                self.commit_mem(nid);
                committed += 1;
                progressed = true;
            }
            if let Some((_, std::cmp::Reverse(nid))) = self.instr_ready.pop() {
                self.commit_instr(nid);
                committed += 1;
                progressed = true;
            }
            assert!(progressed, "residency event graph deadlock at {committed}/{total}");
        }

        // Final per-stream sorts are independent; each stream sorts on
        // its own thread when F1_PAR_COMPILE allows. `sort_by_key` is
        // stable, so the result is identical at any thread count.
        if crate::par::compile_threads() > 1 {
            rayon::scope(|s| {
                s.spawn(|| self.out.mem.sort_by_key(|m| m.cycle));
                for stream in self.out.compute.iter_mut() {
                    s.spawn(|| stream.sort_by_key(|e| e.cycle));
                }
                s.spawn(|| self.out.net.sort_by_key(|e| e.cycle));
                s.spawn(|| self.out.evict.sort_by_key(|e| e.cycle));
            });
        } else {
            self.out.mem.sort_by_key(|m| m.cycle);
            for stream in self.out.compute.iter_mut() {
                stream.sort_by_key(|e| e.cycle);
            }
            self.out.net.sort_by_key(|e| e.cycle);
            self.out.evict.sort_by_key(|e| e.cycle);
        }
        self.out.makespan = self.makespan;
        self.out.validate_monotone();

        CycleSchedule {
            schedule: self.out,
            issue_cycle: self.issue_cycle,
            done_cycle: self.done_cycle,
            makespan: self.makespan,
            counters: self.counters,
        }
    }

    /// Picks the least-loaded HBM channel at `ready` and commits `dur`.
    fn commit_channel(&mut self, ready: u64, dur: u64) -> (usize, u64) {
        let (ci, start) = self
            .channels
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.probe(ready, dur)))
            .min_by_key(|&(i, s)| (s, i))
            .unwrap();
        self.channels[ci].commit(start, dur);
        (ci, start)
    }

    /// Dense index of a crossbar endpoint (clusters, then banks).
    #[inline(always)]
    fn comp_index(&self, c: ComponentId) -> usize {
        match c {
            ComponentId::Cluster(i) => i,
            ComponentId::Bank(b) => self.arch.clusters + b,
            ComponentId::MemCtrl(_) => unreachable!("crossbar transfers never touch a MemCtrl"),
        }
    }

    /// The lane timelines for the `(from, to)` crossbar pair.
    #[inline(always)]
    fn lanes(&self, from: ComponentId, to: ComponentId) -> &[Occupancy] {
        &self.net_busy[self.comp_index(from) * self.n_comp + self.comp_index(to)]
    }

    /// Ends a value's residency: invalidates every on-chip location and
    /// releases its register-file slot.
    fn invalidate(&mut self, v: ValueId) {
        let vi = v.0 as usize;
        self.home[vi] = None;
        self.copies[vi].clear();
        self.bank_ready[vi] = 0;
        self.wb_done[vi] = 0;
        let c = self.rf_member[vi];
        if c != NONE_U32 {
            self.rf_member[vi] = NONE_U32;
            self.rf_used[c as usize] -= self.dfg.value(v).bytes;
        }
    }

    fn commit_mem(&mut self, nid: u32) {
        let node = self.mem_nodes[nid as usize - self.n_instr];
        match node {
            MemNode::Load { ev } => {
                let MoveEvent::Load { value, bytes, .. } = self.plan.events[ev as usize] else {
                    unreachable!()
                };
                let dur = self.arch.mem_channel_cycles(bytes);
                let ready = self.gate_time[nid as usize];
                let (ci, start) = self.commit_channel(ready, dur);
                let bank = (value.0 as usize) % self.arch.scratchpad_banks;
                self.out.mem.push(MemEntry {
                    cycle: start,
                    dir: MemDir::Load,
                    value,
                    bytes,
                    bank,
                    channel: ci,
                });
                self.counters.hbm_bytes += bytes;
                self.counters.scratchpad_bytes += bytes;
                self.counters.hbm_channel_busy_cycles += dur;
                let done = start + dur + self.arch.hbm_latency_cycles;
                self.avail[value.0 as usize] = done;
                self.home[value.0 as usize] = Some(ComponentId::Bank(bank));
                self.makespan = self.makespan.max(start + dur);
                self.finish(nid, 0, 0, done);
            }
            MemNode::Store { ev } => {
                let (value, bytes, frees) = match self.plan.events[ev as usize] {
                    MoveEvent::SpillStore { value, bytes } => (value, bytes, true),
                    MoveEvent::OutputStore { value, bytes, frees } => (value, bytes, frees),
                    _ => unreachable!(),
                };
                let dur = self.arch.mem_channel_cycles(bytes);
                let ready = self.gate_time[nid as usize].max(self.wb_done[value.0 as usize]);
                let (ci, start) = self.commit_channel(ready, dur);
                let bank = (value.0 as usize) % self.arch.scratchpad_banks;
                self.out.mem.push(MemEntry {
                    cycle: start,
                    dir: MemDir::Store,
                    value,
                    bytes,
                    bank,
                    channel: ci,
                });
                self.counters.hbm_bytes += bytes;
                self.counters.scratchpad_bytes += bytes;
                self.counters.hbm_channel_busy_cycles += dur;
                let done = start + dur;
                if frees {
                    self.out.evict.push(EvictEntry { cycle: done, value, bytes });
                    self.invalidate(value);
                }
                self.makespan = self.makespan.max(done);
                self.finish(nid, 0, 0, done);
            }
            MemNode::Drop { ev } => {
                let MoveEvent::Drop { value, bytes } = self.plan.events[ev as usize] else {
                    unreachable!()
                };
                let done = self.gate_time[nid as usize].max(self.wb_done[value.0 as usize]);
                self.out.evict.push(EvictEntry { cycle: done, value, bytes });
                self.invalidate(value);
                self.finish(nid, 0, 0, done);
            }
        }
    }

    /// Earliest cycle operand `v` could be consumed on cluster `c`
    /// without committing any transfer; `true` if it would be remote.
    fn arrival(&self, v: ValueId, c: usize) -> (u64, bool) {
        let vi = v.0 as usize;
        let t0 = self.avail[vi];
        if self.home[vi] == Some(ComponentId::Cluster(c)) {
            return (t0, false);
        }
        if let Some(&(_, tc)) = self.copies[vi].iter().find(|&&(cc, _)| cc == c as u32) {
            return (tc, false);
        }
        let from = self.source_of(v);
        let t0 = self.source_ready(v, t0, from);
        let dur = self.arch.net_cycles(self.dfg.value(v).bytes);
        let start = self
            .lanes(from, ComponentId::Cluster(c))
            .iter()
            .map(|l| l.probe(t0, dur))
            .min()
            .unwrap_or(t0);
        (start + XBAR_HOP_CYCLES, true)
    }

    fn source_of(&self, v: ValueId) -> ComponentId {
        self.home[v.0 as usize]
            .unwrap_or(ComponentId::Bank((v.0 as usize) % self.arch.scratchpad_banks))
    }

    /// Transfers from a bank may not start before a re-homed value's
    /// writeback has landed there.
    fn source_ready(&self, v: ValueId, t0: u64, from: ComponentId) -> u64 {
        match from {
            ComponentId::Bank(_) => t0.max(self.bank_ready[v.0 as usize]),
            _ => t0,
        }
    }

    fn commit_instr(&mut self, id: u32) {
        let iid = InstrId(id);
        let (fu, output) = {
            let instr = self.dfg.instr(iid);
            self.input_buf.clear();
            self.input_buf.extend_from_slice(&instr.inputs);
            (instr.op.fu_type(), instr.output)
        };
        let inputs = std::mem::take(&mut self.input_buf);
        let occ = self.fu_occ[fu.index()];
        let weight = self.fu_weight[fu.index()];
        let lat = self.fu_lat[fu.index()];
        let base = self.gate_time[id as usize];

        // Pick the cluster minimizing (start, remote bytes, stream length,
        // cluster id) — earliest start; ties prefer operand affinity, then
        // load balance. Scanning all clusters with full lane/FU probes is
        // the pass's hot loop, so clusters are visited in ascending
        // lower-bound order and the scan stops once no unvisited cluster
        // can beat the incumbent's start. The bound omits only the lane
        // and FU probes (which can only push a start later), so the
        // pruned argmin is exactly the full scan's.
        debug_assert!(inputs.len() <= 2, "vector ops have at most two operands");
        let mut ready_lb = [0u64; 2]; // reused below; arity is at most 2
        let mut best: Option<(u64, u64, usize)> = None;
        {
            // Per-input invariants: availability, and — when the value is
            // neither cluster-homed nor copied — the earliest possible
            // remote arrival on *any* cluster.
            for (k, &v) in inputs.iter().enumerate() {
                let vi = v.0 as usize;
                let t0 = self.avail[vi];
                let from = self.source_of(v);
                ready_lb[k] = self.source_ready(v, t0, from) + XBAR_HOP_CYCLES;
            }
            let mut order = std::mem::take(&mut self.order_buf);
            order.clear();
            order.extend((0..self.arch.clusters).map(|c| {
                let mut lb = base;
                for (k, &v) in inputs.iter().enumerate() {
                    let vi = v.0 as usize;
                    let t = if self.home[vi] == Some(ComponentId::Cluster(c)) {
                        self.avail[vi]
                    } else if let Some(&(_, tc)) =
                        self.copies[vi].iter().find(|&&(cc, _)| cc == c as u32)
                    {
                        tc
                    } else {
                        ready_lb[k]
                    };
                    lb = lb.max(t);
                }
                (lb, c)
            }));
            order.sort_unstable();
            for &(lb, c) in &order {
                if let Some(b) = best {
                    if lb > b.0 {
                        break;
                    }
                }
                let mut ready = base;
                let mut remote = 0u64;
                for &v in &inputs {
                    let (t, is_remote) = self.arrival(v, c);
                    if is_remote {
                        remote += self.dfg.value(v).bytes;
                    }
                    ready = ready.max(t);
                }
                let start =
                    self.fu_slots[c][fu.index()].iter().map(|s| s.probe(ready, occ)).min().unwrap();
                let key = (start, remote, c);
                if best.map(|b| key < b).unwrap_or(true) {
                    best = Some(key);
                }
            }
            self.order_buf = order;
        }
        let (_, _, cluster) = best.unwrap();

        // Commit operand transfers on the chosen cluster.
        let mut ready = base;
        for &v in &inputs {
            let vi = v.0 as usize;
            let t0 = self.avail[vi];
            let t = if self.home[vi] == Some(ComponentId::Cluster(cluster)) {
                t0
            } else if let Some(&(_, tc)) =
                self.copies[vi].iter().find(|&&(cc, _)| cc == cluster as u32)
            {
                tc
            } else {
                let from = self.source_of(v);
                let t0 = self.source_ready(v, t0, from);
                let bytes = self.dfg.value(v).bytes;
                let dur = self.arch.net_cycles(bytes);
                let lane_idx = self.comp_index(from) * self.n_comp
                    + self.comp_index(ComponentId::Cluster(cluster));
                let lanes = &mut self.net_busy[lane_idx];
                let (li, start) = lanes
                    .iter()
                    .enumerate()
                    .map(|(i, l)| (i, l.probe(t0, dur)))
                    .min_by_key(|&(i, s)| (s, i))
                    .unwrap();
                lanes[li].commit(start, dur);
                self.out.net.push(NetEntry {
                    cycle: start,
                    value: v,
                    from,
                    to: ComponentId::Cluster(cluster),
                    bytes,
                    port: li,
                });
                self.counters.noc_bytes += bytes;
                self.counters.xbar_busy_cycles += dur;
                let arrive = start + XBAR_HOP_CYCLES;
                self.copies[vi].push((cluster as u32, arrive));
                arrive
            };
            ready = ready.max(t);
            self.counters.rf_bytes += self.dfg.value(v).bytes;
        }

        let (slot, start) = self.fu_slots[cluster][fu.index()]
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.probe(ready, occ)))
            .min_by_key(|&(i, s)| (s, i))
            .unwrap();
        self.fu_slots[cluster][fu.index()][slot].commit(start, occ);
        self.issue_cycle[id as usize] = start;
        let available = start + weight;
        self.done_cycle[id as usize] = available;
        self.makespan = self.makespan.max(start + occ + lat);
        self.avail[output.0 as usize] = available;
        self.home[output.0 as usize] = Some(ComponentId::Cluster(cluster));
        self.counters.add_fu_busy(fu, occ);
        self.counters.rf_bytes += self.dfg.value(output).bytes;
        self.out.compute[cluster].push(ComputeEntry {
            cycle: start,
            instr: iid,
            fu,
            fu_index: slot,
        });

        // Register-file occupancy: the result claims RF space; overflow
        // re-homes the oldest still-resident values to their bank.
        let out_bytes = self.dfg.value(output).bytes;
        self.rf_used[cluster] += out_bytes;
        self.rf_queue[cluster].push_back(output);
        self.rf_member[output.0 as usize] = cluster as u32;
        while self.rf_used[cluster] > self.arch.rf_bytes_per_cluster {
            let Some(w) = self.rf_queue[cluster].pop_front() else { break };
            if self.rf_member[w.0 as usize] != cluster as u32 {
                continue; // already evicted or re-homed
            }
            if w == output {
                // Never flush the value being produced this cycle.
                self.rf_queue[cluster].push_front(w);
                break;
            }
            self.rehome(w, cluster);
        }

        self.input_buf = inputs;
        self.finish(id, start + occ, start + occ + lat, available);
    }

    /// Writes a register-file-resident value back to its scratchpad bank
    /// over the crossbar; later consumers fetch it from the bank.
    fn rehome(&mut self, w: ValueId, c: usize) {
        let wi = w.0 as usize;
        let bytes = self.dfg.value(w).bytes;
        let bank = wi % self.arch.scratchpad_banks;
        let from = ComponentId::Cluster(c);
        let to = ComponentId::Bank(bank);
        let dur = self.arch.net_cycles(bytes);
        let t0 = self.avail[wi];
        let lane_idx = self.comp_index(from) * self.n_comp + self.comp_index(to);
        let lanes = &mut self.net_busy[lane_idx];
        let (li, start) = lanes
            .iter()
            .enumerate()
            .map(|(i, l)| (i, l.probe(t0, dur)))
            .min_by_key(|&(i, s)| (s, i))
            .unwrap();
        lanes[li].commit(start, dur);
        self.out.net.push(NetEntry { cycle: start, value: w, from, to, bytes, port: li });
        self.counters.noc_bytes += bytes;
        self.counters.xbar_busy_cycles += dur;
        self.counters.scratchpad_bytes += bytes;
        let landed = start + dur;
        self.home[wi] = Some(to);
        self.bank_ready[wi] = landed;
        self.wb_done[wi] = landed;
        self.copies[wi].retain(|&(cc, _)| cc != c as u32);
        self.rf_used[c] -= bytes;
        self.rf_member[wi] = NONE_U32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Program;
    use crate::expand::{expand, ExpandOptions};
    use crate::movement;
    use std::collections::HashMap;

    fn compile(p: &Program, arch: &ArchConfig) -> (Expanded, MovePlan, CycleSchedule) {
        let opts = ExpandOptions { machine: Some(arch.clone()), ..Default::default() };
        let ex = expand(p, &opts);
        let plan = movement::schedule(&ex, arch);
        let cs = schedule(&ex, &plan, arch);
        (ex, plan, cs)
    }

    fn tiny_pad(mb: u64) -> ArchConfig {
        ArchConfig::f1_default().with_scratchpad_mb(mb)
    }

    #[test]
    fn dependences_hold_in_time() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let arch = ArchConfig::f1_default();
        let (ex, _, cs) = compile(&p, &arch);
        for instr in ex.dfg.instrs() {
            for &v in &instr.inputs {
                if let Some(prod) = ex.dfg.producer(v) {
                    assert!(
                        cs.done_cycle[prod.0 as usize] <= cs.issue_cycle[instr.id.0 as usize],
                        "instr {:?} issues before its operand {:?} is available",
                        instr.id,
                        v
                    );
                }
            }
        }
        assert!(cs.makespan > 0);
    }

    #[test]
    fn no_fu_double_booking() {
        // No two ComputeEntrys may share (cluster, fu, fu_index) with
        // overlapping occupancy windows — checked directly here,
        // independent of the f1-sim checker.
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let arch = ArchConfig::f1_default();
        let (ex, _, cs) = compile(&p, &arch);
        let mut by_slot: HashMap<(usize, FuType, usize), Vec<u64>> = HashMap::new();
        for (c, stream) in cs.schedule.compute.iter().enumerate() {
            for e in stream {
                by_slot.entry((c, e.fu, e.fu_index)).or_default().push(e.cycle);
            }
        }
        for ((c, fu, slot), mut cycles) in by_slot {
            let occ = arch.occupancy(fu, ex.dfg.n);
            cycles.sort_unstable();
            for w in cycles.windows(2) {
                assert!(
                    w[1] >= w[0] + occ,
                    "cluster {c} {fu:?}[{slot}] double-booked: {} then {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn utilization_regression_matvec() {
        // The headline scheduling result: overlapped loads + critical-path
        // list scheduling keep average FU utilization above 15% (§8.2
        // reports ~30% across benchmarks; the greedy seed scheduler
        // managed ~6% on private inference).
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let arch = ArchConfig::f1_default();
        let (_, _, cs) = compile(&p, &arch);
        let total_fus: u64 =
            FuType::ALL.iter().map(|&f| arch.fus_per_cluster(f) as u64).sum::<u64>()
                * arch.clusters as u64;
        let busy: u64 = cs.counters.fu_busy_cycles.iter().sum();
        let util = busy as f64 / (total_fus * cs.makespan) as f64;
        assert!(util >= 0.15, "avg FU utilization {util:.3} regressed below 15%");
    }

    #[test]
    fn loads_overlap_compute() {
        // The overlapping property: the last load must not complete before
        // the first instruction issues (the seed scheduler serialized the
        // whole load prologue ahead of compute on big programs).
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let arch = ArchConfig::f1_default();
        let (_, _, cs) = compile(&p, &arch);
        let first_issue = cs.issue_cycle.iter().min().copied().unwrap();
        let last_load_end = cs
            .schedule
            .mem
            .iter()
            .filter(|m| m.dir == MemDir::Load)
            .map(|m| m.cycle + arch.mem_channel_cycles(m.bytes))
            .max()
            .unwrap();
        assert!(
            first_issue < last_load_end,
            "compute (first issue {first_issue}) must overlap the load stream (ends {last_load_end})"
        );
    }

    #[test]
    fn channels_load_concurrently() {
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let arch = ArchConfig::f1_default();
        let (_, _, cs) = compile(&p, &arch);
        let used: std::collections::HashSet<usize> =
            cs.schedule.mem.iter().map(|m| m.channel).collect();
        assert!(used.len() > 1, "only one HBM channel ever used");
        assert!(used.iter().all(|&c| c < arch.hbm_channels));
    }

    #[test]
    fn occupancy_gap_insertion() {
        let mut o = Occupancy::default();
        assert_eq!(o.probe(0, 10), 0);
        o.commit(0, 10);
        assert_eq!(o.probe(0, 10), 10);
        o.commit(20, 10);
        // A 10-wide request fits the [10, 20) gap; an 11-wide one skips it.
        assert_eq!(o.probe(0, 10), 10);
        assert_eq!(o.probe(0, 11), 30);
        assert_eq!(o.probe(12, 5), 12);
        o.commit(10, 10);
        assert_eq!(o.probe(0, 1), 30);
    }

    #[test]
    fn more_clusters_run_faster() {
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let mut small = ArchConfig::f1_default();
        small.clusters = 2;
        let big = ArchConfig::f1_default();
        let (_, _, cs_small) = compile(&p, &small);
        let (_, _, cs_big) = compile(&p, &big);
        assert!(
            cs_big.makespan < cs_small.makespan,
            "16 clusters ({}) should beat 2 ({})",
            cs_big.makespan,
            cs_small.makespan
        );
    }

    #[test]
    fn low_throughput_ntt_is_slower() {
        // Table 5, column "LT NTT": same aggregate throughput, worse time.
        // One expansion scheduled on both machines (as the table does), so
        // the key-switch chooser cannot mask the FU ablation.
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let ex = expand(&p, &ExpandOptions::default());
        let base = ArchConfig::f1_default();
        let mut lt = ArchConfig::f1_default();
        lt.low_throughput_ntt = true;
        let cs_base = schedule(&ex, &movement::schedule(&ex, &base), &base);
        let cs_lt = schedule(&ex, &movement::schedule(&ex, &lt), &lt);
        assert!(
            cs_lt.makespan > cs_base.makespan,
            "LT NTT {} must be slower than baseline {}",
            cs_lt.makespan,
            cs_base.makespan
        );
    }

    #[test]
    fn counters_accumulate() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let arch = ArchConfig::f1_default();
        let (_, plan, cs) = compile(&p, &arch);
        assert_eq!(cs.counters.hbm_bytes, plan.traffic.total());
        assert!(cs.counters.rf_bytes > 0);
        assert!(cs.counters.fu_busy_cycles.iter().sum::<u64>() > 0);
        assert!(cs.counters.hbm_channel_busy_cycles > 0);
    }

    #[test]
    fn seconds_conversion() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let arch = ArchConfig::f1_default();
        let (_, _, cs) = compile(&p, &arch);
        let s = cs.seconds(&arch);
        assert!((s - cs.makespan as f64 * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn consumers_gate_on_refetch_completion() {
        // The tentpole property: under a capacity-constrained scratchpad,
        // every consumer of a refetched value issues only after the
        // refetch completes, and the capacity pressure costs makespan.
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let arch = tiny_pad(2);
        let (ex, plan, cs) = compile(&p, &arch);
        let refetched: Vec<ValueId> = plan
            .events
            .iter()
            .filter_map(|e| match e {
                MoveEvent::Load { value, refetch: true, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert!(!refetched.is_empty(), "2 MB pad must force refetches");
        // Reconstruct per-value load completions and evictions, then
        // assert every read falls inside a residency interval.
        for &v in &refetched {
            let mut allocs: Vec<u64> = cs
                .schedule
                .mem
                .iter()
                .filter(|m| m.dir == MemDir::Load && m.value == v)
                .map(|m| m.cycle + arch.mem_channel_cycles(m.bytes) + arch.hbm_latency_cycles)
                .collect();
            if let Some(p) = ex.dfg.producer(v) {
                allocs.push(cs.done_cycle[p.0 as usize]);
            }
            let mut ends: Vec<u64> =
                cs.schedule.evict.iter().filter(|e| e.value == v).map(|e| e.cycle).collect();
            allocs.sort_unstable();
            ends.sort_unstable();
            for &u in ex.dfg.users(v) {
                let t = cs.issue_cycle[u.0 as usize];
                let covered = allocs
                    .iter()
                    .zip(ends.iter().map(Some).chain(std::iter::repeat(None)))
                    .any(|(&a, e)| a <= t && e.map(|&e| t <= e).unwrap_or(true));
                assert!(covered, "consumer {u:?} of {v:?} reads at {t} outside residency");
            }
        }
        // Capacity pressure must cost real cycles vs the 64 MB machine.
        let (_, _, cs_big) = compile(&p, &ArchConfig::f1_default());
        assert!(
            cs.makespan > cs_big.makespan,
            "2 MB pad ({}) must be slower than 64 MB ({})",
            cs.makespan,
            cs_big.makespan
        );
    }

    #[test]
    fn spills_share_channels_with_loads() {
        // Spill stores and refetches are co-scheduled on the same HBM
        // channel timelines as first loads — not replayed after compute.
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let arch = tiny_pad(2);
        let (_, _, cs) = compile(&p, &arch);
        let stores: Vec<&MemEntry> =
            cs.schedule.mem.iter().filter(|m| m.dir == MemDir::Store).collect();
        assert!(!stores.is_empty());
        let last_compute = cs.issue_cycle.iter().max().copied().unwrap();
        let overlapped = stores.iter().any(|m| m.cycle < last_compute);
        assert!(overlapped, "no spill store overlaps the compute window");
    }

    #[test]
    fn rf_overflow_rehomes_values() {
        // A dependence chain whose produced values exceed the per-cluster
        // register file: the scheduler must write some back to banks.
        let mut p = Program::new(1 << 14); // 64 KB values
        let x = p.input(4);
        let mut acc = p.add(x, x);
        for _ in 0..12 {
            acc = p.add(acc, x);
        }
        p.output(acc);
        let mut arch = ArchConfig::f1_default();
        arch.clusters = 1; // concentrate production on one register file
        arch.rf_bytes_per_cluster = 256 * 1024; // 4 values
        let (_, _, cs) = compile(&p, &arch);
        let writebacks = cs
            .schedule
            .net
            .iter()
            .filter(|e| {
                matches!(e.from, ComponentId::Cluster(_)) && matches!(e.to, ComponentId::Bank(_))
            })
            .count();
        assert!(writebacks > 0, "RF overflow must re-home values to banks");
    }
}
