//! Pass 3 — the cycle-level scheduler (§4.4), as a resource-explicit
//! list scheduler.
//!
//! Takes the data-movement plan and assigns every instruction to a
//! cluster and functional unit at an exact cycle. Every contended
//! resource is modeled explicitly with its own occupancy timeline:
//!
//! * **HBM channels** — `arch.hbm_channels` independent streams, each at
//!   the per-channel bandwidth. Loads issue earliest-need-first (pass 2's
//!   per-value need cycles) and run *concurrently with compute*, each
//!   value becoming available at its own completion cycle instead of the
//!   whole prologue serializing on one aggregate bandwidth counter.
//! * **Functional units** — per (cluster, class, instance) interval
//!   timelines with first-fit gap insertion, so a late-ready instruction
//!   never blocks an idle window.
//! * **Crossbar ports** — per (source, destination) lane occupancy
//!   (`net_busy`), `arch.xbar_ports` lanes per pair, instead of a flat
//!   per-hop constant. Consumers prefer their operands' home cluster.
//!
//! Ready instructions are ranked by critical-path depth on the DFG
//! (longest streaming path to a sink, [`f1_isa::dfg::Dfg::critical_depths`]),
//! not by pass-2 order.
//!
//! Timing uses F1's rate-matched streaming semantics: every standard unit
//! and 512-byte port produces and consumes at `lanes` elements per cycle,
//! so a dependent instruction can issue `latency` cycles after its
//! producer (Cray-style chaining), reading elements exactly as they are
//! produced. `done_cycle` records that availability cycle; the full
//! vector has drained `occupancy` cycles later, which is what `makespan`
//! accounts. Slow producers (the low-throughput ablation units) add a
//! catch-up term so a standard-rate consumer never outruns them. Because
//! the schedule is fully static, this pass doubles as the performance
//! model.

use crate::expand::Expanded;
use crate::movement::{MovePlan, PlannedXfer};
use f1_arch::energy::EnergyCounters;
use f1_arch::ArchConfig;
use f1_isa::dfg::{InstrId, ValueId};
use f1_isa::streams::{ComputeEntry, MemDir, MemEntry, NetEntry, StaticSchedule};
use f1_isa::{ComponentId, FuType};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// Cycles a value spends crossing one bit-sliced crossbar switch. The
/// transfer then streams behind the wavefront at the port rate, holding
/// its lane for `net_cycles(bytes)`.
pub const XBAR_HOP_CYCLES: u64 = 1;

/// The cycle-level schedule plus accounting the simulator verifies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleSchedule {
    /// Per-component static streams.
    pub schedule: StaticSchedule,
    /// Exact issue cycle per DFG instruction (indexed by instruction id).
    pub issue_cycle: Vec<u64>,
    /// Cycle each instruction's result becomes available to rate-matched
    /// consumers: `issue + latency`, plus the catch-up correction when
    /// the producer streams slower than the standard rate. The full
    /// vector has drained `occupancy` cycles later (accounted in
    /// `makespan`).
    pub done_cycle: Vec<u64>,
    /// Total makespan in compute cycles (last drained result or store).
    pub makespan: u64,
    /// Energy/traffic counters accumulated while scheduling (the
    /// simulator re-derives and cross-checks them).
    pub counters: EnergyCounters,
}

impl CycleSchedule {
    /// Execution time in seconds at the configuration's clock.
    pub fn seconds(&self, arch: &ArchConfig) -> f64 {
        self.makespan as f64 / (arch.freq_ghz * 1e9)
    }
}

/// Streaming availability weight of one instruction: how long after its
/// issue cycle a rate-matched consumer may issue. `latency` for standard
/// units; slow units add the cycles by which they trail the standard
/// streaming rate so consumers never read elements that do not exist yet.
pub fn stream_weight(arch: &ArchConfig, fu: FuType, n: usize) -> u64 {
    let base = (n / arch.lanes).max(1) as u64;
    let occ = arch.occupancy(fu, n);
    arch.latency(fu, n) + occ.saturating_sub(base)
}

/// Sorted, disjoint busy intervals for one exclusive resource (FU
/// instance, crossbar lane, HBM channel) with first-fit gap insertion.
#[derive(Debug, Default, Clone)]
struct Occupancy {
    busy: Vec<(u64, u64)>,
}

impl Occupancy {
    /// Earliest `start >= ready` such that `[start, start + len)` is free.
    fn probe(&self, ready: u64, len: u64) -> u64 {
        let mut t = ready;
        let i = self.busy.partition_point(|&(_, end)| end <= t);
        for &(s, e) in &self.busy[i..] {
            if t + len <= s {
                break;
            }
            t = t.max(e);
        }
        t
    }

    /// Reserves `[start, start + len)`; the caller must have probed.
    fn commit(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let pos = self.busy.partition_point(|&(s, _)| s < start);
        debug_assert!(pos == 0 || self.busy[pos - 1].1 <= start, "overlapping commit");
        debug_assert!(pos == self.busy.len() || start + len <= self.busy[pos].0);
        self.busy.insert(pos, (start, start + len));
    }
}

/// Schedules the plan onto the machine.
pub fn schedule(expanded: &Expanded, plan: &MovePlan, arch: &ArchConfig) -> CycleSchedule {
    let dfg = &expanded.dfg;
    let n = dfg.n;
    let n_instr = dfg.instrs().len();
    let mut out = StaticSchedule::new(arch.clusters);
    let mut counters = EnergyCounters::default();

    // Rank = streaming critical-path depth (matches the availability
    // semantics the schedule is checked under).
    let depth = dfg.critical_depths(&|i| stream_weight(arch, i.op.fu_type(), n));

    // --- Off-chip loads: independent channels, earliest-need-first,
    // concurrent with compute. Only producer-less values (inputs, hints)
    // can load eagerly; spilled-intermediate refetches wait below.
    let mut channels: Vec<Occupancy> = vec![Occupancy::default(); arch.hbm_channels.max(1)];
    let mut avail: HashMap<ValueId, u64> = HashMap::new();
    let mut home: HashMap<ValueId, ComponentId> = HashMap::new();
    let mut deferred: Vec<&PlannedXfer> = Vec::new();
    let mut loads: Vec<&PlannedXfer> = Vec::new();
    for x in &plan.xfers {
        if x.dir == MemDir::Load && dfg.producer(x.value).is_none() {
            loads.push(x);
        } else {
            deferred.push(x);
        }
    }
    // First loads are keyed by their value's earliest need; capacity
    // reloads of the same value (pass 2 eviction artifacts) replay
    // traffic for data pass 3 keeps resident, so they pack strictly
    // behind every first load and never delay a compulsory fetch.
    let mut seen = std::collections::HashSet::new();
    let mut keyed: Vec<(u64, &PlannedXfer)> = loads
        .into_iter()
        .map(|x| {
            let key = if seen.insert(x.value) {
                plan.earliest_need.get(&x.value).copied().unwrap_or(u64::MAX - 1)
            } else {
                u64::MAX
            };
            (key, x)
        })
        .collect();
    keyed.sort_by_key(|&(k, _)| k);
    for (_, x) in keyed {
        let dur = arch.mem_channel_cycles(x.bytes);
        let (ci, start) = channels
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.probe(0, dur)))
            .min_by_key(|&(i, s)| (s, i))
            .unwrap();
        channels[ci].commit(start, dur);
        let done = start + dur + arch.hbm_latency_cycles;
        let bank = (x.value.0 as usize) % arch.scratchpad_banks;
        out.mem.push(MemEntry {
            cycle: start,
            dir: MemDir::Load,
            value: x.value,
            bytes: x.bytes,
            bank,
            channel: ci,
        });
        counters.hbm_bytes += x.bytes;
        counters.scratchpad_bytes += x.bytes;
        counters.hbm_channel_busy_cycles += dur;
        // First arrival wins: a capacity reload re-fetches identical bits.
        let a = avail.entry(x.value).or_insert(done);
        *a = (*a).min(done);
        home.entry(x.value).or_insert(ComponentId::Bank(bank));
    }

    // --- Compute: list scheduling from a ready-heap ranked by depth.
    let mut fu_slots: Vec<HashMap<FuType, Vec<Occupancy>>> = (0..arch.clusters)
        .map(|_| {
            FuType::ALL
                .iter()
                .map(|&fu| (fu, vec![Occupancy::default(); arch.fus_per_cluster(fu)]))
                .collect()
        })
        .collect();
    // net_busy lanes per (source component, destination cluster).
    let mut net_busy: HashMap<(ComponentId, usize), Vec<Occupancy>> = HashMap::new();
    // Clusters already holding a copy of a value, and since when.
    let mut copies: HashMap<(ValueId, usize), u64> = HashMap::new();
    let mut issue_cycle = vec![0u64; n_instr];
    let mut done_cycle = vec![0u64; n_instr];
    let mut makespan = 0u64;

    let mut indeg: Vec<usize> = dfg
        .instrs()
        .iter()
        .map(|i| i.inputs.iter().filter(|v| dfg.producer(**v).is_some()).count())
        .collect();
    let mut heap: BinaryHeap<(u64, std::cmp::Reverse<u32>)> = BinaryHeap::new();
    for (i, &d) in indeg.iter().enumerate() {
        if d == 0 {
            heap.push((depth[i], std::cmp::Reverse(i as u32)));
        }
    }
    let mut scheduled = 0usize;
    while let Some((_, std::cmp::Reverse(id))) = heap.pop() {
        let iid = InstrId(id);
        let instr = dfg.instr(iid);
        let fu = instr.op.fu_type();
        let occ = arch.occupancy(fu, n);
        let weight = stream_weight(arch, fu, n);
        // Arrival cycle of one operand on one cluster (without committing).
        let arrival = |v: ValueId, c: usize| -> (u64, bool) {
            let t0 = avail.get(&v).copied().unwrap_or(0);
            if home.get(&v) == Some(&ComponentId::Cluster(c)) {
                return (t0, false);
            }
            if let Some(&tc) = copies.get(&(v, c)) {
                return (tc, false);
            }
            let from = home
                .get(&v)
                .copied()
                .unwrap_or(ComponentId::Bank((v.0 as usize) % arch.scratchpad_banks));
            let dur = arch.net_cycles(dfg.value(v).bytes);
            let start = net_busy
                .get(&(from, c))
                .map(|lanes| lanes.iter().map(|l| l.probe(t0, dur)).min().unwrap())
                .unwrap_or(t0);
            (start + XBAR_HOP_CYCLES, true)
        };
        // Pick the cluster with the earliest start; ties prefer operand
        // affinity (fewest remote bytes), then load balance.
        let mut best: Option<(u64, u64, usize, usize)> = None;
        for c in 0..arch.clusters {
            let mut ready = 0u64;
            let mut remote = 0u64;
            for &v in &instr.inputs {
                let (t, is_remote) = arrival(v, c);
                if is_remote {
                    remote += dfg.value(v).bytes;
                }
                ready = ready.max(t);
            }
            let start = fu_slots[c][&fu].iter().map(|s| s.probe(ready, occ)).min().unwrap();
            let key = (start, remote, out.compute[c].len(), c);
            if best.map(|b| (key.0, key.1, key.2) < (b.0, b.1, b.2)).unwrap_or(true) {
                best = Some(key);
            }
        }
        let (_, _, _, cluster) = best.unwrap();
        // Commit operand transfers on the chosen cluster.
        let mut ready = 0u64;
        for &v in &instr.inputs {
            let t0 = avail.get(&v).copied().unwrap_or(0);
            let t = if home.get(&v) == Some(&ComponentId::Cluster(cluster)) {
                t0
            } else if let Some(&tc) = copies.get(&(v, cluster)) {
                tc
            } else {
                let from = home
                    .get(&v)
                    .copied()
                    .unwrap_or(ComponentId::Bank((v.0 as usize) % arch.scratchpad_banks));
                let bytes = dfg.value(v).bytes;
                let dur = arch.net_cycles(bytes);
                let lanes = net_busy
                    .entry((from, cluster))
                    .or_insert_with(|| vec![Occupancy::default(); arch.xbar_ports.max(1)]);
                let (li, start) = lanes
                    .iter()
                    .enumerate()
                    .map(|(i, l)| (i, l.probe(t0, dur)))
                    .min_by_key(|&(i, s)| (s, i))
                    .unwrap();
                lanes[li].commit(start, dur);
                out.net.push(NetEntry {
                    cycle: start,
                    value: v,
                    from,
                    to: ComponentId::Cluster(cluster),
                    bytes,
                    port: li,
                });
                counters.noc_bytes += bytes;
                counters.xbar_busy_cycles += dur;
                let arrive = start + XBAR_HOP_CYCLES;
                copies.insert((v, cluster), arrive);
                arrive
            };
            ready = ready.max(t);
            counters.rf_bytes += dfg.value(v).bytes;
        }
        let (slot, start) = fu_slots[cluster]
            .get(&fu)
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.probe(ready, occ)))
            .min_by_key(|&(i, s)| (s, i))
            .unwrap();
        fu_slots[cluster].get_mut(&fu).unwrap()[slot].commit(start, occ);
        issue_cycle[id as usize] = start;
        let available = start + weight;
        done_cycle[id as usize] = available;
        makespan = makespan.max(start + occ + arch.latency(fu, n));
        avail.insert(instr.output, available);
        home.insert(instr.output, ComponentId::Cluster(cluster));
        counters.add_fu_busy(fu, occ);
        counters.rf_bytes += dfg.value(instr.output).bytes;
        out.compute[cluster].push(ComputeEntry { cycle: start, instr: iid, fu, fu_index: slot });
        for &u in dfg.users(instr.output) {
            let ui = u.0 as usize;
            indeg[ui] -= 1;
            if indeg[ui] == 0 {
                heap.push((depth[ui], std::cmp::Reverse(u.0)));
            }
        }
        scheduled += 1;
    }
    assert_eq!(scheduled, n_instr, "DFG contains a dependence cycle");

    // --- Stores and spilled-intermediate refetches: each waits for its
    // value (and, for a refetch, the spill store that put it off-chip),
    // then packs into channel idle gaps.
    //
    // Model boundary: pass 3 relaxes pass 2's capacity constraint — it
    // keeps every produced value resident, so consumers read the
    // producer's copy and spill/refetch pairs are replayed here purely to
    // honor pass 2's traffic plan (ordered after production and after the
    // spill store; the checker enforces both). A consumer is therefore
    // never gated on a refetch. At the paper's 64 MB scratchpad no
    // benchmark spills; ROADMAP.md tracks co-scheduling refetches with
    // compute for capacity-constrained configurations.
    let mut spill_end: HashMap<ValueId, u64> = HashMap::new();
    for x in deferred {
        let dur = arch.mem_channel_cycles(x.bytes);
        let value_ready = avail.get(&x.value).copied().unwrap_or(0);
        let ready = match x.dir {
            MemDir::Store => value_ready,
            MemDir::Load => value_ready.max(spill_end.get(&x.value).copied().unwrap_or(0)),
        };
        let (ci, start) = channels
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.probe(ready, dur)))
            .min_by_key(|&(i, s)| (s, i))
            .unwrap();
        channels[ci].commit(start, dur);
        let bank = (x.value.0 as usize) % arch.scratchpad_banks;
        out.mem.push(MemEntry {
            cycle: start,
            dir: x.dir,
            value: x.value,
            bytes: x.bytes,
            bank,
            channel: ci,
        });
        counters.hbm_bytes += x.bytes;
        counters.scratchpad_bytes += x.bytes;
        counters.hbm_channel_busy_cycles += dur;
        if x.dir == MemDir::Store {
            spill_end.insert(x.value, start + dur);
        }
        makespan = makespan.max(start + dur);
    }

    out.mem.sort_by_key(|m| m.cycle);
    for stream in out.compute.iter_mut() {
        stream.sort_by_key(|e| e.cycle);
    }
    out.net.sort_by_key(|e| e.cycle);
    out.makespan = makespan;
    out.validate_monotone();

    CycleSchedule { schedule: out, issue_cycle, done_cycle, makespan, counters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Program;
    use crate::expand::{expand, ExpandOptions};
    use crate::movement;

    fn compile(p: &Program, arch: &ArchConfig) -> (Expanded, MovePlan, CycleSchedule) {
        let ex = expand(p, &ExpandOptions::default());
        let plan = movement::schedule(&ex, arch);
        let cs = schedule(&ex, &plan, arch);
        (ex, plan, cs)
    }

    #[test]
    fn dependences_hold_in_time() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let arch = ArchConfig::f1_default();
        let (ex, _, cs) = compile(&p, &arch);
        for instr in ex.dfg.instrs() {
            for &v in &instr.inputs {
                if let Some(prod) = ex.dfg.producer(v) {
                    assert!(
                        cs.done_cycle[prod.0 as usize] <= cs.issue_cycle[instr.id.0 as usize],
                        "instr {:?} issues before its operand {:?} is available",
                        instr.id,
                        v
                    );
                }
            }
        }
        assert!(cs.makespan > 0);
    }

    #[test]
    fn no_fu_double_booking() {
        // No two ComputeEntrys may share (cluster, fu, fu_index) with
        // overlapping occupancy windows — checked directly here,
        // independent of the f1-sim checker.
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let arch = ArchConfig::f1_default();
        let (ex, _, cs) = compile(&p, &arch);
        let mut by_slot: HashMap<(usize, FuType, usize), Vec<u64>> = HashMap::new();
        for (c, stream) in cs.schedule.compute.iter().enumerate() {
            for e in stream {
                by_slot.entry((c, e.fu, e.fu_index)).or_default().push(e.cycle);
            }
        }
        for ((c, fu, slot), mut cycles) in by_slot {
            let occ = arch.occupancy(fu, ex.dfg.n);
            cycles.sort_unstable();
            for w in cycles.windows(2) {
                assert!(
                    w[1] >= w[0] + occ,
                    "cluster {c} {fu:?}[{slot}] double-booked: {} then {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn utilization_regression_matvec() {
        // The headline scheduling result: overlapped loads + critical-path
        // list scheduling keep average FU utilization above 15% (§8.2
        // reports ~30% across benchmarks; the greedy seed scheduler
        // managed ~6% on private inference).
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let arch = ArchConfig::f1_default();
        let (_, _, cs) = compile(&p, &arch);
        let total_fus: u64 =
            FuType::ALL.iter().map(|&f| arch.fus_per_cluster(f) as u64).sum::<u64>()
                * arch.clusters as u64;
        let busy: u64 = cs.counters.fu_busy_cycles.iter().sum();
        let util = busy as f64 / (total_fus * cs.makespan) as f64;
        assert!(util >= 0.15, "avg FU utilization {util:.3} regressed below 15%");
    }

    #[test]
    fn loads_overlap_compute() {
        // The tentpole property: the last load must not complete before
        // the first instruction issues (the seed scheduler serialized the
        // whole load prologue ahead of compute on big programs).
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let arch = ArchConfig::f1_default();
        let (_, _, cs) = compile(&p, &arch);
        let first_issue = cs.issue_cycle.iter().min().copied().unwrap();
        let last_load_end = cs
            .schedule
            .mem
            .iter()
            .filter(|m| m.dir == MemDir::Load)
            .map(|m| m.cycle + arch.mem_channel_cycles(m.bytes))
            .max()
            .unwrap();
        assert!(
            first_issue < last_load_end,
            "compute (first issue {first_issue}) must overlap the load stream (ends {last_load_end})"
        );
    }

    #[test]
    fn channels_load_concurrently() {
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let arch = ArchConfig::f1_default();
        let (_, _, cs) = compile(&p, &arch);
        let used: std::collections::HashSet<usize> =
            cs.schedule.mem.iter().map(|m| m.channel).collect();
        assert!(used.len() > 1, "only one HBM channel ever used");
        assert!(used.iter().all(|&c| c < arch.hbm_channels));
    }

    #[test]
    fn occupancy_gap_insertion() {
        let mut o = Occupancy::default();
        assert_eq!(o.probe(0, 10), 0);
        o.commit(0, 10);
        assert_eq!(o.probe(0, 10), 10);
        o.commit(20, 10);
        // A 10-wide request fits the [10, 20) gap; an 11-wide one skips it.
        assert_eq!(o.probe(0, 10), 10);
        assert_eq!(o.probe(0, 11), 30);
        assert_eq!(o.probe(12, 5), 12);
        o.commit(10, 10);
        assert_eq!(o.probe(0, 1), 30);
    }

    #[test]
    fn more_clusters_run_faster() {
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let mut small = ArchConfig::f1_default();
        small.clusters = 2;
        let big = ArchConfig::f1_default();
        let (_, _, cs_small) = compile(&p, &small);
        let (_, _, cs_big) = compile(&p, &big);
        assert!(
            cs_big.makespan < cs_small.makespan,
            "16 clusters ({}) should beat 2 ({})",
            cs_big.makespan,
            cs_small.makespan
        );
    }

    #[test]
    fn low_throughput_ntt_is_slower() {
        // Table 5, column "LT NTT": same aggregate throughput, worse time.
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let base = ArchConfig::f1_default();
        let mut lt = ArchConfig::f1_default();
        lt.low_throughput_ntt = true;
        let (_, _, cs_base) = compile(&p, &base);
        let (_, _, cs_lt) = compile(&p, &lt);
        assert!(
            cs_lt.makespan > cs_base.makespan,
            "LT NTT {} must be slower than baseline {}",
            cs_lt.makespan,
            cs_base.makespan
        );
    }

    #[test]
    fn counters_accumulate() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let arch = ArchConfig::f1_default();
        let (_, plan, cs) = compile(&p, &arch);
        assert_eq!(cs.counters.hbm_bytes, plan.traffic.total());
        assert!(cs.counters.rf_bytes > 0);
        assert!(cs.counters.fu_busy_cycles.iter().sum::<u64>() > 0);
        assert!(cs.counters.hbm_channel_busy_cycles > 0);
    }

    #[test]
    fn seconds_conversion() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let arch = ArchConfig::f1_default();
        let (_, _, cs) = compile(&p, &arch);
        let s = cs.seconds(&arch);
        assert!((s - cs.makespan as f64 * 1e-9).abs() < 1e-15);
    }
}
