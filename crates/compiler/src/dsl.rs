//! The high-level FHE DSL of Listing 2.
//!
//! Programs are written at the level of the FHE interface (§2.1):
//! ciphertext inputs, homomorphic multiply/add/rotate, and explicit
//! noise-budget management via `mod_switch` (the compiler does not
//! automate noise management; the DSL encodes the desired budget, §4.1).

use serde::{Deserialize, Serialize};

/// Identifies a ciphertext (or plaintext operand) in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CtId(pub u32);

/// One homomorphic operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum HomOp {
    /// An encrypted input at a given level.
    Input {
        /// Number of RNS limbs at entry.
        level: usize,
    },
    /// An unencrypted operand (one polynomial instead of two; the cheap
    /// multiplicand of §2.1).
    PlainInput {
        /// Number of RNS limbs at entry.
        level: usize,
    },
    /// Homomorphic addition.
    Add {
        /// Left operand.
        a: CtId,
        /// Right operand.
        b: CtId,
    },
    /// Addition of an unencrypted operand.
    AddPlain {
        /// Ciphertext operand.
        a: CtId,
        /// Plaintext operand.
        p: CtId,
    },
    /// Homomorphic multiplication (tensor + key-switch, §2.2.1).
    Mul {
        /// Left operand.
        a: CtId,
        /// Right operand.
        b: CtId,
    },
    /// Multiplication by an unencrypted operand (no key-switch needed).
    MulPlain {
        /// Ciphertext operand.
        a: CtId,
        /// Plaintext operand.
        p: CtId,
    },
    /// Homomorphic automorphism `σ_k` + key-switch (rotations use
    /// `k = 3^amount`).
    Aut {
        /// Ciphertext operand.
        a: CtId,
        /// Automorphism exponent.
        k: usize,
    },
    /// Modulus switch to the next level down (§2.2.2).
    ModSwitch {
        /// Ciphertext operand.
        a: CtId,
    },
}

/// A homomorphic program: a DAG of [`HomOp`]s over ring dimension `N`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// Ring dimension.
    pub n: usize,
    ops: Vec<HomOp>,
    /// level[i] = RNS limbs of the value produced by op i.
    levels: Vec<usize>,
    /// Whether the produced value is a plaintext (single polynomial).
    plain: Vec<bool>,
    outputs: Vec<CtId>,
}

impl Program {
    /// Creates an empty program over ring dimension `n` (Listing 2's
    /// `Program(N = 16384)`).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "ring dimension must be a power of two");
        Self { n, ops: Vec::new(), levels: Vec::new(), plain: Vec::new(), outputs: Vec::new() }
    }

    fn push(&mut self, op: HomOp, level: usize, plain: bool) -> CtId {
        let id = CtId(self.ops.len() as u32);
        self.ops.push(op);
        self.levels.push(level);
        self.plain.push(plain);
        id
    }

    /// Declares an encrypted input with `level` RNS limbs (Listing 2's
    /// `p.Input(L = 16)`).
    pub fn input(&mut self, level: usize) -> CtId {
        assert!(level >= 1);
        self.push(HomOp::Input { level }, level, false)
    }

    /// Declares an unencrypted input.
    pub fn plain_input(&mut self, level: usize) -> CtId {
        assert!(level >= 1);
        self.push(HomOp::PlainInput { level }, level, true)
    }

    /// Homomorphic addition.
    pub fn add(&mut self, a: CtId, b: CtId) -> CtId {
        let l = self.join_levels(a, b);
        assert!(!self.plain[a.0 as usize] && !self.plain[b.0 as usize]);
        self.push(HomOp::Add { a, b }, l, false)
    }

    /// Adds an unencrypted operand to a ciphertext. The plaintext may sit
    /// at a higher level (its excess RNS limbs are ignored); the result
    /// takes the ciphertext's level.
    pub fn add_plain(&mut self, a: CtId, p: CtId) -> CtId {
        let l = self.join_plain_level(a, p);
        assert!(self.plain[p.0 as usize], "second operand must be plain");
        self.push(HomOp::AddPlain { a, p }, l, false)
    }

    /// Homomorphic multiplication (Listing 2's `Mul`).
    pub fn mul(&mut self, a: CtId, b: CtId) -> CtId {
        let l = self.join_levels(a, b);
        assert!(!self.plain[a.0 as usize] && !self.plain[b.0 as usize]);
        self.push(HomOp::Mul { a, b }, l, false)
    }

    /// Multiplication by an unencrypted operand. As with
    /// [`Self::add_plain`], the plaintext's level only needs to cover the
    /// ciphertext's.
    pub fn mul_plain(&mut self, a: CtId, p: CtId) -> CtId {
        let l = self.join_plain_level(a, p);
        assert!(self.plain[p.0 as usize], "second operand must be plain");
        self.push(HomOp::MulPlain { a, p }, l, false)
    }

    /// Homomorphic rotation by `amount` slots (Listing 2's `Rotate`):
    /// automorphism with exponent `3^amount mod 2N`.
    pub fn rotate(&mut self, a: CtId, amount: usize) -> CtId {
        let two_n = 2 * self.n;
        let mut k = 1usize;
        for _ in 0..amount {
            k = k * 3 % two_n;
        }
        self.aut(a, k)
    }

    /// Homomorphic automorphism with an explicit exponent.
    pub fn aut(&mut self, a: CtId, k: usize) -> CtId {
        assert!(k % 2 == 1 && k < 2 * self.n, "invalid automorphism exponent {k}");
        let l = self.levels[a.0 as usize];
        self.push(HomOp::Aut { a, k }, l, false)
    }

    /// Modulus switch one level down.
    pub fn mod_switch(&mut self, a: CtId) -> CtId {
        let l = self.levels[a.0 as usize];
        assert!(l >= 2, "cannot switch below level 1");
        self.push(HomOp::ModSwitch { a }, l - 1, false)
    }

    /// The `innerSum` idiom of Listing 2: `log2(count)` rotate-and-add
    /// steps that leave every slot holding the sum.
    pub fn inner_sum(&mut self, mut x: CtId, count: usize) -> CtId {
        assert!(count.is_power_of_two());
        let steps = count.trailing_zeros();
        for i in 0..steps {
            let r = self.rotate(x, 1 << i);
            x = self.add(x, r);
        }
        x
    }

    /// Marks a value as a program output.
    pub fn output(&mut self, x: CtId) {
        self.outputs.push(x);
    }

    fn join_levels(&self, a: CtId, b: CtId) -> usize {
        let (la, lb) = (self.levels[a.0 as usize], self.levels[b.0 as usize]);
        assert_eq!(la, lb, "operand levels differ ({la} vs {lb}); insert mod_switch");
        la
    }

    fn join_plain_level(&self, a: CtId, p: CtId) -> usize {
        let (la, lp) = (self.levels[a.0 as usize], self.levels[p.0 as usize]);
        assert!(lp >= la, "plaintext level {lp} does not cover ciphertext level {la}");
        la
    }

    /// All operations, in creation order.
    pub fn ops(&self) -> &[HomOp] {
        &self.ops
    }

    /// Level of a value.
    pub fn level_of(&self, x: CtId) -> usize {
        self.levels[x.0 as usize]
    }

    /// Whether a value is a plaintext.
    pub fn is_plain(&self, x: CtId) -> bool {
        self.plain[x.0 as usize]
    }

    /// Program outputs.
    pub fn outputs(&self) -> &[CtId] {
        &self.outputs
    }

    /// Builds the 4×16K matrix-vector multiply of Listing 2 at level `l`
    /// (the running example of §4.1).
    pub fn listing2_matvec(n: usize, l: usize, rows: usize) -> Self {
        let mut p = Self::new(n);
        let m_rows: Vec<CtId> = (0..rows).map(|_| p.input(l)).collect();
        let v = p.input(l);
        for &row in &m_rows {
            let prod = p.mul(row, v);
            let sum = p.inner_sum(prod, n);
            p.output(sum);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing2_shape() {
        // 4 multiplies + log2(16K)=14 rotations and adds per row.
        let p = Program::listing2_matvec(1 << 14, 16, 4);
        let muls = p.ops().iter().filter(|o| matches!(o, HomOp::Mul { .. })).count();
        let auts = p.ops().iter().filter(|o| matches!(o, HomOp::Aut { .. })).count();
        let adds = p.ops().iter().filter(|o| matches!(o, HomOp::Add { .. })).count();
        assert_eq!(muls, 4);
        assert_eq!(auts, 4 * 14);
        assert_eq!(adds, 4 * 14);
        assert_eq!(p.outputs().len(), 4);
    }

    #[test]
    fn rotations_use_3_pow_k() {
        let mut p = Program::new(1024);
        let x = p.input(2);
        p.rotate(x, 2);
        match p.ops().last().unwrap() {
            HomOp::Aut { k, .. } => assert_eq!(*k, 9),
            other => panic!("expected Aut, got {other:?}"),
        }
    }

    #[test]
    fn mod_switch_drops_level() {
        let mut p = Program::new(1024);
        let x = p.input(3);
        let y = p.mod_switch(x);
        assert_eq!(p.level_of(y), 2);
    }

    #[test]
    #[should_panic(expected = "levels differ")]
    fn level_mismatch_is_rejected() {
        let mut p = Program::new(1024);
        let x = p.input(3);
        let y = p.input(2);
        p.add(x, y);
    }

    #[test]
    fn inner_sum_emits_log_steps() {
        let mut p = Program::new(1024);
        let x = p.input(2);
        let _ = p.inner_sum(x, 1024);
        let auts = p.ops().iter().filter(|o| matches!(o, HomOp::Aut { .. })).count();
        assert_eq!(auts, 10);
    }
}
