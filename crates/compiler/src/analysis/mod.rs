//! Static analyses over the [`FheProgram`] IR.
//!
//! F1 leaves noise management and parameter correctness to the
//! programmer (§3); this module is the compiler's answer — a composable
//! static-analysis framework that *proves* properties of a program
//! before the scheduling passes spend minutes on it:
//!
//! * [`dataflow`] — the generic forward engine: a worklist over the
//!   dense creation-order ids driving per-analysis transfer functions.
//! * [`noise`] — abstract interpretation of noise growth in bits per
//!   node (tracked-estimate and worst-case-bound recurrences from
//!   [`f1_fhe::noise`]), reporting each node's remaining budget margin
//!   and the critical noise path.
//! * [`typing`] — the scheme-typing validator: re-proves SSA
//!   well-formedness, level monotonicity, CKKS scale bookkeeping, GSW
//!   restrictions and input-ordinal integrity from scratch, and powers
//!   the between-pass verification [`crate::ir::passes::optimize`] runs
//!   so a miscompiling pass is caught at the boundary that introduced
//!   it.
//! * [`pressure`] — peak-live-ciphertext-bytes from IR liveness vs the
//!   [`f1_arch::ArchConfig`] scratchpad, flagging programs that will
//!   thrash the pad before pass 2/3 run.
//! * [`lints`] — the [`Lint`] trait and registry binding it all into
//!   machine-readable diagnostics (the `analyze` bin in `f1-bench`
//!   serializes them into `ANALYSIS.json`; CI fails on any
//!   [`Severity::Error`]).
//! * [`param_search`] — the `(N, L)` parameter search: binary-searches
//!   the smallest modulus chain whose automatically-managed program
//!   (see [`crate::ir::rescale`]) proves a requested worst-case noise
//!   margin, then sizes the ring for a security target.
//!
//! Entry point: [`Analyzer::analyze`] runs everything and returns an
//! [`AnalysisReport`].

pub mod dataflow;
pub mod lints;
pub mod noise;
pub mod param_search;
pub mod pressure;
pub mod typing;

use crate::ir::{FheProgram, IrId};
use f1_arch::ArchConfig;

pub use dataflow::{run_forward, ForwardAnalysis};
pub use lints::{AnalysisContext, Lint, LintRegistry};
pub use noise::NoiseReport;
pub use param_search::{SearchResult, SearchSpec};
pub use pressure::PressureReport;

/// How bad a diagnostic is. `Error` means the program is wrong (ill-typed
/// or statically guaranteed to fail); `Warning` means it is suspicious or
/// unproven; `Info` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious or statically unproven, but not known-broken.
    Warning,
    /// The program violates an invariant or cannot work.
    Error,
}

impl Severity {
    /// Lower-case label (`"error"`, `"warning"`, `"info"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One machine-readable finding: a rule id (`family::name`), a severity,
/// an optional anchoring node and a human message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `"typing::type-drift"`.
    pub rule: &'static str,
    /// Severity after any registry overrides.
    pub severity: Severity,
    /// The IR node the finding anchors to, if any.
    pub node: Option<IrId>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(rule: &'static str, node: Option<IrId>, message: String) -> Self {
        Self { rule, severity: Severity::Error, node, message }
    }

    /// Builds a warning diagnostic.
    pub fn warning(rule: &'static str, node: Option<IrId>, message: String) -> Self {
        Self { rule, severity: Severity::Warning, node, message }
    }

    /// Builds an info diagnostic.
    pub fn info(rule: &'static str, node: Option<IrId>, message: String) -> Self {
        Self { rule, severity: Severity::Info, node, message }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.node {
            Some(n) => {
                write!(f, "{}: [{}] node %{}: {}", self.severity, self.rule, n.0, self.message)
            }
            None => write!(f, "{}: [{}] {}", self.severity, self.rule, self.message),
        }
    }
}

/// Everything-at-once result of [`Analyzer::analyze`].
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The noise-budget abstract interpretation.
    pub noise: NoiseReport,
    /// The scratchpad pressure analysis.
    pub pressure: PressureReport,
    /// All lint findings, in registry order then node order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Whether any Error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }
}

/// The analysis driver: owns a lint registry and an architecture model
/// and runs the full framework over a program.
pub struct Analyzer {
    registry: LintRegistry,
    arch: ArchConfig,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer {
    /// An analyzer with the default lint set against the F1 default
    /// machine.
    pub fn new() -> Self {
        Self { registry: LintRegistry::default_set(), arch: ArchConfig::f1_default() }
    }

    /// Replaces the architecture model (pressure analysis capacity).
    pub fn with_arch(mut self, arch: ArchConfig) -> Self {
        self.arch = arch;
        self
    }

    /// Mutable access to the lint registry (to register extra lints or
    /// override severities).
    pub fn registry_mut(&mut self) -> &mut LintRegistry {
        &mut self.registry
    }

    /// Runs every analysis and lint over `p`.
    pub fn analyze(&self, p: &FheProgram) -> AnalysisReport {
        let noise = noise::analyze(p);
        let pressure = pressure::analyze(p, &self.arch);
        let ctx = AnalysisContext { noise: &noise, pressure: &pressure };
        let diagnostics = self.registry.run(p, &ctx);
        AnalysisReport { noise, pressure, diagnostics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Scheme;

    #[test]
    fn clean_program_has_no_errors() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(4);
        let y = p.input(4);
        let m = p.mul(x, y);
        let d = p.mod_switch(m);
        p.output(d);
        let report = Analyzer::new().analyze(&p);
        assert!(!report.has_errors(), "diagnostics: {:?}", report.diagnostics);
        assert!(report.noise.min_margin_wc > 0.0);
    }

    #[test]
    fn diagnostic_display_is_readable() {
        let d = Diagnostic::error("typing::ssa", Some(IrId(3)), "bad operand".into());
        assert_eq!(d.to_string(), "error: [typing::ssa] node %3: bad operand");
    }
}
