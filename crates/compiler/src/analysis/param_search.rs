//! `(N, L)` parameter search driven by the static worst-case noise bound.
//!
//! The Sunscreen-style parameter search compiles a circuit, *measures*
//! noise by trial decryption, and retries with bigger parameters until
//! decryption succeeds. This module keeps the compile-retry shape but
//! swaps the oracle: the sound worst-case bound from
//! [`super::noise`] evaluated on the program *after* automatic rescale
//! insertion ([`crate::ir::rescale::reflow_at`]). No trial decryptions —
//! the search is pure static analysis, then the caller validates the
//! found point once against the real software BGV stack (the
//! `param_search` bin in `f1-bench` does exactly that via the existing
//! differential machinery).
//!
//! The search is two-dimensional but monotone in both axes:
//!
//! 1. **L** — binary search the smallest limb count such that the
//!    managed program's minimum worst-case margin meets the requested
//!    `target_margin_bits` (each extra limb buys `limb_bits - 1` budget
//!    bits, so margin is monotone in `L`).
//! 2. **N** — the smallest power-of-two ring dimension that keeps
//!    `security_level_bits(N, L·limb_bits) ≥ min_security_bits` per the
//!    HE-standard table. A larger ring raises the convolution noise
//!    (√N-grade), so after raising `N` the margin is re-proven under the
//!    larger-ring model and `L` re-searched if it regressed — iterated
//!    to a fixpoint (a handful of rounds; both axes are monotone).
//!
//! The managed program keeps the *structural* ring dimension of the
//! input (automorphism exponents live mod `2N`); `n_secure` reports the
//! ring the parameters must be instantiated at. For every F1 benchmark
//! the structural ring (2^14) already clears 128-bit security at the
//! paper's chain lengths; deep bootstrapping chains honestly report the
//! larger ring they would need.

use super::noise::{analyze_with, default_model};
use crate::ir::rescale::{insert_rescales_with, NoisePolicy, RescaleStats};
use crate::ir::{FheProgram, Scheme};
use f1_fhe::noise::NoiseModel;
use f1_fhe::params::security_level_bits;
use serde::{Deserialize, Serialize};

/// What the search must achieve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchSpec {
    /// Required minimum worst-case noise margin (bits) on the managed
    /// program.
    pub target_margin_bits: f64,
    /// Required security level (bits) for the found `(N, L)` point.
    pub min_security_bits: f64,
    /// Rescale-insertion policy the managed program is built with.
    pub policy: NoisePolicy,
    /// Upper bound on the limb count to consider.
    pub max_l: usize,
}

impl Default for SearchSpec {
    /// 8-bit margin, 128-bit security, lazy insertion, chains up to 8192
    /// limbs. The ceiling is deliberately generous: binary search returns
    /// the *minimal* point regardless, and the worst-case CKKS model
    /// prices deep chains exponentially (the `e_a·e_b` cross term doubles
    /// noise-bits per multiplication once noise exceeds Δ), so an honest
    /// full-size CKKS bootstrapping answer lands in the thousands of
    /// limbs — reporting that number beats waiving the benchmark.
    fn default() -> Self {
        Self {
            target_margin_bits: 8.0,
            min_security_bits: 128.0,
            policy: NoisePolicy::LazyAtThreshold(8.0),
            max_l: 8192,
        }
    }
}

/// A found parameter point plus the managed program that proves it.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Smallest limb count meeting the margin target.
    pub l: usize,
    /// Smallest power-of-two ring dimension meeting the security target
    /// at `l` limbs (≥ the program's structural ring).
    pub n_secure: usize,
    /// Security level at `(n_secure, l)` per the HE-standard table.
    pub security_bits: f64,
    /// The reflowed program (inputs at level `l`, rescales inserted).
    pub managed: FheProgram,
    /// Insertion statistics, including the proven after-margins.
    pub stats: RescaleStats,
}

/// One oracle evaluation: reflow `p` at `l` limbs under `model` and
/// return the managed program with its stats.
fn reflow_oracle(
    p: &FheProgram,
    l: usize,
    policy: NoisePolicy,
    model: &NoiseModel,
) -> (FheProgram, RescaleStats) {
    insert_rescales_with(p, policy, model.clone(), Some(l))
}

/// Binary-searches the smallest `l` in `[1, max_l]` whose managed margin
/// meets `target` under `model`. Returns `None` if even `max_l` fails.
fn min_l(
    p: &FheProgram,
    spec: &SearchSpec,
    model: &NoiseModel,
) -> Option<(usize, FheProgram, RescaleStats)> {
    let target = spec.target_margin_bits;
    let meets = |l: usize| {
        let (managed, stats) = reflow_oracle(p, l, spec.policy, model);
        if stats.min_margin_wc_after >= target {
            Some((managed, stats))
        } else {
            None
        }
    };
    let mut best = meets(spec.max_l)?;
    let (mut lo, mut hi) = (1usize, spec.max_l); // hi always meets
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match meets(mid) {
            Some(hit) => {
                best = hit;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    Some((hi, best.0, best.1))
}

/// Smallest power-of-two ring dimension (≥ `floor_n`) reaching
/// `min_security_bits` at `log_q` total modulus bits.
fn min_secure_n(floor_n: usize, log_q: u32, min_security_bits: f64) -> usize {
    let mut n = floor_n.max(1024);
    // The table extrapolates linearly beyond 2^15; 2^24 is far past any
    // realistic FHE ring (it admits the worst-case-priced bootstrapping
    // chains, which honestly need rings this large) and bounds the loop.
    while security_level_bits(n, log_q) < min_security_bits && n < (1 << 24) {
        n *= 2;
    }
    n
}

/// Runs the `(N, L)` search for `p` under `spec`. Returns `None` when no
/// chain length up to `spec.max_l` reaches the margin target (or the
/// scheme has no modulus chain to size).
pub fn search(p: &FheProgram, spec: &SearchSpec) -> Option<SearchResult> {
    if p.scheme() == Scheme::Gsw {
        return None;
    }
    let base = default_model(p);
    let mut model = base.clone();
    // Fixpoint over the N/L interaction: a bigger ring (for security)
    // raises √N-grade noise, which can push L up, which can push N up.
    for _ in 0..8 {
        let (l, managed, stats) = min_l(p, spec, &model)?;
        // Security is judged against the *full* limb width (primes are
        // < 2^limb_bits): an upper bound on log Q, conservative for
        // security.
        let log_q = (l as u32) * model.limb_bits;
        let n_secure = min_secure_n(p.n, log_q, spec.min_security_bits);
        if n_secure <= model.n {
            return Some(SearchResult {
                l,
                n_secure: model.n,
                security_bits: security_level_bits(model.n, log_q),
                managed,
                stats,
            });
        }
        model = NoiseModel { n: n_secure, ..base.clone() };
    }
    None
}

/// Re-proves a found point: reflows at `(result.l)` under the
/// `result.n_secure` model and returns the margin (callers assert it
/// still meets the target — cheap insurance that the fixpoint closed).
pub fn prove_margin(p: &FheProgram, spec: &SearchSpec, result: &SearchResult) -> f64 {
    let model = NoiseModel { n: result.n_secure, ..default_model(p) };
    let (managed, _) = reflow_oracle(p, result.l, spec.policy, &model);
    analyze_with(&managed, model).min_margin_wc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Scheme;

    fn chain(depth: usize) -> FheProgram {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let mut x = p.input(2);
        for _ in 0..depth {
            x = p.square(x);
        }
        p.output(x);
        p
    }

    #[test]
    fn finds_minimal_l_for_a_square_chain() {
        let p = chain(3);
        let spec = SearchSpec::default();
        let r = search(&p, &spec).expect("searchable");
        assert!(r.stats.min_margin_wc_after >= spec.target_margin_bits, "{:?}", r.stats);
        // Minimality: one limb less must miss the target.
        if r.l > 1 {
            let model = NoiseModel { n: r.n_secure, ..default_model(&p) };
            let (_, below) = reflow_oracle(&p, r.l - 1, spec.policy, &model);
            assert!(
                below.min_margin_wc_after < spec.target_margin_bits,
                "l-1 must fail: {below:?}"
            );
        }
    }

    #[test]
    fn deeper_programs_need_more_limbs() {
        let spec = SearchSpec::default();
        let shallow = search(&chain(2), &spec).unwrap();
        let deep = search(&chain(6), &spec).unwrap();
        assert!(deep.l > shallow.l, "{} vs {}", deep.l, shallow.l);
    }

    #[test]
    fn security_floor_raises_the_ring() {
        // A deep chain at a tiny structural ring: the found L forces a
        // bigger ring for 128-bit security.
        let p = chain(6);
        let r = search(&p, &SearchSpec::default()).unwrap();
        let log_q = (r.l as u32) * default_model(&p).limb_bits;
        assert!(r.security_bits >= 128.0, "{}", r.security_bits);
        assert!(r.n_secure >= p.n);
        assert!(security_level_bits(r.n_secure / 2, log_q) < 128.0 || r.n_secure == p.n);
    }

    #[test]
    fn found_point_reproves_under_the_secure_ring() {
        let p = chain(4);
        let spec = SearchSpec::default();
        let r = search(&p, &spec).unwrap();
        assert!(prove_margin(&p, &spec, &r) >= spec.target_margin_bits);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let p = chain(3);
        let spec = SearchSpec { max_l: 1, ..Default::default() };
        assert!(search(&p, &spec).is_none());
    }

    #[test]
    fn gsw_is_unsearchable() {
        let mut p = FheProgram::new(1 << 10, Scheme::Gsw);
        let x = p.input(2);
        let m = p.square(x);
        p.output(m);
        assert!(search(&p, &SearchSpec::default()).is_none());
    }
}
