//! Static noise-budget estimation: abstract interpretation of noise
//! growth in bits per node.
//!
//! Each node carries two numbers, both `log2` of the noise magnitude
//! `|t·e|`: the **tracked estimate** (the same recurrences the runtime
//! [`f1_fhe::bgv::Ciphertext`] uses) and a **worst-case sound bound**
//! (see [`f1_fhe::noise::NoiseModel`]). The margin against the
//! decryption ceiling `log2(Q_l/2)` is reported per node; the minimum
//! over the program plus the chain of worst operands from an input to
//! that node is the **critical noise path** — the place a rescale or an
//! extra level would have to go.
//!
//! BGV correction factors are tracked abstractly: modulus switching
//! multiplies the embedded plaintext by `q_top^{-1} mod t`, so two
//! operands that took different mod-switch histories need a re-scale
//! before addition (worth up to `t/2×` noise growth) — the analysis
//! models the history as a multiset of switched-from levels and charges
//! the alignment only when histories differ, exactly as the runtime
//! does.
//!
//! Soundness: `tests/ir_differential.rs` property-checks `wc ≥ measured`
//! against the real software BGV executor for random optimized and
//! unoptimized programs. The CKKS and GSW models use the same machinery
//! but have no executor to validate against, so lints cap their findings
//! at warning severity (see [`super::lints`]).

use super::dataflow::{run_forward, ForwardAnalysis};
use crate::ir::{FheOp, FheProgram, IrId, Scheme};
use f1_fhe::noise::NoiseModel;

/// Per-node abstract noise state.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseFact {
    /// Tracked-estimate noise bits (the runtime recurrence).
    pub est: f64,
    /// Worst-case sound bound on noise bits.
    pub wc: f64,
    /// Abstract BGV correction history: sorted (switched-from level,
    /// count) pairs. Empty outside BGV.
    pub correction: Vec<(usize, u32)>,
    /// The operand contributing the largest worst-case noise (critical
    /// noise path back-pointer).
    pub worst_operand: Option<IrId>,
}

impl NoiseFact {
    fn plain() -> Self {
        Self {
            est: f64::NEG_INFINITY,
            wc: f64::NEG_INFINITY,
            correction: Vec::new(),
            worst_operand: None,
        }
    }
}

fn merge_corrections(a: &[(usize, u32)], b: &[(usize, u32)]) -> Vec<(usize, u32)> {
    let mut out = a.to_vec();
    for &(level, count) in b {
        match out.binary_search_by_key(&level, |&(l, _)| l) {
            Ok(i) => out[i].1 += count,
            Err(i) => out.insert(i, (level, count)),
        }
    }
    out
}

fn bump_correction(c: &[(usize, u32)], level: usize) -> Vec<(usize, u32)> {
    merge_corrections(c, &[(level, 1)])
}

/// The noise abstract interpretation as a [`ForwardAnalysis`].
pub struct NoiseAnalysis {
    model: NoiseModel,
    track_corrections: bool,
}

impl NoiseAnalysis {
    /// An analysis over `model` (correction tracking on for BGV only).
    pub fn new(p: &FheProgram, model: NoiseModel) -> Self {
        Self { model, track_corrections: p.scheme() == Scheme::Bgv }
    }

    /// The model this analysis interprets under.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }
}

/// The scheme's default noise model for a program (what [`analyze`]
/// interprets under).
pub fn default_model(p: &FheProgram) -> NoiseModel {
    match p.scheme() {
        Scheme::Bgv => NoiseModel::bgv_default(p.n),
        Scheme::Ckks => NoiseModel::ckks(p.n),
        Scheme::Gsw => NoiseModel::gsw(p.n),
    }
}

impl ForwardAnalysis for NoiseAnalysis {
    type Fact = NoiseFact;

    fn bottom(&self) -> NoiseFact {
        NoiseFact::plain()
    }

    fn transfer(&self, p: &FheProgram, id: IrId, operands: &[NoiseFact]) -> NoiseFact {
        let m = &self.model;
        let node = p.node(id);
        if node.ty.plain {
            // Constants, runtime plaintexts and compile-time constant
            // pairs carry no encryption noise.
            return NoiseFact::plain();
        }
        let level = node.ty.level;
        match &node.op {
            FheOp::CtInput { .. } => NoiseFact {
                est: m.est_fresh(),
                wc: m.wc_fresh(),
                correction: Vec::new(),
                worst_operand: None,
            },
            FheOp::Add(a_id, b_id) => {
                let (a, b) = (&operands[0], &operands[1]);
                let aligned = !self.track_corrections || a.correction == b.correction;
                let (b_est, b_wc) =
                    if aligned { (b.est, b.wc) } else { (m.est_align(b.est), m.wc_align(b.wc)) };
                NoiseFact {
                    est: m.est_add(a.est, b_est),
                    wc: m.wc_add(a.wc, b_wc),
                    correction: a.correction.clone(),
                    worst_operand: Some(if a.wc >= b_wc { *a_id } else { *b_id }),
                }
            }
            FheOp::AddPlain(a_id, _) => {
                let a = &operands[0];
                NoiseFact {
                    est: m.est_add_plain(a.est),
                    // BGV: the scaled plaintext re-centers mod t (+ t);
                    // CKKS: only the encoding-rounding error is added.
                    wc: m.wc_add_plain(a.wc),
                    correction: a.correction.clone(),
                    worst_operand: Some(*a_id),
                }
            }
            FheOp::Mul(a_id, b_id) => {
                let (a, b) = (&operands[0], &operands[1]);
                let (est, wc) = if p.scheme() == Scheme::Ckks {
                    // The CKKS bound needs the operand scales: the message
                    // magnitude (Δ^scale) multiplies the other operand's
                    // noise in the cross terms.
                    let (sa, sb) = (p.node(*a_id).ty.scale, p.node(*b_id).ty.scale);
                    (
                        m.est_mul_ckks(a.est, sa, b.est, sb, level),
                        m.wc_mul_ckks(a.wc, sa, b.wc, sb, level),
                    )
                } else {
                    (m.est_mul(a.est, b.est, level), m.wc_mul(a.wc, b.wc, level))
                };
                NoiseFact {
                    est,
                    wc,
                    correction: merge_corrections(&a.correction, &b.correction),
                    worst_operand: Some(if a.wc >= b.wc { *a_id } else { *b_id }),
                }
            }
            FheOp::MulPlain(a_id, b_id) => {
                let a = &operands[0];
                let (est, wc) = if p.scheme() == Scheme::Ckks {
                    let (sa, sp) = (p.node(*a_id).ty.scale, p.node(*b_id).ty.scale);
                    (m.est_mul_plain_ckks(a.est, sa, sp), m.wc_mul_plain_ckks(a.wc, sa, sp))
                } else {
                    (m.est_mul_plain(a.est), m.wc_mul_plain(a.wc))
                };
                NoiseFact { est, wc, correction: a.correction.clone(), worst_operand: Some(*a_id) }
            }
            FheOp::Aut { a: a_id, .. } => {
                let a = &operands[0];
                NoiseFact {
                    est: m.est_aut(a.est),
                    wc: m.wc_aut(a.wc, level),
                    correction: a.correction.clone(),
                    worst_operand: Some(*a_id),
                }
            }
            FheOp::ModSwitch(a_id) => {
                let a = &operands[0];
                // `level` is the post-switch level; the switch happened
                // from level + 1.
                let from = level + 1;
                let correction = if self.track_corrections {
                    bump_correction(&a.correction, from)
                } else {
                    Vec::new()
                };
                NoiseFact {
                    est: m.est_mod_switch(a.est, from),
                    wc: m.wc_mod_switch(a.wc, from),
                    correction,
                    worst_operand: Some(*a_id),
                }
            }
            FheOp::PtInput { .. } | FheOp::Constant { .. } => NoiseFact::plain(),
        }
    }
}

/// The result of the noise analysis over one program.
#[derive(Debug, Clone)]
pub struct NoiseReport {
    /// The model the program was interpreted under.
    pub model: NoiseModel,
    /// Per-node abstract state (indexed by id).
    pub facts: Vec<NoiseFact>,
    /// Minimum worst-case margin over all ciphertext nodes (`+inf` if
    /// the program has none).
    pub min_margin_wc: f64,
    /// Minimum tracked-estimate margin.
    pub min_margin_est: f64,
    /// The node attaining `min_margin_wc`.
    pub critical: Option<IrId>,
    /// Worst-operand chain from an input to [`NoiseReport::critical`].
    pub critical_path: Vec<IrId>,
}

impl NoiseReport {
    /// Bits the value occupies before noise starts (CKKS holds the
    /// message at scale `Δ^s`; BGV/GSW noise `t·e` already includes the
    /// plaintext's span).
    fn headroom(&self, p: &FheProgram, id: IrId) -> f64 {
        if p.scheme() == Scheme::Ckks {
            f64::from(p.node(id).ty.scale) * f64::from(self.model.limb_bits)
        } else {
            0.0
        }
    }

    /// Worst-case margin of one node: budget − value headroom − bound.
    pub fn margin_wc(&self, p: &FheProgram, id: IrId) -> f64 {
        self.model.budget_bits(p.node(id).ty.level)
            - self.headroom(p, id)
            - self.facts[id.0 as usize].wc
    }

    /// Tracked-estimate margin of one node.
    pub fn margin_est(&self, p: &FheProgram, id: IrId) -> f64 {
        self.model.budget_bits(p.node(id).ty.level)
            - self.headroom(p, id)
            - self.facts[id.0 as usize].est
    }
}

/// Runs the noise analysis with the scheme's default model.
pub fn analyze(p: &FheProgram) -> NoiseReport {
    analyze_with(p, default_model(p))
}

/// Runs the noise analysis under an explicit model (e.g. a non-default
/// plaintext modulus).
pub fn analyze_with(p: &FheProgram, model: NoiseModel) -> NoiseReport {
    let analysis = NoiseAnalysis::new(p, model);
    let facts = run_forward(p, &analysis);
    let mut report = NoiseReport {
        model: analysis.model,
        facts,
        min_margin_wc: f64::INFINITY,
        min_margin_est: f64::INFINITY,
        critical: None,
        critical_path: Vec::new(),
    };
    for (i, node) in p.nodes().iter().enumerate() {
        if node.ty.plain {
            continue;
        }
        let id = IrId(i as u32);
        let wc = report.margin_wc(p, id);
        let est = report.margin_est(p, id);
        report.min_margin_est = report.min_margin_est.min(est);
        if wc < report.min_margin_wc {
            report.min_margin_wc = wc;
            report.critical = Some(id);
        }
    }
    if let Some(mut at) = report.critical {
        let mut path = vec![at];
        while let Some(prev) = report.facts[at.0 as usize].worst_operand {
            path.push(prev);
            at = prev;
        }
        path.reverse();
        report.critical_path = path;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(depth: usize, level: usize) -> FheProgram {
        let mut p = FheProgram::new(64, Scheme::Bgv);
        let mut x = p.input(level);
        for _ in 0..depth {
            x = p.square(x);
            x = p.mod_switch(x);
        }
        p.output(x);
        p
    }

    #[test]
    fn noise_grows_with_depth() {
        let shallow = analyze(&chain(1, 8));
        let deep = analyze(&chain(4, 8));
        assert!(deep.min_margin_wc < shallow.min_margin_wc);
        assert!(deep.min_margin_est < shallow.min_margin_est);
    }

    #[test]
    fn wc_dominates_est_everywhere() {
        let p = chain(3, 8);
        let r = analyze(&p);
        for (i, node) in p.nodes().iter().enumerate() {
            if node.ty.plain {
                continue;
            }
            let f = &r.facts[i];
            assert!(f.wc >= f.est - 1.0, "node {i}: wc {} < est {}", f.wc, f.est);
        }
    }

    #[test]
    fn critical_path_leads_from_input_to_critical_node() {
        let p = chain(3, 8);
        let r = analyze(&p);
        let path = &r.critical_path;
        assert!(!path.is_empty());
        assert!(matches!(p.node(path[0]).op, FheOp::CtInput { .. }), "path starts at an input");
        assert_eq!(*path.last().unwrap(), r.critical.unwrap());
        // Path edges follow operand relations.
        for w in path.windows(2) {
            assert!(p.node(w[1]).op.operands().contains(&w[0]));
        }
    }

    #[test]
    fn misaligned_corrections_cost_more_than_aligned() {
        // x switched down twice vs y input directly at the low level:
        // their correction histories differ, so the add pays alignment.
        let build = |aligned: bool| {
            let mut p = FheProgram::new(64, Scheme::Bgv);
            let x = p.input(6);
            let d1 = p.mod_switch(x);
            let d2 = p.mod_switch(d1);
            let y = if aligned {
                let y = p.input(6);
                let e1 = p.mod_switch(y);
                p.mod_switch(e1)
            } else {
                p.input(4)
            };
            let s = p.add(d2, y);
            p.output(s);
            analyze(&p)
        };
        let aligned = build(true);
        let misaligned = build(false);
        assert!(
            misaligned.min_margin_wc < aligned.min_margin_wc,
            "alignment penalty must show: {} vs {}",
            misaligned.min_margin_wc,
            aligned.min_margin_wc
        );
    }

    #[test]
    fn ckks_margin_subtracts_scale_headroom() {
        let mut p = FheProgram::new(64, Scheme::Ckks);
        let x = p.input(4);
        let sq = p.square(x); // scale 2
        p.output(sq);
        let r = analyze(&p);
        let m_x = r.margin_wc(&p, x);
        let m_sq = r.margin_wc(&p, sq);
        assert!(m_sq < m_x, "deeper scale must shrink the margin");
    }
}
