//! Static scratchpad-pressure analysis: peak live ciphertext bytes from
//! IR liveness, against the architecture's scratchpad capacity.
//!
//! The IR's creation order is the schedule the lowering preserves, so a
//! def/last-use interval sweep over ids gives the resident working set
//! the data-movement scheduler (pass 2) will face — computed in O(n)
//! *before* the expensive passes run. Key-switch hints are accounted
//! separately: F1 streams one hint at a time, so the largest single hint
//! joins the peak rather than the sum of all hints (which exceeds any
//! scratchpad for deep programs — the paper's point about hints
//! dominating traffic, §2.4).

use crate::ir::{FheOp, FheProgram, IrId};
use f1_arch::ArchConfig;
use f1_fhe::keyswitch::KeySwitchVariant;
use std::collections::BTreeMap;

/// Bytes one IR value occupies resident: ciphertexts are two RNS
/// polynomials of `level` 4-byte limbs per coefficient, plaintexts one.
fn value_bytes(p: &FheProgram, id: IrId) -> u64 {
    let ty = p.node(id).ty;
    let polys = if ty.plain { 1 } else { 2 };
    polys * (p.n as u64) * (ty.level as u64) * 4
}

/// The result of the pressure analysis.
#[derive(Debug, Clone)]
pub struct PressureReport {
    /// Peak bytes of simultaneously live IR values.
    pub peak_live_bytes: u64,
    /// The node whose definition produces the peak.
    pub peak_at: Option<IrId>,
    /// Number of live values at the peak.
    pub live_at_peak: usize,
    /// Largest single key-switch hint the program needs resident.
    pub max_hint_bytes: u64,
    /// Total bytes across all distinct hints (the hint working set the
    /// program cycles through).
    pub total_hint_bytes: u64,
    /// Number of distinct key-switch hints (relineariation plus one per
    /// automorphism exponent).
    pub distinct_hints: usize,
    /// Scratchpad capacity of the analyzed architecture.
    pub capacity_bytes: u64,
}

impl PressureReport {
    /// Whether the peak working set (live values plus one streamed hint)
    /// exceeds the scratchpad — the "this will thrash" predicate.
    pub fn spills(&self) -> bool {
        self.peak_live_bytes + self.max_hint_bytes > self.capacity_bytes
    }
}

/// Runs the pressure analysis for `p` on `arch`.
pub fn analyze(p: &FheProgram, arch: &ArchConfig) -> PressureReport {
    let n = p.nodes().len();
    // last_use[i]: the last id whose execution still needs value i.
    // Outputs live to the end of the program; dead values die at their
    // own definition.
    let mut last_use: Vec<usize> = (0..n).collect();
    for (i, node) in p.nodes().iter().enumerate() {
        for o in node.op.operands() {
            if (o.0 as usize) < n {
                last_use[o.0 as usize] = i;
            }
        }
    }
    for &o in p.outputs() {
        if (o.0 as usize) < n {
            last_use[o.0 as usize] = n.saturating_sub(1);
        }
    }
    let mut dies_at: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, &lu) in last_use.iter().enumerate() {
        dies_at[lu].push(i as u32);
    }
    let mut cur = 0u64;
    let mut live = 0usize;
    let mut peak = 0u64;
    let mut peak_at = None;
    let mut live_at_peak = 0usize;
    for i in 0..n {
        cur += value_bytes(p, IrId(i as u32));
        live += 1;
        if cur > peak {
            peak = cur;
            peak_at = Some(IrId(i as u32));
            live_at_peak = live;
        }
        for &d in &dies_at[i] {
            cur -= value_bytes(p, IrId(d));
            live -= 1;
        }
    }

    // Distinct hints: one relinearization hint per level muls run at,
    // one rotation hint per (exponent, level). Decomposition sizing —
    // the Listing-1 variant the paper's working sets assume.
    let mut hints: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for node in p.nodes() {
        let (key, level) = match &node.op {
            // Relinearization keys on the mul's level; use exponent 0
            // (never a legal automorphism exponent) as its slot.
            FheOp::Mul(..) if !node.ty.plain => ((0usize, node.ty.level), node.ty.level),
            FheOp::Aut { k, .. } => ((*k, node.ty.level), node.ty.level),
            _ => continue,
        };
        let bytes = KeySwitchVariant::Decomposition.cost(level, 0, p.n).hint_bytes as u64;
        hints.insert(key, bytes);
    }
    let max_hint_bytes = hints.values().copied().max().unwrap_or(0);
    let total_hint_bytes = hints.values().sum();
    PressureReport {
        peak_live_bytes: peak,
        peak_at,
        live_at_peak,
        max_hint_bytes,
        total_hint_bytes,
        distinct_hints: hints.len(),
        capacity_bytes: arch.scratchpad_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Scheme;

    fn wide(width: usize, level: usize) -> FheProgram {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let xs: Vec<IrId> = (0..width).map(|_| p.input(level)).collect();
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = p.add(acc, x);
        }
        p.output(acc);
        p
    }

    #[test]
    fn wider_programs_have_higher_pressure() {
        let arch = ArchConfig::f1_default();
        let a = analyze(&wide(2, 4), &arch);
        let b = analyze(&wide(64, 4), &arch);
        assert!(b.peak_live_bytes > a.peak_live_bytes);
        assert!(b.live_at_peak > a.live_at_peak);
    }

    #[test]
    fn chain_frees_dead_values() {
        // A pure chain keeps at most a couple of values live no matter
        // its length.
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let mut x = p.input(4);
        for _ in 0..100 {
            let c = p.scalar(3, 4);
            x = p.mul_plain(x, c);
        }
        p.output(x);
        let r = analyze(&p, &ArchConfig::f1_default());
        assert!(r.live_at_peak <= 4, "live at peak: {}", r.live_at_peak);
    }

    #[test]
    fn hints_are_deduplicated_by_exponent_and_level() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(4);
        let r1 = p.aut(x, 3);
        let r2 = p.aut(x, 3); // same hint
        let r3 = p.aut(x, 5); // new hint
        let s1 = p.add(r1, r2);
        let s2 = p.add(s1, r3);
        let m = p.mul(s2, s2); // relin hint
        p.output(m);
        let r = analyze(&p, &ArchConfig::f1_default());
        assert_eq!(r.distinct_hints, 3, "σ_3, σ_5, relin");
        assert!(r.max_hint_bytes > 0);
    }

    #[test]
    fn tiny_pad_spills_big_program() {
        let p = wide(64, 16);
        let tight = ArchConfig::f1_default().with_scratchpad_mb(1);
        assert!(analyze(&p, &tight).spills());
        let roomy = ArchConfig::f1_default().with_scratchpad_mb(4096);
        assert!(!analyze(&p, &roomy).spills());
    }
}
