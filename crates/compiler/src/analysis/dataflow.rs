//! The generic forward dataflow engine.
//!
//! An [`FheProgram`] is SSA over dense creation-order ids, so a single
//! in-order sweep computes any forward analysis on a well-formed
//! program. The engine still runs a proper worklist — seeding every node
//! in id order and re-queueing users whenever a fact changes — so it
//! converges (to the analysis' fixpoint) even on ill-formed inputs with
//! forward operand references, which the typing validator must be able
//! to analyze rather than crash on.

use crate::ir::{FheProgram, IrId};
use std::collections::VecDeque;

/// One forward analysis: a fact lattice (implicitly, `Fact` + the
/// transfer's monotonicity) and a per-node transfer function.
pub trait ForwardAnalysis {
    /// The per-node fact. Equality gates re-queueing, so `PartialEq`
    /// must be reflexive on every fact the transfer can produce (beware
    /// NaN if facts carry floats).
    type Fact: Clone + PartialEq;

    /// The initial fact every node starts from.
    fn bottom(&self) -> Self::Fact;

    /// Computes the fact for `id` from the facts of its operands (in
    /// operand order; empty for leaves).
    fn transfer(&self, p: &FheProgram, id: IrId, operands: &[Self::Fact]) -> Self::Fact;
}

/// Runs `analysis` over `p` to a fixpoint, returning one fact per node
/// (indexed by id).
pub fn run_forward<A: ForwardAnalysis>(p: &FheProgram, analysis: &A) -> Vec<A::Fact> {
    let n = p.nodes().len();
    // users[i] = nodes whose operand list contains i.
    let mut users: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, node) in p.nodes().iter().enumerate() {
        for o in node.op.operands() {
            if (o.0 as usize) < n {
                users[o.0 as usize].push(i as u32);
            }
        }
    }
    let mut facts: Vec<A::Fact> = vec![analysis.bottom(); n];
    let mut queue: VecDeque<u32> = (0..n as u32).collect();
    let mut queued = vec![true; n];
    let mut scratch: Vec<A::Fact> = Vec::new();
    while let Some(i) = queue.pop_front() {
        queued[i as usize] = false;
        scratch.clear();
        for o in p.nodes()[i as usize].op.operands() {
            // Out-of-range operands (hand-crafted ill-formed IR) read
            // bottom; the typing validator reports them separately.
            let fact = facts.get(o.0 as usize).cloned().unwrap_or_else(|| analysis.bottom());
            scratch.push(fact);
        }
        let new = analysis.transfer(p, IrId(i), &scratch);
        if new != facts[i as usize] {
            facts[i as usize] = new;
            for &u in &users[i as usize] {
                if !queued[u as usize] {
                    queued[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Scheme;

    /// Depth-from-inputs: 0 at leaves, max(operands) + 1 elsewhere.
    struct HopCount;
    impl ForwardAnalysis for HopCount {
        type Fact = u32;
        fn bottom(&self) -> u32 {
            0
        }
        fn transfer(&self, _p: &FheProgram, _id: IrId, operands: &[u32]) -> u32 {
            operands.iter().copied().max().map_or(0, |m| m + 1)
        }
    }

    #[test]
    fn single_sweep_converges_on_ssa_program() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(4);
        let y = p.input(4);
        let m = p.mul(x, y);
        let r = p.aut(m, 3);
        let s = p.add(m, r);
        p.output(s);
        let facts = run_forward(&p, &HopCount);
        assert_eq!(facts, vec![0, 0, 1, 2, 3]);
    }
}
