//! The scheme-typing validator: re-proves every invariant the builder
//! enforces at construction time, from nothing but the node list.
//!
//! The builder ([`FheProgram`]'s typed methods) guarantees these
//! invariants for programs it constructs — but the optimization passes
//! rewrite node lists wholesale, and a pass bug produces a program that
//! *looks* well-formed while its stored types no longer match its
//! structure. This module recomputes all types via the dataflow engine
//! and diffs them against the stored ones ([`check`]), and compares
//! program interfaces across a pass boundary ([`verify_step`]) so
//! [`crate::ir::passes::optimize`] can name the pass that broke an
//! invariant.

use super::dataflow::{run_forward, ForwardAnalysis};
use super::{Diagnostic, Severity};
use crate::ir::{FheOp, FheProgram, IrId, Scheme, ValType};
use std::collections::BTreeSet;

/// The typing fact: a recomputed type, a rule violation at this node, or
/// poison from an ill-typed operand (suppressing cascade reports).
#[derive(Debug, Clone, PartialEq)]
pub enum TypeFact {
    /// Not yet computed.
    Unknown,
    /// This node itself violates a typing rule.
    Ill(&'static str, String),
    /// An operand is ill-typed; this node is not separately reported.
    Poisoned,
    /// Recomputed successfully.
    Ok(ValType),
}

/// The type-recomputation analysis (mirrors the builder's rules exactly).
pub struct Retype;

impl Retype {
    fn input_scale(p: &FheProgram) -> u32 {
        if p.scheme() == Scheme::Ckks {
            1
        } else {
            0
        }
    }
}

impl ForwardAnalysis for Retype {
    type Fact = TypeFact;

    fn bottom(&self) -> TypeFact {
        TypeFact::Unknown
    }

    fn transfer(&self, p: &FheProgram, id: IrId, operands: &[TypeFact]) -> TypeFact {
        // Propagate poison/unknown first: a node downstream of a broken
        // one is not itself news.
        let mut tys = Vec::with_capacity(operands.len());
        for f in operands {
            match f {
                TypeFact::Ok(t) => tys.push(*t),
                TypeFact::Unknown => return TypeFact::Unknown,
                TypeFact::Ill(..) | TypeFact::Poisoned => return TypeFact::Poisoned,
            }
        }
        let scale0 = Self::input_scale(p);
        let ill = |rule, msg: String| TypeFact::Ill(rule, msg);
        let join = |a: ValType, b: ValType| -> Result<usize, TypeFact> {
            if a.level != b.level {
                return Err(ill(
                    "typing::level-mismatch",
                    format!("operand levels differ ({} vs {})", a.level, b.level),
                ));
            }
            Ok(a.level)
        };
        match &p.node(id).op {
            FheOp::CtInput { level, .. } => {
                if *level == 0 {
                    return ill("typing::level-underflow", "input at level 0".into());
                }
                TypeFact::Ok(ValType { plain: false, level: *level, scale: scale0, depth: 0 })
            }
            FheOp::PtInput { level, .. } | FheOp::Constant { level, .. } => {
                if *level == 0 {
                    return ill("typing::level-underflow", "plaintext at level 0".into());
                }
                TypeFact::Ok(ValType { plain: true, level: *level, scale: scale0, depth: 0 })
            }
            FheOp::Add(..) | FheOp::Mul(..) => {
                let (a, b) = (tys[0], tys[1]);
                let level = match join(a, b) {
                    Ok(l) => l,
                    Err(e) => return e,
                };
                if a.plain != b.plain {
                    return ill(
                        "typing::operand-kind",
                        "ciphertext/plaintext operand mix on add/mul".into(),
                    );
                }
                let is_mul = matches!(p.node(id).op, FheOp::Mul(..));
                if a.plain {
                    // Compile-time constant pair (the builder only admits
                    // foldable constants here).
                    TypeFact::Ok(ValType {
                        plain: true,
                        level,
                        scale: a.scale.max(b.scale),
                        depth: 0,
                    })
                } else if is_mul {
                    TypeFact::Ok(ValType {
                        plain: false,
                        level,
                        scale: a.scale + b.scale,
                        depth: a.depth.max(b.depth) + 1,
                    })
                } else {
                    TypeFact::Ok(ValType {
                        plain: false,
                        level,
                        scale: a.scale.max(b.scale),
                        depth: a.depth.max(b.depth),
                    })
                }
            }
            FheOp::AddPlain(..) | FheOp::MulPlain(..) => {
                let (a, pt) = (tys[0], tys[1]);
                if a.plain || !pt.plain {
                    return ill(
                        "typing::operand-kind",
                        "add_plain/mul_plain need (ciphertext, plaintext) operands".into(),
                    );
                }
                // Plaintexts need only *cover* the ciphertext level (their
                // excess RNS limbs are ignored); the result takes the
                // ciphertext's level. Mirrors the builder's rule.
                if pt.level < a.level {
                    return ill(
                        "typing::level-mismatch",
                        format!(
                            "plaintext level {} does not cover ciphertext level {}",
                            pt.level, a.level
                        ),
                    );
                }
                let level = a.level;
                if matches!(p.node(id).op, FheOp::MulPlain(..)) {
                    TypeFact::Ok(ValType {
                        plain: false,
                        level,
                        scale: a.scale + pt.scale,
                        depth: a.depth,
                    })
                } else {
                    TypeFact::Ok(ValType { level, ..a })
                }
            }
            FheOp::Aut { k, .. } => {
                let a = tys[0];
                if a.plain {
                    return ill("typing::operand-kind", "automorphism of a plaintext".into());
                }
                if *k % 2 == 0 || *k >= 2 * p.n {
                    return ill(
                        "typing::aut-exponent",
                        format!("invalid automorphism exponent {k} (need odd, < 2N)"),
                    );
                }
                TypeFact::Ok(a)
            }
            FheOp::ModSwitch(..) => {
                let a = tys[0];
                if a.plain {
                    return ill("typing::operand-kind", "mod_switch of a plaintext".into());
                }
                if p.scheme() == Scheme::Gsw {
                    return ill(
                        "typing::gsw-mod-switch",
                        "GSW has no modulus chain to switch".into(),
                    );
                }
                if a.level < 2 {
                    return ill(
                        "typing::level-underflow",
                        format!("mod_switch below level 2 (operand at {})", a.level),
                    );
                }
                let scale =
                    if p.scheme() == Scheme::Ckks { a.scale.saturating_sub(1).max(1) } else { 0 };
                TypeFact::Ok(ValType { level: a.level - 1, scale, ..a })
            }
        }
    }
}

/// Structural checks that are not per-node dataflow: SSA operand
/// ordering, output integrity, input-ordinal uniqueness.
fn structural(p: &FheProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = p.nodes().len();
    for (i, node) in p.nodes().iter().enumerate() {
        for o in node.op.operands() {
            if o.0 as usize >= i {
                out.push(Diagnostic::error(
                    "typing::ssa",
                    Some(IrId(i as u32)),
                    format!("operand %{} does not precede its user", o.0),
                ));
            }
        }
    }
    let mut ct_seen = BTreeSet::new();
    let mut pt_seen = BTreeSet::new();
    for (i, node) in p.nodes().iter().enumerate() {
        let (set, ord, kind) = match node.op {
            FheOp::CtInput { ordinal, .. } => (&mut ct_seen, ordinal, "ciphertext"),
            FheOp::PtInput { ordinal, .. } => (&mut pt_seen, ordinal, "plaintext"),
            _ => continue,
        };
        if !set.insert(ord) {
            out.push(Diagnostic::error(
                "typing::input-ordinals",
                Some(IrId(i as u32)),
                format!("duplicate {kind} input ordinal {ord}"),
            ));
        }
    }
    for &o in p.outputs() {
        if o.0 as usize >= n {
            out.push(Diagnostic::error(
                "typing::ssa",
                Some(o),
                format!("output references unknown node %{}", o.0),
            ));
        } else if p.node(o).ty.plain {
            out.push(Diagnostic::error(
                "typing::plain-output",
                Some(o),
                "program output is a plaintext".into(),
            ));
        }
    }
    out
}

/// Full validation: structural checks plus type recomputation diffed
/// against the stored types. Returns every violation found (empty =
/// provably well-formed).
pub fn check(p: &FheProgram) -> Vec<Diagnostic> {
    let mut out = structural(p);
    // Forward references make recomputed facts unreliable; report the
    // SSA breakage alone rather than noise on top of it.
    if out.iter().any(|d| d.rule == "typing::ssa") {
        return out;
    }
    let facts = run_forward(p, &Retype);
    for (i, fact) in facts.iter().enumerate() {
        let id = IrId(i as u32);
        match fact {
            TypeFact::Ok(t) => {
                let stored = p.node(id).ty;
                if *t != stored {
                    out.push(Diagnostic::error(
                        "typing::type-drift",
                        Some(id),
                        format!("stored type {stored:?} != recomputed {t:?}"),
                    ));
                }
            }
            TypeFact::Ill(rule, msg) => out.push(Diagnostic::error(rule, Some(id), msg.clone())),
            TypeFact::Poisoned | TypeFact::Unknown => {}
        }
    }
    out
}

/// A program's observable interface: output types (in declaration order)
/// and the surviving input ordinals. Captured before an optimization
/// pass and compared after — a pass may drop dead inputs and merge
/// duplicates, but must never change what the program computes *for*.
#[derive(Debug, Clone, PartialEq)]
pub struct Interface {
    /// Output value types, in output order.
    pub outputs: Vec<ValType>,
    /// Build-time ordinals of live ciphertext inputs.
    pub ct_ordinals: BTreeSet<u32>,
    /// Build-time ordinals of live plaintext runtime inputs.
    pub pt_ordinals: BTreeSet<u32>,
}

/// Captures `p`'s interface.
pub fn interface(p: &FheProgram) -> Interface {
    let mut ct_ordinals = BTreeSet::new();
    let mut pt_ordinals = BTreeSet::new();
    for node in p.nodes() {
        match node.op {
            FheOp::CtInput { ordinal, .. } => {
                ct_ordinals.insert(ordinal);
            }
            FheOp::PtInput { ordinal, .. } => {
                pt_ordinals.insert(ordinal);
            }
            _ => {}
        }
    }
    let outputs = p.outputs().iter().map(|&o| p.node(o).ty).collect();
    Interface { outputs, ct_ordinals, pt_ordinals }
}

/// Verifies one pass boundary: `after` must be fully well-formed
/// ([`check`]) and must preserve `before`'s interface — same output
/// types in the same order, and surviving input ordinals a subset of the
/// originals. `pass` names the pass for the messages.
pub fn verify_step(before: &Interface, after: &FheProgram, pass: &str) -> Vec<Diagnostic> {
    let mut out = check(after);
    let now = interface(after);
    if now.outputs.len() != before.outputs.len() {
        out.push(Diagnostic::error(
            "typing::interface",
            None,
            format!(
                "pass '{pass}' changed the output count ({} -> {})",
                before.outputs.len(),
                now.outputs.len()
            ),
        ));
    } else {
        for (i, (b, a)) in before.outputs.iter().zip(&now.outputs).enumerate() {
            if b != a {
                out.push(Diagnostic::error(
                    "typing::interface",
                    Some(after.outputs()[i]),
                    format!("pass '{pass}' changed output {i}'s type: {b:?} -> {a:?}"),
                ));
            }
        }
    }
    if !now.ct_ordinals.is_subset(&before.ct_ordinals) {
        out.push(Diagnostic::error(
            "typing::interface",
            None,
            format!("pass '{pass}' invented ciphertext input ordinals"),
        ));
    }
    if !now.pt_ordinals.is_subset(&before.pt_ordinals) {
        out.push(Diagnostic::error(
            "typing::interface",
            None,
            format!("pass '{pass}' invented plaintext input ordinals"),
        ));
    }
    out
}

/// `check`, panicking with the pass name on the first Error (the
/// always-on between-pass verifier behind [`crate::ir::FheProgram::optimize`]).
pub fn assert_verified(before: &Interface, after: &FheProgram, pass: &str) {
    let diags = verify_step(before, after, pass);
    if let Some(d) = diags.iter().find(|d| d.severity == Severity::Error) {
        panic!("optimization pass '{pass}' broke a typing invariant: {d}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Node, Scheme};

    fn well_typed() -> FheProgram {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(4);
        let y = p.input(4);
        let m = p.mul(x, y);
        let d = p.mod_switch(m);
        let w = p.plain_input(3);
        let s = p.add_plain(d, w);
        p.output(s);
        p
    }

    #[test]
    fn builder_programs_check_clean() {
        assert!(check(&well_typed()).is_empty());
    }

    #[test]
    fn type_drift_is_detected() {
        let mut p = well_typed();
        let ty = p.node(IrId(2)).ty;
        p.raw_node_mut(IrId(2)).ty = ValType { depth: ty.depth + 7, ..ty };
        let diags = check(&p);
        assert!(diags.iter().any(|d| d.rule == "typing::type-drift"), "{diags:?}");
    }

    #[test]
    fn ssa_violation_is_detected() {
        let mut p = well_typed();
        // Point the mul at a later node.
        p.raw_node_mut(IrId(2)).op = FheOp::Mul(IrId(5), IrId(1));
        let diags = check(&p);
        assert!(diags.iter().any(|d| d.rule == "typing::ssa"), "{diags:?}");
    }

    #[test]
    fn downstream_of_ill_node_is_not_double_reported() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(4);
        let y = p.input(3);
        // Force a level mismatch behind the builder's back, with users.
        let bad =
            p.raw_push(FheOp::Add(x, y), ValType { plain: false, level: 4, scale: 0, depth: 0 });
        let r = p.aut(bad, 3);
        p.output(r);
        let diags = check(&p);
        let errs: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(errs, vec!["typing::level-mismatch"], "{diags:?}");
    }

    #[test]
    fn interface_survives_legit_optimization() {
        let p = well_typed();
        let before = interface(&p);
        let (q, _) = p.optimize();
        assert!(verify_step(&before, &q, "pipeline").is_empty());
    }

    #[test]
    fn interface_catches_output_type_change() {
        let p = well_typed();
        let before = interface(&p);
        let mut q = p;
        let out = *q.outputs().last().unwrap();
        let ty = q.node(out).ty;
        // Simulate a pass that silently dropped a level: rewrite the
        // output node into a deeper mod-switch chain.
        let op = q.node(out).op.clone();
        *q.raw_node_mut(out) = Node { op, ty: ValType { level: ty.level - 1, ..ty } };
        let diags = verify_step(&before, &q, "bogus");
        assert!(diags.iter().any(|d| d.rule == "typing::interface"), "{diags:?}");
    }

    #[test]
    fn duplicate_ordinals_are_detected() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(4);
        let y = p.input(4);
        let s = p.add(x, y);
        p.output(s);
        p.raw_node_mut(y).op = FheOp::CtInput { level: 4, ordinal: 0 };
        let diags = check(&p);
        assert!(diags.iter().any(|d| d.rule == "typing::input-ordinals"), "{diags:?}");
    }
}
