//! The lint driver: a [`Lint`] trait, the default rule set and a
//! registry with per-rule severity overrides.
//!
//! Rule catalog (default severities; `analyze` in `f1-bench` serializes
//! findings into `ANALYSIS.json` and CI fails on Errors):
//!
//! | rule | default | meaning |
//! |------|---------|---------|
//! | `typing::*` | Error | structural/typing invariant broken (see [`super::typing`]) |
//! | `scale::exceeds-level` | Warning | CKKS scale exceeds remaining levels: cannot rescale back to Δ |
//! | `scale::saturated-rescale` | Warning | CKKS rescale at scale 1 hit the saturation floor |
//! | `noise::budget-exhausted` | Error (BGV) / Warning | estimate AND worst-case bound both overrun `log2(Q_l/2)` |
//! | `noise::unproven` | Warning | worst-case bound overruns the budget (correctness not statically proven) |
//! | `noise::pessimistic-estimate` | Info | estimate overruns but the sound bound fits (heuristic drift, not a failure) |
//! | `noise::low-margin` | Info | worst-case margin below 10 bits |
//! | `pressure::scratchpad-spill` | Warning | peak live bytes + one hint exceed the scratchpad |
//! | `redundancy::dead-node` | Warning | nodes that cannot reach an output (run `optimize`) |
//! | `program::no-outputs` | Warning | the program computes nothing observable |
//!
//! The BGV/CKKS split on `noise::budget-exhausted` is deliberate: only
//! the BGV model is validated against a real executor (see
//! [`super::noise`]), so CKKS/GSW noise findings never gate CI.

use super::{Diagnostic, NoiseReport, PressureReport, Severity};
use crate::ir::{FheProgram, IrId, Scheme};

/// Shared inputs every lint can read: the precomputed analyses.
pub struct AnalysisContext<'a> {
    /// The noise-budget analysis.
    pub noise: &'a NoiseReport,
    /// The scratchpad-pressure analysis.
    pub pressure: &'a PressureReport,
}

/// One lint rule (or rule family).
pub trait Lint {
    /// The rule id (or family prefix) this lint emits.
    fn rule(&self) -> &'static str;
    /// One-line description for catalogs.
    fn description(&self) -> &'static str;
    /// Runs the lint.
    fn check(&self, p: &FheProgram, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic>;
}

/// The full typing validator as a lint family.
struct TypingLint;
impl Lint for TypingLint {
    fn rule(&self) -> &'static str {
        "typing"
    }
    fn description(&self) -> &'static str {
        "SSA well-formedness, level/scale/depth typing, input-ordinal integrity"
    }
    fn check(&self, p: &FheProgram, _ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        super::typing::check(p)
    }
}

/// CKKS scale bookkeeping beyond plain type-correctness.
struct ScaleLint;
impl Lint for ScaleLint {
    fn rule(&self) -> &'static str {
        "scale"
    }
    fn description(&self) -> &'static str {
        "CKKS scale vs level budget and rescale saturation"
    }
    fn check(&self, p: &FheProgram, _ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        if p.scheme() != Scheme::Ckks {
            return Vec::new();
        }
        let mut out = Vec::new();
        // One summary per program (anchored at the worst offender), not
        // one warning per node: deep CKKS circuits can carry thousands
        // of over-scale values, and per-node spam buries every other
        // finding. Warning, not Error: the paper's benchmarks (and this
        // repo's suite) legitimately defer rescaling across several
        // multiplications, letting scale transiently exceed the
        // remaining levels before a rescale chain brings it back.
        let mut over = 0usize;
        let mut worst: Option<(IrId, usize)> = None;
        let mut saturated = 0usize;
        let mut first_saturated = None;
        for (i, node) in p.nodes().iter().enumerate() {
            let id = IrId(i as u32);
            if !node.ty.plain && node.ty.scale as usize > node.ty.level {
                over += 1;
                let excess = node.ty.scale as usize - node.ty.level;
                if worst.is_none_or(|(_, w)| excess > w) {
                    worst = Some((id, excess));
                }
            }
            if let crate::ir::FheOp::ModSwitch(a) = node.op {
                if p.node(a).ty.scale == 1 {
                    saturated += 1;
                    first_saturated.get_or_insert(id);
                }
            }
        }
        if saturated > 0 {
            out.push(Diagnostic::warning(
                "scale::saturated-rescale",
                first_saturated,
                format!(
                    "{saturated} rescale(s) of a scale-1 value saturate at the Δ floor \
                     (first: %{}): a level is burned for no scale reduction \
                     (with_strict_scale programs reject this at build time)",
                    first_saturated.expect("saturated > 0").0
                ),
            ));
        }
        if let Some((id, excess)) = worst {
            out.push(Diagnostic::warning(
                "scale::exceeds-level",
                Some(id),
                format!(
                    "{over} value(s) carry a scale exceeding their remaining levels \
                     (worst: %{} by {excess}Δ): they cannot be rescaled back to Δ \
                     before the chain runs out",
                    id.0
                ),
            ));
        }
        out
    }
}

/// Noise-budget findings from the abstract interpretation.
struct NoiseLint;
impl Lint for NoiseLint {
    fn rule(&self) -> &'static str {
        "noise"
    }
    fn description(&self) -> &'static str {
        "static noise-budget margins (tracked estimate and worst-case bound)"
    }
    fn check(&self, p: &FheProgram, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let r = ctx.noise;
        let Some(critical) = r.critical else { return Vec::new() };
        let mut out = Vec::new();
        // Only the BGV model is executor-validated; other schemes never
        // exceed Warning.
        let ceiling = if p.scheme() == Scheme::Bgv { Severity::Error } else { Severity::Warning };
        if r.min_margin_wc < 0.0 && r.min_margin_est < 0.0 {
            // Both quantities overrun: the program is exhausted by any
            // reading. Anchor at the node with the worst *estimate*
            // margin (the runtime's view of where it dies first).
            let worst_est = (0..p.nodes().len())
                .map(|i| IrId(i as u32))
                .filter(|&id| !p.node(id).ty.plain)
                .min_by(|&a, &b| {
                    r.margin_est(p, a).partial_cmp(&r.margin_est(p, b)).expect("margins are finite")
                })
                .expect("critical implies a ciphertext node exists");
            out.push(Diagnostic {
                rule: "noise::budget-exhausted",
                severity: ceiling,
                node: Some(worst_est),
                message: format!(
                    "tracked noise estimate overruns the budget by {:.1} bits at level {}",
                    -r.min_margin_est,
                    p.node(worst_est).ty.level
                ),
            });
        } else if r.min_margin_wc < 0.0 {
            out.push(Diagnostic::warning(
                "noise::unproven",
                Some(critical),
                format!(
                    "worst-case noise bound overruns the budget by {:.1} bits \
                     (estimate still fits by {:.1}): correctness is not statically proven",
                    -r.min_margin_wc, r.min_margin_est
                ),
            ));
        } else if r.min_margin_est < 0.0 {
            // The sound worst-case bound fits, so correctness IS
            // statically proven; the heuristic estimate overrunning is
            // accumulated per-op pessimism (e.g. BGV `add_est = max+1`
            // adds a full bit where the exact sum adds almost nothing,
            // so deep addition trees drift tens of bits above the true
            // noise). Informational only — the bound is the authority.
            out.push(Diagnostic::info(
                "noise::pessimistic-estimate",
                Some(critical),
                format!(
                    "tracked estimate overruns by {:.1} bits but the worst-case bound \
                     fits with {:.1} bits to spare: the estimate recurrence is \
                     pessimistic on this shape, not the program",
                    -r.min_margin_est, r.min_margin_wc
                ),
            ));
        } else if r.min_margin_wc < 10.0 {
            out.push(Diagnostic::info(
                "noise::low-margin",
                Some(critical),
                format!("worst-case noise margin is only {:.1} bits", r.min_margin_wc),
            ));
        }
        out
    }
}

/// Scratchpad pressure finding.
struct PressureLint;
impl Lint for PressureLint {
    fn rule(&self) -> &'static str {
        "pressure"
    }
    fn description(&self) -> &'static str {
        "peak live ciphertext bytes vs scratchpad capacity"
    }
    fn check(&self, _p: &FheProgram, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let r = ctx.pressure;
        if !r.spills() {
            return Vec::new();
        }
        vec![Diagnostic::warning(
            "pressure::scratchpad-spill",
            r.peak_at,
            format!(
                "peak working set {:.1} MB ({} live values + {:.1} MB hint) exceeds the \
                 {:.0} MB scratchpad: pass 2 will spill",
                r.peak_live_bytes as f64 / (1 << 20) as f64,
                r.live_at_peak,
                r.max_hint_bytes as f64 / (1 << 20) as f64,
                r.capacity_bytes as f64 / (1 << 20) as f64
            ),
        )]
    }
}

/// Dead code reachable from no output.
struct DeadNodeLint;
impl Lint for DeadNodeLint {
    fn rule(&self) -> &'static str {
        "redundancy"
    }
    fn description(&self) -> &'static str {
        "nodes that cannot reach any program output"
    }
    fn check(&self, p: &FheProgram, _ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let n = p.nodes().len();
        let mut live = vec![false; n];
        for &o in p.outputs() {
            if (o.0 as usize) < n {
                live[o.0 as usize] = true;
            }
        }
        for i in (0..n).rev() {
            if live[i] {
                for o in p.nodes()[i].op.operands() {
                    if (o.0 as usize) < n {
                        live[o.0 as usize] = true;
                    }
                }
            }
        }
        let dead: Vec<usize> = (0..n).filter(|&i| !live[i]).collect();
        if dead.is_empty() {
            return Vec::new();
        }
        vec![Diagnostic::warning(
            "redundancy::dead-node",
            Some(IrId(dead[0] as u32)),
            format!(
                "{} node(s) cannot reach any output (first: %{}); run optimize() to \
                     eliminate them",
                dead.len(),
                dead[0]
            ),
        )]
    }
}

/// A program with no outputs at all.
struct NoOutputsLint;
impl Lint for NoOutputsLint {
    fn rule(&self) -> &'static str {
        "program"
    }
    fn description(&self) -> &'static str {
        "whole-program sanity (outputs exist)"
    }
    fn check(&self, p: &FheProgram, _ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        if p.outputs().is_empty() {
            vec![Diagnostic::warning(
                "program::no-outputs",
                None,
                "program declares no outputs; everything is dead code".into(),
            )]
        } else {
            Vec::new()
        }
    }
}

/// A registered severity override (waiver or escalation) with its
/// justification — recorded so reports can show *why* a rule was waived.
#[derive(Debug, Clone)]
pub struct SeverityOverride {
    /// Exact diagnostic rule id the override applies to.
    pub rule: String,
    /// The severity diagnostics of that rule are clamped to.
    pub severity: Severity,
    /// Why (serialized into `ANALYSIS.json` next to the finding).
    pub justification: String,
}

/// An ordered set of lints plus severity overrides.
pub struct LintRegistry {
    lints: Vec<Box<dyn Lint>>,
    overrides: Vec<SeverityOverride>,
}

impl LintRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self { lints: Vec::new(), overrides: Vec::new() }
    }

    /// The default rule set (every lint in this module).
    pub fn default_set() -> Self {
        let mut r = Self::new();
        r.register(Box::new(TypingLint));
        r.register(Box::new(ScaleLint));
        r.register(Box::new(NoiseLint));
        r.register(Box::new(PressureLint));
        r.register(Box::new(DeadNodeLint));
        r.register(Box::new(NoOutputsLint));
        r
    }

    /// Appends a lint (runs after the existing ones).
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.lints.push(lint);
    }

    /// Registered lints, in run order.
    pub fn lints(&self) -> impl Iterator<Item = &dyn Lint> {
        self.lints.iter().map(AsRef::as_ref)
    }

    /// Overrides the severity of every diagnostic with exactly `rule`,
    /// with a recorded justification (e.g. waiving a known-benign
    /// finding for one benchmark).
    pub fn override_severity(&mut self, rule: &str, severity: Severity, justification: &str) {
        self.overrides.push(SeverityOverride {
            rule: rule.to_string(),
            severity,
            justification: justification.to_string(),
        });
    }

    /// The registered overrides.
    pub fn overrides(&self) -> &[SeverityOverride] {
        &self.overrides
    }

    /// Runs every lint and applies severity overrides.
    pub fn run(&self, p: &FheProgram, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for lint in &self.lints {
            out.extend(lint.check(p, ctx));
        }
        for d in &mut out {
            if let Some(o) = self.overrides.iter().find(|o| o.rule == d.rule) {
                d.severity = o.severity;
            }
        }
        out
    }
}

impl Default for LintRegistry {
    fn default() -> Self {
        Self::default_set()
    }
}

#[cfg(test)]
mod tests {
    use super::super::Analyzer;
    use super::*;
    use crate::ir::{FheOp, ValType};

    fn diags(p: &FheProgram) -> Vec<Diagnostic> {
        Analyzer::new().analyze(p).diagnostics
    }

    fn has(d: &[Diagnostic], rule: &str) -> bool {
        d.iter().any(|x| x.rule == rule)
    }

    #[test]
    fn triggers_type_drift() {
        let mut p = FheProgram::new(64, Scheme::Bgv);
        let x = p.input(4);
        let s = p.square(x);
        p.output(s);
        p.raw_node_mut(s).ty = ValType { depth: 9, ..p.node(s).ty };
        assert!(has(&diags(&p), "typing::type-drift"));
    }

    #[test]
    fn triggers_plain_output() {
        let mut p = FheProgram::new(64, Scheme::Bgv);
        let c = p.scalar(3, 2);
        p.raw_output(c);
        assert!(has(&diags(&p), "typing::plain-output"));
    }

    #[test]
    fn triggers_gsw_mod_switch() {
        let mut p = FheProgram::new(64, Scheme::Gsw);
        let x = p.input(2);
        let bad =
            p.raw_push(FheOp::ModSwitch(x), ValType { plain: false, level: 1, scale: 0, depth: 0 });
        p.output(bad);
        assert!(has(&diags(&p), "typing::gsw-mod-switch"));
    }

    #[test]
    fn triggers_level_underflow() {
        let mut p = FheProgram::new(64, Scheme::Bgv);
        let x = p.input(1);
        let bad =
            p.raw_push(FheOp::ModSwitch(x), ValType { plain: false, level: 1, scale: 0, depth: 0 });
        p.output(bad);
        assert!(has(&diags(&p), "typing::level-underflow"));
    }

    #[test]
    fn triggers_aut_exponent() {
        let mut p = FheProgram::new(64, Scheme::Bgv);
        let x = p.input(2);
        let bad = p.raw_push(
            FheOp::Aut { a: x, k: 4 },
            ValType { plain: false, level: 2, scale: 0, depth: 0 },
        );
        p.output(bad);
        assert!(has(&diags(&p), "typing::aut-exponent"));
    }

    #[test]
    fn triggers_operand_kind() {
        let mut p = FheProgram::new(64, Scheme::Bgv);
        let x = p.input(2);
        let c = p.scalar(3, 2);
        let bad =
            p.raw_push(FheOp::Add(x, c), ValType { plain: false, level: 2, scale: 0, depth: 0 });
        p.output(bad);
        assert!(has(&diags(&p), "typing::operand-kind"));
    }

    #[test]
    fn triggers_scale_exceeds_level() {
        let mut p = FheProgram::new(64, Scheme::Ckks);
        let x = p.input(2);
        let m = p.square(x);
        let m2 = p.square(m); // scale 4 > level 2
        p.output(m2);
        assert!(has(&diags(&p), "scale::exceeds-level"));
    }

    #[test]
    fn triggers_scale_saturated_rescale() {
        let mut p = FheProgram::new(64, Scheme::Ckks);
        let x = p.input(3); // scale 1
        let r = p.rescale(x); // saturates at 1
        p.output(r);
        assert!(has(&diags(&p), "scale::saturated-rescale"));
    }

    #[test]
    fn triggers_noise_budget_exhausted() {
        // Relentless squaring at one level: the estimate itself overruns.
        let mut p = FheProgram::new(1 << 14, Scheme::Bgv);
        let mut x = p.input(2);
        for _ in 0..4 {
            x = p.square(x);
        }
        p.output(x);
        let d = diags(&p);
        assert!(has(&d, "noise::budget-exhausted"), "{d:?}");
        assert!(
            d.iter().any(|x| x.rule == "noise::budget-exhausted" && x.severity == Severity::Error),
            "BGV exhaustion must be an Error"
        );
    }

    #[test]
    fn proven_bound_downgrades_estimate_overrun_to_info() {
        // A long addition chain: the estimate pays a full bit per add
        // (`add_est = max + 1`) while the exact worst-case sum grows
        // logarithmically, so after ~200 adds the estimate overruns a
        // budget the sound bound fits comfortably. Correctness is
        // proven, so this must NOT be budget-exhausted.
        let mut p = FheProgram::new(1 << 14, Scheme::Bgv);
        let mut x = p.input(4);
        let y = p.input(4);
        for _ in 0..200 {
            x = p.add(x, y);
        }
        p.output(x);
        let d = diags(&p);
        assert!(!has(&d, "noise::budget-exhausted"), "{d:?}");
        assert!(has(&d, "noise::pessimistic-estimate"), "{d:?}");
        assert!(d.iter().all(|x| x.severity != Severity::Error), "{d:?}");
    }

    #[test]
    fn triggers_noise_unproven() {
        // One mul at a level the estimate fits but the worst case
        // doesn't: est ≈ 17+17+14 = 48, wc ≈ 14+2·16+ks ≈ 70+ vs
        // budget 2·29-1 = 57.
        let mut p = FheProgram::new(1 << 14, Scheme::Bgv);
        let x = p.input(2);
        let m = p.square(x);
        p.output(m);
        let d = diags(&p);
        assert!(has(&d, "noise::unproven"), "{d:?}");
    }

    #[test]
    fn triggers_noise_low_margin() {
        // Two plain-muls at level 2: wc ≈ 2·(14+15) + fresh 19 ≈ 50
        // against budget 57 — inside the 10-bit band.
        let mut p = FheProgram::new(1 << 14, Scheme::Bgv);
        let x = p.input(2);
        let c = p.scalar(3, 2);
        let m = p.mul_plain(x, c);
        p.output(m);
        let d = diags(&p);
        assert!(
            has(&d, "noise::low-margin") || has(&d, "noise::unproven"),
            "expected a thin-margin finding: {d:?}"
        );
    }

    #[test]
    fn triggers_scratchpad_spill() {
        let mut p = FheProgram::new(1 << 14, Scheme::Bgv);
        let xs: Vec<IrId> = (0..64).map(|_| p.input(16)).collect();
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = p.add(acc, x);
        }
        let m = p.mul(acc, acc);
        p.output(m);
        let mut analyzer =
            Analyzer::new().with_arch(f1_arch::ArchConfig::f1_default().with_scratchpad_mb(4));
        let _ = &mut analyzer;
        let d = analyzer.analyze(&p).diagnostics;
        assert!(has(&d, "pressure::scratchpad-spill"), "{d:?}");
    }

    #[test]
    fn triggers_dead_node() {
        let mut p = FheProgram::new(64, Scheme::Bgv);
        let x = p.input(4);
        let _dead = p.square(x);
        let live = p.aut(x, 3);
        p.output(live);
        assert!(has(&diags(&p), "redundancy::dead-node"));
    }

    #[test]
    fn triggers_no_outputs() {
        let mut p = FheProgram::new(64, Scheme::Bgv);
        let _ = p.input(4);
        assert!(has(&diags(&p), "program::no-outputs"));
    }

    #[test]
    fn override_downgrades_severity_with_justification() {
        let mut p = FheProgram::new(1 << 14, Scheme::Bgv);
        let mut x = p.input(2);
        for _ in 0..4 {
            x = p.square(x);
        }
        p.output(x);
        let mut analyzer = Analyzer::new();
        analyzer.registry_mut().override_severity(
            "noise::budget-exhausted",
            Severity::Warning,
            "exercised by the waiver test",
        );
        let report = analyzer.analyze(&p);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "noise::budget-exhausted" && d.severity == Severity::Warning));
    }
}
