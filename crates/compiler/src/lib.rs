//! # f1-compiler — F1's static scheduling compiler (§4)
//!
//! F1 is statically scheduled: the compiler decides the exact cycle of
//! every operation and data transfer (§3). This crate implements the full
//! stack of Fig 3, fronted by a typed IR:
//!
//! 0. [`ir`] — the `FheProgram` frontend: a typed, scheme-aware circuit
//!    builder (BGV/CKKS/GSW, level/scale/depth tracking, plaintext
//!    constants) over a normalized SSA IR with dense deterministic ids,
//!    plus the optimization pipeline (constant folding, rotation dedup,
//!    CSE, key-switch hoisting, DCE) that runs *before* key-switch
//!    expansion multiplies every homomorphic op by ~100×.
//! 1. [`dsl`] — the high-level FHE DSL of Listing 2 (`Program`), the
//!    scheduler-facing homomorphic-op list the IR lowers into.
//! 2. [`expand`] — the homomorphic-operation compiler (§4.2): orders
//!    homomorphic operations to maximize key-switch-hint reuse, chooses
//!    between key-switching implementations, and translates each
//!    operation into residue-vector instructions (Listing 1's expansion).
//! 3. [`movement`] — the off-chip data movement scheduler (§4.3): greedy
//!    priority scheduling against a scratchpad model with Belady-style
//!    furthest-reuse eviction, emitting a residency event script whose
//!    allocations carry the byte lineage of the space they reuse.
//! 4. [`cycle`] — the cycle-level scheduler (§4.4): a resource-explicit
//!    list scheduler over the event graph that ranks instructions by
//!    critical-path depth, overlaps loads/spills/refetches with compute
//!    on the HBM-channel timelines, gates consumers on refetch
//!    completion, models FU/crossbar/register-file occupancy, and emits
//!    per-component static streams whose resident set provably fits the
//!    scratchpad at every cycle.
//! 5. [`csr`] — the Goodman–Hsu register-pressure-aware baseline
//!    scheduler used by the Table 5 sensitivity study.
//!
//! Because schedules are fully static, the cycle-level scheduler doubles
//! as the performance model (§4.4 "our scheduler also doubles as a
//! performance measurement tool").

#![forbid(unsafe_code)]
// Index loops intentionally mirror the per-element/cluster/slot loops structure of the
// hardware they model; iterator rewrites obscure that correspondence.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod csr;
pub mod cycle;
pub mod dsl;
pub mod expand;
pub mod ir;
pub mod movement;
pub mod par;
pub mod stamp;

pub use analysis::{AnalysisReport, Analyzer, Diagnostic, Severity};
pub use cycle::CycleSchedule;
pub use dsl::{CtId, HomOp, Program};
pub use expand::{ExpandOptions, Expanded, KeySwitchChoice};
pub use ir::{
    FheProgram, IrId, Lowered, NodeStep, NoisePolicy, OptStats, RepeatSpec, RescaleStats, Scheme,
};
pub use stamp::{
    compile_rolled, Relocation, RolledCompile, RolledOutcome, StampInfo, StampedSchedule,
};
pub use movement::MovePlan;

/// Compiles a DSL program end-to-end with default options, returning the
/// expanded DFG, the data-movement plan and the cycle-level schedule.
/// The target architecture informs pass 1's key-switch cost model (§4.2)
/// as well as the two scheduling passes.
pub fn compile(
    program: &Program,
    arch: &f1_arch::ArchConfig,
) -> (Expanded, MovePlan, CycleSchedule) {
    let timing = std::env::var("F1_TIMING").is_ok();
    let t0 = std::time::Instant::now();
    let opts = ExpandOptions { machine: Some(arch.clone()), ..Default::default() };
    let expanded = expand::expand(program, &opts);
    let t1 = t0.elapsed();
    let plan = movement::schedule(&expanded, arch);
    let t2 = t0.elapsed();
    let cycles = cycle::schedule(&expanded, &plan, arch);
    if timing {
        eprintln!(
            "[timing]   expand {:>6.2}s  movement {:>6.2}s  cycle {:>6.2}s  ({} instrs, {} values, {} events)",
            t1.as_secs_f64(),
            (t2 - t1).as_secs_f64(),
            (t0.elapsed() - t2).as_secs_f64(),
            expanded.dfg.instrs().len(),
            expanded.dfg.values().len(),
            plan.events.len()
        );
    }
    (expanded, plan, cycles)
}

/// Compiles a typed [`FheProgram`] end-to-end: optimize (IR passes) →
/// lower → the three scheduling passes of [`compile`]. Returns the
/// lowering (with its constant table and input maps), the optimization
/// statistics, and the usual pass outputs.
pub fn compile_fhe(
    program: &FheProgram,
    arch: &f1_arch::ArchConfig,
) -> (Lowered, OptStats, Expanded, MovePlan, CycleSchedule) {
    compile_fhe_with(program, arch, None)
}

/// [`compile_fhe`] with opt-in automatic noise management: when `policy`
/// is set, [`ir::rescale::insert_rescales`] reflows the program (drops
/// hand-placed mod-switches, re-derives placement under the policy, and
/// re-proves typing + noise margins) before the optimizer runs.
pub fn compile_fhe_with(
    program: &FheProgram,
    arch: &f1_arch::ArchConfig,
    policy: Option<NoisePolicy>,
) -> (Lowered, OptStats, Expanded, MovePlan, CycleSchedule) {
    // Rolled loop regions unroll here: every pass below this point sees
    // flat IR. (`stamp::compile_rolled` is the sublinear alternative that
    // keeps the region symbolic.)
    let unrolled;
    let program = if program.repeats().is_empty() {
        program
    } else {
        unrolled = program.unroll();
        &unrolled
    };
    let managed;
    let program = match policy {
        Some(policy) => {
            let (m, _stats) = ir::rescale::insert_rescales(program, policy);
            managed = m;
            &managed
        }
        None => program,
    };
    let (optimized, stats) = program.optimize();
    let lowered = optimized.lower();
    let (expanded, plan, cycles) = compile(&lowered.program, arch);
    (lowered, stats, expanded, plan, cycles)
}
