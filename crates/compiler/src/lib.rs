//! # f1-compiler — F1's three-pass static scheduling compiler (§4)
//!
//! F1 is statically scheduled: the compiler decides the exact cycle of
//! every operation and data transfer (§3). This crate implements the full
//! stack of Fig 3:
//!
//! 1. [`dsl`] — the high-level FHE DSL of Listing 2 (`Program`).
//! 2. [`expand`] — the homomorphic-operation compiler (§4.2): orders
//!    homomorphic operations to maximize key-switch-hint reuse, chooses
//!    between key-switching implementations, and translates each
//!    operation into residue-vector instructions (Listing 1's expansion).
//! 3. [`movement`] — the off-chip data movement scheduler (§4.3): greedy
//!    priority scheduling against a scratchpad model with Belady-style
//!    furthest-reuse eviction.
//! 4. [`cycle`] — the cycle-level scheduler (§4.4): distributes
//!    instructions across clusters, models FU occupancy, network and
//!    memory timing, and emits per-component static streams.
//! 5. [`csr`] — the Goodman–Hsu register-pressure-aware baseline
//!    scheduler used by the Table 5 sensitivity study.
//!
//! Because schedules are fully static, the cycle-level scheduler doubles
//! as the performance model (§4.4 "our scheduler also doubles as a
//! performance measurement tool").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod cycle;
pub mod dsl;
pub mod expand;
pub mod movement;

pub use cycle::CycleSchedule;
pub use dsl::{CtId, HomOp, Program};
pub use expand::{ExpandOptions, Expanded, KeySwitchChoice};
pub use movement::MovePlan;

/// Compiles a DSL program end-to-end with default options, returning the
/// expanded DFG, the data-movement plan and the cycle-level schedule.
pub fn compile(
    program: &Program,
    arch: &f1_arch::ArchConfig,
) -> (Expanded, MovePlan, CycleSchedule) {
    let expanded = expand::expand(program, &ExpandOptions::default());
    let plan = movement::schedule(&expanded, arch);
    let cycles = cycle::schedule(&expanded, &plan, arch);
    (expanded, plan, cycles)
}
