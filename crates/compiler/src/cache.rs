//! Content-addressed, serializable schedule cache.
//!
//! The three scheduling passes are deterministic functions of
//! `(program, architecture, policy)`, and at full benchmark scale they
//! take tens of seconds — so their output is worth persisting. This
//! module stores each compile's artifacts (the expanded DFG, the
//! movement plan, the cycle-level schedule, and for the typed-IR path
//! the lowering and optimizer statistics) in a binary file addressed by
//! a fingerprint of the *inputs*:
//!
//! * **Key** — the exact serialized bytes of the compile inputs. The
//!   artifact header stores both an FNV-64 hash of the key (which names
//!   the file) and the full key bytes (compared verbatim on load, so a
//!   hash collision degrades to a miss, never a wrong schedule).
//! * **Integrity** — the header also carries a checksum of the payload;
//!   a bit flip anywhere in the artifact fails the checksum (or the
//!   format checks, or the typed decode) and the entry is ignored.
//! * **Fallback** — *every* load failure ([`CacheError`]) falls back to
//!   a fresh compile; a corrupted cache can cost time, never
//!   correctness. Writes are atomic (temp file + rename), so a crashed
//!   or concurrent writer leaves either the old entry or the new one,
//!   not a torn file.
//! * **Round-trip** — a cache **miss** also returns the artifacts *via*
//!   their serialized bytes, so cached and uncached compiles hand
//!   callers bit-identical values and serialization fidelity is
//!   exercised on every store, not just on the eventual reload.
//!
//! Schedules loaded from the cache should still be re-verified by the
//! `f1-sim` checker (`check_schedule`, or the cheaper stream-level
//! `check_streams`) — the artifact carries everything the checker
//! needs. The cache lives in `$F1_CACHE_DIR` (default
//! `target/f1-cache`).

use crate::cycle::CycleSchedule;
use crate::dsl::Program;
use crate::expand::Expanded;
use crate::ir::{FheProgram, Lowered, NoisePolicy, OptStats};
use crate::movement::MovePlan;
use f1_arch::ArchConfig;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Artifact format version; bump on any layout or semantic change so
/// stale entries from older builds miss instead of mis-decoding.
/// v2: `FheProgram` gained rolled-loop regions (`repeats`), changing
/// both the typed-IR key bytes and the `Lowered` payload layout.
pub const FORMAT_VERSION: u32 = 2;

/// Artifact file magic.
const MAGIC: [u8; 4] = *b"F1SC";

/// Whether a [`compile_cached`]/[`compile_fhe_cached`] call was served
/// from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Artifacts deserialized from an existing cache entry.
    Hit,
    /// Fresh compile; the artifacts were (re)written to the cache.
    Miss,
}

/// Why a cache entry could not be used. Every variant is recoverable:
/// callers fall back to a fresh compile.
#[derive(Debug)]
pub enum CacheError {
    /// Filesystem error (including "no such entry").
    Io(std::io::Error),
    /// Structural mismatch: bad magic, version, length or checksum.
    Format(&'static str),
    /// The stored key bytes differ from the requested key (hash
    /// collision, or a foreign file at the entry's path).
    KeyMismatch,
    /// The payload failed typed deserialization.
    Decode(serde::Error),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache io: {e}"),
            CacheError::Format(what) => write!(f, "cache format: {what}"),
            CacheError::KeyMismatch => write!(f, "cache key mismatch"),
            CacheError::Decode(e) => write!(f, "cache decode: {e:?}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

/// FNV-1a over a byte slice — the repo's standard fingerprint. Used for
/// the key hash (keys are small).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a folded over 8-byte words — the *payload* checksum (format
/// v2). Payloads run to tens of MB, where byte-at-a-time FNV costs a
/// visible slice of the cache-hit budget; folding words does one
/// multiply per 8 bytes and still flips on any single-bit corruption.
fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache directory: `$F1_CACHE_DIR`, else `target/f1-cache`.
pub fn cache_dir() -> PathBuf {
    match std::env::var_os("F1_CACHE_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("target/f1-cache"),
    }
}

/// Path of the entry for a key within [`cache_dir`]. `kind`
/// distinguishes artifact layouts (`"dsl"` vs `"fhe"`).
pub fn entry_path(kind: &str, key_hash: u64) -> PathBuf {
    cache_dir().join(format!("{kind}-{key_hash:016x}.f1c"))
}

/// Writes an artifact atomically: temp file in the same directory, then
/// rename over the final path.
fn store(path: &Path, key: &[u8], payload: &[u8]) -> Result<(), CacheError> {
    let dir = path.parent().ok_or(CacheError::Format("entry path has no parent"))?;
    std::fs::create_dir_all(dir)?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&MAGIC)?;
        f.write_all(&FORMAT_VERSION.to_le_bytes())?;
        f.write_all(&fnv64(key).to_le_bytes())?;
        f.write_all(&checksum64(payload).to_le_bytes())?;
        f.write_all(&(key.len() as u64).to_le_bytes())?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(key)?;
        f.write_all(payload)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Reads an artifact, verifying magic, version, lengths, key bytes and
/// payload checksum. Returns the raw payload.
fn load(path: &Path, key: &[u8]) -> Result<Vec<u8>, CacheError> {
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; 4 + 4 + 8 + 8 + 8 + 8];
    f.read_exact(&mut header).map_err(|_| CacheError::Format("truncated header"))?;
    if header[..4] != MAGIC {
        return Err(CacheError::Format("bad magic"));
    }
    let word = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
    if u32::from_le_bytes(header[4..8].try_into().unwrap()) != FORMAT_VERSION {
        return Err(CacheError::Format("format version mismatch"));
    }
    let (key_hash, payload_hash) = (word(8), word(16));
    let (key_len, payload_len) = (word(24) as usize, word(32) as usize);
    if key_len != key.len() {
        return Err(CacheError::KeyMismatch);
    }
    let mut stored_key = vec![0u8; key_len];
    f.read_exact(&mut stored_key).map_err(|_| CacheError::Format("truncated key"))?;
    if stored_key != key || key_hash != fnv64(key) {
        return Err(CacheError::KeyMismatch);
    }
    let mut payload = vec![0u8; payload_len];
    f.read_exact(&mut payload).map_err(|_| CacheError::Format("truncated payload"))?;
    let mut rest = [0u8; 1];
    if f.read(&mut rest)? != 0 {
        return Err(CacheError::Format("trailing bytes"));
    }
    if checksum64(&payload) != payload_hash {
        return Err(CacheError::Format("payload checksum mismatch"));
    }
    Ok(payload)
}

/// Loads and decodes the entry for `key`, or explains why it can't be
/// used.
fn load_typed<T: serde::Deserialize>(kind: &str, key: &[u8]) -> Result<T, CacheError> {
    let payload = load(&entry_path(kind, fnv64(key)), key)?;
    serde::from_bytes(&payload).map_err(CacheError::Decode)
}

/// Artifact path a [`compile_cached`] call for these inputs uses.
pub fn dsl_entry_path(program: &Program, arch: &ArchConfig) -> PathBuf {
    let key = serde::to_bytes(&(program, arch));
    entry_path("dsl", fnv64(&key))
}

/// Removes the entry a [`compile_cached`] call for these inputs would
/// consult, forcing the next call cold. Returns whether one existed.
pub fn evict_dsl(program: &Program, arch: &ArchConfig) -> bool {
    std::fs::remove_file(dsl_entry_path(program, arch)).is_ok()
}

/// Serializes and stores already-compiled artifacts under the key
/// [`compile_cached`] uses, overwriting any existing entry — for callers
/// that timed the passes themselves and want to seed the cache without a
/// second compile.
pub fn store_dsl(
    program: &Program,
    arch: &ArchConfig,
    artifacts: (&Expanded, &MovePlan, &CycleSchedule),
) -> Result<(), CacheError> {
    let key = serde::to_bytes(&(program, arch));
    let payload = serde::to_bytes(&artifacts);
    store(&entry_path("dsl", fnv64(&key)), &key, &payload)
}

/// Artifact path a [`compile_fhe_cached`] call for these inputs uses.
/// The key serializes the program *as written* — a rolled program and
/// its unrolling are semantically equivalent but occupy distinct
/// entries (`repeats` is part of `FheProgram`'s serialization), so the
/// sublinear rolled path and the flat path never collide in the cache.
pub fn fhe_entry_path(
    program: &FheProgram,
    arch: &ArchConfig,
    policy: &Option<NoisePolicy>,
) -> PathBuf {
    let key = serde::to_bytes(&(program, arch, policy));
    entry_path("fhe", fnv64(&key))
}

/// [`evict_dsl`] for the typed-IR path of [`compile_fhe_cached`].
pub fn evict_fhe(program: &FheProgram, arch: &ArchConfig, policy: &Option<NoisePolicy>) -> bool {
    std::fs::remove_file(fhe_entry_path(program, arch, policy)).is_ok()
}

/// [`crate::compile`] with caching: on a hit the three pass artifacts
/// are deserialized from disk instead of recompiled; on a miss they are
/// compiled, written back, and returned *through* their serialized
/// bytes (see the module docs). The second element reports which
/// happened.
pub fn compile_cached(
    program: &Program,
    arch: &ArchConfig,
) -> ((Expanded, MovePlan, CycleSchedule), CacheStatus) {
    let key = serde::to_bytes(&(program, arch));
    if let Ok(artifacts) = load_typed::<(Expanded, MovePlan, CycleSchedule)>("dsl", &key) {
        return (artifacts, CacheStatus::Hit);
    }
    let fresh = crate::compile(program, arch);
    let payload = serde::to_bytes(&fresh);
    if let Err(e) = store(&entry_path("dsl", fnv64(&key)), &key, &payload) {
        // Best-effort: a read-only or full cache dir must not fail builds.
        eprintln!("[f1-cache] store failed (continuing uncached): {e}");
    }
    let round_tripped = serde::from_bytes::<(Expanded, MovePlan, CycleSchedule)>(&payload)
        .expect("schedule artifacts must survive their own serialization");
    (round_tripped, CacheStatus::Miss)
}

/// [`crate::compile_fhe_with`] with caching, keyed on the typed program,
/// the architecture and the noise policy.
pub fn compile_fhe_cached(
    program: &FheProgram,
    arch: &ArchConfig,
    policy: Option<NoisePolicy>,
) -> ((Lowered, OptStats, Expanded, MovePlan, CycleSchedule), CacheStatus) {
    // The serde shim's tuples stop at arity 4; nest the five artifacts.
    type FheArtifacts = ((Lowered, OptStats), (Expanded, MovePlan, CycleSchedule));
    let key = serde::to_bytes(&(program, arch, &policy));
    if let Ok(((lowered, stats), (ex, plan, cs))) = load_typed::<FheArtifacts>("fhe", &key) {
        return ((lowered, stats, ex, plan, cs), CacheStatus::Hit);
    }
    let (lowered, stats, ex, plan, cs) = crate::compile_fhe_with(program, arch, policy);
    let payload = serde::to_bytes(&((&lowered, &stats), (&ex, &plan, &cs)));
    if let Err(e) = store(&entry_path("fhe", fnv64(&key)), &key, &payload) {
        eprintln!("[f1-cache] store failed (continuing uncached): {e}");
    }
    let ((lowered, stats), (ex, plan, cs)) = serde::from_bytes::<FheArtifacts>(&payload)
        .expect("schedule artifacts must survive their own serialization");
    ((lowered, stats, ex, plan, cs), CacheStatus::Miss)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes/loads against a scratch dir without touching the
    /// process environment (tests in one binary run concurrently).
    fn with_dir<R>(f: impl FnOnce(&Path) -> R) -> R {
        let dir = std::env::temp_dir().join(format!(
            "f1-cache-test-{}-{:p}",
            std::process::id(),
            &f as *const _
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let r = f(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn store_load_round_trip_and_corruption_detected() {
        with_dir(|dir| {
            let path = dir.join("t.f1c");
            let key = b"key-bytes".to_vec();
            let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
            store(&path, &key, &payload).unwrap();
            assert_eq!(load(&path, &key).unwrap(), payload);
            // Wrong key → KeyMismatch.
            assert!(matches!(load(&path, b"other-key"), Err(CacheError::KeyMismatch)));
            // Flip one payload bit → checksum failure.
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            assert!(matches!(load(&path, &key), Err(CacheError::Format(_))));
            // Truncate → structural failure.
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
            assert!(load(&path, &key).is_err());
            // Missing file → Io.
            assert!(matches!(load(&dir.join("absent.f1c"), &key), Err(CacheError::Io(_))));
        });
    }

    #[test]
    fn rolled_and_unrolled_programs_use_distinct_entries() {
        // A rolled program and its unrolling produce byte-identical
        // schedules but must never share a cache entry: the key hashes
        // the program as written (the `repeats` field serializes), so
        // the sublinear path's artifacts cannot shadow the flat path's.
        use crate::ir::Scheme;
        let arch = ArchConfig::f1_default();
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let acc = p.input(6);
        let t = p.begin_repeat();
        let m = p.square(acc);
        let acc2 = p.add(m, m);
        p.end_repeat(t, 4, vec![(acc, acc2)], vec![]);
        p.output(acc2);
        let flat = p.unroll();
        assert_ne!(
            fhe_entry_path(&p, &arch, &None),
            fhe_entry_path(&flat, &arch, &None),
            "rolled and unrolled forms must hash to distinct cache entries"
        );
        // Trip count is part of the key too: re-trip and the entry moves.
        assert_ne!(
            fhe_entry_path(&p, &arch, &None),
            fhe_entry_path(&p.with_trips(0, 5), &arch, &None),
        );
    }

    #[test]
    fn version_and_magic_gate_loads() {
        with_dir(|dir| {
            let path = dir.join("t.f1c");
            let key = b"k".to_vec();
            store(&path, &key, b"payload").unwrap();
            let good = std::fs::read(&path).unwrap();
            // Corrupt the magic.
            let mut bad = good.clone();
            bad[0] = b'X';
            std::fs::write(&path, &bad).unwrap();
            assert!(matches!(load(&path, &key), Err(CacheError::Format("bad magic"))));
            // Bump the version.
            let mut bad = good;
            bad[4] ^= 0xFF;
            std::fs::write(&path, &bad).unwrap();
            assert!(matches!(
                load(&path, &key),
                Err(CacheError::Format("format version mismatch"))
            ));
        });
    }
}
