//! The `FheProgram` IR — a typed, scheme-aware frontend above [`crate::dsl`].
//!
//! The DSL of Listing 2 is deliberately thin: untyped ciphertext handles
//! and exactly the homomorphic operations pass 1 expands. Real workloads
//! want more — scheme-specific typing (BGV levels, CKKS scales, GSW
//! depth), plaintext *constants* the compiler can fold, and redundancy
//! elimination before the expensive key-switch expansion multiplies every
//! homomorphic op into hundreds of vector instructions. This module is
//! that layer:
//!
//! * [`FheProgram`] is simultaneously the circuit **builder** (typed
//!   `input`/`mul`/`rotate`/... methods that check levels and scales at
//!   construction time) and the **normalized IR**: a flat SSA node list
//!   whose value ids ([`IrId`]) are dense indices in creation order —
//!   stable and deterministic by construction, never derived from hash
//!   iteration.
//! * [`passes`] implements the optimization pipeline — constant folding,
//!   rotation/automorphism dedup, common-subexpression elimination,
//!   key-switch hoisting and dead-code elimination (see
//!   [`FheProgram::optimize`]).
//! * [`lower`] translates the (optimized) IR 1:1 into a
//!   [`crate::dsl::Program`] for the three scheduling passes, carrying a
//!   table of folded plaintext constants for functional execution.
//!
//! The pipeline is therefore: **frontend → IR passes → DFG → pass 1/2/3**
//! (Fig 3, with the IR inserted where the paper's "homomorphic-operation
//! compiler" consumes its input program).

pub mod lower;
pub mod passes;
pub mod rescale;

use serde::{Deserialize, Serialize};

pub use lower::Lowered;
pub use passes::OptStats;
pub use rescale::{NoisePolicy, RescaleStats};

/// Identifies one value (node) in an [`FheProgram`].
///
/// Ids are dense indices into the node list in creation order; every
/// pass renumbers survivors in that same order, so ids are deterministic
/// for a given builder call sequence — no hash-iteration order anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IrId(pub u32);

/// The FHE scheme a program is typed against (§2.5: at the instruction
/// level all three compile to the same vector operations; the scheme
/// governs frontend *typing* — what the builder accepts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// BGV: exact modular arithmetic, level-typed modulus chain.
    Bgv,
    /// CKKS: approximate arithmetic; additionally tracks a scale (in
    /// units of the base scaling factor Δ) that rescaling consumes.
    Ckks,
    /// GSW: no modulus chain — `mod_switch` is rejected, multiplicative
    /// depth is tracked instead (the bootstrapping building block, §2.5).
    Gsw,
}

impl Scheme {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Bgv => "BGV",
            Scheme::Ckks => "CKKS",
            Scheme::Gsw => "GSW",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The type of one IR value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValType {
    /// Plaintext operand (one polynomial) vs ciphertext (two).
    pub plain: bool,
    /// RNS limbs (BGV/CKKS modulus-chain position; constant for GSW).
    pub level: usize,
    /// CKKS scale in units of Δ (0 for BGV/GSW). Rescaling decrements,
    /// saturating at 1 — the benchmarks follow the paper in treating a
    /// `mod_switch` as "rescale and renormalize to Δ".
    pub scale: u32,
    /// Multiplicative depth consumed so far (diagnostics; typing for GSW).
    pub depth: u32,
}

/// One IR operation. Operands always reference earlier nodes (SSA,
/// acyclic by construction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FheOp {
    /// An encrypted input. `ordinal` is the input's position among all
    /// ciphertext inputs (stable across passes — the binding key for
    /// functional execution, never merged by CSE).
    CtInput {
        /// RNS limbs at entry.
        level: usize,
        /// Position among ciphertext inputs at build time.
        ordinal: u32,
    },
    /// An unencrypted runtime input (the cheap multiplicand of §2.1).
    PtInput {
        /// RNS limbs at entry.
        level: usize,
        /// Position among plaintext inputs at build time.
        ordinal: u32,
    },
    /// A plaintext constant known at compile time (coefficients of the
    /// plaintext polynomial; scalars are single-element). Constants are
    /// foldable and CSE-mergeable, unlike runtime inputs.
    Constant {
        /// Plaintext coefficients (reduced mod t when bound).
        coeffs: Vec<u64>,
        /// RNS limbs the constant is encoded at.
        level: usize,
    },
    /// Homomorphic addition (ciphertext + ciphertext).
    Add(IrId, IrId),
    /// Addition of a plaintext operand.
    AddPlain(IrId, IrId),
    /// Homomorphic multiplication (tensor + relinearization key-switch).
    Mul(IrId, IrId),
    /// Multiplication by a plaintext operand (no key-switch).
    MulPlain(IrId, IrId),
    /// Automorphism `σ_k` + key-switch (rotations use `k = 3^amount`).
    Aut {
        /// Ciphertext operand.
        a: IrId,
        /// Automorphism exponent (odd, `< 2N`).
        k: usize,
    },
    /// Modulus switch / CKKS rescale one level down.
    ModSwitch(IrId),
}

impl FheOp {
    /// Operand ids, in order.
    pub fn operands(&self) -> Vec<IrId> {
        match self {
            FheOp::CtInput { .. } | FheOp::PtInput { .. } | FheOp::Constant { .. } => vec![],
            FheOp::Add(a, b) | FheOp::Mul(a, b) | FheOp::AddPlain(a, b) | FheOp::MulPlain(a, b) => {
                vec![*a, *b]
            }
            FheOp::Aut { a, .. } | FheOp::ModSwitch(a) => vec![*a],
        }
    }

    /// Whether this op performs a key switch when lowered (the expensive
    /// class: each becomes hundreds of vector instructions at depth).
    pub fn is_keyswitch(&self) -> bool {
        matches!(self, FheOp::Mul(..) | FheOp::Aut { .. })
    }
}

/// One IR node: an operation plus the type of the value it produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The operation.
    pub op: FheOp,
    /// Type of the produced value.
    pub ty: ValType,
}

/// A typed, scheme-aware FHE program: the circuit builder and the
/// normalized SSA IR in one. See the module docs for the pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FheProgram {
    /// Ring dimension.
    pub n: usize,
    scheme: Scheme,
    /// Enforce CKKS scale equality on additions (off by default: the
    /// paper's benchmarks rescale at multiplication boundaries only).
    strict_scale: bool,
    nodes: Vec<Node>,
    outputs: Vec<IrId>,
    next_ct_ordinal: u32,
    next_pt_ordinal: u32,
}

impl FheProgram {
    /// Creates an empty program over ring dimension `n`, typed for
    /// `scheme`.
    pub fn new(n: usize, scheme: Scheme) -> Self {
        assert!(n.is_power_of_two(), "ring dimension must be a power of two");
        Self {
            n,
            scheme,
            strict_scale: false,
            nodes: Vec::new(),
            outputs: Vec::new(),
            next_ct_ordinal: 0,
            next_pt_ordinal: 0,
        }
    }

    /// Enables strict CKKS scale checking: additions assert equal scales.
    pub fn with_strict_scale(mut self) -> Self {
        self.strict_scale = true;
        self
    }

    /// The program's scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Whether strict CKKS scale checking is enabled.
    pub fn strict_scale(&self) -> bool {
        self.strict_scale
    }

    fn push(&mut self, op: FheOp, ty: ValType) -> IrId {
        let id = IrId(self.nodes.len() as u32);
        debug_assert!(op.operands().iter().all(|o| (o.0 as usize) < self.nodes.len()));
        self.nodes.push(Node { op, ty });
        id
    }

    fn ty(&self, v: IrId) -> ValType {
        self.nodes[v.0 as usize].ty
    }

    fn ct(&self, v: IrId, what: &str) -> ValType {
        let t = self.ty(v);
        assert!(!t.plain, "{what}: operand {v:?} must be a ciphertext");
        t
    }

    fn pt(&self, v: IrId, what: &str) -> ValType {
        let t = self.ty(v);
        assert!(t.plain, "{what}: operand {v:?} must be a plaintext");
        t
    }

    fn join_levels(&self, a: ValType, b: ValType) -> usize {
        assert_eq!(
            a.level, b.level,
            "operand levels differ ({} vs {}); insert mod_switch",
            a.level, b.level
        );
        a.level
    }

    /// Declares an encrypted input with `level` RNS limbs.
    pub fn input(&mut self, level: usize) -> IrId {
        assert!(level >= 1);
        let ordinal = self.next_ct_ordinal;
        self.next_ct_ordinal += 1;
        let scale = if self.scheme == Scheme::Ckks { 1 } else { 0 };
        self.push(
            FheOp::CtInput { level, ordinal },
            ValType { plain: false, level, scale, depth: 0 },
        )
    }

    /// Declares an unencrypted runtime input.
    pub fn plain_input(&mut self, level: usize) -> IrId {
        assert!(level >= 1);
        let ordinal = self.next_pt_ordinal;
        self.next_pt_ordinal += 1;
        let scale = if self.scheme == Scheme::Ckks { 1 } else { 0 };
        self.push(
            FheOp::PtInput { level, ordinal },
            ValType { plain: true, level, scale, depth: 0 },
        )
    }

    /// Declares a plaintext constant with the given coefficients, encoded
    /// at `level`. Unlike [`Self::plain_input`], constants participate in
    /// constant folding and CSE.
    pub fn constant(&mut self, coeffs: &[u64], level: usize) -> IrId {
        assert!(level >= 1);
        let scale = if self.scheme == Scheme::Ckks { 1 } else { 0 };
        self.push(
            FheOp::Constant { coeffs: coeffs.to_vec(), level },
            ValType { plain: true, level, scale, depth: 0 },
        )
    }

    /// A scalar constant (degree-0 plaintext).
    pub fn scalar(&mut self, value: u64, level: usize) -> IrId {
        self.constant(&[value], level)
    }

    /// Homomorphic addition. Both operands must be ciphertexts at the
    /// same level (and, under [`Self::with_strict_scale`], the same CKKS
    /// scale) — or both plaintext constants, which fold at compile time.
    pub fn add(&mut self, a: IrId, b: IrId) -> IrId {
        let (ta, tb) = (self.ty(a), self.ty(b));
        if ta.plain && tb.plain {
            return self.plain_pair_op(a, b, true);
        }
        let (ta, tb) = (self.ct(a, "add"), self.ct(b, "add"));
        let level = self.join_levels(ta, tb);
        if self.strict_scale && self.scheme == Scheme::Ckks {
            assert_eq!(ta.scale, tb.scale, "CKKS scales differ on add; rescale first");
        }
        let ty = ValType {
            plain: false,
            level,
            scale: ta.scale.max(tb.scale),
            depth: ta.depth.max(tb.depth),
        };
        self.push(FheOp::Add(a, b), ty)
    }

    /// Checks a ciphertext/plaintext level pair. Plaintexts only need to
    /// *cover* the ciphertext level: an RNS plaintext encoded at level
    /// `l >= level` contains every residue of the ciphertext's chain
    /// prefix, so the backend simply ignores its top limbs. (Requiring
    /// equality would force duplicating `PtInput` ordinals whenever a
    /// rescale pass moves the consuming ciphertext down a level.)
    fn join_plain_level(&self, ct: ValType, pt: ValType) -> usize {
        assert!(
            pt.level >= ct.level,
            "plaintext level {} does not cover ciphertext level {}",
            pt.level,
            ct.level
        );
        ct.level
    }

    /// Adds a plaintext operand (runtime input or constant) to a
    /// ciphertext. The plaintext may sit at a *higher* level — its excess
    /// limbs are ignored; the result takes the ciphertext's level.
    pub fn add_plain(&mut self, a: IrId, p: IrId) -> IrId {
        let ta = self.ct(a, "add_plain");
        let tp = self.pt(p, "add_plain");
        let level = self.join_plain_level(ta, tp);
        self.push(FheOp::AddPlain(a, p), ValType { level, ..ta })
    }

    /// Homomorphic multiplication (tensor + relinearization).
    pub fn mul(&mut self, a: IrId, b: IrId) -> IrId {
        let (ta, tb) = (self.ty(a), self.ty(b));
        if ta.plain && tb.plain {
            return self.plain_pair_op(a, b, false);
        }
        let (ta, tb) = (self.ct(a, "mul"), self.ct(b, "mul"));
        let level = self.join_levels(ta, tb);
        let ty = ValType {
            plain: false,
            level,
            scale: ta.scale + tb.scale,
            depth: ta.depth.max(tb.depth) + 1,
        };
        self.push(FheOp::Mul(a, b), ty)
    }

    /// Squares a ciphertext (sugar for `mul(a, a)`).
    pub fn square(&mut self, a: IrId) -> IrId {
        self.mul(a, a)
    }

    /// Multiplication by a plaintext operand (no key-switch). As with
    /// [`Self::add_plain`], the plaintext's level only needs to cover the
    /// ciphertext's; the result takes the ciphertext's level.
    pub fn mul_plain(&mut self, a: IrId, p: IrId) -> IrId {
        let ta = self.ct(a, "mul_plain");
        let tp = self.pt(p, "mul_plain");
        let level = self.join_plain_level(ta, tp);
        let ty = ValType { plain: false, level, scale: ta.scale + tp.scale, depth: ta.depth };
        self.push(FheOp::MulPlain(a, p), ty)
    }

    /// A compile-time operation between two plaintext values: legal only
    /// when both are constants (so constant folding can evaluate it —
    /// runtime plain x plain compute has no lowering). Foldability is
    /// validated here so an unloweringable op (u64 overflow, non-scalar
    /// constant product) fails fast at the construction site instead of
    /// deep inside `lower()`.
    fn plain_pair_op(&mut self, a: IrId, b: IrId, is_add: bool) -> IrId {
        let (ta, tb) = (self.pt(a, "const op"), self.pt(b, "const op"));
        let constant = |p: &Self, v: IrId| match &p.nodes[v.0 as usize].op {
            FheOp::Constant { coeffs, .. } => Some(coeffs.clone()),
            _ => None,
        };
        let (ca, cb) = (constant(self, a), constant(self, b));
        let (ca, cb) = match (ca, cb) {
            (Some(x), Some(y)) => (x, y),
            _ => panic!("plaintext-plaintext arithmetic requires compile-time constants"),
        };
        let foldable = if is_add {
            passes::fold_add(&ca, &cb).is_some()
        } else {
            passes::fold_mul_scalar(&ca, &cb).is_some()
        };
        assert!(
            foldable,
            "constant {} has no lowering (u64 overflow or non-scalar constant product)",
            if is_add { "add" } else { "mul" }
        );
        let level = self.join_levels(ta, tb);
        let ty = ValType { plain: true, level, scale: ta.scale.max(tb.scale), depth: 0 };
        let op = if is_add { FheOp::Add(a, b) } else { FheOp::Mul(a, b) };
        self.push(op, ty)
    }

    /// Homomorphic rotation by `amount` slots: automorphism with
    /// exponent `3^amount mod 2N`.
    pub fn rotate(&mut self, a: IrId, amount: usize) -> IrId {
        let two_n = 2 * self.n;
        let mut k = 1usize;
        for _ in 0..amount {
            k = k * 3 % two_n;
        }
        self.aut(a, k)
    }

    /// Homomorphic automorphism with an explicit exponent.
    pub fn aut(&mut self, a: IrId, k: usize) -> IrId {
        assert!(k % 2 == 1 && k < 2 * self.n, "invalid automorphism exponent {k}");
        let ta = self.ct(a, "aut");
        self.push(FheOp::Aut { a, k }, ta)
    }

    /// Modulus switch (BGV) / rescale (CKKS) one level down. Rejected
    /// for GSW, which has no modulus chain.
    ///
    /// A CKKS rescale at scale 1 *saturates*: the scale cannot drop below
    /// one Δ, so the op burns a level without buying scale headroom.
    /// Under [`Self::with_strict_scale`] that is rejected outright; in
    /// lax programs the `scale::saturated-rescale` lint flags it.
    pub fn mod_switch(&mut self, a: IrId) -> IrId {
        assert!(self.scheme != Scheme::Gsw, "GSW has no modulus chain to switch");
        let ta = self.ct(a, "mod_switch");
        assert!(ta.level >= 2, "cannot switch below level 1");
        if self.strict_scale && self.scheme == Scheme::Ckks {
            assert!(
                ta.scale >= 2,
                "CKKS rescale at scale 1 saturates (burns a level for no scale reduction)"
            );
        }
        let scale = if self.scheme == Scheme::Ckks { ta.scale.saturating_sub(1).max(1) } else { 0 };
        self.push(FheOp::ModSwitch(a), ValType { level: ta.level - 1, scale, ..ta })
    }

    /// CKKS-flavored alias for [`Self::mod_switch`].
    pub fn rescale(&mut self, a: IrId) -> IrId {
        self.mod_switch(a)
    }

    /// The `innerSum` idiom of Listing 2: `log2(count)` rotate-and-add
    /// steps that leave every slot holding the sum.
    pub fn inner_sum(&mut self, mut x: IrId, count: usize) -> IrId {
        assert!(count.is_power_of_two());
        for i in 0..count.trailing_zeros() {
            let r = self.rotate(x, 1 << i);
            x = self.add(x, r);
        }
        x
    }

    /// Marks a value as a program output (must be a ciphertext).
    pub fn output(&mut self, x: IrId) {
        self.ct(x, "output");
        self.outputs.push(x);
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, v: IrId) -> &Node {
        &self.nodes[v.0 as usize]
    }

    /// Program outputs, in declaration order.
    pub fn outputs(&self) -> &[IrId] {
        &self.outputs
    }

    /// Mutable access to a node, bypassing the builder's typing rules.
    /// Exists so the static analyzer's tests can construct ill-typed IR
    /// that the safe builder refuses to produce; never use it to build
    /// real programs.
    #[doc(hidden)]
    pub fn raw_node_mut(&mut self, v: IrId) -> &mut Node {
        &mut self.nodes[v.0 as usize]
    }

    /// Appends a node with an arbitrary claimed type and no SSA check.
    /// Test-only escape hatch; see [`FheProgram::raw_node_mut`].
    #[doc(hidden)]
    pub fn raw_push(&mut self, op: FheOp, ty: ValType) -> IrId {
        let id = IrId(self.nodes.len() as u32);
        self.nodes.push(Node { op, ty });
        id
    }

    /// Marks `x` as an output without the ciphertext check. Test-only
    /// escape hatch; see [`FheProgram::raw_node_mut`].
    #[doc(hidden)]
    pub fn raw_output(&mut self, x: IrId) {
        self.outputs.push(x);
    }

    /// Level of a value.
    pub fn level_of(&self, v: IrId) -> usize {
        self.ty(v).level
    }

    /// CKKS scale of a value (units of Δ; 0 outside CKKS).
    pub fn scale_of(&self, v: IrId) -> u32 {
        self.ty(v).scale
    }

    /// Multiplicative depth consumed by a value.
    pub fn depth_of(&self, v: IrId) -> u32 {
        self.ty(v).depth
    }

    /// Number of key-switching operations (Mul/Aut) — the expansion-cost
    /// drivers the optimization passes try to reduce.
    pub fn keyswitch_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_keyswitch()).count()
    }

    /// Validates SSA (operands reference earlier nodes) and typing
    /// invariants; returns the node count.
    ///
    /// # Panics
    ///
    /// Panics on violation.
    pub fn validate(&self) -> usize {
        for (i, node) in self.nodes.iter().enumerate() {
            for o in node.op.operands() {
                assert!((o.0 as usize) < i, "node {i} uses a later value {o:?}");
            }
        }
        for &o in &self.outputs {
            assert!((o.0 as usize) < self.nodes.len(), "unknown output {o:?}");
            assert!(!self.ty(o).plain, "plain output {o:?}");
        }
        self.nodes.len()
    }

    /// Runs the full optimization pipeline to a fixpoint: constant
    /// folding → rotation dedup → CSE → key-switch hoisting → CSE → DCE,
    /// iterated (bounded) until the node count stabilizes. Returns the
    /// optimized program and per-pass statistics. Deterministic: passes
    /// iterate the node list in id order only.
    pub fn optimize(&self) -> (FheProgram, OptStats) {
        passes::optimize(self)
    }

    /// Lowers this program 1:1 into a [`crate::dsl::Program`] for the
    /// scheduling passes (usually after [`Self::optimize`]).
    pub fn lower(&self) -> Lowered {
        lower::lower(self)
    }

    /// Builds the 4×16K matrix-vector multiply of Listing 2 at level `l`
    /// on the typed frontend (mirrors
    /// [`crate::dsl::Program::listing2_matvec`]).
    pub fn listing2_matvec(n: usize, l: usize, rows: usize) -> Self {
        let mut p = Self::new(n, Scheme::Bgv);
        let m_rows: Vec<IrId> = (0..rows).map(|_| p.input(l)).collect();
        let v = p.input(l);
        for &row in &m_rows {
            let prod = p.mul(row, v);
            let sum = p.inner_sum(prod, n);
            p.output(sum);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_builder_tracks_levels_and_depth() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(4);
        let y = p.input(4);
        let m = p.mul(x, y);
        assert_eq!(p.level_of(m), 4);
        assert_eq!(p.depth_of(m), 1);
        let d = p.mod_switch(m);
        assert_eq!(p.level_of(d), 3);
        let m2 = p.square(d);
        assert_eq!(p.depth_of(m2), 2);
        p.output(m2);
        assert_eq!(p.validate(), 5);
    }

    #[test]
    #[should_panic(expected = "levels differ")]
    fn level_mismatch_is_rejected() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(3);
        let y = p.input(2);
        p.add(x, y);
    }

    #[test]
    fn ckks_scale_tracking() {
        let mut p = FheProgram::new(1 << 10, Scheme::Ckks);
        let x = p.input(4);
        assert_eq!(p.scale_of(x), 1);
        let sq = p.square(x);
        assert_eq!(p.scale_of(sq), 2, "mul adds scales");
        let r = p.rescale(sq);
        assert_eq!(p.scale_of(r), 1, "rescale consumes one Δ");
        assert_eq!(p.level_of(r), 3);
    }

    #[test]
    #[should_panic(expected = "scales differ")]
    fn strict_ckks_rejects_mismatched_scales() {
        let mut p = FheProgram::new(1 << 10, Scheme::Ckks).with_strict_scale();
        let x = p.input(4);
        let sq = p.square(x); // scale 2
        p.add(sq, x); // scale 2 vs 1
    }

    #[test]
    #[should_panic(expected = "no modulus chain")]
    fn gsw_rejects_mod_switch() {
        let mut p = FheProgram::new(1 << 10, Scheme::Gsw);
        let x = p.input(2);
        p.mod_switch(x);
    }

    #[test]
    fn gsw_tracks_external_product_depth() {
        let mut p = FheProgram::new(1 << 10, Scheme::Gsw);
        let x = p.input(2);
        let y = p.input(2);
        let m1 = p.mul(x, y);
        let m2 = p.mul(m1, y);
        assert_eq!(p.depth_of(m2), 2);
    }

    #[test]
    fn constants_are_typed_plaintexts() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(2);
        let c = p.scalar(3, 2);
        let m = p.mul_plain(x, c);
        p.output(m);
        assert!(p.node(c).ty.plain);
        assert_eq!(p.validate(), 3);
    }

    #[test]
    #[should_panic(expected = "compile-time constants")]
    fn runtime_plain_pair_compute_is_rejected() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let a = p.plain_input(2);
        let b = p.plain_input(2);
        p.add(a, b); // no lowering exists for runtime plain x plain
    }

    #[test]
    fn rotations_use_3_pow_k() {
        let mut p = FheProgram::new(1024, Scheme::Bgv);
        let x = p.input(2);
        let r = p.rotate(x, 2);
        match &p.node(r).op {
            FheOp::Aut { k, .. } => assert_eq!(*k, 9),
            other => panic!("expected Aut, got {other:?}"),
        }
    }

    #[test]
    fn ids_are_dense_creation_order() {
        let mut p = FheProgram::new(1024, Scheme::Bgv);
        let a = p.input(2);
        let b = p.input(2);
        let s = p.add(a, b);
        assert_eq!((a, b, s), (IrId(0), IrId(1), IrId(2)));
    }

    #[test]
    fn matvec_mirror_matches_dsl_shape() {
        let p = FheProgram::listing2_matvec(1 << 14, 16, 4);
        let muls = p.nodes().iter().filter(|n| matches!(n.op, FheOp::Mul(..))).count();
        let auts = p.nodes().iter().filter(|n| matches!(n.op, FheOp::Aut { .. })).count();
        assert_eq!(muls, 4);
        assert_eq!(auts, 4 * 14);
        assert_eq!(p.outputs().len(), 4);
    }
}
