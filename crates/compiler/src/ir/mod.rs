//! The `FheProgram` IR — a typed, scheme-aware frontend above [`crate::dsl`].
//!
//! The DSL of Listing 2 is deliberately thin: untyped ciphertext handles
//! and exactly the homomorphic operations pass 1 expands. Real workloads
//! want more — scheme-specific typing (BGV levels, CKKS scales, GSW
//! depth), plaintext *constants* the compiler can fold, and redundancy
//! elimination before the expensive key-switch expansion multiplies every
//! homomorphic op into hundreds of vector instructions. This module is
//! that layer:
//!
//! * [`FheProgram`] is simultaneously the circuit **builder** (typed
//!   `input`/`mul`/`rotate`/... methods that check levels and scales at
//!   construction time) and the **normalized IR**: a flat SSA node list
//!   whose value ids ([`IrId`]) are dense indices in creation order —
//!   stable and deterministic by construction, never derived from hash
//!   iteration.
//! * [`passes`] implements the optimization pipeline — constant folding,
//!   rotation/automorphism dedup, common-subexpression elimination,
//!   key-switch hoisting and dead-code elimination (see
//!   [`FheProgram::optimize`]).
//! * [`lower`] translates the (optimized) IR 1:1 into a
//!   [`crate::dsl::Program`] for the three scheduling passes, carrying a
//!   table of folded plaintext constants for functional execution.
//!
//! The pipeline is therefore: **frontend → IR passes → DFG → pass 1/2/3**
//! (Fig 3, with the IR inserted where the paper's "homomorphic-operation
//! compiler" consumes its input program).

pub mod lower;
pub mod passes;
pub mod rescale;

use serde::{Deserialize, Serialize};

pub use lower::Lowered;
pub use passes::OptStats;
pub use rescale::{NoisePolicy, RescaleStats};

/// Identifies one value (node) in an [`FheProgram`].
///
/// Ids are dense indices into the node list in creation order; every
/// pass renumbers survivors in that same order, so ids are deterministic
/// for a given builder call sequence — no hash-iteration order anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IrId(pub u32);

/// The FHE scheme a program is typed against (§2.5: at the instruction
/// level all three compile to the same vector operations; the scheme
/// governs frontend *typing* — what the builder accepts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// BGV: exact modular arithmetic, level-typed modulus chain.
    Bgv,
    /// CKKS: approximate arithmetic; additionally tracks a scale (in
    /// units of the base scaling factor Δ) that rescaling consumes.
    Ckks,
    /// GSW: no modulus chain — `mod_switch` is rejected, multiplicative
    /// depth is tracked instead (the bootstrapping building block, §2.5).
    Gsw,
}

impl Scheme {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Bgv => "BGV",
            Scheme::Ckks => "CKKS",
            Scheme::Gsw => "GSW",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The type of one IR value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValType {
    /// Plaintext operand (one polynomial) vs ciphertext (two).
    pub plain: bool,
    /// RNS limbs (BGV/CKKS modulus-chain position; constant for GSW).
    pub level: usize,
    /// CKKS scale in units of Δ (0 for BGV/GSW). Rescaling decrements,
    /// saturating at 1 — the benchmarks follow the paper in treating a
    /// `mod_switch` as "rescale and renormalize to Δ".
    pub scale: u32,
    /// Multiplicative depth consumed so far (diagnostics; typing for GSW).
    pub depth: u32,
}

/// One IR operation. Operands always reference earlier nodes (SSA,
/// acyclic by construction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FheOp {
    /// An encrypted input. `ordinal` is the input's position among all
    /// ciphertext inputs (stable across passes — the binding key for
    /// functional execution, never merged by CSE).
    CtInput {
        /// RNS limbs at entry.
        level: usize,
        /// Position among ciphertext inputs at build time.
        ordinal: u32,
    },
    /// An unencrypted runtime input (the cheap multiplicand of §2.1).
    PtInput {
        /// RNS limbs at entry.
        level: usize,
        /// Position among plaintext inputs at build time.
        ordinal: u32,
    },
    /// A plaintext constant known at compile time (coefficients of the
    /// plaintext polynomial; scalars are single-element). Constants are
    /// foldable and CSE-mergeable, unlike runtime inputs.
    Constant {
        /// Plaintext coefficients (reduced mod t when bound).
        coeffs: Vec<u64>,
        /// RNS limbs the constant is encoded at.
        level: usize,
    },
    /// Homomorphic addition (ciphertext + ciphertext).
    Add(IrId, IrId),
    /// Addition of a plaintext operand.
    AddPlain(IrId, IrId),
    /// Homomorphic multiplication (tensor + relinearization key-switch).
    Mul(IrId, IrId),
    /// Multiplication by a plaintext operand (no key-switch).
    MulPlain(IrId, IrId),
    /// Automorphism `σ_k` + key-switch (rotations use `k = 3^amount`).
    Aut {
        /// Ciphertext operand.
        a: IrId,
        /// Automorphism exponent (odd, `< 2N`).
        k: usize,
    },
    /// Modulus switch / CKKS rescale one level down.
    ModSwitch(IrId),
}

impl FheOp {
    /// Operand ids, in order.
    pub fn operands(&self) -> Vec<IrId> {
        match self {
            FheOp::CtInput { .. } | FheOp::PtInput { .. } | FheOp::Constant { .. } => vec![],
            FheOp::Add(a, b) | FheOp::Mul(a, b) | FheOp::AddPlain(a, b) | FheOp::MulPlain(a, b) => {
                vec![*a, *b]
            }
            FheOp::Aut { a, .. } | FheOp::ModSwitch(a) => vec![*a],
        }
    }

    /// Whether this op performs a key switch when lowered (the expensive
    /// class: each becomes hundreds of vector instructions at depth).
    pub fn is_keyswitch(&self) -> bool {
        matches!(self, FheOp::Mul(..) | FheOp::Aut { .. })
    }
}

/// One IR node: an operation plus the type of the value it produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The operation.
    pub op: FheOp,
    /// Type of the produced value.
    pub ty: ValType,
}

/// Affine per-iteration stepping of one node inside a [`RepeatSpec`]
/// body: at iteration `i` (0-based) the stepped field sits at its
/// iteration-0 value plus `i * delta`. Ordinals and levels step on
/// `CtInput`/`PtInput` nodes; automorphism exponents step on `Aut`
/// (mod 2N). Everything a loop body varies per iteration — which
/// plaintext it consumes, what level it enters at, how far it rotates —
/// is one of these three affine channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStep {
    /// Per-iteration input-ordinal increment (`CtInput`/`PtInput`).
    pub d_ordinal: i64,
    /// Per-iteration input-level increment (`CtInput`/`PtInput`;
    /// usually 0, or -1 for bodies that descend the modulus chain).
    pub d_level: i64,
    /// Per-iteration automorphism-exponent increment (`Aut` only),
    /// applied modulo 2N.
    pub d_k: i64,
}

/// A rolled loop region: `trips` repetitions of the body nodes
/// `[start, start+len)`, materialized once. The body is ordinary IR —
/// iteration 0 *is* the region — and iterations `i > 0` are defined by
/// substitution: loop-carried operands re-bind to the previous
/// iteration's clone, and [`NodeStep`]-stepped fields move affinely in
/// `i`. [`FheProgram::unroll`] performs that expansion (with full type
/// re-inference per iteration); the scheduling pipeline may instead keep
/// the region symbolic and stamp one iteration's schedule `trips` times
/// (see `crate::stamp`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepeatSpec {
    /// First body node.
    pub start: u32,
    /// Body length in nodes (>= 1).
    pub len: u32,
    /// Trip count (>= 1); iteration 0 is the materialized body itself.
    pub trips: u32,
    /// Loop-carried values as `(init, out)` pairs: iteration 0 reads
    /// `init` (a pre-region value) wherever the body names it;
    /// iteration `i > 0` reads iteration `i-1`'s clone of `out`.
    /// Region-referencing nodes after the loop — and outputs — read the
    /// *last* iteration's clone.
    pub carries: Vec<(IrId, IrId)>,
    /// Affine per-iteration field steps, keyed by body node id.
    pub steps: Vec<(IrId, NodeStep)>,
}

/// Token returned by [`FheProgram::begin_repeat`] marking where a rolled
/// region's body starts; consumed by [`FheProgram::end_repeat`].
#[derive(Debug)]
pub struct RepeatToken {
    start: u32,
}

/// A typed, scheme-aware FHE program: the circuit builder and the
/// normalized SSA IR in one. See the module docs for the pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FheProgram {
    /// Ring dimension.
    pub n: usize,
    scheme: Scheme,
    /// Enforce CKKS scale equality on additions (off by default: the
    /// paper's benchmarks rescale at multiplication boundaries only).
    strict_scale: bool,
    nodes: Vec<Node>,
    outputs: Vec<IrId>,
    next_ct_ordinal: u32,
    next_pt_ordinal: u32,
    /// Rolled loop regions, in ascending, non-overlapping node order.
    /// Part of the serialized form, so a rolled program and its
    /// unrolling are distinct cache keys.
    repeats: Vec<RepeatSpec>,
}

impl FheProgram {
    /// Creates an empty program over ring dimension `n`, typed for
    /// `scheme`.
    pub fn new(n: usize, scheme: Scheme) -> Self {
        assert!(n.is_power_of_two(), "ring dimension must be a power of two");
        Self {
            n,
            scheme,
            strict_scale: false,
            nodes: Vec::new(),
            outputs: Vec::new(),
            next_ct_ordinal: 0,
            next_pt_ordinal: 0,
            repeats: Vec::new(),
        }
    }

    /// Enables strict CKKS scale checking: additions assert equal scales.
    pub fn with_strict_scale(mut self) -> Self {
        self.strict_scale = true;
        self
    }

    /// The program's scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Whether strict CKKS scale checking is enabled.
    pub fn strict_scale(&self) -> bool {
        self.strict_scale
    }

    fn push(&mut self, op: FheOp, ty: ValType) -> IrId {
        let id = IrId(self.nodes.len() as u32);
        debug_assert!(op.operands().iter().all(|o| (o.0 as usize) < self.nodes.len()));
        self.nodes.push(Node { op, ty });
        id
    }

    fn ty(&self, v: IrId) -> ValType {
        self.nodes[v.0 as usize].ty
    }

    fn ct(&self, v: IrId, what: &str) -> ValType {
        let t = self.ty(v);
        assert!(!t.plain, "{what}: operand {v:?} must be a ciphertext");
        t
    }

    fn pt(&self, v: IrId, what: &str) -> ValType {
        let t = self.ty(v);
        assert!(t.plain, "{what}: operand {v:?} must be a plaintext");
        t
    }

    fn join_levels(&self, a: ValType, b: ValType) -> usize {
        assert_eq!(
            a.level, b.level,
            "operand levels differ ({} vs {}); insert mod_switch",
            a.level, b.level
        );
        a.level
    }

    /// Recomputes the type `op` produces from its operands' types,
    /// applying exactly the builder's typing rules. Shared by the
    /// builder methods and [`Self::unroll`]'s per-iteration
    /// re-inference, so an unrolled clone is typed precisely as if it
    /// had been built by hand.
    fn infer_ty(&self, op: &FheOp) -> ValType {
        let base_scale = if self.scheme == Scheme::Ckks { 1 } else { 0 };
        match op {
            FheOp::CtInput { level, .. } => {
                assert!(*level >= 1);
                ValType { plain: false, level: *level, scale: base_scale, depth: 0 }
            }
            FheOp::PtInput { level, .. } | FheOp::Constant { level, .. } => {
                assert!(*level >= 1);
                ValType { plain: true, level: *level, scale: base_scale, depth: 0 }
            }
            FheOp::Add(a, b) => {
                let (ta, tb) = (self.ty(*a), self.ty(*b));
                if ta.plain && tb.plain {
                    let (ta, tb) = (self.pt(*a, "const op"), self.pt(*b, "const op"));
                    let level = self.join_levels(ta, tb);
                    ValType { plain: true, level, scale: ta.scale.max(tb.scale), depth: 0 }
                } else {
                    let (ta, tb) = (self.ct(*a, "add"), self.ct(*b, "add"));
                    let level = self.join_levels(ta, tb);
                    if self.strict_scale && self.scheme == Scheme::Ckks {
                        assert_eq!(ta.scale, tb.scale, "CKKS scales differ on add; rescale first");
                    }
                    ValType {
                        plain: false,
                        level,
                        scale: ta.scale.max(tb.scale),
                        depth: ta.depth.max(tb.depth),
                    }
                }
            }
            FheOp::Mul(a, b) => {
                let (ta, tb) = (self.ty(*a), self.ty(*b));
                if ta.plain && tb.plain {
                    let (ta, tb) = (self.pt(*a, "const op"), self.pt(*b, "const op"));
                    let level = self.join_levels(ta, tb);
                    ValType { plain: true, level, scale: ta.scale.max(tb.scale), depth: 0 }
                } else {
                    let (ta, tb) = (self.ct(*a, "mul"), self.ct(*b, "mul"));
                    let level = self.join_levels(ta, tb);
                    ValType {
                        plain: false,
                        level,
                        scale: ta.scale + tb.scale,
                        depth: ta.depth.max(tb.depth) + 1,
                    }
                }
            }
            FheOp::AddPlain(a, p) => {
                let ta = self.ct(*a, "add_plain");
                let tp = self.pt(*p, "add_plain");
                let level = self.join_plain_level(ta, tp);
                ValType { level, ..ta }
            }
            FheOp::MulPlain(a, p) => {
                let ta = self.ct(*a, "mul_plain");
                let tp = self.pt(*p, "mul_plain");
                let level = self.join_plain_level(ta, tp);
                ValType { plain: false, level, scale: ta.scale + tp.scale, depth: ta.depth }
            }
            FheOp::Aut { a, k } => {
                assert!(k % 2 == 1 && *k < 2 * self.n, "invalid automorphism exponent {k}");
                self.ct(*a, "aut")
            }
            FheOp::ModSwitch(a) => {
                assert!(self.scheme != Scheme::Gsw, "GSW has no modulus chain to switch");
                let ta = self.ct(*a, "mod_switch");
                assert!(ta.level >= 2, "cannot switch below level 1");
                if self.strict_scale && self.scheme == Scheme::Ckks {
                    assert!(
                        ta.scale >= 2,
                        "CKKS rescale at scale 1 saturates (burns a level for no scale reduction)"
                    );
                }
                let scale =
                    if self.scheme == Scheme::Ckks { ta.scale.saturating_sub(1).max(1) } else { 0 };
                ValType { level: ta.level - 1, scale, ..ta }
            }
        }
    }

    /// Declares an encrypted input with `level` RNS limbs.
    pub fn input(&mut self, level: usize) -> IrId {
        assert!(level >= 1);
        let ordinal = self.next_ct_ordinal;
        self.next_ct_ordinal += 1;
        let scale = if self.scheme == Scheme::Ckks { 1 } else { 0 };
        self.push(
            FheOp::CtInput { level, ordinal },
            ValType { plain: false, level, scale, depth: 0 },
        )
    }

    /// Declares an unencrypted runtime input.
    pub fn plain_input(&mut self, level: usize) -> IrId {
        assert!(level >= 1);
        let ordinal = self.next_pt_ordinal;
        self.next_pt_ordinal += 1;
        let scale = if self.scheme == Scheme::Ckks { 1 } else { 0 };
        self.push(
            FheOp::PtInput { level, ordinal },
            ValType { plain: true, level, scale, depth: 0 },
        )
    }

    /// Declares a plaintext constant with the given coefficients, encoded
    /// at `level`. Unlike [`Self::plain_input`], constants participate in
    /// constant folding and CSE.
    pub fn constant(&mut self, coeffs: &[u64], level: usize) -> IrId {
        assert!(level >= 1);
        let scale = if self.scheme == Scheme::Ckks { 1 } else { 0 };
        self.push(
            FheOp::Constant { coeffs: coeffs.to_vec(), level },
            ValType { plain: true, level, scale, depth: 0 },
        )
    }

    /// A scalar constant (degree-0 plaintext).
    pub fn scalar(&mut self, value: u64, level: usize) -> IrId {
        self.constant(&[value], level)
    }

    /// Homomorphic addition. Both operands must be ciphertexts at the
    /// same level (and, under [`Self::with_strict_scale`], the same CKKS
    /// scale) — or both plaintext constants, which fold at compile time.
    pub fn add(&mut self, a: IrId, b: IrId) -> IrId {
        let (ta, tb) = (self.ty(a), self.ty(b));
        if ta.plain && tb.plain {
            return self.plain_pair_op(a, b, true);
        }
        let op = FheOp::Add(a, b);
        let ty = self.infer_ty(&op);
        self.push(op, ty)
    }

    /// Checks a ciphertext/plaintext level pair. Plaintexts only need to
    /// *cover* the ciphertext level: an RNS plaintext encoded at level
    /// `l >= level` contains every residue of the ciphertext's chain
    /// prefix, so the backend simply ignores its top limbs. (Requiring
    /// equality would force duplicating `PtInput` ordinals whenever a
    /// rescale pass moves the consuming ciphertext down a level.)
    fn join_plain_level(&self, ct: ValType, pt: ValType) -> usize {
        assert!(
            pt.level >= ct.level,
            "plaintext level {} does not cover ciphertext level {}",
            pt.level,
            ct.level
        );
        ct.level
    }

    /// Adds a plaintext operand (runtime input or constant) to a
    /// ciphertext. The plaintext may sit at a *higher* level — its excess
    /// limbs are ignored; the result takes the ciphertext's level.
    pub fn add_plain(&mut self, a: IrId, p: IrId) -> IrId {
        let op = FheOp::AddPlain(a, p);
        let ty = self.infer_ty(&op);
        self.push(op, ty)
    }

    /// Homomorphic multiplication (tensor + relinearization).
    pub fn mul(&mut self, a: IrId, b: IrId) -> IrId {
        let (ta, tb) = (self.ty(a), self.ty(b));
        if ta.plain && tb.plain {
            return self.plain_pair_op(a, b, false);
        }
        let op = FheOp::Mul(a, b);
        let ty = self.infer_ty(&op);
        self.push(op, ty)
    }

    /// Squares a ciphertext (sugar for `mul(a, a)`).
    pub fn square(&mut self, a: IrId) -> IrId {
        self.mul(a, a)
    }

    /// Multiplication by a plaintext operand (no key-switch). As with
    /// [`Self::add_plain`], the plaintext's level only needs to cover the
    /// ciphertext's; the result takes the ciphertext's level.
    pub fn mul_plain(&mut self, a: IrId, p: IrId) -> IrId {
        let op = FheOp::MulPlain(a, p);
        let ty = self.infer_ty(&op);
        self.push(op, ty)
    }

    /// A compile-time operation between two plaintext values: legal only
    /// when both are constants (so constant folding can evaluate it —
    /// runtime plain x plain compute has no lowering). Foldability is
    /// validated here so an unloweringable op (u64 overflow, non-scalar
    /// constant product) fails fast at the construction site instead of
    /// deep inside `lower()`.
    fn plain_pair_op(&mut self, a: IrId, b: IrId, is_add: bool) -> IrId {
        let (ta, tb) = (self.pt(a, "const op"), self.pt(b, "const op"));
        let constant = |p: &Self, v: IrId| match &p.nodes[v.0 as usize].op {
            FheOp::Constant { coeffs, .. } => Some(coeffs.clone()),
            _ => None,
        };
        let (ca, cb) = (constant(self, a), constant(self, b));
        let (ca, cb) = match (ca, cb) {
            (Some(x), Some(y)) => (x, y),
            _ => panic!("plaintext-plaintext arithmetic requires compile-time constants"),
        };
        let foldable = if is_add {
            passes::fold_add(&ca, &cb).is_some()
        } else {
            passes::fold_mul_scalar(&ca, &cb).is_some()
        };
        assert!(
            foldable,
            "constant {} has no lowering (u64 overflow or non-scalar constant product)",
            if is_add { "add" } else { "mul" }
        );
        let _ = self.join_levels(ta, tb);
        let op = if is_add { FheOp::Add(a, b) } else { FheOp::Mul(a, b) };
        let ty = self.infer_ty(&op);
        self.push(op, ty)
    }

    /// Homomorphic rotation by `amount` slots: automorphism with
    /// exponent `3^amount mod 2N`.
    pub fn rotate(&mut self, a: IrId, amount: usize) -> IrId {
        let two_n = 2 * self.n;
        let mut k = 1usize;
        for _ in 0..amount {
            k = k * 3 % two_n;
        }
        self.aut(a, k)
    }

    /// Homomorphic automorphism with an explicit exponent.
    pub fn aut(&mut self, a: IrId, k: usize) -> IrId {
        let op = FheOp::Aut { a, k };
        let ty = self.infer_ty(&op);
        self.push(op, ty)
    }

    /// Modulus switch (BGV) / rescale (CKKS) one level down. Rejected
    /// for GSW, which has no modulus chain.
    ///
    /// A CKKS rescale at scale 1 *saturates*: the scale cannot drop below
    /// one Δ, so the op burns a level without buying scale headroom.
    /// Under [`Self::with_strict_scale`] that is rejected outright; in
    /// lax programs the `scale::saturated-rescale` lint flags it.
    pub fn mod_switch(&mut self, a: IrId) -> IrId {
        let op = FheOp::ModSwitch(a);
        let ty = self.infer_ty(&op);
        self.push(op, ty)
    }

    /// CKKS-flavored alias for [`Self::mod_switch`].
    pub fn rescale(&mut self, a: IrId) -> IrId {
        self.mod_switch(a)
    }

    /// The `innerSum` idiom of Listing 2: `log2(count)` rotate-and-add
    /// steps that leave every slot holding the sum.
    pub fn inner_sum(&mut self, mut x: IrId, count: usize) -> IrId {
        assert!(count.is_power_of_two());
        for i in 0..count.trailing_zeros() {
            let r = self.rotate(x, 1 << i);
            x = self.add(x, r);
        }
        x
    }

    /// Marks a value as a program output (must be a ciphertext).
    pub fn output(&mut self, x: IrId) {
        self.ct(x, "output");
        self.outputs.push(x);
    }

    /// Opens a rolled loop region. Build the body (one iteration) with
    /// the ordinary typed builder methods, then close it with
    /// [`Self::end_repeat`]. Iteration 0 *is* the body you build;
    /// values the body computes are also the values later code (or the
    /// loop itself, through carries) references — after unrolling they
    /// re-bind to the last iteration's clones.
    pub fn begin_repeat(&mut self) -> RepeatToken {
        RepeatToken { start: self.nodes.len() as u32 }
    }

    /// Closes the rolled region opened by `token`, registering it as
    /// `trips` repetitions with the given loop-carried values and
    /// affine per-iteration steps (see [`RepeatSpec`]).
    ///
    /// # Panics
    ///
    /// Panics when the region is malformed: empty body, zero trips,
    /// carries whose `init` is not a pre-region value or whose `out` is
    /// not a body value (or whose plain/cipher kinds differ), steps
    /// that target non-body nodes or fields the node kind does not
    /// have, or body inputs left unstepped (every `CtInput`/`PtInput`
    /// built inside the body must carry a `d_ordinal != 0` step when
    /// `trips > 1`, otherwise distinct iterations would alias one
    /// runtime binding).
    pub fn end_repeat(
        &mut self,
        token: RepeatToken,
        trips: u32,
        carries: Vec<(IrId, IrId)>,
        steps: Vec<(IrId, NodeStep)>,
    ) {
        let start = token.start;
        let end = self.nodes.len() as u32;
        assert!(end > start, "end_repeat: empty body");
        assert!(trips >= 1, "end_repeat: trips must be >= 1");
        let in_body = |v: IrId| v.0 >= start && v.0 < end;
        for &(init, out) in &carries {
            assert!(init.0 < start, "carry init {init:?} must precede the region");
            assert!(in_body(out), "carry out {out:?} must be a body value");
            assert_eq!(
                self.ty(init).plain,
                self.ty(out).plain,
                "carry ({init:?}, {out:?}) mixes plaintext and ciphertext"
            );
        }
        for &(id, st) in &steps {
            assert!(in_body(id), "step target {id:?} must be a body value");
            match &self.nodes[id.0 as usize].op {
                FheOp::CtInput { .. } | FheOp::PtInput { .. } => {
                    assert_eq!(st.d_k, 0, "d_k step on input node {id:?}");
                }
                FheOp::Aut { .. } => {
                    assert_eq!((st.d_ordinal, st.d_level), (0, 0), "input step on Aut node {id:?}");
                }
                other => panic!("steps only apply to inputs and automorphisms, not {other:?}"),
            }
        }
        // Every input declared inside the body must be ordinal-stepped:
        // otherwise each unrolled iteration would carry the same ordinal
        // and alias one runtime binding.
        if trips > 1 {
            for i in start..end {
                let is_input = matches!(
                    self.nodes[i as usize].op,
                    FheOp::CtInput { .. } | FheOp::PtInput { .. }
                );
                if is_input {
                    let stepped = steps
                        .iter()
                        .any(|&(id, st)| id.0 == i && st.d_ordinal != 0);
                    assert!(stepped, "body input node {i} needs a d_ordinal != 0 step");
                }
            }
        }
        // Reserve the ordinal ranges the stepped iterations will occupy,
        // so inputs declared after the loop don't collide with them.
        for &(id, st) in &steps {
            let claim = |ordinal: u32, next: &mut u32| {
                let last = ordinal as i64 + st.d_ordinal * (trips as i64 - 1);
                let hi = (ordinal as i64).max(last);
                assert!(last >= 0, "stepped ordinal underflows");
                *next = (*next).max(hi as u32 + 1);
            };
            match self.nodes[id.0 as usize].op {
                FheOp::CtInput { ordinal, .. } => claim(ordinal, &mut self.next_ct_ordinal),
                FheOp::PtInput { ordinal, .. } => claim(ordinal, &mut self.next_pt_ordinal),
                _ => {}
            }
        }
        self.repeats.push(RepeatSpec { start, len: end - start, trips, carries, steps });
    }

    /// Rolled loop regions, in ascending node order.
    pub fn repeats(&self) -> &[RepeatSpec] {
        &self.repeats
    }

    /// Node count after unrolling every repeat (without materializing).
    pub fn unrolled_len(&self) -> usize {
        self.nodes.len()
            + self
                .repeats
                .iter()
                .map(|r| (r.trips as usize - 1) * r.len as usize)
                .sum::<usize>()
    }

    /// A copy of this program with repeat region `repeat`'s trip count
    /// replaced — the truncation primitive the stamping engine probes
    /// with.
    pub fn with_trips(&self, repeat: usize, trips: u32) -> FheProgram {
        assert!(trips >= 1);
        let mut q = self.clone();
        q.repeats[repeat].trips = trips;
        q
    }

    /// Unrolls every rolled region into flat IR. Equivalent to having
    /// built each iteration by hand: clones are re-typed from their
    /// operands per iteration, carried operands re-bind to the previous
    /// iteration's clone, and stepped fields move affinely in the
    /// iteration index. On a repeat-free program this is an identity
    /// copy.
    pub fn unroll(&self) -> FheProgram {
        self.unroll_map().0
    }

    /// [`Self::unroll`], also returning the id map: `map[v]` is where
    /// rolled-program value `v` lives in the unrolled program (body
    /// values map to their *last*-iteration clone). Use it to keep
    /// building an epilogue on the unrolled form from handles obtained
    /// while building rolled.
    pub fn unroll_map(&self) -> (FheProgram, Vec<IrId>) {
        let mut cur = self.clone();
        let mut map: Vec<IrId> = (0..self.nodes.len() as u32).map(IrId).collect();
        while !cur.repeats.is_empty() {
            let (next, m) = cur.unroll_one();
            for slot in map.iter_mut() {
                *slot = m[slot.0 as usize];
            }
            cur = next;
        }
        (cur, map)
    }

    /// Expands the first repeat region; later regions shift in place.
    fn unroll_one(&self) -> (FheProgram, Vec<IrId>) {
        let rep = self.repeats[0].clone();
        let (start, len, trips) = (rep.start as usize, rep.len as usize, rep.trips as usize);
        let mut q = FheProgram::new(self.n, self.scheme);
        q.strict_scale = self.strict_scale;
        let mut map: Vec<IrId> = Vec::with_capacity(self.nodes.len());
        // Prefix and iteration 0: verbatim.
        for i in 0..start + len {
            q.nodes.push(self.nodes[i].clone());
            map.push(IrId(i as u32));
        }
        let mut step_of: Vec<Option<NodeStep>> = vec![None; len];
        for &(id, st) in &rep.steps {
            step_of[id.0 as usize - start] = Some(st);
        }
        // Iterations 1..trips: clone with carry substitution, affine
        // stepping, and full type re-inference.
        let mut iter_map: Vec<IrId> = (start..start + len).map(|i| IrId(i as u32)).collect();
        let two_n = 2 * self.n as i64;
        for it in 1..trips {
            let prev = iter_map.clone();
            for j in 0..len {
                let src = &self.nodes[start + j];
                let mut op = match step_of[j] {
                    Some(st) => Self::step_op(&src.op, st, it as i64, two_n),
                    None => src.op.clone(),
                };
                op = Self::remap_op(&op, |o| {
                    let oi = o.0 as usize;
                    if oi >= start && oi < start + len {
                        // Same-iteration reference (SSA: always earlier
                        // in the body, so already cloned this trip).
                        iter_map[oi - start]
                    } else if let Some(c) = rep.carries.iter().position(|&(init, _)| init == o) {
                        // Loop-carried: previous iteration's out.
                        prev[rep.carries[c].1 .0 as usize - start]
                    } else {
                        // Loop-invariant pre-region value.
                        map[oi]
                    }
                });
                let ty = q.infer_ty(&op);
                let id = IrId(q.nodes.len() as u32);
                q.nodes.push(Node { op, ty });
                iter_map[j] = id;
            }
        }
        for j in 0..len {
            map[start + j] = iter_map[j];
        }
        // Suffix: remap region references to the last iteration and
        // re-infer types (bodies may change the carried values' levels).
        for i in start + len..self.nodes.len() {
            let src = &self.nodes[i];
            let op = Self::remap_op(&src.op, |o| map[o.0 as usize]);
            let ty = match op {
                FheOp::CtInput { .. } | FheOp::PtInput { .. } | FheOp::Constant { .. } => src.ty,
                _ => q.infer_ty(&op),
            };
            map.push(IrId(q.nodes.len() as u32));
            q.nodes.push(Node { op, ty });
        }
        q.outputs = self.outputs.iter().map(|&o| map[o.0 as usize]).collect();
        // Later repeat regions are contiguous suffix copies: shift them.
        for r in &self.repeats[1..] {
            q.repeats.push(RepeatSpec {
                start: map[r.start as usize].0,
                len: r.len,
                trips: r.trips,
                carries: r
                    .carries
                    .iter()
                    .map(|&(a, b)| (map[a.0 as usize], map[b.0 as usize]))
                    .collect(),
                steps: r.steps.iter().map(|&(a, s)| (map[a.0 as usize], s)).collect(),
            });
        }
        // Input ordinal counters: cover everything materialized.
        let (mut ct, mut pt) = (self.next_ct_ordinal, self.next_pt_ordinal);
        for n in &q.nodes {
            match n.op {
                FheOp::CtInput { ordinal, .. } => ct = ct.max(ordinal + 1),
                FheOp::PtInput { ordinal, .. } => pt = pt.max(ordinal + 1),
                _ => {}
            }
        }
        q.next_ct_ordinal = ct;
        q.next_pt_ordinal = pt;
        (q, map)
    }

    /// Applies `st` at iteration `it` to a steppable op.
    fn step_op(op: &FheOp, st: NodeStep, it: i64, two_n: i64) -> FheOp {
        let step_u32 = |v: u32, d: i64| -> u32 {
            let s = v as i64 + d * it;
            assert!(s >= 0, "stepped ordinal underflows at iteration {it}");
            s as u32
        };
        let step_level = |v: usize, d: i64| -> usize {
            let s = v as i64 + d * it;
            assert!(s >= 1, "stepped level underflows at iteration {it}");
            s as usize
        };
        match op {
            FheOp::CtInput { level, ordinal } => FheOp::CtInput {
                level: step_level(*level, st.d_level),
                ordinal: step_u32(*ordinal, st.d_ordinal),
            },
            FheOp::PtInput { level, ordinal } => FheOp::PtInput {
                level: step_level(*level, st.d_level),
                ordinal: step_u32(*ordinal, st.d_ordinal),
            },
            FheOp::Aut { a, k } => {
                FheOp::Aut { a: *a, k: (*k as i64 + st.d_k * it).rem_euclid(two_n) as usize }
            }
            other => other.clone(),
        }
    }

    /// Rewrites `op`'s operands through `f`.
    fn remap_op(op: &FheOp, f: impl Fn(IrId) -> IrId) -> FheOp {
        match op {
            FheOp::CtInput { .. } | FheOp::PtInput { .. } | FheOp::Constant { .. } => op.clone(),
            FheOp::Add(a, b) => FheOp::Add(f(*a), f(*b)),
            FheOp::AddPlain(a, b) => FheOp::AddPlain(f(*a), f(*b)),
            FheOp::Mul(a, b) => FheOp::Mul(f(*a), f(*b)),
            FheOp::MulPlain(a, b) => FheOp::MulPlain(f(*a), f(*b)),
            FheOp::Aut { a, k } => FheOp::Aut { a: f(*a), k: *k },
            FheOp::ModSwitch(a) => FheOp::ModSwitch(f(*a)),
        }
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, v: IrId) -> &Node {
        &self.nodes[v.0 as usize]
    }

    /// Program outputs, in declaration order.
    pub fn outputs(&self) -> &[IrId] {
        &self.outputs
    }

    /// Mutable access to a node, bypassing the builder's typing rules.
    /// Exists so the static analyzer's tests can construct ill-typed IR
    /// that the safe builder refuses to produce; never use it to build
    /// real programs.
    #[doc(hidden)]
    pub fn raw_node_mut(&mut self, v: IrId) -> &mut Node {
        &mut self.nodes[v.0 as usize]
    }

    /// Appends a node with an arbitrary claimed type and no SSA check.
    /// Test-only escape hatch; see [`FheProgram::raw_node_mut`].
    #[doc(hidden)]
    pub fn raw_push(&mut self, op: FheOp, ty: ValType) -> IrId {
        let id = IrId(self.nodes.len() as u32);
        self.nodes.push(Node { op, ty });
        id
    }

    /// Marks `x` as an output without the ciphertext check. Test-only
    /// escape hatch; see [`FheProgram::raw_node_mut`].
    #[doc(hidden)]
    pub fn raw_output(&mut self, x: IrId) {
        self.outputs.push(x);
    }

    /// Level of a value.
    pub fn level_of(&self, v: IrId) -> usize {
        self.ty(v).level
    }

    /// CKKS scale of a value (units of Δ; 0 outside CKKS).
    pub fn scale_of(&self, v: IrId) -> u32 {
        self.ty(v).scale
    }

    /// Multiplicative depth consumed by a value.
    pub fn depth_of(&self, v: IrId) -> u32 {
        self.ty(v).depth
    }

    /// Number of key-switching operations (Mul/Aut) — the expansion-cost
    /// drivers the optimization passes try to reduce.
    pub fn keyswitch_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_keyswitch()).count()
    }

    /// Validates SSA (operands reference earlier nodes) and typing
    /// invariants; returns the node count.
    ///
    /// # Panics
    ///
    /// Panics on violation.
    pub fn validate(&self) -> usize {
        for (i, node) in self.nodes.iter().enumerate() {
            for o in node.op.operands() {
                assert!((o.0 as usize) < i, "node {i} uses a later value {o:?}");
            }
        }
        for &o in &self.outputs {
            assert!((o.0 as usize) < self.nodes.len(), "unknown output {o:?}");
            assert!(!self.ty(o).plain, "plain output {o:?}");
        }
        let mut prev_end = 0u32;
        for r in &self.repeats {
            assert!(r.len >= 1 && r.trips >= 1, "degenerate repeat {r:?}");
            assert!(r.start >= prev_end, "overlapping repeat regions");
            let end = r.start + r.len;
            assert!(end as usize <= self.nodes.len(), "repeat region out of bounds");
            for &(init, out) in &r.carries {
                assert!(init.0 < r.start && out.0 >= r.start && out.0 < end, "bad carry in {r:?}");
            }
            for &(id, _) in &r.steps {
                assert!(id.0 >= r.start && id.0 < end, "step outside region in {r:?}");
            }
            prev_end = end;
        }
        self.nodes.len()
    }

    /// Runs the full optimization pipeline to a fixpoint: constant
    /// folding → rotation dedup → CSE → key-switch hoisting → CSE → DCE,
    /// iterated (bounded) until the node count stabilizes. Returns the
    /// optimized program and per-pass statistics. Deterministic: passes
    /// iterate the node list in id order only.
    pub fn optimize(&self) -> (FheProgram, OptStats) {
        assert!(
            self.repeats.is_empty(),
            "optimize() operates on flat IR; call unroll() first (compile_fhe does this \
             automatically, and the stamping path optimizes truncated unrollings)"
        );
        passes::optimize(self)
    }

    /// Lowers this program 1:1 into a [`crate::dsl::Program`] for the
    /// scheduling passes (usually after [`Self::optimize`]).
    pub fn lower(&self) -> Lowered {
        assert!(
            self.repeats.is_empty(),
            "lower() operates on flat IR; call unroll() first (compile_fhe does this \
             automatically)"
        );
        lower::lower(self)
    }

    /// Builds the 4×16K matrix-vector multiply of Listing 2 at level `l`
    /// on the typed frontend (mirrors
    /// [`crate::dsl::Program::listing2_matvec`]).
    pub fn listing2_matvec(n: usize, l: usize, rows: usize) -> Self {
        let mut p = Self::new(n, Scheme::Bgv);
        let m_rows: Vec<IrId> = (0..rows).map(|_| p.input(l)).collect();
        let v = p.input(l);
        for &row in &m_rows {
            let prod = p.mul(row, v);
            let sum = p.inner_sum(prod, n);
            p.output(sum);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_builder_tracks_levels_and_depth() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(4);
        let y = p.input(4);
        let m = p.mul(x, y);
        assert_eq!(p.level_of(m), 4);
        assert_eq!(p.depth_of(m), 1);
        let d = p.mod_switch(m);
        assert_eq!(p.level_of(d), 3);
        let m2 = p.square(d);
        assert_eq!(p.depth_of(m2), 2);
        p.output(m2);
        assert_eq!(p.validate(), 5);
    }

    #[test]
    #[should_panic(expected = "levels differ")]
    fn level_mismatch_is_rejected() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(3);
        let y = p.input(2);
        p.add(x, y);
    }

    #[test]
    fn ckks_scale_tracking() {
        let mut p = FheProgram::new(1 << 10, Scheme::Ckks);
        let x = p.input(4);
        assert_eq!(p.scale_of(x), 1);
        let sq = p.square(x);
        assert_eq!(p.scale_of(sq), 2, "mul adds scales");
        let r = p.rescale(sq);
        assert_eq!(p.scale_of(r), 1, "rescale consumes one Δ");
        assert_eq!(p.level_of(r), 3);
    }

    #[test]
    #[should_panic(expected = "scales differ")]
    fn strict_ckks_rejects_mismatched_scales() {
        let mut p = FheProgram::new(1 << 10, Scheme::Ckks).with_strict_scale();
        let x = p.input(4);
        let sq = p.square(x); // scale 2
        p.add(sq, x); // scale 2 vs 1
    }

    #[test]
    #[should_panic(expected = "no modulus chain")]
    fn gsw_rejects_mod_switch() {
        let mut p = FheProgram::new(1 << 10, Scheme::Gsw);
        let x = p.input(2);
        p.mod_switch(x);
    }

    #[test]
    fn gsw_tracks_external_product_depth() {
        let mut p = FheProgram::new(1 << 10, Scheme::Gsw);
        let x = p.input(2);
        let y = p.input(2);
        let m1 = p.mul(x, y);
        let m2 = p.mul(m1, y);
        assert_eq!(p.depth_of(m2), 2);
    }

    #[test]
    fn constants_are_typed_plaintexts() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(2);
        let c = p.scalar(3, 2);
        let m = p.mul_plain(x, c);
        p.output(m);
        assert!(p.node(c).ty.plain);
        assert_eq!(p.validate(), 3);
    }

    #[test]
    #[should_panic(expected = "compile-time constants")]
    fn runtime_plain_pair_compute_is_rejected() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let a = p.plain_input(2);
        let b = p.plain_input(2);
        p.add(a, b); // no lowering exists for runtime plain x plain
    }

    #[test]
    fn rotations_use_3_pow_k() {
        let mut p = FheProgram::new(1024, Scheme::Bgv);
        let x = p.input(2);
        let r = p.rotate(x, 2);
        match &p.node(r).op {
            FheOp::Aut { k, .. } => assert_eq!(*k, 9),
            other => panic!("expected Aut, got {other:?}"),
        }
    }

    #[test]
    fn ids_are_dense_creation_order() {
        let mut p = FheProgram::new(1024, Scheme::Bgv);
        let a = p.input(2);
        let b = p.input(2);
        let s = p.add(a, b);
        assert_eq!((a, b, s), (IrId(0), IrId(1), IrId(2)));
    }

    /// `trips` iterations of square → aut → add, rolled.
    fn rolled_chain(l: usize, trips: u32) -> FheProgram {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let acc = p.input(l);
        let t = p.begin_repeat();
        let m = p.square(acc);
        let r = p.aut(m, 9);
        let acc2 = p.add(r, m);
        p.end_repeat(t, trips, vec![(acc, acc2)], vec![]);
        p.output(acc2);
        p
    }

    /// The same chain built by hand.
    fn flat_chain(l: usize, trips: u32) -> FheProgram {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let mut acc = p.input(l);
        for _ in 0..trips {
            let m = p.square(acc);
            let r = p.aut(m, 9);
            acc = p.add(r, m);
        }
        p.output(acc);
        p
    }

    #[test]
    fn unroll_matches_handwritten_chain() {
        for trips in [1u32, 2, 7] {
            let rolled = rolled_chain(6, trips);
            assert_eq!(rolled.validate(), 4);
            assert_eq!(rolled.unrolled_len(), 1 + 3 * trips as usize);
            let flat = flat_chain(6, trips);
            let un = rolled.unroll();
            assert_eq!(un.nodes(), flat.nodes());
            assert_eq!(un.outputs(), flat.outputs());
            assert!(un.repeats().is_empty());
        }
    }

    #[test]
    fn unroll_is_identity_without_repeats() {
        let p = FheProgram::listing2_matvec(1 << 10, 4, 2);
        let (un, map) = p.unroll_map();
        assert_eq!(un.nodes(), p.nodes());
        assert_eq!(un.outputs(), p.outputs());
        assert!(map.iter().enumerate().all(|(i, v)| v.0 as usize == i));
    }

    #[test]
    fn unroll_steps_ordinals_levels_and_retypes() {
        // CKKS Horner step: mul by z, rescale, add a fresh plaintext —
        // level drops and the plaintext ordinal advances per iteration.
        let trips = 4u32;
        let l = 8usize;
        // Rolled version.
        let mut p = FheProgram::new(1 << 10, Scheme::Ckks);
        let acc0 = p.input(l);
        let t = p.begin_repeat();
        let m = p.square(acc0);
        let m = p.rescale(m);
        let c = p.plain_input(l - 1);
        let acc = p.add_plain(m, c);
        p.end_repeat(
            t,
            trips,
            vec![(acc0, acc)],
            vec![(c, NodeStep { d_ordinal: 1, d_level: -1, d_k: 0 })],
        );
        p.output(acc);
        // Handwritten version.
        let mut q = FheProgram::new(1 << 10, Scheme::Ckks);
        let mut hacc = q.input(l);
        for _ in 0..trips {
            let hm = q.square(hacc);
            let hm = q.rescale(hm);
            let hc = q.plain_input(q.level_of(hm));
            hacc = q.add_plain(hm, hc);
        }
        q.output(hacc);
        let un = p.unroll();
        assert_eq!(un.nodes(), q.nodes());
        assert_eq!(un.outputs(), q.outputs());
        // Post-loop ordinal allocation continues past the stepped range.
        let mut p2 = p.clone();
        let late = p2.plain_input(2);
        match p2.node(late).op {
            FheOp::PtInput { ordinal, .. } => assert_eq!(ordinal, trips),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unroll_remaps_epilogue_to_last_iteration() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let acc0 = p.input(5);
        let inv = p.input(5); // loop-invariant, used inside the body
        let t = p.begin_repeat();
        let m = p.mul(acc0, inv);
        p.end_repeat(t, 3, vec![(acc0, m)], vec![]);
        let epi = p.mod_switch(m); // epilogue reads the carried value
        p.output(epi);
        let (un, map) = p.unroll_map();
        // 2 inputs + 3 muls + 1 mod_switch.
        assert_eq!(un.nodes().len(), 6);
        assert_eq!(map[m.0 as usize], IrId(4), "body value maps to last clone");
        match un.node(IrId(5)).op {
            FheOp::ModSwitch(a) => assert_eq!(a, IrId(4)),
            ref other => panic!("{other:?}"),
        }
        assert_eq!(un.depth_of(IrId(4)), 3, "depth re-inferred per iteration");
        assert_eq!(un.outputs(), &[IrId(5)]);
    }

    #[test]
    fn aut_exponents_step_affinely() {
        let mut p = FheProgram::new(1 << 4, Scheme::Bgv); // 2N = 32
        let acc0 = p.input(3);
        let t = p.begin_repeat();
        let r = p.aut(acc0, 3);
        let s = p.add(r, r);
        p.end_repeat(t, 4, vec![(acc0, s)], vec![(r, NodeStep { d_k: 2, ..NodeStep::default() })]);
        p.output(s);
        let un = p.unroll();
        let ks: Vec<usize> = un
            .nodes()
            .iter()
            .filter_map(|n| match n.op {
                FheOp::Aut { k, .. } => Some(k),
                _ => None,
            })
            .collect();
        assert_eq!(ks, vec![3, 5, 7, 9]);
    }

    #[test]
    fn with_trips_truncates() {
        let p = rolled_chain(6, 40);
        let p8 = p.with_trips(0, 8);
        assert_eq!(p8.unroll().nodes(), flat_chain(6, 8).nodes());
    }

    #[test]
    #[should_panic(expected = "needs a d_ordinal")]
    fn unstepped_body_input_is_rejected() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let acc0 = p.input(4);
        let t = p.begin_repeat();
        let x = p.input(4);
        let s = p.add(acc0, x);
        p.end_repeat(t, 3, vec![(acc0, s)], vec![]);
    }

    #[test]
    #[should_panic(expected = "operates on flat IR")]
    fn optimize_rejects_rolled_programs() {
        let p = rolled_chain(6, 4);
        let _ = p.optimize();
    }

    #[test]
    fn matvec_mirror_matches_dsl_shape() {
        let p = FheProgram::listing2_matvec(1 << 14, 16, 4);
        let muls = p.nodes().iter().filter(|n| matches!(n.op, FheOp::Mul(..))).count();
        let auts = p.nodes().iter().filter(|n| matches!(n.op, FheOp::Aut { .. })).count();
        assert_eq!(muls, 4);
        assert_eq!(auts, 4 * 14);
        assert_eq!(p.outputs().len(), 4);
    }
}
