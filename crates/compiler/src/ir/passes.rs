//! Optimization passes over the [`FheProgram`] IR.
//!
//! Every pass follows the same discipline: walk the node list **in id
//! order**, record rewrites in an alias table (`alias[i] = j` means
//! "value `i` is replaced by the earlier value `j`"), then rebuild the
//! program with survivors renumbered densely in their original order.
//! No pass ever iterates a hash map, so for a given input program the
//! output — ids included — is bit-for-bit deterministic.
//!
//! The passes (run by [`optimize`] to a bounded fixpoint):
//!
//! * **Constant folding** — plaintext-constant arithmetic evaluates at
//!   compile time (overflow-checked, so values stay exact integers and
//!   remain congruent mod any plaintext modulus); `x * 1` and `x + 0`
//!   against constants collapse to `x`.
//! * **Rotation dedup** — `σ_1` is the identity and disappears (Listing
//!   2's `innerSum` over all `N` slots emits one per output row because
//!   `ord(3) = 2N/4`); single-use automorphism chains compose
//!   (`σ_k2 ∘ σ_k1 = σ_{k1·k2 mod 2N}`), turning two key-switches into
//!   one.
//! * **CSE** — structurally identical nodes merge (commutative operands
//!   canonicalized by id order). Runtime inputs carry build-time
//!   ordinals precisely so CSE can never merge two distinct inputs.
//! * **Key-switch hoisting** — `ModSwitch(Aut(x, k))` with a single-use
//!   automorphism becomes `Aut(ModSwitch(x), k)`: the automorphism (and
//!   its key-switch) runs one level lower — `O((L-1)²)` instead of
//!   `O(L²)` hint rows under decomposition — while every output level is
//!   preserved (mod-switch rounds coefficients independently, so it
//!   commutes with the Galois permutation exactly).
//! * **DCE** — nodes that cannot reach an output are dropped.

use super::{FheOp, FheProgram, IrId, Node, Scheme, ValType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

pub use super::rescale::{
    insert_rescales, insert_rescales_with, reflow_at, NoisePolicy, RescaleStats,
};

/// Statistics from one [`optimize`] run (printed by the paper bins to
/// make the IR's effect visible per benchmark).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OptStats {
    /// Homomorphic-op (IR node) count before optimization.
    pub nodes_before: usize,
    /// Node count after.
    pub nodes_after: usize,
    /// Key-switching ops (Mul/Aut) before — the expansion-cost drivers.
    pub keyswitch_before: usize,
    /// Key-switching ops after.
    pub keyswitch_after: usize,
    /// Constant-folding rewrites (folds + identity eliminations).
    pub folded: usize,
    /// Rotation identities removed + single-use chains composed.
    pub rotations_merged: usize,
    /// Common subexpressions merged.
    pub cse_merged: usize,
    /// Mod-switches hoisted above automorphisms.
    pub hoisted: usize,
    /// Dead nodes removed.
    pub dead_removed: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
}

impl OptStats {
    /// Nodes eliminated end to end.
    pub fn removed(&self) -> usize {
        self.nodes_before.saturating_sub(self.nodes_after)
    }
}

/// Runs the full pipeline to a bounded fixpoint. See module docs.
///
/// Between every pass the typing validator re-proves the IR invariants
/// and checks the program interface (output types, input ordinals)
/// against the input program, panicking with the offending pass's name
/// if a pass broke either. The validation is O(nodes) per pass — cheap
/// next to the passes themselves — so it is always on, not debug-only.
pub fn optimize(input: &FheProgram) -> (FheProgram, OptStats) {
    let interface = crate::analysis::typing::interface(input);
    let verified = |q: FheProgram, pass: &str| {
        crate::analysis::typing::assert_verified(&interface, &q, pass);
        q
    };
    let mut p = input.clone();
    let mut stats = OptStats {
        nodes_before: p.nodes.len(),
        keyswitch_before: p.keyswitch_count(),
        ..Default::default()
    };
    for _ in 0..8 {
        stats.rounds += 1;
        let mut changed = 0usize;
        let (q, f) = constant_fold(&p);
        let q = verified(q, "constant_fold");
        let (q, r) = rotation_dedup(&q);
        let q = verified(q, "rotation_dedup");
        let (q, c1) = cse(&q);
        let q = verified(q, "cse");
        let (q, h) = hoist_keyswitch(&q);
        let q = verified(q, "hoist_keyswitch");
        let (q, c2) = cse(&q);
        let q = verified(q, "cse#2");
        let (q, d) = dce(&q);
        let q = verified(q, "dce");
        stats.folded += f;
        stats.rotations_merged += r;
        stats.cse_merged += c1 + c2;
        stats.hoisted += h;
        stats.dead_removed += d;
        changed += f + r + c1 + h + c2 + d;
        p = q;
        if changed == 0 {
            break;
        }
    }
    p.validate();
    stats.nodes_after = p.nodes.len();
    stats.keyswitch_after = p.keyswitch_count();
    (p, stats)
}

/// Follows an alias chain to its root.
fn resolve(alias: &[u32], mut v: u32) -> u32 {
    while alias[v as usize] != v {
        v = alias[v as usize];
    }
    v
}

/// Rebuilds a program through an alias table: aliased nodes are dropped
/// (every reference to them has been redirected to their root), the rest
/// keep their original relative order under dense renumbering. Returns
/// the rebuilt program and the number of nodes dropped.
fn apply_alias(p: &FheProgram, alias: &[u32]) -> (FheProgram, usize) {
    let mut new_id = vec![u32::MAX; p.nodes.len()];
    let mut nodes = Vec::with_capacity(p.nodes.len());
    for (i, node) in p.nodes.iter().enumerate() {
        if alias[i] as usize != i {
            continue;
        }
        new_id[i] = nodes.len() as u32;
        let remap = |v: IrId| IrId(new_id[resolve(alias, v.0) as usize]);
        nodes.push(Node { op: remap_op(&node.op, &remap), ty: node.ty });
    }
    let outputs =
        p.outputs.iter().map(|&o| IrId(new_id[resolve(alias, o.0) as usize])).collect::<Vec<_>>();
    let dropped = p.nodes.len() - nodes.len();
    let out = FheProgram {
        n: p.n,
        scheme: p.scheme,
        strict_scale: p.strict_scale,
        nodes,
        outputs,
        next_ct_ordinal: p.next_ct_ordinal,
        next_pt_ordinal: p.next_pt_ordinal,
        repeats: Vec::new(),
    };
    (out, dropped)
}

fn remap_op(op: &FheOp, remap: &dyn Fn(IrId) -> IrId) -> FheOp {
    match op {
        FheOp::CtInput { .. } | FheOp::PtInput { .. } | FheOp::Constant { .. } => op.clone(),
        FheOp::Add(a, b) => FheOp::Add(remap(*a), remap(*b)),
        FheOp::AddPlain(a, b) => FheOp::AddPlain(remap(*a), remap(*b)),
        FheOp::Mul(a, b) => FheOp::Mul(remap(*a), remap(*b)),
        FheOp::MulPlain(a, b) => FheOp::MulPlain(remap(*a), remap(*b)),
        FheOp::Aut { a, k } => FheOp::Aut { a: remap(*a), k: *k },
        FheOp::ModSwitch(a) => FheOp::ModSwitch(remap(*a)),
    }
}

/// Use counts after alias resolution; program outputs count as uses.
fn use_counts(p: &FheProgram) -> Vec<usize> {
    let mut uses = vec![0usize; p.nodes.len()];
    for node in &p.nodes {
        for o in node.op.operands() {
            uses[o.0 as usize] += 1;
        }
    }
    for &o in &p.outputs {
        uses[o.0 as usize] += 1;
    }
    uses
}

fn const_of(p: &FheProgram, v: IrId) -> Option<&[u64]> {
    match &p.nodes[v.0 as usize].op {
        FheOp::Constant { coeffs, .. } => Some(coeffs),
        _ => None,
    }
}

/// Constant folding + plaintext identities. Returns (program, rewrites).
pub fn constant_fold(p: &FheProgram) -> (FheProgram, usize) {
    let mut p = p.clone();
    let mut alias: Vec<u32> = (0..p.nodes.len() as u32).collect();
    let mut rewrites = 0usize;
    for i in 0..p.nodes.len() {
        let op = p.nodes[i].op.clone();
        let r = |v: IrId| IrId(resolve(&alias, v.0));
        match op {
            // Plaintext-constant arithmetic evaluates at compile time.
            FheOp::Add(a, b) | FheOp::Mul(a, b) if p.nodes[i].ty.plain => {
                let (a, b) = (r(a), r(b));
                let (ca, cb) = match (const_of(&p, a), const_of(&p, b)) {
                    (Some(x), Some(y)) => (x.to_vec(), y.to_vec()),
                    _ => continue,
                };
                let folded = if matches!(op, FheOp::Add(..)) {
                    fold_add(&ca, &cb)
                } else {
                    fold_mul_scalar(&ca, &cb)
                };
                if let Some(coeffs) = folded {
                    let level = p.nodes[i].ty.level;
                    p.nodes[i].op = FheOp::Constant { coeffs, level };
                    rewrites += 1;
                }
            }
            // x * 1 and x + 0 against compile-time constants collapse.
            // Aliasing is only sound when the replacement value has the
            // identical type: in CKKS, MulPlain(x, 1) carries scale
            // x.scale + 1, so folding it away would silently drop a
            // rescale obligation from every downstream type.
            FheOp::MulPlain(a, c)
                if const_of(&p, r(c)).is_some_and(|v| v == [1])
                    && p.nodes[i].ty == p.nodes[r(a).0 as usize].ty =>
            {
                alias[i] = r(a).0;
                rewrites += 1;
            }
            FheOp::AddPlain(a, c)
                if const_of(&p, r(c)).is_some_and(|v| v.iter().all(|&x| x == 0)) =>
            {
                alias[i] = r(a).0;
                rewrites += 1;
            }
            _ => {}
        }
    }
    let (q, _) = apply_alias(&p, &alias);
    (q, rewrites)
}

/// Coefficient-wise constant addition; `None` on u64 overflow (exactness
/// guarantees congruence mod any plaintext modulus).
pub(crate) fn fold_add(a: &[u64], b: &[u64]) -> Option<Vec<u64>> {
    let len = a.len().max(b.len());
    (0..len)
        .map(|i| {
            let (x, y) = (a.get(i).copied().unwrap_or(0), b.get(i).copied().unwrap_or(0));
            x.checked_add(y)
        })
        .collect()
}

/// Scalar constant multiplication (degree-0 polynomials only: negacyclic
/// convolution of wider constants needs the plaintext modulus, which the
/// IR does not know).
pub(crate) fn fold_mul_scalar(a: &[u64], b: &[u64]) -> Option<Vec<u64>> {
    if a.len() > 1 || b.len() > 1 {
        return None;
    }
    let (x, y) = (a.first().copied().unwrap_or(0), b.first().copied().unwrap_or(0));
    Some(vec![x.checked_mul(y)?])
}

/// Rotation/automorphism dedup: identity `σ_1` removal and single-use
/// chain composition. Returns (program, rewrites).
pub fn rotation_dedup(p: &FheProgram) -> (FheProgram, usize) {
    let mut p = p.clone();
    // Use counts are kept coherent as rewrites land in this very pass:
    // aliasing a node transfers its users to the target, and re-pointing
    // an operand moves one use — otherwise a later composition could
    // read a stale "sole user" and fire against its own cost rationale.
    let mut uses = use_counts(&p);
    let two_n = 2 * p.n;
    let mut alias: Vec<u32> = (0..p.nodes.len() as u32).collect();
    let mut rewrites = 0usize;
    for i in 0..p.nodes.len() {
        let FheOp::Aut { a, k } = p.nodes[i].op else { continue };
        let a = IrId(resolve(&alias, a.0));
        if k == 1 {
            alias[i] = a.0;
            // a loses this node's operand use, gains this node's users
            // (grouped so a dead node's zero use count cannot underflow).
            uses[a.0 as usize] = uses[a.0 as usize] + uses[i] - 1;
            rewrites += 1;
            continue;
        }
        // Compose with an inner automorphism only when this is its sole
        // user — otherwise the inner key-switch runs anyway and a fresh
        // composite exponent would just add a hint to fetch.
        if let FheOp::Aut { a: inner, k: k1 } = p.nodes[a.0 as usize].op {
            if uses[a.0 as usize] == 1 {
                let inner = IrId(resolve(&alias, inner.0));
                let composed = (k1 * k) % two_n;
                if composed == 1 {
                    alias[i] = inner.0;
                    uses[inner.0 as usize] += uses[i];
                } else {
                    p.nodes[i].op = FheOp::Aut { a: inner, k: composed };
                    uses[inner.0 as usize] += 1;
                }
                uses[a.0 as usize] -= 1; // the dropped chain link
                rewrites += 1;
            }
        }
    }
    let (q, _) = apply_alias(&p, &alias);
    (q, rewrites)
}

/// Canonical structural key for CSE. Commutative ops sort operand ids;
/// runtime inputs key on their build-time ordinal (two distinct inputs
/// never merge), constants on their full value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Ct(u32),
    Pt(u32),
    Const(usize, Vec<u64>),
    Add(u32, u32),
    AddPlain(u32, u32),
    Mul(u32, u32),
    MulPlain(u32, u32),
    Aut(u32, usize),
    ModSwitch(u32),
}

/// Common-subexpression elimination. Returns (program, merges).
pub fn cse(p: &FheProgram) -> (FheProgram, usize) {
    let mut alias: Vec<u32> = (0..p.nodes.len() as u32).collect();
    // Keyed lookup only — iteration stays over the node list in id
    // order, so hash order never shapes the output.
    let mut seen: HashMap<Key, u32> = HashMap::new();
    let mut merges = 0usize;
    for (i, node) in p.nodes.iter().enumerate() {
        let r = |v: &IrId| resolve(&alias, v.0);
        let sorted = |a: &IrId, b: &IrId| {
            let (x, y) = (r(a), r(b));
            if x <= y {
                (x, y)
            } else {
                (y, x)
            }
        };
        let key = match &node.op {
            FheOp::CtInput { ordinal, .. } => Key::Ct(*ordinal),
            FheOp::PtInput { ordinal, .. } => Key::Pt(*ordinal),
            FheOp::Constant { coeffs, level } => Key::Const(*level, coeffs.clone()),
            FheOp::Add(a, b) => {
                let (x, y) = sorted(a, b);
                Key::Add(x, y)
            }
            FheOp::Mul(a, b) => {
                let (x, y) = sorted(a, b);
                Key::Mul(x, y)
            }
            FheOp::AddPlain(a, b) => Key::AddPlain(r(a), r(b)),
            FheOp::MulPlain(a, b) => Key::MulPlain(r(a), r(b)),
            FheOp::Aut { a, k } => Key::Aut(r(a), *k),
            FheOp::ModSwitch(a) => Key::ModSwitch(r(a)),
        };
        match seen.get(&key) {
            Some(&first) => {
                alias[i] = first;
                merges += 1;
            }
            None => {
                seen.insert(key, i as u32);
            }
        }
    }
    let (q, _) = apply_alias(p, &alias);
    (q, merges)
}

/// Key-switch hoisting: `ModSwitch(Aut(x, k))` with a single-use
/// automorphism becomes `Aut(ModSwitch(x), k)` by swapping the two nodes
/// in place (the mod-switch moves into the automorphism's slot, so SSA
/// order is preserved without renumbering). The automorphism's
/// key-switch then runs one level lower; every downstream level is
/// unchanged. Returns (program, hoists).
pub fn hoist_keyswitch(p: &FheProgram) -> (FheProgram, usize) {
    let mut p = p.clone();
    let uses = use_counts(&p);
    let mut hoists = 0usize;
    for i in 0..p.nodes.len() {
        let FheOp::ModSwitch(a) = p.nodes[i].op else { continue };
        let FheOp::Aut { a: x, k } = p.nodes[a.0 as usize].op else { continue };
        if uses[a.0 as usize] != 1 {
            continue;
        }
        let tx = p.nodes[x.0 as usize].ty;
        debug_assert!(tx.level >= 2, "mod_switch typing guarantees level >= 2");
        let scale = if p.scheme == Scheme::Ckks { tx.scale.saturating_sub(1).max(1) } else { 0 };
        let switched = ValType { level: tx.level - 1, scale, ..tx };
        let out_ty = p.nodes[i].ty;
        p.nodes[a.0 as usize] = Node { op: FheOp::ModSwitch(x), ty: switched };
        p.nodes[i] = Node { op: FheOp::Aut { a, k }, ty: out_ty };
        hoists += 1;
    }
    (p, hoists)
}

/// Dead-code elimination: drops nodes that cannot reach an output.
/// Returns (program, removed).
pub fn dce(p: &FheProgram) -> (FheProgram, usize) {
    let mut live = vec![false; p.nodes.len()];
    for &o in &p.outputs {
        live[o.0 as usize] = true;
    }
    for i in (0..p.nodes.len()).rev() {
        if live[i] {
            for o in p.nodes[i].op.operands() {
                live[o.0 as usize] = true;
            }
        }
    }
    // Reuse the alias machinery: a dead node aliased to id 0 is dropped,
    // and since nothing live references it the redirect is never read.
    // (Dead node 0 with live successors cannot happen: liveness is
    // transitive over operands, and node 0 has none.)
    let mut alias: Vec<u32> = (0..p.nodes.len() as u32).collect();
    let mut removed = 0usize;
    for (i, &l) in live.iter().enumerate() {
        if !l {
            alias[i] = 0;
            removed += 1;
        }
    }
    if removed == p.nodes.len() {
        // Fully dead program (no outputs): rebuild empty directly.
        let mut q = p.clone();
        q.nodes.clear();
        q.outputs.clear();
        return (q, removed);
    }
    if !live[0] {
        // Root the alias table at the first live node instead.
        let root = live.iter().position(|&l| l).unwrap() as u32;
        for (i, &l) in live.iter().enumerate() {
            if !l {
                alias[i] = root;
            }
        }
        alias[root as usize] = root;
    }
    let (q, _) = apply_alias(p, &alias);
    (q, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bgv(n: usize) -> FheProgram {
        FheProgram::new(n, Scheme::Bgv)
    }

    #[test]
    fn cse_merges_identical_muls() {
        let mut p = bgv(1 << 10);
        let x = p.input(4);
        let y = p.input(4);
        let m1 = p.mul(x, y);
        let m2 = p.mul(y, x); // commutative duplicate
        let s = p.add(m1, m2);
        p.output(s);
        let (q, stats) = optimize(&p);
        let muls = q.nodes().iter().filter(|n| matches!(n.op, FheOp::Mul(..))).count();
        assert_eq!(muls, 1, "commutative duplicate must merge");
        assert!(stats.cse_merged >= 1);
        // The add survives as add(m, m).
        assert_eq!(q.outputs().len(), 1);
    }

    #[test]
    fn cse_never_merges_distinct_inputs() {
        let mut p = bgv(1 << 10);
        let x = p.input(4);
        let y = p.input(4); // same level/shape, different data
        let s = p.add(x, y);
        p.output(s);
        let (q, _) = optimize(&p);
        let inputs = q.nodes().iter().filter(|n| matches!(n.op, FheOp::CtInput { .. })).count();
        assert_eq!(inputs, 2);
    }

    #[test]
    fn dce_drops_dead_rotations() {
        let mut p = bgv(1 << 10);
        let x = p.input(4);
        let _dead = p.rotate(x, 3); // a full key-switch, never used
        let live = p.square(x);
        p.output(live);
        let (q, stats) = optimize(&p);
        assert!(stats.dead_removed >= 1);
        assert!(
            !q.nodes().iter().any(|n| matches!(n.op, FheOp::Aut { .. })),
            "dead rotation must be eliminated"
        );
    }

    #[test]
    fn identity_rotation_is_eliminated() {
        // ord(3) mod 2N = 2N/4, so rotating by 2N/4 slots is σ_1 = id.
        let n = 1 << 10;
        let mut p = bgv(n);
        let x = p.input(4);
        let r = p.rotate(x, 2 * n / 4);
        let s = p.add(x, r); // becomes add(x, x)
        p.output(s);
        let (q, stats) = optimize(&p);
        assert!(stats.rotations_merged >= 1);
        assert!(!q.nodes().iter().any(|n| matches!(n.op, FheOp::Aut { .. })));
        assert_eq!(q.outputs().len(), 1);
    }

    #[test]
    fn single_use_rotation_chains_compose() {
        let mut p = bgv(1 << 10);
        let x = p.input(4);
        let r1 = p.aut(x, 3);
        let r2 = p.aut(r1, 5); // sole user of r1
        p.output(r2);
        let (q, _) = optimize(&p);
        let auts: Vec<usize> = q
            .nodes()
            .iter()
            .filter_map(|n| match n.op {
                FheOp::Aut { k, .. } => Some(k),
                _ => None,
            })
            .collect();
        assert_eq!(auts, vec![15], "σ_5 ∘ σ_3 must compose to σ_15");
    }

    #[test]
    fn shared_rotations_do_not_compose() {
        let mut p = bgv(1 << 10);
        let x = p.input(4);
        let r1 = p.aut(x, 3);
        let r2 = p.aut(r1, 5);
        let s = p.add(r1, r2); // r1 has two users
        p.output(s);
        let (q, _) = optimize(&p);
        let auts = q.nodes().iter().filter(|n| matches!(n.op, FheOp::Aut { .. })).count();
        assert_eq!(auts, 2, "shared intermediate must keep both automorphisms");
    }

    #[test]
    fn constants_fold_and_identities_collapse() {
        let mut p = bgv(1 << 10);
        let x = p.input(2);
        let c2 = p.scalar(2, 2);
        let c3 = p.scalar(3, 2);
        let c6 = p.mul(c2, c3); // compile-time 2*3
        let m = p.mul_plain(x, c6);
        let one = p.scalar(1, 2);
        let id = p.mul_plain(m, one); // x*6*1 → x*6
        let zero = p.scalar(0, 2);
        let id2 = p.add_plain(id, zero); // + 0 → id
        p.output(id2);
        let (q, stats) = optimize(&p);
        assert!(stats.folded >= 3, "fold + two identities, got {stats:?}");
        // One input, one folded constant, one mul_plain.
        assert_eq!(q.nodes().len(), 3);
        match &q.nodes()[1].op {
            FheOp::Constant { coeffs, .. } => assert_eq!(coeffs, &vec![6]),
            other => panic!("expected folded constant, got {other:?}"),
        }
    }

    #[test]
    fn hoisting_moves_keyswitch_below_modswitch_and_preserves_levels() {
        let mut p = bgv(1 << 10);
        let x = p.input(4);
        let r = p.aut(x, 3);
        let d = p.mod_switch(r);
        p.output(d);
        let before_out_level = p.level_of(*p.outputs().last().unwrap());
        let (q, stats) = optimize(&p);
        assert_eq!(stats.hoisted, 1);
        let out = *q.outputs().last().unwrap();
        assert_eq!(q.level_of(out), before_out_level, "hoisting must preserve output level");
        // The automorphism now runs at the reduced level.
        let aut_level = q
            .nodes()
            .iter()
            .find_map(|n| match n.op {
                FheOp::Aut { .. } => Some(n.ty.level),
                _ => None,
            })
            .unwrap();
        assert_eq!(aut_level, 3, "key-switch must run below the mod-switch");
        // And the result is the automorphism node (order swapped).
        assert!(matches!(q.node(out).op, FheOp::Aut { .. }));
    }

    #[test]
    fn hoisting_skips_shared_automorphisms() {
        let mut p = bgv(1 << 10);
        let x = p.input(4);
        let r = p.aut(x, 3);
        let d = p.mod_switch(r);
        let e = p.aut(r, 5); // second user of r
        p.output(d);
        let d2 = p.mod_switch(e);
        p.output(d2);
        let (_, stats) = hoist_keyswitch(&p);
        assert_eq!(stats, 1, "only the single-use chain may hoist");
    }

    #[test]
    fn matvec_identity_rotations_vanish() {
        // Listing 2 at N=16K: innerSum over all N slots wraps its last
        // rotation to σ_1 (ord(3) = 2N/4) — one dead key-switch per row.
        let p = FheProgram::listing2_matvec(1 << 14, 16, 4);
        let (q, stats) = optimize(&p);
        let before = p.nodes().iter().filter(|n| matches!(n.op, FheOp::Aut { .. })).count();
        let after = q.nodes().iter().filter(|n| matches!(n.op, FheOp::Aut { .. })).count();
        assert_eq!(before, 4 * 14);
        assert_eq!(after, 4 * 13, "one identity rotation per row must vanish");
        assert_eq!(stats.keyswitch_before - stats.keyswitch_after, 4);
    }

    #[test]
    fn optimize_is_deterministic() {
        let build = || {
            let mut p = bgv(1 << 12);
            let x = p.input(6);
            let y = p.input(6);
            let m1 = p.mul(x, y);
            let m2 = p.mul(y, x);
            let r = p.rotate(m1, 2);
            let r2 = p.rotate(m2, 2);
            let s = p.add(r, r2);
            let d = p.mod_switch(s);
            let _dead = p.square(d);
            let out = p.rotate(d, 1);
            p.output(out);
            p
        };
        let (a, _) = optimize(&build());
        let (b, _) = optimize(&build());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "optimize must be bit-deterministic");
    }

    #[test]
    #[should_panic(expected = "no lowering")]
    fn overflowing_constant_arithmetic_fails_fast_at_build() {
        let mut p = bgv(1 << 10);
        let a = p.scalar(u64::MAX, 2);
        let b = p.scalar(2, 2);
        p.mul(a, b); // would overflow: rejected at the construction site
    }

    #[test]
    fn fold_overflow_is_left_symbolic() {
        // The builder rejects overflowing constant ops up front, so the
        // pass's skip path is only reachable on hand-crafted IR — keep it
        // covered anyway (defense in depth for future builder surface).
        let mut p = bgv(1 << 10);
        let a = p.scalar(1, 2);
        let b = p.scalar(2, 2);
        let c = p.mul(a, b);
        let x = p.input(2);
        let m = p.mul_plain(x, c);
        p.output(m);
        // Swap in an overflowing constant behind the builder's back.
        p.nodes[a.0 as usize].op = FheOp::Constant { coeffs: vec![u64::MAX], level: 2 };
        let (q, _) = constant_fold(&p);
        assert!(
            q.nodes().iter().any(|n| matches!(n.op, FheOp::Mul(..))),
            "overflowing fold must be skipped"
        );
    }

    #[test]
    fn identity_alias_updates_use_counts_before_composition() {
        // y = σ_3(w) has one direct user (an identity σ_1 node), but the
        // identity's *two* users transfer to y when it is aliased away —
        // so the later σ_5 must NOT compose with y (y's key-switch runs
        // for the other user regardless; composing would only add a
        // fresh σ_15 hint to fetch).
        let mut p = bgv(1 << 10);
        let w = p.input(4);
        let y = p.aut(w, 3);
        let id = p.aut(y, 1);
        let s = p.square(id); // first user of id
        let r = p.aut(id, 5); // second user of id
        let out = p.add(s, r);
        p.output(out);
        let (q, _) = rotation_dedup(&p);
        let auts: Vec<usize> = q
            .nodes()
            .iter()
            .filter_map(|n| match n.op {
                FheOp::Aut { k, .. } => Some(k),
                _ => None,
            })
            .collect();
        assert_eq!(auts, vec![3, 5], "shared-after-aliasing chain must not compose");
    }
}
