//! Lowering: [`FheProgram`] → [`crate::dsl::Program`].
//!
//! The translation is 1:1 — every IR node becomes exactly one DSL
//! homomorphic op at the same index, so the lowered program inherits the
//! IR's dense, deterministic ids (`ct_of[i] == CtId(i)` always; the
//! mapping is returned anyway so callers never hard-code it). Plaintext
//! constants lower to `plain_input` ops plus a side table of their
//! coefficient values, which functional executors bind at run time
//! ([`Lowered::constants`]).

use super::{FheOp, FheProgram, IrId};
use crate::dsl::{CtId, Program};
use serde::{Deserialize, Serialize};

/// The result of lowering an [`FheProgram`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lowered {
    /// The scheduler-facing DSL program.
    pub program: Program,
    /// DSL id of each IR node (dense: `ct_of[i] == CtId(i)`).
    pub ct_of: Vec<CtId>,
    /// Folded compile-time constants: the `plain_input` op that carries
    /// each constant, with its plaintext coefficients.
    pub constants: Vec<(CtId, Vec<u64>)>,
    /// Ciphertext inputs as `(build-time ordinal, DSL id)` — the stable
    /// binding key for feeding the same data to differently-optimized
    /// variants of one program (passes may drop unused inputs, but an
    /// ordinal never changes).
    pub ct_inputs: Vec<(u32, CtId)>,
    /// Runtime plaintext inputs as `(build-time ordinal, DSL id)`.
    pub pt_inputs: Vec<(u32, CtId)>,
}

/// Lowers an IR program (see [`FheProgram::lower`]).
///
/// Plaintext-constant arithmetic that has not been folded yet (lowering
/// an unoptimized program is allowed) is const-evaluated here, so every
/// constant-pair node still lowers to a `plain_input` with a known
/// value.
///
/// # Panics
///
/// Panics on constant arithmetic with no runtime lowering *and* no fold:
/// u64 overflow, or a product of non-scalar constants (negacyclic
/// convolution needs the plaintext modulus the IR does not know).
pub fn lower(ir: &FheProgram) -> Lowered {
    ir.validate();
    let mut program = Program::new(ir.n);
    let mut ct_of = Vec::with_capacity(ir.nodes().len());
    let mut constants = Vec::new();
    let mut ct_inputs = Vec::new();
    let mut pt_inputs = Vec::new();
    // Constant values per node, for const-evaluating plain-pair ops.
    let mut const_vals: Vec<Option<Vec<u64>>> = Vec::with_capacity(ir.nodes().len());
    for (i, node) in ir.nodes().iter().enumerate() {
        let c = |v: &IrId| ct_of[v.0 as usize];
        let mut const_val: Option<Vec<u64>> = None;
        let id = match &node.op {
            FheOp::CtInput { level, ordinal } => {
                let id = program.input(*level);
                ct_inputs.push((*ordinal, id));
                id
            }
            FheOp::PtInput { level, ordinal } => {
                let id = program.plain_input(*level);
                pt_inputs.push((*ordinal, id));
                id
            }
            FheOp::Constant { coeffs, level } => {
                let id = program.plain_input(*level);
                constants.push((id, coeffs.clone()));
                const_val = Some(coeffs.clone());
                id
            }
            FheOp::Add(a, b) | FheOp::Mul(a, b) if node.ty.plain => {
                // Constant-pair arithmetic: const-evaluate (the builder
                // only admits compile-time constants here).
                let (ca, cb) =
                    (const_vals[a.0 as usize].as_deref(), const_vals[b.0 as usize].as_deref());
                let (ca, cb) = (
                    ca.unwrap_or_else(|| panic!("node {i}: non-constant plain operand")),
                    cb.unwrap_or_else(|| panic!("node {i}: non-constant plain operand")),
                );
                let folded = if matches!(node.op, FheOp::Add(..)) {
                    super::passes::fold_add(ca, cb)
                } else {
                    super::passes::fold_mul_scalar(ca, cb)
                };
                let coeffs = folded.unwrap_or_else(|| {
                    panic!(
                        "node {i}: constant arithmetic has no lowering (u64 overflow \
                         or non-scalar constant product)"
                    )
                });
                let id = program.plain_input(node.ty.level);
                constants.push((id, coeffs.clone()));
                const_val = Some(coeffs);
                id
            }
            FheOp::Add(a, b) => program.add(c(a), c(b)),
            FheOp::Mul(a, b) => program.mul(c(a), c(b)),
            FheOp::AddPlain(a, p) => program.add_plain(c(a), c(p)),
            FheOp::MulPlain(a, p) => program.mul_plain(c(a), c(p)),
            FheOp::Aut { a, k } => program.aut(c(a), *k),
            FheOp::ModSwitch(a) => program.mod_switch(c(a)),
        };
        debug_assert_eq!(id, CtId(i as u32), "lowering must stay 1:1");
        ct_of.push(id);
        const_vals.push(const_val);
    }
    for &o in ir.outputs() {
        program.output(ct_of[o.0 as usize]);
    }
    Lowered { program, ct_of, constants, ct_inputs, pt_inputs }
}

#[cfg(test)]
mod tests {
    use super::super::Scheme;
    use super::*;
    use crate::dsl::HomOp;

    #[test]
    fn lowering_is_one_to_one_and_ordered() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(4);
        let w = p.plain_input(4);
        let c = p.scalar(5, 4);
        let m = p.mul_plain(x, w);
        let m2 = p.mul_plain(m, c);
        let r = p.rotate(m2, 1);
        let s = p.add(m2, r);
        let d = p.mod_switch(s);
        p.output(d);
        let lo = p.lower();
        assert_eq!(lo.program.ops().len(), p.nodes().len());
        assert_eq!(lo.ct_of, (0..p.nodes().len() as u32).map(CtId).collect::<Vec<_>>());
        assert_eq!(lo.constants, vec![(CtId(2), vec![5])]);
        assert_eq!(lo.ct_inputs, vec![(0, CtId(0))]);
        assert_eq!(lo.pt_inputs, vec![(0, CtId(1))]);
        assert!(matches!(lo.program.ops()[5], HomOp::Aut { .. }));
        assert_eq!(lo.program.outputs(), &[CtId(7)]);
        assert_eq!(lo.program.level_of(CtId(7)), 3);
    }

    #[test]
    fn unoptimized_constant_arithmetic_lowers_via_const_eval() {
        // lower() must be total on unoptimized programs: a constant-pair
        // product const-evaluates to a plain_input even without passes.
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(2);
        let c2 = p.scalar(2, 2);
        let c3 = p.scalar(3, 2);
        let c6 = p.mul(c2, c3);
        let m = p.mul_plain(x, c6);
        p.output(m);
        let lo = p.lower();
        assert_eq!(lo.program.ops().len(), 5);
        // The product node carries the evaluated constant.
        assert!(lo.constants.iter().any(|(_, v)| v == &vec![6]));
    }

    #[test]
    fn optimized_lowering_keeps_input_ordinals() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let unused = p.input(4); // dropped by DCE
        let x = p.input(4);
        let _ = unused;
        let m = p.square(x);
        p.output(m);
        let (q, _) = p.optimize();
        let lo = q.lower();
        // The surviving input keeps ordinal 1 even though it is now the
        // program's first op.
        assert_eq!(lo.ct_inputs, vec![(1, CtId(0))]);
    }

    #[test]
    fn lowered_matvec_expands_like_the_dsl_original() {
        // The unoptimized typed frontend must reproduce the DSL program
        // exactly (same ops, same expansion) — the IR changes nothing
        // until passes run.
        let fhe = FheProgram::listing2_matvec(1 << 12, 4, 2);
        let dsl = Program::listing2_matvec(1 << 12, 4, 2);
        let lo = fhe.lower();
        assert_eq!(format!("{:?}", lo.program.ops()), format!("{:?}", dsl.ops()));
        let ex_a = crate::expand::expand(&lo.program, &Default::default());
        let ex_b = crate::expand::expand(&dsl, &Default::default());
        assert_eq!(ex_a.dfg.instrs().len(), ex_b.dfg.instrs().len());
    }
}
