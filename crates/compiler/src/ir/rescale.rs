//! Automatic rescale / mod-switch insertion — the noise-management pass.
//!
//! F1 leaves noise management to the programmer (§4.1): the DSL encodes
//! mod-switches by hand and a forgotten one silently erodes the margin
//! the static analysis reports. This pass closes that gap. Driven by the
//! [`crate::analysis::noise`] abstract interpretation, [`insert_rescales`]
//! *reflows* a typed [`FheProgram`]: it walks the node list in id order,
//! **drops every hand-placed `ModSwitch`**, and re-derives placement
//! under a requested [`NoisePolicy`] — switching operands down exactly
//! where the worst-case bound says it pays (or where CKKS scales must
//! renormalize). Placement decisions consult operand *noise*, never the
//! chain *budget*, so they are independent of the provisioned `L` and
//! the resulting margins are monotone in it. BGV correctness is
//! placement-independent:
//! the runtime accumulates a correction factor per switch and divides it
//! out at decryption, so a reflowed program decrypts bit-identically to
//! its hand-managed original (property-checked against the real software
//! BGV stack in `tests/ir_differential.rs`).
//!
//! [`reflow_at`] additionally re-provisions every input at a caller-chosen
//! level — the oracle the `(N, L)` parameter search
//! ([`crate::analysis::param_search`]) binary-searches over.
//!
//! After rebuilding, the pass re-runs the between-pass typing validator
//! ([`crate::analysis::typing::check`]) and the noise analysis, returning
//! the before/after worst-case margins in [`RescaleStats`]. It does *not*
//! use the stricter interface check of `optimize`'s verifier: changing
//! mod-switch placement legitimately changes output levels — that is the
//! point of the pass.

use super::{FheOp, FheProgram, IrId, Scheme};
use crate::analysis::noise::{analyze_with, default_model, NoiseAnalysis, NoiseFact};
use crate::analysis::{dataflow::ForwardAnalysis, typing};
use f1_fhe::noise::NoiseModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where the pass places rescales / mod-switches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoisePolicy {
    /// Switch down immediately after every ciphertext multiplication
    /// (CKKS additionally rescales products back to scale Δ). Simple and
    /// predictable; burns one level per multiplicative stage.
    EagerAtMul,
    /// Noise-driven placement with a profitability slack: before each
    /// multiplication, switch the operand pair down while the joint
    /// reduction in effective noise (worst-case bits plus CKKS scale
    /// headroom) exceeds the one-level budget cost by more than the
    /// threshold (in bits). The decision consults only operand noise —
    /// never the chain budget — so placement is independent of `L` and
    /// managed margins grow affinely in `L` (what the `(N, L)` binary
    /// search in [`crate::analysis::param_search`] relies on).
    LazyAtThreshold(f64),
    /// Paper-faithful discipline: CKKS operands renormalize to scale Δ at
    /// multiplication boundaries (the benchmarks' hand placement); BGV
    /// operands take every strictly profitable switch (zero slack — the
    /// tightest budget-independent placement).
    MulBoundary,
}

impl NoisePolicy {
    /// Display label (used by `ANALYSIS.json` and the search report).
    pub fn label(&self) -> String {
        match self {
            NoisePolicy::EagerAtMul => "eager-at-mul".into(),
            NoisePolicy::LazyAtThreshold(t) => format!("lazy-at-threshold({t})"),
            NoisePolicy::MulBoundary => "mul-boundary".into(),
        }
    }
}

/// Statistics from one [`insert_rescales`] run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RescaleStats {
    /// Mod-switch / rescale nodes the pass inserted.
    pub inserted: usize,
    /// Hand-placed mod-switch nodes the pass dropped before re-deriving.
    pub dropped: usize,
    /// Minimum worst-case margin of the input program (bits).
    pub min_margin_wc_before: f64,
    /// Minimum worst-case margin after insertion (bits).
    pub min_margin_wc_after: f64,
    /// Minimum tracked-estimate margin after insertion (bits).
    ///
    /// The estimate mirrors the runtime's per-op recurrences, which are
    /// deliberately cheap and can be *more pessimistic than the sound
    /// bound* on some shapes (BGV `add_est = max + 1` pays a full bit
    /// per add where the exact sum grows logarithmically; the CKKS
    /// exact-add and automorphism recurrences similarly over-shoot). A
    /// negative value here with a positive [`min_margin_wc_after`]
    /// means the estimate drifted, not the program — the worst-case
    /// bound is the correctness authority.
    ///
    /// [`min_margin_wc_after`]: RescaleStats::min_margin_wc_after
    pub min_margin_est_after: f64,
}

/// Reflows `p` under `policy` with the scheme's default noise model.
/// See the module docs. GSW programs (no modulus chain) pass through
/// unchanged.
pub fn insert_rescales(p: &FheProgram, policy: NoisePolicy) -> (FheProgram, RescaleStats) {
    insert_rescales_with(p, policy, default_model(p), None)
}

/// Reflows `p` with every ciphertext and plaintext input re-provisioned
/// at `input_level` limbs — the parameter-search oracle. Plaintext
/// operands follow the inputs up (they only need to *cover* their
/// consumers' levels).
pub fn reflow_at(
    p: &FheProgram,
    input_level: usize,
    policy: NoisePolicy,
) -> (FheProgram, RescaleStats) {
    insert_rescales_with(p, policy, default_model(p), Some(input_level))
}

/// Full-control variant: explicit model and optional input re-leveling.
///
/// # Panics
///
/// Panics if the rebuilt program fails the typing validator or changes
/// the program interface (a pass bug, not an input property).
pub fn insert_rescales_with(
    p: &FheProgram,
    policy: NoisePolicy,
    model: NoiseModel,
    input_level: Option<usize>,
) -> (FheProgram, RescaleStats) {
    let before = analyze_with(p, model.clone());
    if p.scheme() == Scheme::Gsw {
        // No modulus chain: nothing to place. Identity reflow.
        let stats = RescaleStats {
            inserted: 0,
            dropped: 0,
            min_margin_wc_before: before.min_margin_wc,
            min_margin_wc_after: before.min_margin_wc,
            min_margin_est_after: before.min_margin_est,
        };
        return (p.clone(), stats);
    }
    let mut r = Reflow {
        new: FheProgram::new(p.n, p.scheme()),
        analysis: NoiseAnalysis::new(p, model.clone()),
        facts: Vec::new(),
        switch_cache: HashMap::new(),
        policy,
        inserted: 0,
        dropped: 0,
    };
    // Plaintext operands must *cover* their consumers (level ≥ the
    // ciphertext's). Dropping hand switches can leave ciphertexts above
    // the level the original program declared its plaintexts at, so
    // plain values are re-provisioned at least as high as any ciphertext
    // can sit — the top ciphertext input level (ct levels only decrease
    // from there). Plaintexts carry no noise; their level is free.
    let ct_top = p
        .nodes()
        .iter()
        .filter_map(|n| match n.op {
            FheOp::CtInput { level, .. } => Some(level),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut map: Vec<IrId> = Vec::with_capacity(p.nodes().len());
    for node in p.nodes() {
        let new_id = match &node.op {
            FheOp::CtInput { level, .. } => {
                let v = r.new.input(input_level.unwrap_or(*level));
                r.track(v)
            }
            FheOp::PtInput { level, .. } => {
                let v = r.new.plain_input(input_level.unwrap_or((*level).max(ct_top)));
                r.track(v)
            }
            FheOp::Constant { coeffs, level } => {
                let v = r.new.constant(coeffs, input_level.unwrap_or((*level).max(ct_top)));
                r.track(v)
            }
            // Hand-placed switches alias through: the policy re-derives
            // placement from scratch.
            FheOp::ModSwitch(a) => {
                r.dropped += 1;
                map[a.0 as usize]
            }
            // Compile-time constant pairs reconstruct verbatim.
            FheOp::Add(a, b) if node.ty.plain => {
                let v = r.new.add(map[a.0 as usize], map[b.0 as usize]);
                r.track(v)
            }
            FheOp::Mul(a, b) if node.ty.plain => {
                let v = r.new.mul(map[a.0 as usize], map[b.0 as usize]);
                r.track(v)
            }
            FheOp::Add(a, b) => r.emit_add(map[a.0 as usize], map[b.0 as usize]),
            FheOp::AddPlain(a, pt) => r.emit_add_plain(map[a.0 as usize], map[pt.0 as usize]),
            FheOp::Mul(a, b) => r.emit_mul(map[a.0 as usize], map[b.0 as usize]),
            FheOp::MulPlain(a, pt) => r.emit_mul_plain(map[a.0 as usize], map[pt.0 as usize]),
            FheOp::Aut { a, k } => r.emit_aut(map[a.0 as usize], *k),
        };
        map.push(new_id);
    }
    for &o in p.outputs() {
        let mapped = map[o.0 as usize];
        r.new.output(mapped);
    }
    let mut out = r.new;
    // The pass builds lax (its own insertions may transiently misalign
    // CKKS scales); the caller's strictness travels with the program.
    out.strict_scale = p.strict_scale;

    // Re-prove the invariants: the typing validator from scratch, plus
    // the interface properties a reflow must preserve (output count and
    // input ordinals — output *levels* legitimately change).
    let diags = typing::check(&out);
    assert!(diags.is_empty(), "insert_rescales produced ill-typed IR: {diags:?}");
    assert_eq!(out.outputs().len(), p.outputs().len(), "insert_rescales changed output count");
    let (before_iface, after_iface) = (typing::interface(p), typing::interface(&out));
    assert_eq!(
        before_iface.ct_ordinals, after_iface.ct_ordinals,
        "insert_rescales changed ciphertext input ordinals"
    );
    assert_eq!(
        before_iface.pt_ordinals, after_iface.pt_ordinals,
        "insert_rescales changed plaintext input ordinals"
    );

    let after = analyze_with(&out, model);
    let stats = RescaleStats {
        inserted: r.inserted,
        dropped: r.dropped,
        min_margin_wc_before: before.min_margin_wc,
        min_margin_wc_after: after.min_margin_wc,
        min_margin_est_after: after.min_margin_est,
    };
    (out, stats)
}

/// The rebuild state: the program under construction plus an incremental
/// noise interpretation of it (one [`NoiseFact`] per new node, computed
/// with the same transfer function the batch analysis uses).
struct Reflow {
    new: FheProgram,
    analysis: NoiseAnalysis,
    facts: Vec<NoiseFact>,
    /// `(value, target_level) -> switched value`: switch chains are
    /// shared, so two consumers needing the same operand one level down
    /// reuse a single inserted node.
    switch_cache: HashMap<(u32, usize), IrId>,
    policy: NoisePolicy,
    inserted: usize,
    dropped: usize,
}

impl Reflow {
    /// Records the noise fact of a just-pushed node (incremental
    /// counterpart of the batch forward analysis).
    fn track(&mut self, id: IrId) -> IrId {
        debug_assert_eq!(id.0 as usize, self.facts.len(), "track must follow every push");
        let operands = self.new.node(id).op.operands();
        let operand_facts: Vec<NoiseFact> =
            operands.iter().map(|o| self.facts[o.0 as usize].clone()).collect();
        let f = self.analysis.transfer(&self.new, id, &operand_facts);
        self.facts.push(f);
        id
    }

    fn level(&self, v: IrId) -> usize {
        self.new.level_of(v)
    }

    fn wc(&self, v: IrId) -> f64 {
        self.facts[v.0 as usize].wc
    }

    fn ckks(&self) -> bool {
        self.new.scheme() == Scheme::Ckks
    }

    /// CKKS scale headroom in bits (0 outside CKKS) — must mirror
    /// [`crate::analysis::noise::NoiseReport`]'s margin computation.
    fn headroom(&self, scale: u32) -> f64 {
        if self.ckks() {
            f64::from(scale) * f64::from(self.analysis.model().limb_bits)
        } else {
            0.0
        }
    }

    /// Inserts cached mod-switch chains until `v` sits at `target`.
    fn switch_to(&mut self, mut v: IrId, target: usize) -> IrId {
        while self.level(v) > target {
            let key = (v.0, self.level(v) - 1);
            v = match self.switch_cache.get(&key) {
                Some(&w) => w,
                None => {
                    let w = self.new.mod_switch(v);
                    self.track(w);
                    self.inserted += 1;
                    self.switch_cache.insert(key, w);
                    w
                }
            };
        }
        v
    }

    /// CKKS: rescales `v` until its scale is back at Δ (or the chain runs
    /// out one level above the floor).
    fn rescale_to_unit(&mut self, mut v: IrId) -> IrId {
        while self.ckks() && self.new.scale_of(v) > 1 && self.level(v) >= 2 {
            v = self.switch_to(v, self.level(v) - 1);
        }
        v
    }

    fn emit_add(&mut self, a: IrId, b: IrId) -> IrId {
        let t = self.level(a).min(self.level(b));
        let (a, b) = (self.switch_to(a, t), self.switch_to(b, t));
        let v = self.new.add(a, b);
        self.track(v)
    }

    fn emit_add_plain(&mut self, a: IrId, p: IrId) -> IrId {
        // The plaintext covers any level at or below its own; never
        // switch it (plaintexts carry no noise to manage).
        let v = self.new.add_plain(a, p);
        self.track(v)
    }

    fn emit_aut(&mut self, a: IrId, k: usize) -> IrId {
        let v = self.new.aut(a, k);
        self.track(v)
    }

    fn emit_mul(&mut self, a: IrId, b: IrId) -> IrId {
        let (mut a, mut b) = (a, b);
        // CKKS scale discipline is mandatory, not a profitability call:
        // a skipped rescale doubles the scale at every downstream square,
        // so its true cost compounds multiplicatively — operands
        // renormalize to Δ at every mul boundary (the standard CKKS
        // practice and the paper's hand placement).
        if self.ckks() && !matches!(self.policy, NoisePolicy::EagerAtMul) {
            a = self.rescale_to_unit(a);
            b = self.rescale_to_unit(b);
        }
        let t = self.level(a).min(self.level(b));
        a = self.switch_to(a, t);
        b = self.switch_to(b, t);
        // BGV noise-profitability planning (budget-independent).
        let slack = match self.policy {
            _ if self.ckks() => None,
            NoisePolicy::LazyAtThreshold(t) => Some(t),
            NoisePolicy::MulBoundary => Some(0.0),
            NoisePolicy::EagerAtMul => None,
        };
        if let Some(slack) = slack {
            let target = self.renorm_level_for_mul(a, b, slack);
            a = self.switch_to(a, target);
            b = self.switch_to(b, target);
        }
        let v = self.new.mul(a, b);
        let v = self.track(v);
        match self.policy {
            NoisePolicy::EagerAtMul => {
                if self.ckks() {
                    self.rescale_to_unit(v)
                } else if self.level(v) >= 2 {
                    self.switch_to(v, self.level(v) - 1)
                } else {
                    v
                }
            }
            _ => v,
        }
    }

    fn emit_mul_plain(&mut self, a: IrId, p: IrId) -> IrId {
        let mut a = a;
        if self.ckks() && !matches!(self.policy, NoisePolicy::EagerAtMul) {
            a = self.rescale_to_unit(a);
        }
        let slack = match self.policy {
            _ if self.ckks() => None,
            NoisePolicy::LazyAtThreshold(t) => Some(t),
            NoisePolicy::MulBoundary => Some(0.0),
            NoisePolicy::EagerAtMul => None,
        };
        if let Some(slack) = slack {
            let target = self.renorm_level_for_mul_plain(a, slack);
            a = self.switch_to(a, target);
        }
        let v = self.new.mul_plain(a, p);
        let v = self.track(v);
        if matches!(self.policy, NoisePolicy::EagerAtMul) && self.ckks() {
            return self.rescale_to_unit(v);
        }
        v
    }

    /// Pre-multiplication renormalization planning for a (BGV)
    /// ciphertext product: starting from the aligned level of `a`/`b`,
    /// simulate switching *both* operands one level down while the joint
    /// reduction in effective noise (worst-case bits + scale headroom)
    /// exceeds the one-level budget cost (`limb_bits - 1`) by more than
    /// `slack`. Returns the chosen operand level. (CKKS muls take the
    /// mandatory mul-boundary rescale instead — greedy one-step gains
    /// cannot see the multiplicative downstream cost of a carried scale.)
    ///
    /// The decision never consults the budget at the current level, so
    /// placement is identical at every provisioned `L` — the property the
    /// parameter search's binary search requires (margins affine in `L`).
    fn renorm_level_for_mul(&self, a: IrId, b: IrId, slack: f64) -> usize {
        let m = self.analysis.model().clone();
        let mut level = self.level(a);
        debug_assert_eq!(level, self.level(b));
        let square = a == b;
        let (mut awc, mut bwc) = (self.wc(a), self.wc(b));
        let (mut sa, mut sb) = (self.new.scale_of(a), self.new.scale_of(b));
        let cost = f64::from(m.limb_bits - 1);
        while level >= 2 {
            // CKKS: a scale-1 rescale divides the message itself — never
            // insert one for noise management (the saturated-rescale bug).
            if self.ckks() && (sa < 2 || (!square && sb < 2)) {
                break;
            }
            let awc2 = m.wc_mod_switch(awc, level);
            let bwc2 = if square { awc2 } else { m.wc_mod_switch(bwc, level) };
            let sa2 = sa.saturating_sub(1).max(1);
            let sb2 = if square { sa2 } else { sb.saturating_sub(1).max(1) };
            let gain_a = (awc - awc2) + self.headroom(sa) - self.headroom(sa2);
            let gain_b =
                if square { gain_a } else { (bwc - bwc2) + self.headroom(sb) - self.headroom(sb2) };
            if gain_a + gain_b <= cost + slack {
                break;
            }
            level -= 1;
            (awc, bwc, sa, sb) = (awc2, bwc2, sa2, sb2);
        }
        level
    }

    /// Single-operand counterpart for plaintext products. A BGV switch
    /// reduces noise by at most `limb_bits - 1` — never strictly more
    /// than its cost — so this only fires in CKKS, where scale headroom
    /// makes the switch profitable.
    fn renorm_level_for_mul_plain(&self, a: IrId, slack: f64) -> usize {
        let m = self.analysis.model().clone();
        let mut level = self.level(a);
        let mut awc = self.wc(a);
        let mut sa = self.new.scale_of(a);
        let cost = f64::from(m.limb_bits - 1);
        while level >= 2 {
            if self.ckks() && sa < 2 {
                break;
            }
            let awc2 = m.wc_mod_switch(awc, level);
            let sa2 = sa.saturating_sub(1).max(1);
            let gain = (awc - awc2) + self.headroom(sa) - self.headroom(sa2);
            if gain <= cost + slack {
                break;
            }
            level -= 1;
            (awc, sa) = (awc2, sa2);
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::noise;

    /// An under-provisioned BGV squaring chain with no hand-placed
    /// switches: depth 3 at a level that can absorb it only if managed.
    fn unmanaged_bgv(level: usize, depth: usize) -> FheProgram {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let mut x = p.input(level);
        for _ in 0..depth {
            x = p.square(x);
        }
        p.output(x);
        p
    }

    #[test]
    fn lazy_improves_margin_on_unmanaged_chain() {
        let p = unmanaged_bgv(8, 5);
        assert!(noise::analyze(&p).min_margin_wc < 8.0, "premise: chain needs management");
        let (q, stats) = insert_rescales(&p, NoisePolicy::LazyAtThreshold(8.0));
        assert!(stats.inserted > 0, "{stats:?}");
        assert!(
            stats.min_margin_wc_after > stats.min_margin_wc_before,
            "managed margin must improve: {stats:?}"
        );
        assert!(crate::analysis::typing::check(&q).is_empty());
    }

    #[test]
    fn eager_switches_after_every_mul() {
        let p = unmanaged_bgv(12, 3);
        let (q, _) = insert_rescales(&p, NoisePolicy::EagerAtMul);
        let switches = q.nodes().iter().filter(|n| matches!(n.op, FheOp::ModSwitch(_))).count();
        assert_eq!(switches, 3, "one switch per square");
        // Output sits 3 levels below the input.
        assert_eq!(q.level_of(*q.outputs().last().unwrap()), 9);
    }

    #[test]
    fn hand_placed_switches_are_dropped_and_rederived() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(12);
        let m = p.square(x);
        let d = p.mod_switch(m);
        let d = p.mod_switch(d); // gratuitous second switch
        let m2 = p.square(d);
        p.output(m2);
        let (q, stats) = insert_rescales(&p, NoisePolicy::EagerAtMul);
        assert_eq!(stats.dropped, 2);
        let switches = q.nodes().iter().filter(|n| matches!(n.op, FheOp::ModSwitch(_))).count();
        assert_eq!(switches, 2, "eager re-derives one per mul");
        assert!(stats.min_margin_wc_after >= stats.min_margin_wc_before - 1e-9, "{stats:?}");
    }

    #[test]
    fn mul_boundary_renormalizes_ckks_scales() {
        let mut p = FheProgram::new(1 << 10, Scheme::Ckks);
        let x = p.input(8);
        let m = p.square(x); // scale 2
        let m2 = p.square(m); // scale 4 unmanaged
        p.output(m2);
        let (q, _) = insert_rescales(&p, NoisePolicy::MulBoundary);
        // Every mul's operands are at scale 1 when it fires.
        for node in q.nodes() {
            if let FheOp::Mul(a, b) = node.op {
                assert_eq!(q.scale_of(a), 1, "mul-boundary operand scale");
                assert_eq!(q.scale_of(b), 1);
            }
        }
        assert!(crate::analysis::typing::check(&q).is_empty());
    }

    #[test]
    fn gsw_passes_through_unchanged() {
        let mut p = FheProgram::new(1 << 10, Scheme::Gsw);
        let x = p.input(2);
        let y = p.input(2);
        let m = p.mul(x, y);
        p.output(m);
        let (q, stats) = insert_rescales(&p, NoisePolicy::EagerAtMul);
        assert_eq!(stats.inserted, 0);
        assert_eq!(q.nodes().len(), p.nodes().len());
    }

    #[test]
    fn reflow_at_reprovisions_inputs_and_goes_positive() {
        // Depth-4 chain, hopeless at level 2 — reflow at a generous level
        // must turn the worst-case margin positive.
        let p = unmanaged_bgv(2, 4);
        let before = noise::analyze(&p);
        assert!(before.min_margin_wc < 0.0, "premise: unmanaged is broken");
        let (q, stats) = reflow_at(&p, 12, NoisePolicy::LazyAtThreshold(8.0));
        assert!(stats.min_margin_wc_after > 0.0, "{stats:?}");
        for node in q.nodes() {
            if let FheOp::CtInput { level, .. } = node.op {
                assert_eq!(level, 12);
            }
        }
    }

    #[test]
    fn reflow_is_deterministic() {
        let p = unmanaged_bgv(12, 3);
        let (a, _) = insert_rescales(&p, NoisePolicy::LazyAtThreshold(8.0));
        let (b, _) = insert_rescales(&p, NoisePolicy::LazyAtThreshold(8.0));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn shared_operands_reuse_switch_chains() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(12);
        let a = p.square(x);
        let b = p.square(x); // same operand squared twice (CSE'd later)
        let s = p.add(a, b);
        p.output(s);
        let (q, _) = insert_rescales(&p, NoisePolicy::EagerAtMul);
        // The two squares share x at one level: no duplicate switch chain.
        let switches = q.nodes().iter().filter(|n| matches!(n.op, FheOp::ModSwitch(_))).count();
        assert_eq!(switches, 2, "one per mul result, none duplicated on x");
    }

    #[test]
    fn plaintext_operands_follow_without_switching() {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let x = p.input(12);
        let c = p.scalar(3, 12);
        let m = p.square(x);
        let m = p.mul_plain(m, c); // after eager's switch, ct sits below c
        p.output(m);
        let (q, _) = insert_rescales(&p, NoisePolicy::EagerAtMul);
        assert!(crate::analysis::typing::check(&q).is_empty());
        // The constant stays at its declared level; the covering rule
        // admits the lower-level ciphertext.
        let c_level = q
            .nodes()
            .iter()
            .find_map(|n| match n.op {
                FheOp::Constant { level, .. } => Some(level),
                _ => None,
            })
            .unwrap();
        assert_eq!(c_level, 12);
    }
}
