//! Schedule stamping: compiling a rolled program in time proportional to
//! the loop *body*, not body × trip count.
//!
//! A [`crate::ir::RepeatSpec`] chain at trip count T unrolls to O(T)
//! nodes, and the three scheduling passes are linear in nodes — so a
//! 10^7-node bootstrapping stress program pays minutes of compile time
//! repeating work the scheduler has already done thousands of times.
//! This module exploits the pipeline's determinism instead: it compiles
//! a handful of *truncations* of the same program (trip counts `W..W+6`)
//! and proves, byte-for-byte, that the resulting static schedules are
//! eventually periodic in the trip count. Once proven, the schedule for
//! any larger trip count is produced by **stamping**: replicating the
//! per-trip block of the truncated schedule with exact cycle/id
//! relocation, never running the passes over the full unrolling.
//!
//! ## The periodicity structure
//!
//! Let `S_i` be the full compile at `W + i` trips. Empirically — and
//! verified per program, per stream at stamping time — the pipeline is
//! *eventually periodic with period 2* in the trip count:
//!
//! * Value and instruction counts grow by constants `dv`, `di` per trip,
//!   and the makespan by `P` cycles per trip.
//! * `S_i` and `S_{i+2}` agree on a long common prefix; the divergence
//!   is confined to the last few (≤ [`BACK`]) trips of the schedule (the
//!   scheduler's drain), whose entries relocate *exactly* — cycles shift
//!   by `2P`, and ids above fixed thresholds shift by `2dv`/`2di`.
//!   Between the common prefix and the relocated drain sits a 2-trip
//!   steady-state block `K` that repeats verbatim (shifted) as trips
//!   grow.
//!
//! The period is 2, not 1, because the drain's cluster assignment
//! alternates with trip parity; predicting from the same-parity
//! predecessor absorbs the alternation. The predicted schedule is
//!
//! ```text
//! S_{i+2k} = S_i[..L] ++ K ++ sh(K,1) ++ … ++ sh(K,k-1) ++ sh(S_i[L..], k)
//! ```
//!
//! per stream, where `L` is the longest common prefix of `S_{i-2}` and
//! `S_i`, `K = S_i[L..L+Δlen]`, and `sh(·, j)` relocates by `2jP` cycles
//! and `2j·dv`/`2j·di` on ids above the thresholds.
//!
//! ## Safety
//!
//! Stamping is **unconditionally verified before use**: the engine
//! compiles seven truncations and requires (a) exact `dv`/`di`/`P`
//! constancy, (b) four byte-exact predictions across the probed window —
//! `S_4` from `(S_0,S_2)`, `S_5` from `(S_1,S_3)`, `S_6` from
//! `(S_2,S_4)`, and the two-step `S_6` from `(S_0,S_2)` — (c) exact
//! issue/done-cycle reconstruction from the streams, (d) affine energy
//! counters, and (e) the bank-homing invariant `dv ≡ 0 (mod banks)` that
//! keeps relocated values in their scratchpad banks. Any failure falls
//! back to the ordinary flat compile; the fast path can mispredict
//! nothing silently. `f1_sim::checker::check_stamped` additionally
//! re-verifies the base truncation and the materialized streams.

use std::time::Instant;

use f1_arch::energy::EnergyCounters;
use f1_arch::ArchConfig;
use f1_isa::streams::StaticSchedule;

use crate::cycle::{stream_weight, CycleSchedule};
use crate::expand::Expanded;
use crate::{compile_fhe, FheProgram};

/// Warm-up window W: truncations compile at `W .. W+6` trips. Chosen so
/// the scheduler's prologue/steady-state boundary lies inside the common
/// prefix; the byte-exact verification would reject a too-small window.
pub const WINDOW: u32 = 10;

/// Truncations probed (`S_0..S_6`): the minimum that supports two
/// disjoint same-parity predictions plus a two-step composition check.
const PROBES: u32 = 7;

/// Stamping engages only when it saves work: the probe compiles
/// `7·W + 21` trips' worth of schedule, so targets below `W + MIN_GAIN`
/// trips just compile flat.
const MIN_GAIN: u32 = 16;

/// Drain depth in trips: ids belonging to the last `BACK` trips of a
/// truncated schedule may relocate; everything below the threshold is
/// prefix-stable. Validated by the byte-exact predictions.
const BACK: u32 = 4;

/// Cycle/id relocation parameters shared by every stamped stream.
#[derive(Debug, Clone, Copy)]
struct Shift {
    period: u64,
    dv: u32,
    v_lo: u32,
    di: u32,
    i_lo: u32,
}

impl Shift {
    fn cycle(&self, c: u64, m: u64) -> u64 {
        c + m * self.period
    }
    fn value(&self, v: u32, m: u64) -> u32 {
        if v >= self.v_lo {
            v + m as u32 * self.dv
        } else {
            v
        }
    }
    fn instr(&self, i: u32, m: u64) -> u32 {
        if i >= self.i_lo {
            i + m as u32 * self.di
        } else {
            i
        }
    }
}

/// Timings and shape parameters of one stamped compile, for reporting.
#[derive(Debug, Clone)]
pub struct StampInfo {
    /// Trip count of the base (same-parity) truncation.
    pub base_trips: u32,
    /// Trip count actually requested.
    pub target_trips: u32,
    /// Stamped 2-trip blocks appended beyond the base truncation.
    pub k: u64,
    /// Makespan cycles per trip.
    pub period: u64,
    /// Expanded values per trip.
    pub dv: u32,
    /// Expanded instructions per trip.
    pub di: u32,
    /// Seconds compiling + verifying the seven truncations.
    pub probe_s: f64,
    /// Seconds materializing the target streams.
    pub materialize_s: f64,
}

/// Public view of the cycle/id relocation parameters, for external
/// verification: `f1_sim::checker::check_stamped` uses it to relocate
/// stamped blocks *independently* of [`StampedSchedule::materialize`]
/// and compare against the materialized streams.
#[derive(Debug, Clone, Copy)]
pub struct Relocation {
    /// Makespan cycles per trip (entries shift by `2j·period`).
    pub period: u64,
    /// Expanded values per trip.
    pub dv: u32,
    /// Value ids `>= v_lo` relocate; below are prefix-stable.
    pub v_lo: u32,
    /// Expanded instructions per trip.
    pub di: u32,
    /// Instruction ids `>= i_lo` relocate; below are prefix-stable.
    pub i_lo: u32,
}

impl Relocation {
    /// Relocates a cycle by `m` trips.
    pub fn cycle(&self, c: u64, m: u64) -> u64 {
        c + m * self.period
    }
    /// Relocates a value id by `m` trips (threshold-gated).
    pub fn value(&self, v: u32, m: u64) -> u32 {
        if v >= self.v_lo {
            v + m as u32 * self.dv
        } else {
            v
        }
    }
    /// Relocates an instruction id by `m` trips (threshold-gated).
    pub fn instr(&self, i: u32, m: u64) -> u32 {
        if i >= self.i_lo {
            i + m as u32 * self.di
        } else {
            i
        }
    }
}

/// A verified schedule template: the base truncation's full compile plus
/// the relocation parameters that extend it to any same-parity trip
/// count. [`Self::materialize`] produces the full [`CycleSchedule`];
/// `f1_sim::checker::check_stamped` consumes the template directly.
#[derive(Debug)]
pub struct StampedSchedule {
    /// Full compile of the base truncation (`base_trips` trips).
    pub base: CycleSchedule,
    /// Streams of the truncation two trips shorter (defines the common
    /// prefix per stream).
    pub prev: StaticSchedule,
    /// Pass-1 output for the base truncation — the checker re-verifies
    /// the base schedule against it.
    pub base_expanded: Expanded,
    /// Cycle/id relocation parameters (see module docs).
    pub info: StampInfo,
    /// Per-trip energy-counter increment (verified constant across the
    /// probe window).
    pub counters_per_trip: EnergyCounters,
}

/// How a rolled compile was carried out.
#[derive(Debug)]
pub enum RolledOutcome {
    /// The periodicity proof succeeded; the schedule was stamped from
    /// the retained template.
    Stamped(Box<StampedSchedule>),
    /// The program was compiled flat (unrolled), with the reason the
    /// fast path declined.
    Flat {
        /// Why stamping was not used.
        reason: String,
    },
}

/// Result of [`compile_rolled`].
#[derive(Debug)]
pub struct RolledCompile {
    /// The cycle-level schedule for the full trip count — byte-identical
    /// to what the flat pipeline produces, whichever path ran.
    pub schedule: CycleSchedule,
    /// Which path produced it.
    pub outcome: RolledOutcome,
}

/// Compiles a rolled program, taking the stamping fast path when the
/// program is eligible and the periodicity proof succeeds, and falling
/// back to the ordinary flat compile otherwise. The returned schedule is
/// byte-identical between the two paths (the equivalence suite pins
/// this); only the compile time differs.
pub fn compile_rolled(program: &FheProgram, arch: &ArchConfig) -> RolledCompile {
    match try_stamp(program, arch) {
        Ok((schedule, stamped)) => {
            RolledCompile { schedule, outcome: RolledOutcome::Stamped(Box::new(stamped)) }
        }
        Err(reason) => {
            let (_, _, _, _, schedule) = compile_fhe(program, arch);
            RolledCompile { schedule, outcome: RolledOutcome::Flat { reason } }
        }
    }
}

/// Longest common prefix of two entry slices.
fn lcp<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let mut i = 0;
    while i < a.len() && i < b.len() && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Extends one stream from its `prev`/`base` truncation pair by `k`
/// stamped 2-trip blocks (see module docs for the recursion).
fn extend<T: Clone + PartialEq>(
    prev: &[T],
    base: &[T],
    k: u64,
    apply: impl Fn(&T, u64) -> T,
) -> Result<Vec<T>, String> {
    if base.len() < prev.len() {
        return Err("stream shrank between truncations".into());
    }
    let l = lcp(prev, base);
    let block2 = base.len() - prev.len();
    if l + block2 > base.len() {
        return Err("divergence exceeds the 2-trip block".into());
    }
    let mut out = Vec::with_capacity(base.len() + k as usize * block2);
    out.extend_from_slice(&base[..l]);
    for j in 0..k {
        out.extend(base[l..l + block2].iter().map(|e| apply(e, 2 * j)));
    }
    out.extend(base[l..].iter().map(|e| apply(e, 2 * k)));
    Ok(out)
}

/// Extends every stream of a schedule by `k` stamped blocks.
fn extend_schedule(
    prev: &StaticSchedule,
    base: &StaticSchedule,
    k: u64,
    sh: Shift,
) -> Result<StaticSchedule, String> {
    if prev.compute.len() != base.compute.len() {
        return Err("compute stream count changed between truncations".into());
    }
    let mut compute = Vec::with_capacity(base.compute.len());
    for (p, b) in prev.compute.iter().zip(&base.compute) {
        compute.push(extend(p, b, k, |e, m| {
            let mut e = e.clone();
            e.cycle = sh.cycle(e.cycle, m);
            e.instr.0 = sh.instr(e.instr.0, m);
            e
        })?);
    }
    let mem = extend(&prev.mem, &base.mem, k, |e, m| {
        let mut e = e.clone();
        e.cycle = sh.cycle(e.cycle, m);
        e.value.0 = sh.value(e.value.0, m);
        e
    })?;
    let net = extend(&prev.net, &base.net, k, |e, m| {
        let mut e = e.clone();
        e.cycle = sh.cycle(e.cycle, m);
        e.value.0 = sh.value(e.value.0, m);
        e
    })?;
    let evict = extend(&prev.evict, &base.evict, k, |e, m| {
        let mut e = *e;
        e.cycle = sh.cycle(e.cycle, m);
        e.value.0 = sh.value(e.value.0, m);
        e
    })?;
    Ok(StaticSchedule { compute, mem, net, evict, makespan: base.makespan + 2 * k * sh.period })
}

/// Reconstructs per-instruction issue/done cycles from materialized
/// compute streams: `issue = entry.cycle`, `done = issue +
/// stream_weight` (the scheduler defines done exactly this way). The
/// probe verifies the reconstruction bit-for-bit against a full compile
/// before the fast path trusts it.
fn issue_done(
    schedule: &StaticSchedule,
    arch: &ArchConfig,
    n: usize,
    total_instrs: usize,
) -> (Vec<u64>, Vec<u64>) {
    let mut issue = vec![0u64; total_instrs];
    let mut done = vec![0u64; total_instrs];
    for stream in &schedule.compute {
        for e in stream {
            let i = e.instr.0 as usize;
            issue[i] = e.cycle;
            done[i] = e.cycle + stream_weight(arch, e.fu, n);
        }
    }
    (issue, done)
}

impl StampedSchedule {
    /// Relocation parameters derived from the template.
    fn shift(&self) -> Shift {
        let vals = self.base_expanded.dfg.values().len() as u32;
        let instrs = self.base_expanded.dfg.instrs().len() as u32;
        Shift {
            period: self.info.period,
            dv: self.info.dv,
            v_lo: vals - BACK * self.info.dv,
            di: self.info.di,
            i_lo: instrs - BACK * self.info.di,
        }
    }

    /// The relocation parameters, for external re-verification.
    pub fn relocation(&self) -> Relocation {
        let s = self.shift();
        Relocation { period: s.period, dv: s.dv, v_lo: s.v_lo, di: s.di, i_lo: s.i_lo }
    }

    /// Materializes the full [`CycleSchedule`] for the target trip
    /// count from the template. O(output size); runs no scheduling.
    pub fn materialize(&self, arch: &ArchConfig) -> Result<CycleSchedule, String> {
        let k = self.info.k;
        let schedule = extend_schedule(&self.prev, &self.base.schedule, k, self.shift())?;
        let n = self.base_expanded.n;
        let total =
            self.base_expanded.dfg.instrs().len() + 2 * k as usize * self.info.di as usize;
        let (issue_cycle, done_cycle) = issue_done(&schedule, arch, n, total);
        let makespan = schedule.makespan;
        let counters = self.base.counters.plus_scaled(&self.counters_per_trip, 2 * k);
        Ok(CycleSchedule { schedule, issue_cycle, done_cycle, makespan, counters })
    }
}

/// The verified fast path: probe, prove, stamp. Any violated invariant
/// returns `Err` with the reason, and the caller compiles flat.
fn try_stamp(
    program: &FheProgram,
    arch: &ArchConfig,
) -> Result<(CycleSchedule, StampedSchedule), String> {
    if program.repeats().len() != 1 {
        return Err(format!(
            "stamping needs exactly one repeat region (program has {})",
            program.repeats().len()
        ));
    }
    let trips = program.repeats()[0].trips;
    if trips < WINDOW + MIN_GAIN {
        return Err(format!("trip count {trips} too small to amortize the probe"));
    }

    let t0 = Instant::now();
    // Compile the seven truncations S_0..S_6 at W..W+6 trips. A
    // truncation can assert-fail where the full program would not (e.g.
    // an epilogue typed against the full trip count); treat that as
    // ineligibility, not an error.
    let mut comp: Vec<(Expanded, CycleSchedule)> = Vec::with_capacity(PROBES as usize);
    for i in 0..PROBES {
        let truncated = program.with_trips(0, WINDOW + i);
        let compiled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (_, _, expanded, _, cs) = compile_fhe(&truncated, arch);
            (expanded, cs)
        }));
        match compiled {
            Ok(pair) => comp.push(pair),
            Err(_) => return Err(format!("truncation at {} trips does not compile", WINDOW + i)),
        }
    }
    let vals: Vec<u32> = comp.iter().map(|c| c.0.dfg.values().len() as u32).collect();
    let instrs: Vec<u32> = comp.iter().map(|c| c.0.dfg.instrs().len() as u32).collect();
    let mks: Vec<u64> = comp.iter().map(|c| c.1.makespan).collect();

    // (a) Exact per-trip growth constants.
    let dv = vals[1] - vals[0];
    let di = instrs[1] - instrs[0];
    let period = mks[2].checked_sub(mks[1]).ok_or("makespan not monotone")?;
    if dv == 0 || di == 0 || period == 0 {
        return Err("degenerate per-trip growth (empty loop body?)".into());
    }
    for i in 1..PROBES as usize {
        if vals[i] - vals[i - 1] != dv || instrs[i] - instrs[i - 1] != di {
            return Err(format!("per-trip value/instr growth not constant at probe {i}"));
        }
        if i >= 2 && mks[i] - mks[i - 1] != period {
            return Err(format!("per-trip makespan growth not constant at probe {i}"));
        }
    }
    // (e) Bank homing: relocated values must land in the same
    // scratchpad bank (loads/stores address bank = value mod banks).
    // Ids only ever shift by multiples of 2·dv, so that is the quantum
    // that must preserve the bank; the byte-exact predictions below
    // witness it inside the probe window, this guards every larger k.
    if 2 * dv as usize % arch.scratchpad_banks != 0 {
        return Err(format!(
            "2dv = {} not a multiple of {} scratchpad banks",
            2 * dv,
            arch.scratchpad_banks
        ));
    }
    if instrs[0] < BACK * di || vals[0] < BACK * dv {
        return Err("truncations smaller than the relocation window".into());
    }

    // (b) Byte-exact periodicity: predict S_4, S_5, S_6 (and S_6 again
    // via a two-step stamp) from same-parity pairs and require equality.
    let shift_at = |base: usize| Shift {
        period,
        dv,
        v_lo: vals[base] - BACK * dv,
        di,
        i_lo: instrs[base] - BACK * di,
    };
    for (prev, base, k, tgt) in
        [(0usize, 2usize, 1u64, 4usize), (1, 3, 1, 5), (2, 4, 1, 6), (0, 2, 2, 6)]
    {
        let pred =
            extend_schedule(&comp[prev].1.schedule, &comp[base].1.schedule, k, shift_at(base))?;
        if pred != comp[tgt].1.schedule {
            return Err(format!(
                "probe prediction S_{tgt} from (S_{prev}, S_{base}) diverged; not periodic"
            ));
        }
    }

    // (c) Issue/done reconstruction must be exact on a full compile.
    let last = PROBES as usize - 1;
    let (ri, rd) =
        issue_done(&comp[last].1.schedule, arch, comp[last].0.n, instrs[last] as usize);
    if ri != comp[last].1.issue_cycle || rd != comp[last].1.done_cycle {
        return Err("issue/done reconstruction diverged from the scheduler".into());
    }

    // (d) Energy counters must grow by a constant per trip.
    let per_trip = comp[1].1.counters.delta(&comp[0].1.counters);
    for i in 1..PROBES as usize {
        if comp[i].1.counters.delta(&comp[i - 1].1.counters) != per_trip {
            return Err(format!("energy counters not affine in trips at probe {i}"));
        }
    }
    let probe_s = t0.elapsed().as_secs_f64();

    // Target: same-parity base among S_4/S_5, stamped k times.
    let i_t = trips - WINDOW;
    let (prev_i, base_i) = if i_t % 2 == 0 { (2usize, 4usize) } else { (3usize, 5usize) };
    let k = (i_t as u64 - base_i as u64) / 2;

    let t1 = Instant::now();
    let base = comp[base_i].1.clone();
    let prev = comp[prev_i].1.schedule.clone();
    let base_expanded = comp.swap_remove(base_i).0;
    let info = StampInfo {
        base_trips: WINDOW + base_i as u32,
        target_trips: trips,
        k,
        period,
        dv,
        di,
        probe_s,
        materialize_s: 0.0,
    };
    let mut stamped =
        StampedSchedule { base, prev, base_expanded, info, counters_per_trip: per_trip };
    let schedule = stamped.materialize(arch)?;
    stamped.info.materialize_s = t1.elapsed().as_secs_f64();
    Ok((schedule, stamped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_fhe, FheProgram, Scheme};

    /// The steady-state chain the periodicity analysis was validated on.
    fn rolled_chain(l: usize, trips: u32) -> FheProgram {
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let acc = p.input(l);
        let t = p.begin_repeat();
        let m = p.square(acc);
        let r = p.aut(m, 9);
        let acc2 = p.add(r, m);
        p.end_repeat(t, trips, vec![(acc, acc2)], vec![]);
        p.output(acc2);
        p
    }

    #[test]
    fn stamped_equals_flat_compile() {
        let arch = ArchConfig::f1_default();
        for trips in [WINDOW + MIN_GAIN, WINDOW + MIN_GAIN + 1, WINDOW + 31] {
            let p = rolled_chain(6, trips);
            let rolled = compile_rolled(&p, &arch);
            assert!(
                matches!(rolled.outcome, RolledOutcome::Stamped(_)),
                "fast path must engage at {trips} trips: {:?}",
                match &rolled.outcome {
                    RolledOutcome::Flat { reason } => reason.clone(),
                    _ => String::new(),
                }
            );
            let (_, _, _, _, flat) = compile_fhe(&p, &arch);
            assert_eq!(rolled.schedule.makespan, flat.makespan);
            assert_eq!(rolled.schedule.schedule, flat.schedule, "streams differ at {trips}");
            assert_eq!(rolled.schedule.issue_cycle, flat.issue_cycle);
            assert_eq!(rolled.schedule.done_cycle, flat.done_cycle);
            assert_eq!(rolled.schedule.counters, flat.counters);
        }
    }

    #[test]
    fn small_trip_counts_fall_back_flat() {
        let arch = ArchConfig::f1_default();
        let p = rolled_chain(6, 8);
        let rolled = compile_rolled(&p, &arch);
        assert!(matches!(rolled.outcome, RolledOutcome::Flat { .. }));
        let (_, _, _, _, flat) = compile_fhe(&p, &arch);
        assert_eq!(rolled.schedule.schedule, flat.schedule);
    }

    #[test]
    fn non_periodic_programs_fall_back_flat() {
        let arch = ArchConfig::f1_default();
        // A level-descending body: every iteration compiles differently,
        // so the per-trip growth constants cannot hold.
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let acc0 = p.input(40);
        let t = p.begin_repeat();
        let m = p.square(acc0);
        let acc = p.mod_switch(m);
        p.end_repeat(t, 30, vec![(acc0, acc)], vec![]);
        p.output(acc);
        let rolled = compile_rolled(&p, &arch);
        assert!(matches!(rolled.outcome, RolledOutcome::Flat { .. }));
        let (_, _, _, _, flat) = compile_fhe(&p, &arch);
        assert_eq!(rolled.schedule.schedule, flat.schedule);
    }
}
