//! Pass 1 — the homomorphic-operation compiler (§4.2).
//!
//! Responsibilities, per the paper:
//!
//! * **Ordering**: cluster independent homomorphic operations that reuse
//!   the same key-switch hint, then list-schedule the clusters, so each
//!   hint is fetched once and reused (Listing 2 would otherwise cycle
//!   through 480 MB of hints four times, §4.2).
//! * **Algorithmic choice**: pick the key-switch implementation
//!   (Listing 1's decomposition variant vs the GHS-style `O(L)`-hint
//!   variant) from `L`, hint reuse and FU load (§2.4, §4.2).
//! * **Translation**: expand every homomorphic operation into
//!   residue-vector instructions; one `Mul` at `L = 16` becomes ~1,600
//!   instructions, dominated by the key-switch.

use crate::dsl::{CtId, HomOp, Program};
use f1_arch::ArchConfig;
use f1_isa::dfg::{Dfg, ValueId, ValueKind, VectorOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies a key-switch hint (one pair of matrices, §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HintId {
    /// The relinearization hint shared by every multiplication.
    Relin,
    /// The per-automorphism hint for exponent `k`.
    Aut(usize),
}

/// Key-switch implementation selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeySwitchChoice {
    /// Force Listing 1's decomposition variant.
    Decomposition,
    /// Force the GHS-style variant.
    Ghs,
    /// Let the compiler decide from `L`, reuse and footprint (§4.2).
    Auto,
}

/// Options for the expansion pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpandOptions {
    /// Key-switch implementation policy.
    pub keyswitch: KeySwitchChoice,
    /// Special (raised-modulus) limbs the GHS variant uses; `0` sizes it
    /// to the operating level automatically.
    pub ghs_specials: usize,
    /// Scratchpad capacity assumed by the auto chooser.
    pub scratchpad_bytes: u64,
    /// Disable the hint-reuse reordering (for ablations; the paper's
    /// Listing 2 discussion shows why leaving program order hurts).
    pub keep_program_order: bool,
    /// The machine the `Auto` chooser estimates against; `None` uses the
    /// paper's default configuration. [`crate::compile`] fills this with
    /// the target architecture.
    pub machine: Option<ArchConfig>,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        Self {
            keyswitch: KeySwitchChoice::Auto,
            ghs_specials: 0,
            scratchpad_bytes: 64 * 1024 * 1024,
            keep_program_order: false,
            machine: None,
        }
    }
}

/// The pass-1 output: an instruction DFG plus hint/ciphertext metadata.
#[derive(Debug, Serialize, Deserialize)]
pub struct Expanded {
    /// The instruction-level dataflow graph.
    pub dfg: Dfg,
    /// Residue vectors of each hint (for reuse accounting). Ordered so
    /// that iteration never depends on hash state (determinism).
    pub hint_values: BTreeMap<HintId, Vec<ValueId>>,
    /// The key-switch variant actually used.
    pub used_ghs: bool,
    /// Ring dimension.
    pub n: usize,
    /// Output values per program output (a then b limbs).
    pub output_values: Vec<Vec<ValueId>>,
    /// The hint-reuse order of homomorphic ops chosen by the pass.
    pub hom_order: Vec<usize>,
}

/// A ciphertext lowered to per-limb values (NTT domain).
#[derive(Debug, Clone)]
struct LoweredCt {
    a: Vec<ValueId>,
    b: Vec<ValueId>,
}

/// Expands a program into an instruction DFG.
///
/// Under [`KeySwitchChoice::Auto`] the pass implements §4.2's algorithmic
/// choice with a machine model: it lowers the program with *both*
/// key-switch variants (expansion is linear and cheap next to the
/// scheduling passes) and keeps the one whose estimated makespan — the
/// max of its bandwidth, FU-throughput and dependence bounds on the
/// target machine — is lower. Decomposition has the least compute but
/// `O(L²)` hints; GHS pays more arithmetic for `O(L)` hints, winning
/// whenever hint traffic would leave the machine bandwidth-bound.
pub fn expand(program: &Program, opts: &ExpandOptions) -> Expanded {
    let order = if opts.keep_program_order {
        (0..program.ops().len()).collect()
    } else {
        hint_reuse_order(program)
    };
    match opts.keyswitch {
        KeySwitchChoice::Decomposition => expand_with(program, opts, &order, false),
        KeySwitchChoice::Ghs => expand_with(program, opts, &order, true),
        KeySwitchChoice::Auto => {
            // No key-switching ops: both variants lower identically, so
            // skip the comparison entirely.
            if program.ops().iter().all(|op| hint_of(op).is_none()) {
                return expand_with(program, opts, &order, false);
            }
            // Fast path (and the paper's stated rule): very large L always
            // favors GHS — skip the double expansion.
            if max_hint_level(program) >= 20 {
                return expand_with(program, opts, &order, true);
            }
            let machine = opts.machine.clone().unwrap_or_default();
            // The two candidate lowerings are independent pure functions
            // of (program, order), so they expand in parallel when
            // F1_PAR_COMPILE allows — identical results either way.
            let (decomp, ghs) = if crate::par::compile_threads() > 1 {
                rayon::join(
                    || expand_with(program, opts, &order, false),
                    || expand_with(program, opts, &order, true),
                )
            } else {
                (
                    expand_with(program, opts, &order, false),
                    expand_with(program, opts, &order, true),
                )
            };
            if estimate_makespan(&ghs, &machine) < estimate_makespan(&decomp, &machine) {
                ghs
            } else {
                decomp
            }
        }
    }
}

/// Largest operating level among hint-using operations.
fn max_hint_level(program: &Program) -> usize {
    let mut max_level = 1usize;
    for (i, op) in program.ops().iter().enumerate() {
        if hint_of(op).is_some() {
            max_level = max_level.max(program.level_of(CtId(i as u32)));
        }
    }
    max_level
}

/// Estimated makespan of an expansion on `arch`: the max of its three
/// lower bounds — per-class FU throughput, off-chip traffic over
/// aggregate bandwidth, and the streaming critical path. The traffic
/// bound includes a **capacity term**: when the loadable working set
/// (hints + inputs) exceeds the scratchpad, the overflow fraction of
/// every re-read beyond a value's first turns into a refetch, so a
/// variant with smaller hints (GHS) wins on capacity-starved machines
/// even where decomposition wins at 64 MB. The cycle-level scheduler
/// approaches whichever bound binds.
fn estimate_makespan(ex: &Expanded, arch: &ArchConfig) -> u64 {
    let dfg = &ex.dfg;
    let n = dfg.n;
    // FU-throughput bound per class (all instructions of a class share
    // one occupancy at ring size n, so count then multiply).
    let mut count = [0u64; 4];
    for i in dfg.instrs() {
        count[i.op.fu_type().index()] += 1;
    }
    let fu_bound = f1_isa::FuType::ALL
        .iter()
        .map(|&fu| {
            count[fu.index()] * arch.occupancy(fu, n)
                / (arch.fus_per_cluster(fu) * arch.clusters).max(1) as u64
        })
        .max()
        .unwrap_or(0);
    // Bandwidth bound: compulsory traffic (used inputs and hints loaded
    // once, outputs stored once) — the hint-reuse order keeps refetches
    // negligible for working sets that fit the scratchpad.
    let loadable: Vec<&f1_isa::dfg::ValueInfo> = dfg
        .values()
        .iter()
        .filter(|v| matches!(v.kind, ValueKind::Input | ValueKind::KeySwitchHint))
        .filter(|v| !dfg.users(v.id).is_empty())
        .collect();
    let working_set: u64 = loadable.iter().map(|v| v.bytes).sum();
    let mut traffic = working_set;
    traffic += dfg.outputs().iter().map(|&v| dfg.value(v).bytes).sum::<u64>();
    // Capacity term: the overflow fraction of the working set cannot stay
    // resident, so that share of every repeat read is a refetch.
    let cap = arch.scratchpad_bytes();
    if working_set > cap {
        let reread: u64 =
            loadable.iter().map(|v| (dfg.users(v.id).len() as u64 - 1) * v.bytes).sum();
        let overflow = (working_set - cap) as f64 / working_set as f64;
        traffic += (reread as f64 * overflow) as u64;
    }
    let mem_bound = arch.mem_cycles(traffic);
    // Dependence bound: the streaming critical path. Memoized on the DFG
    // under the same key pass 3 uses, so when this expansion wins the
    // auto comparison, the cycle scheduler reuses the depths wholesale.
    let cp = dfg
        .critical_depths_cached(crate::cycle::depth_key(arch, n), &|i| {
            crate::cycle::stream_weight(arch, i.op.fu_type(), n)
        })
        .iter()
        .max()
        .copied()
        .unwrap_or(0);
    fu_bound.max(mem_bound).max(cp)
}

/// Lowers the program with a fixed key-switch variant.
fn expand_with(
    program: &Program,
    opts: &ExpandOptions,
    order: &[usize],
    used_ghs: bool,
) -> Expanded {
    let mut ex = Expander {
        program,
        dfg: Dfg::new(program.n),
        hints: BTreeMap::new(),
        cts: vec![None; program.ops().len()],
        plains: vec![None; program.ops().len()],
        priority: 0,
        used_ghs,
        ghs_specials: opts.ghs_specials,
    };
    for &op_idx in order {
        ex.lower_op(op_idx);
    }
    let mut output_values = Vec::new();
    for &out in program.outputs() {
        let ct = ex.cts[out.0 as usize].as_ref().expect("output must be a ciphertext").clone();
        let mut vals = ct.a.clone();
        vals.extend_from_slice(&ct.b);
        for &v in &vals {
            ex.dfg.mark_output(v);
        }
        output_values.push(vals);
    }
    ex.dfg.validate();
    Expanded {
        dfg: ex.dfg,
        hint_values: ex.hints,
        used_ghs,
        n: program.n,
        output_values,
        hom_order: order.to_vec(),
    }
}

/// Orders homomorphic operations to maximize hint reuse (§4.2): schedule
/// hint-free ready operations eagerly, and among hint-using ready
/// operations stay on the current hint as long as possible, switching to
/// the hint with the most ready users when forced.
pub fn hint_reuse_order(program: &Program) -> Vec<usize> {
    let ops = program.ops();
    let n_ops = ops.len();
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
    let mut indegree = vec![0usize; n_ops];
    for (i, op) in ops.iter().enumerate() {
        for d in op_deps(op) {
            deps[d.0 as usize].push(i);
            indegree[i] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n_ops).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n_ops);
    let mut current_hint: Option<HintId> = None;
    while !ready.is_empty() {
        ready.sort_unstable();
        // 1. Drain hint-free ready ops (adds, plain ops, mod switches).
        let pos = ready.iter().position(|&i| hint_of(&ops[i]).is_none());
        let pick = if let Some(p) = pos {
            p
        } else {
            // 2. Prefer the current hint; otherwise the most popular one.
            let same = ready
                .iter()
                .position(|&i| hint_of(&ops[i]) == current_hint && current_hint.is_some());
            match same {
                Some(p) => p,
                None => {
                    // Deterministic popularity vote: count in an ordered
                    // map and break count ties by smallest HintId. (The
                    // old HashMap max_by_key broke ties by hash-iteration
                    // order — the source of the residual run-to-run
                    // makespan wobble ROADMAP tracked.)
                    let mut counts: BTreeMap<HintId, usize> = BTreeMap::new();
                    for &i in &ready {
                        if let Some(h) = hint_of(&ops[i]) {
                            *counts.entry(h).or_insert(0) += 1;
                        }
                    }
                    let best = counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
                    let best = best.map(|(h, _)| h).unwrap();
                    current_hint = Some(best);
                    ready.iter().position(|&i| hint_of(&ops[i]) == Some(best)).unwrap()
                }
            }
        };
        let chosen = ready.swap_remove(pick);
        if let Some(h) = hint_of(&ops[chosen]) {
            current_hint = Some(h);
        }
        order.push(chosen);
        for &succ in &deps[chosen] {
            indegree[succ] -= 1;
            if indegree[succ] == 0 {
                ready.push(succ);
            }
        }
    }
    assert_eq!(order.len(), n_ops, "cycle in homomorphic-op graph");
    order
}

fn op_deps(op: &HomOp) -> Vec<CtId> {
    match op {
        HomOp::Input { .. } | HomOp::PlainInput { .. } => vec![],
        HomOp::Add { a, b } | HomOp::Mul { a, b } => vec![*a, *b],
        HomOp::AddPlain { a, p } | HomOp::MulPlain { a, p } => vec![*a, *p],
        HomOp::Aut { a, .. } | HomOp::ModSwitch { a } => vec![*a],
    }
}

fn hint_of(op: &HomOp) -> Option<HintId> {
    match op {
        HomOp::Mul { .. } => Some(HintId::Relin),
        HomOp::Aut { k, .. } => Some(HintId::Aut(*k)),
        _ => None,
    }
}

struct Expander<'p> {
    program: &'p Program,
    dfg: Dfg,
    hints: BTreeMap<HintId, Vec<ValueId>>,
    /// Lowered ciphertexts, indexed by [`CtId`] (= op index; `None` until
    /// the op lowers). Dense tables — the per-op lookups are hot.
    cts: Vec<Option<LoweredCt>>,
    plains: Vec<Option<Vec<ValueId>>>,
    priority: u64,
    used_ghs: bool,
    ghs_specials: usize,
}

impl Expander<'_> {
    fn ct(&self, id: CtId) -> &LoweredCt {
        self.cts[id.0 as usize].as_ref().expect("ciphertext not yet lowered")
    }

    fn plain(&self, id: CtId) -> &[ValueId] {
        self.plains[id.0 as usize].as_deref().expect("plaintext not yet lowered")
    }
}

impl<'p> Expander<'p> {
    fn next_priority(&mut self) -> u64 {
        self.priority += 1;
        self.priority
    }

    fn emit(&mut self, op: VectorOp, inputs: Vec<ValueId>) -> ValueId {
        let p = self.next_priority();
        self.dfg.add_instr(op, inputs, p)
    }

    fn lower_op(&mut self, idx: usize) {
        let id = CtId(idx as u32);
        let level = self.program.level_of(id);
        match self.program.ops()[idx].clone() {
            HomOp::Input { level } => {
                let a = (0..level)
                    .map(|i| self.dfg.add_value(ValueKind::Input, Some(format!("ct{idx}.a[{i}]"))))
                    .collect();
                let b = (0..level)
                    .map(|i| self.dfg.add_value(ValueKind::Input, Some(format!("ct{idx}.b[{i}]"))))
                    .collect();
                self.cts[id.0 as usize] = Some(LoweredCt { a, b });
            }
            HomOp::PlainInput { level } => {
                let p = (0..level)
                    .map(|i| self.dfg.add_value(ValueKind::Input, Some(format!("pt{idx}[{i}]"))))
                    .collect();
                self.plains[id.0 as usize] = Some(p);
            }
            HomOp::Add { a, b } => {
                let (x, y) = (self.ct(a).clone(), self.ct(b).clone());
                let out = LoweredCt {
                    a: (0..level).map(|i| self.emit(VectorOp::Add, vec![x.a[i], y.a[i]])).collect(),
                    b: (0..level).map(|i| self.emit(VectorOp::Add, vec![x.b[i], y.b[i]])).collect(),
                };
                self.cts[id.0 as usize] = Some(out);
            }
            HomOp::AddPlain { a, p } => {
                let x = self.ct(a).clone();
                let pt = self.plain(p).to_vec();
                let out = LoweredCt {
                    a: x.a.clone(),
                    b: (0..level).map(|i| self.emit(VectorOp::Add, vec![x.b[i], pt[i]])).collect(),
                };
                self.cts[id.0 as usize] = Some(out);
            }
            HomOp::MulPlain { a, p } => {
                let x = self.ct(a).clone();
                let pt = self.plain(p).to_vec();
                let out = LoweredCt {
                    a: (0..level).map(|i| self.emit(VectorOp::Mul, vec![x.a[i], pt[i]])).collect(),
                    b: (0..level).map(|i| self.emit(VectorOp::Mul, vec![x.b[i], pt[i]])).collect(),
                };
                self.cts[id.0 as usize] = Some(out);
            }
            HomOp::Mul { a, b } => {
                let (x, y) = (self.ct(a).clone(), self.ct(b).clone());
                // Tensor (§2.2.1): l2 = a0*a1, l1 = a0*b1 + a1*b0, l0 = b0*b1.
                let l2: Vec<ValueId> =
                    (0..level).map(|i| self.emit(VectorOp::Mul, vec![x.a[i], y.a[i]])).collect();
                let l1: Vec<ValueId> = (0..level)
                    .map(|i| {
                        let t1 = self.emit(VectorOp::Mul, vec![x.a[i], y.b[i]]);
                        let t2 = self.emit(VectorOp::Mul, vec![x.b[i], y.a[i]]);
                        self.emit(VectorOp::Add, vec![t1, t2])
                    })
                    .collect();
                let l0: Vec<ValueId> =
                    (0..level).map(|i| self.emit(VectorOp::Mul, vec![x.b[i], y.b[i]])).collect();
                let (u0, u1) = self.keyswitch(&l2, HintId::Relin, level);
                let out = LoweredCt {
                    a: (0..level).map(|i| self.emit(VectorOp::Add, vec![l1[i], u1[i]])).collect(),
                    b: (0..level).map(|i| self.emit(VectorOp::Add, vec![l0[i], u0[i]])).collect(),
                };
                self.cts[id.0 as usize] = Some(out);
            }
            HomOp::Aut { a, k } => {
                let x = self.ct(a).clone();
                let sa: Vec<ValueId> =
                    (0..level).map(|i| self.emit(VectorOp::Aut { k }, vec![x.a[i]])).collect();
                let sb: Vec<ValueId> =
                    (0..level).map(|i| self.emit(VectorOp::Aut { k }, vec![x.b[i]])).collect();
                let (u0, u1) = self.keyswitch(&sa, HintId::Aut(k), level);
                let out = LoweredCt {
                    a: u1,
                    b: (0..level).map(|i| self.emit(VectorOp::Add, vec![sb[i], u0[i]])).collect(),
                };
                self.cts[id.0 as usize] = Some(out);
            }
            HomOp::ModSwitch { a } => {
                let x = self.ct(a).clone();
                let out_level = level; // already the reduced level
                let top = out_level; // index of the dropped limb in inputs
                let lower = |poly: &[ValueId], this: &mut Self| -> Vec<ValueId> {
                    // δ = INTT(top limb); per remaining limb: NTT(δ),
                    // subtract, scale by q_top^{-1} (§2.2.2 in RNS form).
                    let delta = this.emit(VectorOp::Intt, vec![poly[top]]);
                    (0..out_level)
                        .map(|j| {
                            let d = this.emit(VectorOp::Ntt, vec![delta]);
                            let s = this.emit(VectorOp::Sub, vec![poly[j], d]);
                            this.emit(VectorOp::ScalarMul, vec![s])
                        })
                        .collect()
                };
                let a_new = lower(&x.a, self);
                let b_new = lower(&x.b, self);
                self.cts[id.0 as usize] = Some(LoweredCt { a: a_new, b: b_new });
            }
        }
    }

    /// Residue vectors of a hint's matrices, created on first use.
    fn hint_vals(&mut self, hint: HintId, count: usize) -> Vec<ValueId> {
        if let Some(v) = self.hints.get(&hint) {
            if v.len() >= count {
                return v.clone();
            }
        }
        let vals: Vec<ValueId> = (0..count)
            .map(|i| self.dfg.add_value(ValueKind::KeySwitchHint, Some(format!("{hint:?}[{i}]"))))
            .collect();
        self.hints.insert(hint, vals.clone());
        vals
    }

    /// Key-switch expansion: Listing 1 (decomposition) or GHS.
    fn keyswitch(&mut self, x: &[ValueId], hint: HintId, l: usize) -> (Vec<ValueId>, Vec<ValueId>) {
        if self.used_ghs {
            self.keyswitch_ghs(x, hint, l)
        } else {
            self.keyswitch_decomp(x, hint, l)
        }
    }

    /// Listing 1, line for line: `L` INTTs, `L(L-1)` forward NTTs,
    /// `2L²` multiplies, `2L²` accumulating adds; hints are `2L²` RVecs.
    fn keyswitch_decomp(
        &mut self,
        x: &[ValueId],
        hint: HintId,
        l: usize,
    ) -> (Vec<ValueId>, Vec<ValueId>) {
        let hints = self.hint_vals(hint, 2 * l * l);
        let ksh0 = |i: usize, j: usize| hints[i * l + j];
        let ksh1 = |i: usize, j: usize| hints[l * l + i * l + j];
        // Line 3: y = [INTT(x[i])].
        let y: Vec<ValueId> = (0..l).map(|i| self.emit(VectorOp::Intt, vec![x[i]])).collect();
        let mut u0: Vec<Option<ValueId>> = vec![None; l];
        let mut u1: Vec<Option<ValueId>> = vec![None; l];
        for i in 0..l {
            for j in 0..l {
                // Line 8: xqj = (i == j) ? x[i] : NTT(y[i], q_j).
                let xqj = if i == j { x[i] } else { self.emit(VectorOp::Ntt, vec![y[i]]) };
                // Lines 9-10: multiply-accumulate against both hint rows.
                let m0 = self.emit(VectorOp::Mul, vec![xqj, ksh0(i, j)]);
                u0[j] = Some(match u0[j] {
                    None => m0,
                    Some(acc) => self.emit(VectorOp::Add, vec![acc, m0]),
                });
                let m1 = self.emit(VectorOp::Mul, vec![xqj, ksh1(i, j)]);
                u1[j] = Some(match u1[j] {
                    None => m1,
                    Some(acc) => self.emit(VectorOp::Add, vec![acc, m1]),
                });
            }
        }
        (u0.into_iter().map(Option::unwrap).collect(), u1.into_iter().map(Option::unwrap).collect())
    }

    /// GHS-style key-switch: raise `x` into `L + K` limbs, multiply by an
    /// `O(L)` hint, then divide by the special modulus with rounding.
    /// More compute, far smaller hints (§2.4).
    fn keyswitch_ghs(
        &mut self,
        x: &[ValueId],
        hint: HintId,
        l: usize,
    ) -> (Vec<ValueId>, Vec<ValueId>) {
        let k = if self.ghs_specials == 0 { l.max(1) } else { self.ghs_specials };
        let total = l + k;
        let hints = self.hint_vals(hint, 2 * total);
        let y: Vec<ValueId> = (0..l).map(|i| self.emit(VectorOp::Intt, vec![x[i]])).collect();
        // Basis extension: per target limb, a digit-weighted sum of the
        // coefficient-domain limbs, then one forward NTT.
        let lifted: Vec<ValueId> = (0..total)
            .map(|_| {
                let mut acc = self.emit(VectorOp::ScalarMul, vec![y[0]]);
                for yi in y.iter().skip(1) {
                    acc = self.emit(VectorOp::ScalarMulAdd, vec![acc, *yi]);
                }
                self.emit(VectorOp::Ntt, vec![acc])
            })
            .collect();
        let mut u0: Vec<ValueId> =
            (0..total).map(|j| self.emit(VectorOp::Mul, vec![lifted[j], hints[j]])).collect();
        let mut u1: Vec<ValueId> = (0..total)
            .map(|j| self.emit(VectorOp::Mul, vec![lifted[j], hints[total + j]]))
            .collect();
        // Rounded division by each special prime (both polynomials).
        for poly in [&mut u0, &mut u1] {
            for sp in (l..total).rev() {
                let delta = self.emit(VectorOp::Intt, vec![poly[sp]]);
                for limb in poly.iter_mut().take(sp) {
                    let d = self.emit(VectorOp::Ntt, vec![delta]);
                    let s = self.emit(VectorOp::Sub, vec![*limb, d]);
                    *limb = self.emit(VectorOp::ScalarMul, vec![s]);
                }
            }
            poly.truncate(l);
        }
        (u0, u1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec() -> Program {
        Program::listing2_matvec(1 << 12, 4, 4)
    }

    #[test]
    fn listing1_instruction_counts() {
        // One hom-mul at level L: tensor 4L mul + L add; key-switch L
        // INTT + L(L-1) NTT + 2L^2 mul + 2L(L-1) add; final 2L adds.
        let mut p = Program::new(1 << 10);
        let x = p.input(4);
        let y = p.input(4);
        let m = p.mul(x, y);
        p.output(m);
        let ex = expand(&p, &ExpandOptions::default());
        let counts = ex.dfg.op_counts();
        let l = 4usize;
        assert_eq!(counts["intt"], l);
        assert_eq!(counts["ntt"], l * (l - 1));
        assert_eq!(counts["mul"], 4 * l + 2 * l * l);
        assert_eq!(counts["add"], l + 2 * l * (l - 1) + 2 * l);
        assert!(!ex.used_ghs);
    }

    #[test]
    fn hint_sizes_match_paper_example() {
        // §2.4: at L = 16, N = 16K the decomposition key-switch hints are
        // 32 MB (pinned explicitly: Auto picks GHS here precisely
        // *because* of this footprint).
        let mut p = Program::new(1 << 14);
        let x = p.input(16);
        let y = p.input(16);
        let m = p.mul(x, y);
        p.output(m);
        let opts =
            ExpandOptions { keyswitch: KeySwitchChoice::Decomposition, ..Default::default() };
        let ex = expand(&p, &opts);
        let hint_bytes: u64 =
            ex.hint_values[&HintId::Relin].iter().map(|&v| ex.dfg.value(v).bytes).sum();
        assert_eq!(hint_bytes, 32 * 1024 * 1024);
    }

    #[test]
    fn reordering_groups_hints() {
        // Listing 2: program order interleaves rotations of different
        // amounts across rows; the reuse order must group them so each
        // hint's uses are consecutive.
        let p = matvec();
        let order = hint_reuse_order(&p);
        let ops = p.ops();
        let hints: Vec<HintId> = order.iter().filter_map(|&i| hint_of(&ops[i])).collect();
        // Count hint switches: grouped order switches once per distinct
        // hint (15 hints: 1 relin + 14 rotation amounts).
        let mut switches = 1;
        for w in hints.windows(2) {
            if w[0] != w[1] {
                switches += 1;
            }
        }
        let distinct = {
            let mut h = hints;
            h.sort_unstable();
            h.dedup();
            h.len()
        };
        // 1 relin + 12 rotation hints; the largest rotation amount wraps
        // to σ_1 because ord(3) mod 2N = 2N/4, so distinct = 13 (not 15).
        assert_eq!(distinct, 13);
        assert_eq!(
            switches, distinct,
            "each hint must be visited exactly once ({switches} switches)"
        );
    }

    #[test]
    fn program_order_thrashes_hints() {
        let p = matvec();
        let opts = ExpandOptions { keep_program_order: true, ..Default::default() };
        let ex = expand(&p, &opts);
        // With program order, rotation hints interleave: more switches
        // than distinct hints (the §4.2 motivating example).
        let ops = p.ops();
        let hints: Vec<HintId> = ex.hom_order.iter().filter_map(|&i| hint_of(&ops[i])).collect();
        let mut switches = 1;
        for w in hints.windows(2) {
            if w[0] != w[1] {
                switches += 1;
            }
        }
        assert!(switches > 13, "program order should thrash ({switches} switches)");
    }

    #[test]
    fn auto_chooser_flips_to_ghs_when_bandwidth_bound() {
        // A single relinearization at L = 16, N = 16K: decomposition moves
        // a 32 MB hint for ~200K busy FU-cycles — bandwidth-bound on the
        // paper machine — so the §4.2 cost model must pick GHS (O(L)
        // hints, more compute).
        let mut p = Program::new(1 << 14);
        let x = p.input(16);
        let y = p.input(16);
        let m = p.mul(x, y);
        p.output(m);
        let ex = expand(&p, &ExpandOptions::default());
        assert!(ex.used_ghs, "bandwidth-bound program must choose GHS");
        // A shallow program whose hints are tiny stays on decomposition.
        let mut q = Program::new(1 << 10);
        let a = q.input(4);
        let b = q.input(4);
        let s = q.mul(a, b);
        q.output(s);
        let exq = expand(&q, &ExpandOptions::default());
        assert!(!exq.used_ghs, "compute-cheap program must keep decomposition");
    }

    #[test]
    fn auto_chooser_respects_scratchpad_capacity() {
        // The same program that keeps decomposition on the 64 MB machine
        // must flip to GHS on a capacity-starved one: eight muls reuse
        // the relinearization hint, so decomposition's O(L²) hint (128 KB
        // here) gets re-fetched on a 64 KB pad every round, while GHS's
        // O(L) hint is four times cheaper to thrash.
        let build = || {
            let mut p = Program::new(1 << 10);
            for _ in 0..8 {
                let x = p.input(4);
                let y = p.input(4);
                let m = p.mul(x, y);
                p.output(m);
            }
            p
        };
        let big = expand(
            &build(),
            &ExpandOptions { machine: Some(ArchConfig::f1_default()), ..Default::default() },
        );
        assert!(!big.used_ghs, "64 MB machine must keep decomposition");
        let mut tiny = ArchConfig::f1_default();
        tiny.bank_bytes = 64 * 1024 / tiny.scratchpad_banks as u64;
        let small = expand(&build(), &ExpandOptions { machine: Some(tiny), ..Default::default() });
        assert!(small.used_ghs, "64 KB machine must flip to GHS (capacity term)");
    }

    #[test]
    fn ghs_choice_at_large_l() {
        let mut p = Program::new(1 << 10);
        let x = p.input(21);
        let y = p.input(21);
        let m = p.mul(x, y);
        p.output(m);
        let ex = expand(&p, &ExpandOptions::default());
        assert!(ex.used_ghs, "L >= 20 must select the GHS variant (§2.4)");
        // GHS hints are O(L): 2(L+K) residue vectors, far below 2L².
        let hint_count = ex.hint_values[&HintId::Relin].len();
        assert!(hint_count <= 4 * 21 + 4, "GHS hint count {hint_count}");
    }

    #[test]
    fn ghs_uses_more_compute() {
        let build = || {
            let mut p = Program::new(1 << 10);
            let x = p.input(8);
            let y = p.input(8);
            let m = p.mul(x, y);
            p.output(m);
            p
        };
        let d = expand(
            &build(),
            &ExpandOptions { keyswitch: KeySwitchChoice::Decomposition, ..Default::default() },
        );
        let g = expand(
            &build(),
            &ExpandOptions { keyswitch: KeySwitchChoice::Ghs, ..Default::default() },
        );
        assert!(
            g.dfg.instrs().len() > d.dfg.instrs().len(),
            "GHS {} should exceed decomposition {} instructions",
            g.dfg.instrs().len(),
            d.dfg.instrs().len()
        );
        let hint_bytes = |e: &Expanded| -> u64 {
            e.hint_values[&HintId::Relin].iter().map(|&v| e.dfg.value(v).bytes).sum()
        };
        assert!(hint_bytes(&g) < hint_bytes(&d) / 3, "GHS hints must be much smaller");
    }

    #[test]
    fn modswitch_expansion() {
        let mut p = Program::new(1 << 10);
        let x = p.input(3);
        let y = p.mod_switch(x);
        p.output(y);
        let ex = expand(&p, &ExpandOptions::default());
        let c = ex.dfg.op_counts();
        assert_eq!(c["intt"], 2, "one per polynomial");
        assert_eq!(c["ntt"], 2 * 2);
        assert_eq!(c["scalar_mul"], 2 * 2);
        assert_eq!(ex.output_values[0].len(), 2 * 2, "output at level 2");
    }

    #[test]
    fn full_matvec_expands_and_validates() {
        let ex = expand(&matvec(), &ExpandOptions::default());
        assert!(ex.dfg.instrs().len() > 1000, "{} instructions", ex.dfg.instrs().len());
        assert_eq!(ex.output_values.len(), 4);
    }
}
