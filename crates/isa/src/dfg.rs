//! The instruction-level dataflow graph (Fig 3's "Instruction DFG").
//!
//! Values are single residue polynomials (`RVec`s); instructions are the
//! vector operations F1's functional units implement. The graph is in SSA
//! form — each value has exactly one producer (or none, for inputs loaded
//! from memory) — and is acyclic by construction because instructions may
//! only reference already-registered values.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Identifies a value (one `RVec`) in a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueId(pub u32);

/// Identifies an instruction in a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstrId(pub u32);

/// The vector operations F1's functional units implement (§3, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorOp {
    /// Element-wise modular addition.
    Add,
    /// Element-wise modular subtraction (executes on the adder FU).
    Sub,
    /// Element-wise modular multiplication.
    Mul,
    /// Multiplication by a scalar constant (modular multiplier with one
    /// broadcast operand; used by modulus-switch corrections and
    /// plaintext-scalar operations).
    ScalarMul,
    /// Scalar multiply-accumulate `dst = src0 + c * src1` (decomposed into
    /// Mul + Add by the scheduler; kept fused in the DFG for compactness).
    ScalarMulAdd,
    /// Forward NTT (limb-local; §5.2's four-step unit).
    Ntt,
    /// Inverse NTT.
    Intt,
    /// Automorphism `σ_k` (§5.1's column/transpose/row unit).
    Aut {
        /// The automorphism exponent (odd, `< 2N`).
        k: usize,
    },
    /// Copy/move (realized by the network + register files, but counted
    /// as an instruction when materializing a value under a new id).
    Copy,
}

impl VectorOp {
    /// The functional-unit class that executes this operation.
    pub fn fu_type(&self) -> crate::streams::FuType {
        use crate::streams::FuType;
        match self {
            VectorOp::Add | VectorOp::Sub | VectorOp::Copy => FuType::Add,
            VectorOp::Mul | VectorOp::ScalarMul | VectorOp::ScalarMulAdd => FuType::Mul,
            VectorOp::Ntt | VectorOp::Intt => FuType::Ntt,
            VectorOp::Aut { .. } => FuType::Aut,
        }
    }

    /// Number of input operands.
    pub fn arity(&self) -> usize {
        match self {
            VectorOp::Add | VectorOp::Sub | VectorOp::Mul => 2,
            VectorOp::ScalarMulAdd => 2,
            VectorOp::ScalarMul
            | VectorOp::Ntt
            | VectorOp::Intt
            | VectorOp::Aut { .. }
            | VectorOp::Copy => 1,
        }
    }
}

/// What a value is, for the data-movement accounting of Fig 9a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// A residue vector of a key-switch hint (streamed from memory,
    /// heavily reused; the dominant traffic class, §2.4).
    KeySwitchHint,
    /// A program input (ciphertext or plaintext residue vector).
    Input,
    /// An intermediate produced by computation.
    Intermediate,
    /// A program output (must be stored to memory at the end).
    Output,
}

/// Metadata for one value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueInfo {
    /// The value's id.
    pub id: ValueId,
    /// Traffic class.
    pub kind: ValueKind,
    /// Size in bytes (4·N for a full residue vector).
    pub bytes: u64,
    /// Optional label for diagnostics (e.g. `"ksh_mul[3][7]"`).
    pub label: Option<String>,
}

/// One vector instruction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instruction {
    /// The instruction's id (index into the DFG's instruction list).
    pub id: InstrId,
    /// The operation.
    pub op: VectorOp,
    /// Input values, in operand order.
    pub inputs: Vec<ValueId>,
    /// The single produced value.
    pub output: ValueId,
    /// Global order priority assigned by the homomorphic-operation
    /// compiler (§4.2): lower = earlier in the reuse-maximizing order.
    pub priority: u64,
}

/// The instruction-level dataflow graph.
///
/// Producer/user relations are dense `Vec`s indexed by [`ValueId`] (ids
/// are allocated densely by construction): the schedulers touch them
/// several times per instruction and hashing dominated the passes at
/// full benchmark scale.
#[derive(Default)]
pub struct Dfg {
    /// Ring dimension: every value is an `N`-element residue vector.
    pub n: usize,
    values: Vec<ValueInfo>,
    instrs: Vec<Instruction>,
    /// producer[v] = instruction that writes v (None for graph inputs).
    producer: Vec<Option<InstrId>>,
    /// users[v] = instructions that read v, in creation order.
    users: Vec<Vec<InstrId>>,
    /// Values that must be written back to memory.
    outputs: Vec<ValueId>,
    /// Memoized [`Self::critical_depths`] results keyed by the caller's
    /// weight-function fingerprint (see [`Self::critical_depths_cached`]).
    /// Fixed write-once slots: reads are lock-free, so concurrent
    /// schedulers (the parallel suite driver) never contend on a lock.
    /// Derived data: excluded from `Debug`, `Clone`, serialization.
    depth_cache: [OnceLock<(u64, Arc<Vec<u64>>)>; DEPTH_CACHE_SLOTS],
}

/// Distinct depth weightings the passes use (expand's makespan estimate
/// and the cycle scheduler share one, CSR uses unit weights; headroom
/// for two more). Overflow falls back to an uncached recompute.
const DEPTH_CACHE_SLOTS: usize = 4;

impl Clone for Dfg {
    fn clone(&self) -> Self {
        Self {
            n: self.n,
            values: self.values.clone(),
            instrs: self.instrs.clone(),
            producer: self.producer.clone(),
            users: self.users.clone(),
            outputs: self.outputs.clone(),
            // The cache is derived data; a clone starts cold.
            depth_cache: Default::default(),
        }
    }
}

impl std::fmt::Debug for Dfg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Stable rendering for fingerprints: every semantic field, never
        // the memoization cache (its fill state depends on call history).
        f.debug_struct("Dfg")
            .field("n", &self.n)
            .field("values", &self.values)
            .field("instrs", &self.instrs)
            .field("producer", &self.producer)
            .field("users", &self.users)
            .field("outputs", &self.outputs)
            .finish()
    }
}

impl Serialize for Dfg {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.n.serialize(out);
        self.values.serialize(out);
        self.instrs.serialize(out);
        self.producer.serialize(out);
        self.users.serialize(out);
        self.outputs.serialize(out);
    }
}

impl Deserialize for Dfg {
    fn deserialize(r: &mut serde::Reader<'_>) -> Result<Self, serde::Error> {
        Ok(Self {
            n: Deserialize::deserialize(r)?,
            values: Deserialize::deserialize(r)?,
            instrs: Deserialize::deserialize(r)?,
            producer: Deserialize::deserialize(r)?,
            users: Deserialize::deserialize(r)?,
            outputs: Deserialize::deserialize(r)?,
            depth_cache: Default::default(),
        })
    }
}

impl Dfg {
    /// Creates an empty graph over ring dimension `n`.
    pub fn new(n: usize) -> Self {
        Self { n, ..Default::default() }
    }

    /// Registers a new value of the given kind and returns its id.
    pub fn add_value(&mut self, kind: ValueKind, label: Option<String>) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo { id, kind, bytes: 4 * self.n as u64, label });
        self.producer.push(None);
        self.users.push(Vec::new());
        id
    }

    /// Adds an instruction producing a fresh intermediate value.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the op's arity or an
    /// input id is unknown.
    pub fn add_instr(&mut self, op: VectorOp, inputs: Vec<ValueId>, priority: u64) -> ValueId {
        assert_eq!(inputs.len(), op.arity(), "operand count mismatch for {op:?}");
        for &v in &inputs {
            assert!((v.0 as usize) < self.values.len(), "unknown input value {v:?}");
        }
        let out = self.add_value(ValueKind::Intermediate, None);
        let id = InstrId(self.instrs.len() as u32);
        for &v in &inputs {
            self.users[v.0 as usize].push(id);
        }
        self.producer[out.0 as usize] = Some(id);
        self.instrs.push(Instruction { id, op, inputs, output: out, priority });
        out
    }

    /// Marks a value as a program output.
    pub fn mark_output(&mut self, v: ValueId) {
        if let Some(info) = self.values.get_mut(v.0 as usize) {
            if info.kind == ValueKind::Intermediate {
                info.kind = ValueKind::Output;
            }
        }
        self.outputs.push(v);
    }

    /// All values.
    pub fn values(&self) -> &[ValueInfo] {
        &self.values
    }

    /// Metadata for a value.
    pub fn value(&self, v: ValueId) -> &ValueInfo {
        &self.values[v.0 as usize]
    }

    /// All instructions, in creation order.
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// An instruction by id.
    pub fn instr(&self, i: InstrId) -> &Instruction {
        &self.instrs[i.0 as usize]
    }

    /// The producing instruction of a value, if any (inputs have none).
    pub fn producer(&self, v: ValueId) -> Option<InstrId> {
        self.producer[v.0 as usize]
    }

    /// The instructions consuming a value.
    pub fn users(&self, v: ValueId) -> &[InstrId] {
        &self.users[v.0 as usize]
    }

    /// Program outputs.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// Whether a value is live after an instruction (has users with a
    /// larger id) — helper for the schedulers' replacement policies.
    pub fn dead_after(&self, v: ValueId, i: InstrId) -> bool {
        !self.outputs.contains(&v) && self.users(v).iter().all(|&u| u <= i)
    }

    /// Total bytes of all values of a kind (for the compulsory-traffic
    /// accounting of Fig 9a).
    pub fn bytes_of_kind(&self, kind: ValueKind) -> u64 {
        self.values.iter().filter(|v| v.kind == kind).map(|v| v.bytes).sum()
    }

    /// Operation histogram (diagnostics; also drives the CPU baseline's
    /// per-op cost accounting).
    pub fn op_counts(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for i in &self.instrs {
            let key = match i.op {
                VectorOp::Add => "add",
                VectorOp::Sub => "sub",
                VectorOp::Mul => "mul",
                VectorOp::ScalarMul => "scalar_mul",
                VectorOp::ScalarMulAdd => "scalar_mul_add",
                VectorOp::Ntt => "ntt",
                VectorOp::Intt => "intt",
                VectorOp::Aut { .. } => "aut",
                VectorOp::Copy => "copy",
            };
            *h.entry(key).or_insert(0) += 1;
        }
        h
    }

    /// Critical-path depth of every instruction: the weighted longest
    /// path from the instruction to any sink, where `weight(i)` is the
    /// contribution of instruction `i` itself (e.g. its exposed latency).
    /// The cycle-level scheduler ranks ready instructions by this (§4.4:
    /// longest dependence chains first). Runs in O(V + E) because
    /// instructions are topologically ordered by construction.
    pub fn critical_depths(&self, weight: &dyn Fn(&Instruction) -> u64) -> Vec<u64> {
        let mut depth = vec![0u64; self.instrs.len()];
        for instr in self.instrs.iter().rev() {
            let below =
                self.users(instr.output).iter().map(|u| depth[u.0 as usize]).max().unwrap_or(0);
            depth[instr.id.0 as usize] = weight(instr) + below;
        }
        depth
    }

    /// Memoized [`Self::critical_depths`]: `key` must fingerprint the
    /// weight function (same key ⇔ same `weight(i)` for every
    /// instruction — the caller's contract). Scheduling passes call the
    /// depth computation with a handful of distinct weightings but retry
    /// with the same ones (expand's makespan estimate and the cycle
    /// scheduler share one; the CSR pass uses unit weights), so a few
    /// write-once slots remove the repeated O(V + E) walks without
    /// changing any result. Hits are lock-free scans; on a slot race the
    /// loser either adopts the winner's same-key result or moves to the
    /// next slot, and a full cache degrades to recomputing — never to
    /// blocking.
    pub fn critical_depths_cached(
        &self,
        key: u64,
        weight: &dyn Fn(&Instruction) -> u64,
    ) -> Arc<Vec<u64>> {
        for slot in &self.depth_cache {
            if let Some((k, depths)) = slot.get() {
                if *k == key {
                    return Arc::clone(depths);
                }
            }
        }
        let depths = Arc::new(self.critical_depths(weight));
        for slot in &self.depth_cache {
            match slot.set((key, Arc::clone(&depths))) {
                Ok(()) => return depths,
                // Lost the race for this slot: if the winner cached our
                // key, its copy is the canonical one.
                Err(_) => {
                    if let Some((k, d)) = slot.get() {
                        if *k == key {
                            return Arc::clone(d);
                        }
                    }
                }
            }
        }
        depths
    }

    /// Validates SSA and acyclicity invariants; returns instruction count.
    ///
    /// # Panics
    ///
    /// Panics on violation (this is a checker, mirroring the paper's
    /// validation-style simulator, §7).
    pub fn validate(&self) -> usize {
        for instr in &self.instrs {
            for &v in &instr.inputs {
                if let Some(p) = self.producer(v) {
                    assert!(p < instr.id, "instruction {:?} uses value produced later", instr.id);
                }
            }
        }
        self.instrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> (Dfg, ValueId, ValueId, ValueId) {
        let mut g = Dfg::new(1024);
        let a = g.add_value(ValueKind::Input, Some("a".into()));
        let b = g.add_value(ValueKind::Input, Some("b".into()));
        let h = g.add_value(ValueKind::KeySwitchHint, Some("ksh".into()));
        (g, a, b, h)
    }

    #[test]
    fn ssa_and_users() {
        let (mut g, a, b, h) = tiny_graph();
        let s = g.add_instr(VectorOp::Add, vec![a, b], 0);
        let p = g.add_instr(VectorOp::Mul, vec![s, h], 1);
        let t = g.add_instr(VectorOp::Ntt, vec![p], 2);
        g.mark_output(t);
        assert_eq!(g.validate(), 3);
        assert_eq!(g.users(s).len(), 1);
        assert_eq!(g.producer(t), Some(InstrId(2)));
        assert_eq!(g.producer(a), None);
        assert_eq!(g.outputs(), &[t]);
        assert_eq!(g.value(t).kind, ValueKind::Output);
    }

    #[test]
    fn arity_checked() {
        let (mut g, a, _, _) = tiny_graph();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.add_instr(VectorOp::Add, vec![a], 0);
        }));
        assert!(r.is_err(), "Add with one operand must panic");
    }

    #[test]
    fn value_sizes_follow_ring() {
        let g = Dfg::new(16384);
        let mut g = g;
        let v = g.add_value(ValueKind::Input, None);
        assert_eq!(g.value(v).bytes, 64 * 1024, "one RVec at N=16K is 64 KB (§2.4)");
    }

    #[test]
    fn dead_after_accounting() {
        let (mut g, a, b, _) = tiny_graph();
        let s = g.add_instr(VectorOp::Add, vec![a, b], 0);
        let t = g.add_instr(VectorOp::Ntt, vec![s], 1);
        g.mark_output(t);
        assert!(g.dead_after(s, InstrId(1)));
        assert!(!g.dead_after(s, InstrId(0)));
        assert!(!g.dead_after(t, InstrId(1)), "outputs are never dead");
    }

    #[test]
    fn op_histogram() {
        let (mut g, a, b, h) = tiny_graph();
        let s = g.add_instr(VectorOp::Add, vec![a, b], 0);
        let m = g.add_instr(VectorOp::Mul, vec![s, h], 1);
        let _ = g.add_instr(VectorOp::Aut { k: 3 }, vec![m], 2);
        let counts = g.op_counts();
        assert_eq!(counts["add"], 1);
        assert_eq!(counts["mul"], 1);
        assert_eq!(counts["aut"], 1);
    }

    #[test]
    fn critical_depths_follow_longest_path() {
        let (mut g, a, b, h) = tiny_graph();
        let s = g.add_instr(VectorOp::Add, vec![a, b], 0); // depth: w(add)+w(mul)+w(ntt)
        let p = g.add_instr(VectorOp::Mul, vec![s, h], 1);
        let t = g.add_instr(VectorOp::Ntt, vec![p], 2);
        g.mark_output(t);
        let w = |i: &Instruction| match i.op {
            VectorOp::Add => 4u64,
            VectorOp::Mul => 8,
            VectorOp::Ntt => 100,
            _ => 1,
        };
        let d = g.critical_depths(&w);
        assert_eq!(d, vec![112, 108, 100]);
    }

    #[test]
    fn cached_depths_match_and_key_discriminates() {
        let (mut g, a, b, h) = tiny_graph();
        let s = g.add_instr(VectorOp::Add, vec![a, b], 0);
        let p = g.add_instr(VectorOp::Mul, vec![s, h], 1);
        let t = g.add_instr(VectorOp::Ntt, vec![p], 2);
        g.mark_output(t);
        let unit = |_: &Instruction| 1u64;
        let heavy = |i: &Instruction| if matches!(i.op, VectorOp::Ntt) { 100u64 } else { 1 };
        let d1 = g.critical_depths_cached(7, &unit);
        let d2 = g.critical_depths_cached(7, &unit);
        assert!(Arc::ptr_eq(&d1, &d2), "same key must hit the cache");
        assert_eq!(*d1, g.critical_depths(&unit));
        let d3 = g.critical_depths_cached(8, &heavy);
        assert_eq!(*d3, g.critical_depths(&heavy));
        assert_ne!(*d1, *d3, "distinct keys keep distinct results");
        // Clones and serde round-trips start with a cold cache but the
        // same semantic contents.
        let clone = g.clone();
        assert_eq!(format!("{:?}", clone), format!("{:?}", g));
        let bytes = serde::to_bytes(&g);
        let back: Dfg = serde::from_bytes(&bytes).expect("dfg round-trips");
        assert_eq!(format!("{:?}", back), format!("{:?}", g));
    }

    #[test]
    fn depth_cache_overflow_degrades_to_recompute() {
        let (mut g, a, b, _) = tiny_graph();
        let s = g.add_instr(VectorOp::Add, vec![a, b], 0);
        g.mark_output(s);
        // Fill every write-once slot with distinct keys, then keep going:
        // results must stay correct (uncached) and earlier keys must
        // still hit their slots.
        let first = g.critical_depths_cached(0, &|_| 1u64);
        for key in 1..2 * DEPTH_CACHE_SLOTS as u64 {
            let w = move |_: &Instruction| key + 1;
            let d = g.critical_depths_cached(key, &w);
            assert_eq!(*d, g.critical_depths(&w), "key {key} result wrong");
        }
        let again = g.critical_depths_cached(0, &|_| 1u64);
        assert!(Arc::ptr_eq(&first, &again), "slot 0 must survive overflow");
    }

    #[test]
    fn kind_byte_totals() {
        let (mut g, _, _, _) = tiny_graph();
        let _ = g.add_value(ValueKind::KeySwitchHint, None);
        assert_eq!(g.bytes_of_kind(ValueKind::KeySwitchHint), 2 * 4 * 1024);
        assert_eq!(g.bytes_of_kind(ValueKind::Input), 2 * 4 * 1024);
    }
}
