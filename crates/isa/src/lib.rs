//! # f1-isa — the F1 instruction set and dataflow-graph IR
//!
//! F1 executes *vector instructions over residue polynomials*: every
//! instruction consumes and produces `RVec`s (`N` 32-bit residues, §2.4).
//! Programs are compiled into an instruction-level dataflow graph
//! ([`Dfg`]) with no control flow (loops are fully unrolled, §3), then
//! scheduled into per-component static instruction streams
//! ([`streams`]) that the cycle-accurate simulator checks and times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfg;
pub mod streams;

pub use dfg::{Dfg, InstrId, Instruction, ValueId, ValueInfo, ValueKind, VectorOp};
pub use streams::{ComponentId, FuType};
