//! Per-component static instruction streams (§3 "Distributed control").
//!
//! F1 has no global instruction stream: each functional unit, register
//! file, network switch, scratchpad bank and memory controller follows its
//! own linear sequence of `(operation, wait-cycles)` entries. We store
//! absolute issue cycles for clarity and expose the paper's compact
//! delta encoding through [`StaticSchedule::encoded_bytes`] to reproduce
//! the "<0.1% of memory traffic" instruction-fetch claim.

use crate::dfg::{InstrId, ValueId};
use serde::{Deserialize, Serialize};

/// Functional-unit classes (per cluster: 1 NTT, 1 automorphism, 2
/// multipliers, 2 adders in the paper's configuration, §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuType {
    /// Four-step NTT unit (forward and inverse).
    Ntt,
    /// Automorphism unit.
    Aut,
    /// Modular multiplier (element-wise and scalar).
    Mul,
    /// Modular adder.
    Add,
}

impl FuType {
    /// All FU classes.
    pub const ALL: [FuType; 4] = [FuType::Ntt, FuType::Aut, FuType::Mul, FuType::Add];

    /// Dense index of this class (its position in [`FuType::ALL`]), for
    /// array-indexed per-FU state in scheduler hot loops.
    #[inline(always)]
    pub fn index(self) -> usize {
        match self {
            FuType::Ntt => 0,
            FuType::Aut => 1,
            FuType::Mul => 2,
            FuType::Add => 3,
        }
    }
}

/// A hardware component with its own instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComponentId {
    /// Compute cluster `index`.
    Cluster(usize),
    /// Scratchpad bank `index`.
    Bank(usize),
    /// HBM memory controller `index`.
    MemCtrl(usize),
}

/// One entry in a compute cluster's stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeEntry {
    /// Absolute issue cycle (compute clock, 1 GHz domain).
    pub cycle: u64,
    /// The DFG instruction this entry executes.
    pub instr: InstrId,
    /// Which FU class services it.
    pub fu: FuType,
    /// Index of the FU within its class (e.g. multiplier 0 or 1).
    pub fu_index: usize,
}

/// Direction of an off-chip transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemDir {
    /// HBM → scratchpad.
    Load,
    /// Scratchpad → HBM.
    Store,
}

/// One entry in a memory controller / scratchpad-bank stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemEntry {
    /// Cycle the transfer is issued.
    pub cycle: u64,
    /// Load or store.
    pub dir: MemDir,
    /// The value moved.
    pub value: ValueId,
    /// Bytes moved.
    pub bytes: u64,
    /// Destination / source scratchpad bank.
    pub bank: usize,
    /// HBM channel carrying the transfer. Channels are independent
    /// streams (`ArchConfig::hbm_channels` of them); transfers on
    /// different channels proceed concurrently, each at the per-channel
    /// bandwidth, and the checker verifies per-channel exclusivity.
    pub channel: usize,
}

/// One on-chip network transfer (bank→cluster, cluster→bank, or
/// cluster→cluster over the three crossbars, §6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetEntry {
    /// Cycle the transfer starts.
    pub cycle: u64,
    /// The value moved.
    pub value: ValueId,
    /// Source component.
    pub from: ComponentId,
    /// Destination component.
    pub to: ComponentId,
    /// Bytes moved.
    pub bytes: u64,
    /// Crossbar port lane within the (from, to) pair. Each pair has
    /// `ArchConfig::xbar_ports` 512-byte lanes; a transfer occupies its
    /// lane for `net_cycles(bytes)` cycles and the checker verifies no
    /// lane is double-booked.
    pub port: usize,
}

/// One scratchpad release: the cycle at which a value's on-chip bytes
/// are freed (a Belady eviction, a spill store completing, or a dead
/// output's store completing). Between an eviction and the completion of
/// the value's next load, the value has **no on-chip copy**; the checker
/// rejects any consumer reading in that window and uses these entries to
/// prove the resident set never exceeds scratchpad capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictEntry {
    /// Cycle the bytes are free (for spills: the writeback completion).
    pub cycle: u64,
    /// The value whose residency ends.
    pub value: ValueId,
    /// Bytes freed.
    pub bytes: u64,
}

/// A complete static schedule: every component's stream plus the horizon.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticSchedule {
    /// Compute entries, grouped by cluster index.
    pub compute: Vec<Vec<ComputeEntry>>,
    /// Off-chip transfers, tagged with their HBM channel (sorted by
    /// cycle across channels; per-channel exclusivity is the checker's
    /// concern).
    pub mem: Vec<MemEntry>,
    /// On-chip transfers.
    pub net: Vec<NetEntry>,
    /// Scratchpad releases (sorted by cycle). Together with loads and
    /// production cycles these define every value's residency intervals.
    pub evict: Vec<EvictEntry>,
    /// Total cycles (makespan) of the schedule.
    pub makespan: u64,
}

impl StaticSchedule {
    /// Creates an empty schedule for `clusters` compute clusters.
    pub fn new(clusters: usize) -> Self {
        Self { compute: vec![Vec::new(); clusters], ..Default::default() }
    }

    /// Total number of stream entries across all components (evictions
    /// are free-list updates in the owning bank's stream).
    pub fn entry_count(&self) -> usize {
        self.compute.iter().map(Vec::len).sum::<usize>()
            + self.mem.len()
            + self.net.len()
            + self.evict.len()
    }

    /// Bytes of the paper's compact encoding: each entry is one operation
    /// descriptor plus a wait-cycle delta (§3) — 8 bytes covers opcode,
    /// operands and the delta for the sizes we generate.
    pub fn encoded_bytes(&self) -> u64 {
        self.entry_count() as u64 * 8
    }

    /// Total off-chip traffic in bytes.
    pub fn offchip_bytes(&self) -> u64 {
        self.mem.iter().map(|m| m.bytes).sum()
    }

    /// Checks stream monotonicity (entries sorted by cycle per component).
    ///
    /// # Panics
    ///
    /// Panics if any component's stream goes backwards in time.
    pub fn validate_monotone(&self) {
        for (c, stream) in self.compute.iter().enumerate() {
            for w in stream.windows(2) {
                assert!(w[0].cycle <= w[1].cycle, "cluster {c} stream not monotone");
            }
        }
        for w in self.mem.windows(2) {
            assert!(w[0].cycle <= w[1].cycle, "memory stream not monotone");
        }
        for w in self.evict.windows(2) {
            assert!(w[0].cycle <= w[1].cycle, "evict stream not monotone");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_bookkeeping() {
        let mut s = StaticSchedule::new(2);
        s.compute[0].push(ComputeEntry {
            cycle: 0,
            instr: InstrId(0),
            fu: FuType::Ntt,
            fu_index: 0,
        });
        s.compute[0].push(ComputeEntry {
            cycle: 5,
            instr: InstrId(1),
            fu: FuType::Mul,
            fu_index: 1,
        });
        s.mem.push(MemEntry {
            cycle: 0,
            dir: MemDir::Load,
            value: ValueId(0),
            bytes: 65536,
            bank: 3,
            channel: 7,
        });
        s.makespan = 100;
        assert_eq!(s.entry_count(), 3);
        assert_eq!(s.encoded_bytes(), 24);
        assert_eq!(s.offchip_bytes(), 65536);
        s.validate_monotone();
    }

    #[test]
    #[should_panic(expected = "not monotone")]
    fn catches_backwards_stream() {
        let mut s = StaticSchedule::new(1);
        s.compute[0].push(ComputeEntry {
            cycle: 9,
            instr: InstrId(0),
            fu: FuType::Add,
            fu_index: 0,
        });
        s.compute[0].push(ComputeEntry {
            cycle: 3,
            instr: InstrId(1),
            fu: FuType::Add,
            fu_index: 0,
        });
        s.validate_monotone();
    }

    #[test]
    fn instruction_fetch_overhead_is_tiny() {
        // The paper: instruction fetches are <0.1% of memory traffic. With
        // 8-byte entries and 64 KB residue vectors, one compute entry per
        // value transfer keeps the ratio near 8/65536 ≈ 0.012%.
        let ratio = 8.0 / 65536.0;
        assert!(ratio < 0.001);
    }
}
