//! # f1-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md
//! §3 for the experiment index) plus Criterion microbenches of the
//! software substrate. Run e.g.:
//!
//! ```text
//! cargo run -p f1-bench --release --bin table3_benchmarks
//! ```
//!
//! The `F1_SCALE` environment variable divides benchmark widths (default
//! 8; use `F1_SCALE=1` for full-size instances — slower to schedule).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use f1_arch::ArchConfig;
use f1_sim::SimReport;
use f1_workloads::Benchmark;

/// Reads the benchmark reduction scale from `F1_SCALE` (default 8).
pub fn bench_scale() -> usize {
    bench_scale_or(8)
}

/// Reads `F1_SCALE` with an explicit default — figures whose paper shape
/// only emerges at full size (e.g. Fig 10) default to 1 instead of 8.
///
/// # Panics
///
/// Panics on a malformed or zero `F1_SCALE` (e.g. `F1_SCALE=ful`): a
/// typo must not silently run the reduced suite claiming full size.
pub fn bench_scale_or(default: usize) -> usize {
    f1_poly::env::parse_env_nonzero_or("F1_SCALE", default)
}

/// Whether bins should route compiles through the schedule cache
/// (`F1_CACHE=1`; default off so experiment bins measure what they ran).
pub fn cache_enabled() -> bool {
    std::env::var("F1_CACHE").map(|v| v != "0").unwrap_or(false)
}

/// Compiles and simulates one benchmark on a configuration.
///
/// With `F1_CACHE=1` the compile goes through the content-addressed
/// schedule cache; the checker then re-verifies the (possibly
/// deserialized) schedule exactly as it would a fresh one, so a cache
/// hit can never smuggle an invalid schedule past the simulator.
pub fn run_benchmark(b: &Benchmark, arch: &ArchConfig) -> SimReport {
    let t0 = std::time::Instant::now();
    let ((ex, plan, cs), status) = if cache_enabled() {
        f1_compiler::cache::compile_cached(&b.program, arch)
    } else {
        (f1_compiler::compile(&b.program, arch), f1_compiler::cache::CacheStatus::Miss)
    };
    let t_compile = t0.elapsed();
    let report = f1_sim::check_schedule(&ex, &plan, &cs, arch);
    if std::env::var("F1_TIMING").is_ok() {
        eprintln!(
            "[timing] {:<30} compile {:>6.2}s  check {:>6.2}s{}",
            b.name,
            t_compile.as_secs_f64(),
            (t0.elapsed() - t_compile).as_secs_f64(),
            match (cache_enabled(), status) {
                (true, f1_compiler::cache::CacheStatus::Hit) => "  (cache hit)",
                (true, f1_compiler::cache::CacheStatus::Miss) => "  (cache miss)",
                _ => "",
            }
        );
    }
    report
}

/// Geometric mean helper.
pub fn gmean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}
