//! Table 1: area, power and delay of the four modular multiplier designs,
//! plus the §5.3 prime census backing the "6,186 prime moduli" claim.

use f1_modarith::{primes, MultiplierKind};

fn main() {
    println!("Table 1: Area, power, and delay of modular multipliers");
    println!(
        "(structural model calibrated to the paper's 14/12nm synthesis; see DESIGN.md §2.1)\n"
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "Multiplier", "Area[um2]", "Power[mW]", "Delay[ps]", "paperA", "paperP", "paperD"
    );
    for kind in MultiplierKind::ALL {
        let m = kind.cost();
        let p = kind.paper_cost();
        println!(
            "{:<22} {:>10.0} {:>10.2} {:>10.0} | {:>10.0} {:>10.2} {:>10.0}",
            kind.label(),
            m.area_um2,
            m.power_mw,
            m.delay_ps,
            p.area_um2,
            p.power_mw,
            p.delay_ps
        );
    }
    println!(
        "\nFHE-friendly vs NTT-friendly area saving: {:.1}% (paper: 19%)",
        (1.0 - MultiplierKind::FheFriendly.cost().area_um2
            / MultiplierKind::NttFriendly.cost().area_um2)
            * 100.0
    );
    println!(
        "FHE-friendly vs NTT-friendly power saving: {:.1}% (paper text: 30%; paper's own Table 1 rows: {:.1}%)",
        (1.0 - MultiplierKind::FheFriendly.cost().power_mw
            / MultiplierKind::NttFriendly.cost().power_mw)
            * 100.0,
        (1.0
            - MultiplierKind::FheFriendly.paper_cost().power_mw
                / MultiplierKind::NttFriendly.paper_cost().power_mw)
            * 100.0
    );
    println!("  (Root cause of the gap, see ROADMAP: a structural model with shared per-stage");
    println!("   power constants is *bounded* at P_mult16/total = 13.8% for a one-stage removal;");
    println!("   back-solving the paper's 1.26 mW delta as a stage cost contradicts its other");
    println!("   rows (6 x 1.26 = 7.56 mW > the NTT-friendly row's 5.36 mW total), so the");
    println!("   published saving must include switching-activity effects of hardwiring");
    println!("   q' ≡ ±1 — invisible to any activity-blind structural model.)");

    // §5.3: the paper's FHE-friendly class is q ≡ -1 (mod 2^16); its
    // census is 6,148. (The paper's text says "6,186", which is the
    // mirrored +1 class's count.)
    let paper_class = primes::paper_prime_census();
    let mirrored = primes::prime_census_mod_2_16(1);
    println!("\nPrime census (32-bit primes per residue class mod 2^16):");
    println!("  q ≡ -1 (paper's class, §5.3):                     {paper_class}");
    println!("  q ≡ +1 (mirrored, NTT-friendly for all N <= 2^15): {mirrored} (the paper's printed 6,186)");
}
