//! Fig 10: functional unit and HBM utilization over time for the
//! LoLa-MNIST unencrypted-weights benchmark. Emits a CSV series.
//!
//! Runs the full-size instance by default (`F1_SCALE=1`): the paper's
//! utilization shape — a memory-bound ramp while hints stream in, then
//! compute-intensive phases — needs the full working set.

use f1_arch::ArchConfig;
use f1_bench::{bench_scale_or, run_benchmark};
use f1_workloads::benchmarks::lola_mnist_uw;

fn main() {
    let scale = bench_scale_or(1);
    let arch = ArchConfig::f1_default();
    let b = lola_mnist_uw(scale);
    let r = run_benchmark(&b, &arch);
    let t = &r.timeline;
    println!("# Fig 10: {} (scale 1/{scale}); window = {} cycles", b.name, t.window);
    println!("window,ntt_active,aut_active,mul_active,add_active,hbm_util_pct");
    for i in 0..t.hbm_util.len() {
        println!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.1}",
            i,
            t.fu_active[0][i],
            t.fu_active[1][i],
            t.fu_active[2][i],
            t.fu_active[3][i],
            t.hbm_util[i]
        );
    }
    eprintln!(
        "\nMakespan: {} cycles ({:.3} ms); avg FU utilization {:.0}% (paper reports ~30%)",
        r.makespan,
        r.seconds * 1e3,
        r.avg_fu_utilization * 100.0
    );
    eprintln!(
        "Paper shape: memory-bound start (high HBM, few FUs), then compute-intensive phases."
    );
}
