//! Table 4: microbenchmark reciprocal throughputs — F1 vs CPU vs HEAX_σ.

use f1_arch::ArchConfig;
use f1_fhe::params::table4_parameter_sets;
use f1_workloads::cpu_baseline::CpuBaseline;
use f1_workloads::micro::{f1_reciprocal_s, heax_reciprocal_s, micro_program, MicroOp};

/// A measurement program containing every op kind at level `l`, so the
/// baseline has real timings for each class.
fn measurement_program(l: usize) -> f1_compiler::dsl::Program {
    let mut p = f1_compiler::dsl::Program::new(256);
    let x = p.input(l);
    let y = p.input(l);
    let m = p.mul(x, y);
    let r = p.aut(m, 3);
    let a = p.add(r, m);
    let s = p.mod_switch(a);
    p.output(s);
    p
}

fn main() {
    let arch = ArchConfig::f1_default();
    println!("Table 4: Microbenchmarks — F1 reciprocal throughput (ns/ciphertext op)");
    println!("and speedups vs CPU (measured f1-fhe) and HEAX_sigma (model)\n");
    println!(
        "{:<26} {:>8} {:>6} {:>12} {:>12} {:>12}",
        "Operation", "N", "L", "F1 [ns]", "vs CPU", "vs HEAX_s"
    );
    for (n, _logq, l) in table4_parameter_sets() {
        let base = CpuBaseline::measure(&measurement_program(l), 256);
        for op in MicroOp::ALL {
            let f1 = f1_reciprocal_s(op, n, l, &arch);
            let hx = heax_reciprocal_s(op, n, l);
            let p = micro_program(op, n, l);
            let cpu = base.estimate_seconds(&p, n);
            println!(
                "{:<26} {:>8} {:>6} {:>12.1} {:>11.0}x {:>11.0}x",
                op.label(),
                n,
                l,
                f1 * 1e9,
                cpu / f1,
                hx / f1
            );
        }
    }
    println!("\nPaper shape: NTT/automorphism speedups vs HEAX in the hundreds-to-thousands,");
    println!(
        "hom-mul/perm vs HEAX in the low hundreds; all CPU speedups exceed full-program ones."
    );
}
