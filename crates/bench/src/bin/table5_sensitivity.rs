//! Table 5: sensitivity studies — slowdowns of F1 variants with
//! low-throughput NTT FUs, low-throughput automorphism FUs, and the CSR
//! register-pressure scheduler.
//!
//! CSR is reported twice: at the paper's 64 MB scratchpad, where the
//! depth-ranked cycle scheduler is largely insensitive to issue order
//! (working sets fit, nothing thrashes), and at a capacity-constrained
//! 4 MB scratchpad, where CSR's disregard for hint reuse turns into real
//! spill/refetch traffic that the capacity-faithful pass 3 must schedule
//! on the HBM channels — the regime where scheduler quality shows.

use f1_arch::ArchConfig;
use f1_bench::{bench_scale, gmean};
use f1_workloads::all_benchmarks;

fn main() {
    let scale = bench_scale();
    println!("Table 5: Slowdowns of F1 over alternate configurations (scale 1/{scale})\n");
    println!("{:<30} {:>9} {:>9} {:>9} {:>10}", "Benchmark", "LT NTT", "LT Aut", "CSR", "CSR@4MB");
    let base_arch = ArchConfig::f1_default();
    let tiny_arch = ArchConfig::f1_default().with_scratchpad_mb(4);
    let mut lt_ntt_all = Vec::new();
    let mut lt_aut_all = Vec::new();
    let mut csr_all = Vec::new();
    let mut csr4_all = Vec::new();
    for b in all_benchmarks(scale) {
        let ex = f1_compiler::expand::expand(&b.program, &Default::default());
        let base = {
            let plan = f1_compiler::movement::schedule(&ex, &base_arch);
            f1_compiler::cycle::schedule(&ex, &plan, &base_arch).makespan
        };
        let with = |mutate: &dyn Fn(&mut ArchConfig)| {
            let mut a = ArchConfig::f1_default();
            mutate(&mut a);
            let plan = f1_compiler::movement::schedule(&ex, &a);
            f1_compiler::cycle::schedule(&ex, &plan, &a).makespan
        };
        let lt_ntt = with(&|a| a.low_throughput_ntt = true) as f64 / base as f64;
        let lt_aut = with(&|a| a.low_throughput_aut = true) as f64 / base as f64;
        let csr_order = f1_compiler::csr::csr_order(&ex.dfg);
        let makespan_with_order = |arch: &ArchConfig, order: Option<&[f1_isa::InstrId]>| -> u64 {
            let plan = f1_compiler::movement::schedule_with_order(&ex, arch, order);
            f1_compiler::cycle::schedule(&ex, &plan, arch).makespan
        };
        let (csr, csr4) = match csr_order {
            Some(order) => {
                let csr = makespan_with_order(&base_arch, Some(&order)) as f64 / base as f64;
                let base4 = makespan_with_order(&tiny_arch, None);
                let csr4 = makespan_with_order(&tiny_arch, Some(&order)) as f64 / base4 as f64;
                (Some(csr), Some(csr4))
            }
            None => (None, None),
        };
        lt_ntt_all.push(lt_ntt);
        lt_aut_all.push(lt_aut);
        match (csr, csr4) {
            (Some(c), Some(c4)) => {
                csr_all.push(c);
                csr4_all.push(c4);
                println!(
                    "{:<30} {:>8.1}x {:>8.1}x {:>8.1}x {:>9.2}x",
                    b.name, lt_ntt, lt_aut, c, c4
                );
            }
            _ => println!(
                "{:<30} {:>8.1}x {:>8.1}x {:>9} {:>10}",
                b.name, lt_ntt, lt_aut, "--*", "--*"
            ),
        }
    }
    println!(
        "{:<30} {:>8.1}x {:>8.1}x {:>8.1}x {:>9.2}x",
        "gmean slowdown",
        gmean(&lt_ntt_all),
        gmean(&lt_aut_all),
        gmean(&csr_all),
        gmean(&csr4_all)
    );
    println!("\n* CSR is intractable for this benchmark (paper Table 5 footnote).");
    println!("Paper gmean slowdowns (64 MB): LT NTT 2.5x, LT Aut 3.6x, CSR 4.2x.");
    println!("CSR@4MB: same CSR order on a 4 MB scratchpad vs the priority order at 4 MB —");
    println!("capacity pressure is where issue order starts to matter again.");
}
