//! Table 5: sensitivity studies — slowdowns of F1 variants with
//! low-throughput NTT FUs, low-throughput automorphism FUs, and the CSR
//! register-pressure scheduler.

use f1_arch::ArchConfig;
use f1_bench::{bench_scale, gmean};
use f1_workloads::all_benchmarks;

fn main() {
    let scale = bench_scale();
    println!("Table 5: Slowdowns of F1 over alternate configurations (scale 1/{scale})\n");
    println!("{:<30} {:>9} {:>9} {:>9}", "Benchmark", "LT NTT", "LT Aut", "CSR");
    let base_arch = ArchConfig::f1_default();
    let mut lt_ntt_all = Vec::new();
    let mut lt_aut_all = Vec::new();
    let mut csr_all = Vec::new();
    for b in all_benchmarks(scale) {
        let ex = f1_compiler::expand::expand(&b.program, &Default::default());
        let base = {
            let plan = f1_compiler::movement::schedule(&ex, &base_arch);
            f1_compiler::cycle::schedule(&ex, &plan, &base_arch).makespan
        };
        let with = |mutate: &dyn Fn(&mut ArchConfig)| {
            let mut a = ArchConfig::f1_default();
            mutate(&mut a);
            let plan = f1_compiler::movement::schedule(&ex, &a);
            f1_compiler::cycle::schedule(&ex, &plan, &a).makespan
        };
        let lt_ntt = with(&|a| a.low_throughput_ntt = true) as f64 / base as f64;
        let lt_aut = with(&|a| a.low_throughput_aut = true) as f64 / base as f64;
        let csr = match f1_compiler::csr::csr_order(&ex.dfg) {
            Some(order) => {
                let plan = f1_compiler::movement::schedule_with_order(&ex, &base_arch, Some(order));
                let m = f1_compiler::cycle::schedule(&ex, &plan, &base_arch).makespan;
                Some(m as f64 / base as f64)
            }
            None => None,
        };
        lt_ntt_all.push(lt_ntt);
        lt_aut_all.push(lt_aut);
        match csr {
            Some(c) => {
                csr_all.push(c);
                println!("{:<30} {:>8.1}x {:>8.1}x {:>8.1}x", b.name, lt_ntt, lt_aut, c);
            }
            None => println!("{:<30} {:>8.1}x {:>8.1}x {:>9}", b.name, lt_ntt, lt_aut, "--*"),
        }
    }
    println!(
        "{:<30} {:>8.1}x {:>8.1}x {:>8.1}x",
        "gmean slowdown",
        gmean(&lt_ntt_all),
        gmean(&lt_aut_all),
        gmean(&csr_all)
    );
    println!("\n* CSR is intractable for this benchmark (paper Table 5 footnote).");
    println!("Paper gmean slowdowns: LT NTT 2.5x, LT Aut 3.6x, CSR 4.2x.");
}
