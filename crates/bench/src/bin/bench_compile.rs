//! Compile-time benchmark: per-pass wall-clock over the benchmark
//! suite, a synthetic stress program ~10× the largest benchmark
//! (compiled both flat and via the rolled-loop stamping fast path,
//! which must agree byte for byte), the schedule cache's cold/hit
//! cost, and serial-vs-parallel determinism.
//!
//! ```text
//! cargo run -p f1-bench --release --bin bench_compile            # full scale
//! cargo run ... --bin bench_compile -- --quick --check           # CI smoke
//! ```
//!
//! Flags:
//!
//! * `--quick` — run at the reduced `F1_SCALE` default (8) with a small
//!   stress program; without it the suite runs at full scale.
//! * `--check` — enforce the regression gates (exit 1 on violation).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_compile.json`).
//! * `--fingerprints PATH` — additionally write just the per-benchmark
//!   schedule fingerprints (stable across runs; CI diffs two runs'
//!   files to prove cross-process cache coherence).
//! * `--expect-hit` — serve every benchmark compile from the schedule
//!   cache, failing if any misses; re-verifies each cached schedule
//!   with the stream checker. Skips the timing-only sections.
//! * `--schema-ref PATH` — compare this run's JSON key set against a
//!   reference report (the committed `BENCH_compile.json`); exit 1 on
//!   schema drift.
//!
//! Timings are wall-clock and machine-dependent; the *gates* are chosen
//! to hold on any multi-core runner (and the hardest ones —
//! byte-identical parallel schedules, byte-identical rolled-vs-flat
//! stress schedules, ≥10× cache-hit speedup — are machine-independent
//! by construction). The committed
//! `BENCH_compile.json` records a full-scale run; the seed baseline it
//! gates pass 3 against was measured at commit 82ebae9 on the same
//! machine that produced the committed report.

use f1_arch::ArchConfig;
use f1_bench::bench_scale_or;
use f1_compiler::cache::{self, CacheStatus};
use f1_compiler::dsl::Program;
use f1_compiler::expand::{self, ExpandOptions};
use f1_compiler::ir::{FheProgram, Scheme};
use f1_compiler::par::with_compile_threads;
use f1_compiler::{compile_rolled, cycle, movement, RolledOutcome};
use f1_workloads::all_benchmarks;
use std::time::Instant;

/// Pass-3 wall-clock on the largest full-scale benchmark at the growth
/// seed (commit 82ebae9), before this module's scheduler rework — the
/// denominator of the ≥2× pass-3 gate.
const SEED_PASS3_S: f64 = 11.16;
const SEED_BENCH: &str = "Logistic Regression";
const SEED_SOURCE: &str = "measured at commit 82ebae9, F1_SCALE=1, single-threaded";

/// FNV-1a accumulator fed by `Debug` formatting — the repo's schedule
/// fingerprint idiom (`fnv64(format!("{:?}", ..))`), but streamed so
/// the stress program's multi-million-entry schedule never has to
/// materialize as one giant string.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

fn fnv_debug(x: &impl std::fmt::Debug) -> u64 {
    use std::fmt::Write;
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    write!(w, "{x:?}").expect("fnv writer is infallible");
    w.0
}

struct PassTimes {
    name: String,
    instrs: usize,
    values: usize,
    events: usize,
    expand_s: f64,
    movement_s: f64,
    cycle_s: f64,
    makespan: u64,
    fingerprint: u64,
}

impl PassTimes {
    fn total_s(&self) -> f64 {
        self.expand_s + self.movement_s + self.cycle_s
    }
}

/// Rolled-vs-flat stress comparison: the flat path unrolls and runs the
/// full pipeline; the rolled path compiles an iteration window and
/// stamps the rest. `verify_s` (the stamped-schedule checker) sits
/// outside both totals — it is the trust anchor, not a compile phase.
struct RolledRow {
    trips: u32,
    rolled_nodes: usize,
    unrolled_nodes: usize,
    base_trips: u32,
    k: u64,
    flat_frontend_s: f64,
    flat_total_s: f64,
    probe_s: f64,
    materialize_s: f64,
    rolled_total_s: f64,
    verify_s: f64,
    speedup: f64,
    makespan: u64,
    fingerprint: u64,
    equal: bool,
    cache_distinct: bool,
}

/// Times the three passes separately and fingerprints the emitted
/// schedule. Also returns the artifacts for cache seeding.
fn time_passes(
    name: &str,
    program: &Program,
    arch: &ArchConfig,
) -> (PassTimes, (expand::Expanded, movement::MovePlan, cycle::CycleSchedule)) {
    let opts = ExpandOptions { machine: Some(arch.clone()), ..Default::default() };
    let t0 = Instant::now();
    let ex = expand::expand(program, &opts);
    let t1 = t0.elapsed().as_secs_f64();
    let plan = movement::schedule(&ex, arch);
    let t2 = t0.elapsed().as_secs_f64();
    let cs = cycle::schedule(&ex, &plan, arch);
    let t3 = t0.elapsed().as_secs_f64();
    let pt = PassTimes {
        name: name.to_string(),
        instrs: ex.dfg.instrs().len(),
        values: ex.dfg.values().len(),
        events: plan.events.len(),
        expand_s: t1,
        movement_s: t2 - t1,
        cycle_s: t3 - t2,
        makespan: cs.makespan,
        fingerprint: fnv_debug(&cs.schedule),
    };
    (pt, (ex, plan, cs))
}

/// Builds the synthetic stress program as a *rolled* loop region: the
/// steady-state square → rotate → add chain the schedule-stamping
/// analysis targets, with the trip count calibrated (via two cheap
/// truncation compiles) so the unrolled expanded-DFG instruction count
/// lands near `target_instrs`.
fn stress_rolled(n: usize, l: usize, target_instrs: usize, arch: &ArchConfig) -> FheProgram {
    let chain = |trips: u32| {
        let mut p = FheProgram::new(n, Scheme::Bgv);
        let acc = p.input(l);
        let t = p.begin_repeat();
        let m = p.square(acc);
        let r = p.aut(m, 9);
        let acc2 = p.add(r, m);
        p.end_repeat(t, trips, vec![(acc, acc2)], vec![]);
        p.output(acc2);
        p
    };
    let opts = ExpandOptions { machine: Some(arch.clone()), ..Default::default() };
    let instrs_at = |trips: u32| {
        let (opt, _) = chain(trips).unroll().optimize();
        expand::expand(&opt.lower().program, &opts).dfg.instrs().len()
    };
    let base = instrs_at(8);
    let probe = instrs_at(12);
    let per_trip = (probe.saturating_sub(base) / 4).max(1);
    // Floor of 18 extra trips keeps the program inside the stamping
    // engine's eligibility window even for tiny targets.
    let trips = 8 + (target_instrs.saturating_sub(base) / per_trip).max(18) as u32;
    chain(trips)
}

fn json_num(x: f64) -> String {
    format!("{x:.4}")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let quick = flag("--quick");
    let check = flag("--check");
    let expect_hit = flag("--expect-hit");
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_compile.json".to_string());
    let fingerprints_path = opt("--fingerprints");
    let schema_ref = opt("--schema-ref");

    let scale = if quick { bench_scale_or(8) } else { bench_scale_or(1) };
    let arch = ArchConfig::f1_default();
    let benches = all_benchmarks(scale);
    let cores = rayon::current_num_threads();
    println!(
        "bench_compile: scale 1/{scale}, {cores} core(s){}",
        if quick { ", quick" } else { "" }
    );

    // --- Per-benchmark pass timings (single-threaded for stable
    // numbers), seeding the schedule cache as we go. With --expect-hit
    // every compile must instead be served from the cache.
    let mut rows: Vec<PassTimes> = Vec::new();
    let mut misses = 0usize;
    println!(
        "\n{:<30} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "instrs", "events", "expand", "movemnt", "cycle", "total"
    );
    for b in &benches {
        if expect_hit {
            let t0 = Instant::now();
            let ((ex, _plan, cs), status) = cache::compile_cached(&b.program, &arch);
            let load_s = t0.elapsed().as_secs_f64();
            if status != CacheStatus::Hit {
                misses += 1;
            }
            // A deserialized schedule is only trusted after the stream
            // checker re-verifies it.
            let makespan = f1_sim::check_streams(&ex, &cs, &arch);
            rows.push(PassTimes {
                name: b.name.to_string(),
                instrs: ex.dfg.instrs().len(),
                values: ex.dfg.values().len(),
                events: 0,
                expand_s: 0.0,
                movement_s: 0.0,
                cycle_s: 0.0,
                makespan,
                fingerprint: fnv_debug(&cs.schedule),
            });
            println!(
                "{:<30} {:>9} {:>9} {:>35.2}s  ({})",
                b.name,
                ex.dfg.instrs().len(),
                "-",
                load_s,
                if status == CacheStatus::Hit { "cache hit" } else { "CACHE MISS" }
            );
            continue;
        }
        let (pt, (ex, plan, cs)) =
            with_compile_threads(1, || time_passes(b.name, &b.program, &arch));
        if let Err(e) = cache::store_dsl(&b.program, &arch, (&ex, &plan, &cs)) {
            eprintln!("[bench_compile] cache seed failed for {}: {e}", b.name);
        }
        println!(
            "{:<30} {:>9} {:>9} {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s",
            pt.name,
            pt.instrs,
            pt.events,
            pt.expand_s,
            pt.movement_s,
            pt.cycle_s,
            pt.total_s()
        );
        rows.push(pt);
    }
    let serial_suite_s: f64 = rows.iter().map(|r| r.total_s()).sum();

    // --- Parallel re-run: same suite with the intra-compile parallel
    // regions enabled. Schedules must be byte-identical (fingerprints);
    // the wall-clock ratio is the suite speedup.
    let par_threads = cores.max(2);
    let mut parallel_suite_s = 0.0f64;
    let mut fingerprints_equal = true;
    if !expect_hit {
        for (b, serial_row) in benches.iter().zip(&rows) {
            let (pt, _) =
                with_compile_threads(par_threads, || time_passes(b.name, &b.program, &arch));
            parallel_suite_s += pt.total_s();
            if pt.fingerprint != serial_row.fingerprint {
                fingerprints_equal = false;
                eprintln!(
                    "[bench_compile] PARALLEL DIVERGENCE on {}: {:016x} != {:016x}",
                    b.name, pt.fingerprint, serial_row.fingerprint
                );
            }
        }
        println!(
            "\nparallel ({par_threads} threads): suite {:.2}s vs serial {:.2}s ({:.2}x), schedules {}",
            parallel_suite_s,
            serial_suite_s,
            serial_suite_s / parallel_suite_s.max(1e-9),
            if fingerprints_equal { "byte-identical" } else { "DIVERGED" }
        );
    }

    // --- Stress program: ~10× the largest benchmark's expanded size at
    // full scale (~2× in quick mode, to keep CI smoke fast). The program
    // is a rolled loop region, compiled twice: once flat (unroll, then
    // the ordinary three passes — the committed baseline path) and once
    // through the stamping fast path, which compiles a fixed iteration
    // window and relocates it across the remaining trips. Both must
    // produce byte-identical schedules; the wall-clock ratio is the
    // rolled speedup this report gates.
    let mut stress: Option<PassTimes> = None;
    let mut rolled: Option<RolledRow> = None;
    if !expect_hit {
        let largest = rows.iter().max_by_key(|r| r.instrs).expect("suite is non-empty");
        let factor = if quick { 2 } else { 10 };
        let (n, l) = (1 << 10, 6);
        let sp = stress_rolled(n, l, largest.instrs * factor, &arch);
        let trips = sp.repeats()[0].trips;
        let rolled_nodes = sp.nodes().len();
        let unrolled_nodes = sp.unrolled_len();

        // Flat baseline: frontend (unroll + optimize + lower), then the
        // three scheduling passes, all single-threaded for fairness.
        let t0 = Instant::now();
        let (flat_frontend_s, lowered) = with_compile_threads(1, || {
            let (opt, _) = sp.unroll().optimize();
            let lowered = opt.lower();
            (t0.elapsed().as_secs_f64(), lowered)
        });
        let (pt, _) =
            with_compile_threads(1, || time_passes("synthetic-stress", &lowered.program, &arch));
        drop(lowered);
        let flat_total_s = flat_frontend_s + pt.total_s();
        println!(
            "stress ({}x largest, {} trips): {} instrs  expand {:.2}s  movement {:.2}s  cycle {:.2}s",
            factor, trips, pt.instrs, pt.expand_s, pt.movement_s, pt.cycle_s
        );

        // Rolled fast path.
        let t0 = Instant::now();
        let rc = with_compile_threads(1, || compile_rolled(&sp, &arch));
        let rolled_total_s = t0.elapsed().as_secs_f64();
        let st = match &rc.outcome {
            RolledOutcome::Stamped(st) => st,
            RolledOutcome::Flat { reason } => {
                panic!("stress program must take the stamped path, fell back flat: {reason}")
            }
        };
        // Independent verification of the stamped schedule. Not counted
        // toward the speedup: it is the trust anchor, not a compile
        // phase, and the flat path's schedule is not checked here either.
        let t0 = Instant::now();
        f1_sim::check_stamped(st, &rc.schedule, &arch);
        let verify_s = t0.elapsed().as_secs_f64();
        let rolled_fp = fnv_debug(&rc.schedule.schedule);
        let equal = rc.schedule.makespan == pt.makespan && rolled_fp == pt.fingerprint;
        let speedup = flat_total_s / rolled_total_s.max(1e-9);

        // Rolled and unrolled forms of the same program must occupy
        // distinct schedule-cache entries (the `repeats` field is part
        // of the serialized key); probe with a small trip count so the
        // check costs microseconds.
        let small = sp.with_trips(0, 26);
        let cache_distinct = cache::fhe_entry_path(&small, &arch, &None)
            != cache::fhe_entry_path(&small.unroll(), &arch, &None);

        println!(
            "rolled: probe {:.2}s + materialize {:.2}s = {:.2}s vs flat {:.2}s ({:.1}x), \
             schedules {}, verify {:.2}s",
            st.info.probe_s,
            st.info.materialize_s,
            rolled_total_s,
            flat_total_s,
            speedup,
            if equal { "byte-identical" } else { "DIVERGED" },
            verify_s
        );
        rolled = Some(RolledRow {
            trips,
            rolled_nodes,
            unrolled_nodes,
            base_trips: st.info.base_trips,
            k: st.info.k,
            flat_frontend_s,
            flat_total_s,
            probe_s: st.info.probe_s,
            materialize_s: st.info.materialize_s,
            rolled_total_s,
            verify_s,
            speedup,
            makespan: rc.schedule.makespan,
            fingerprint: rolled_fp,
            equal,
            cache_distinct,
        });
        stress = Some(pt);
    }

    // --- Cache cold vs hit on the largest benchmark.
    let largest_idx = (0..rows.len()).max_by_key(|&i| rows[i].instrs).expect("suite is non-empty");
    let largest_bench = &benches[largest_idx];
    cache::evict_dsl(&largest_bench.program, &arch);
    let t0 = Instant::now();
    let (_, cold_status) = cache::compile_cached(&largest_bench.program, &arch);
    let cold_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let ((hit_ex, _, hit_cs), hit_status) = cache::compile_cached(&largest_bench.program, &arch);
    let hit_s = t0.elapsed().as_secs_f64();
    let hit_fingerprint = fnv_debug(&hit_cs.schedule);
    f1_sim::check_streams(&hit_ex, &hit_cs, &arch);
    let cache_ok = cold_status == CacheStatus::Miss
        && hit_status == CacheStatus::Hit
        && hit_fingerprint == rows[largest_idx].fingerprint;
    let cache_speedup = cold_s / hit_s.max(1e-9);
    println!(
        "cache ({}): cold {:.2}s, hit {:.3}s ({:.1}x), artifacts {}",
        largest_bench.name,
        cold_s,
        hit_s,
        cache_speedup,
        if cache_ok { "verified" } else { "MISMATCH" }
    );

    // --- Gates.
    let pass3_s = rows[largest_idx].cycle_s;
    let pass3_speedup = SEED_PASS3_S / pass3_s.max(1e-9);
    let pass3_enforced = !quick && !expect_hit && scale == 1;
    let pass3_pass = !pass3_enforced || pass3_speedup >= 2.0;
    let cache_required = if quick { 2.0 } else { 10.0 };
    let cache_pass = cache_ok && cache_speedup >= cache_required;
    let par_enforced = !expect_hit && cores >= 4;
    let par_speedup = serial_suite_s / parallel_suite_s.max(1e-9);
    let par_pass = !par_enforced || par_speedup >= 1.8;
    let hits_pass = !expect_hit || misses == 0;
    // The rolled gates only have meaning when the stress section ran;
    // under --expect-hit they are skipped (like the other timing gates).
    let rolled_required = if quick { 2.0 } else { 10.0 };
    let rolled_enforced = !expect_hit;
    let rolled_speedup = rolled.as_ref().map_or(0.0, |r| r.speedup);
    let rolled_speedup_pass = !rolled_enforced || rolled_speedup >= rolled_required;
    let rolled_equal_pass = !rolled_enforced || rolled.as_ref().is_some_and(|r| r.equal);
    let rolled_cache_pass = !rolled_enforced || rolled.as_ref().is_some_and(|r| r.cache_distinct);

    // --- JSON report.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"f1-bench-compile-v2\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"instrs\": {}, \"values\": {}, \"events\": {}, \
             \"expand_s\": {}, \"movement_s\": {}, \"cycle_s\": {}, \"total_s\": {}, \
             \"makespan\": {}, \"fingerprint\": \"{:016x}\"}}{}\n",
            r.name,
            r.instrs,
            r.values,
            r.events,
            json_num(r.expand_s),
            json_num(r.movement_s),
            json_num(r.cycle_s),
            json_num(r.total_s()),
            r.makespan,
            r.fingerprint,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match &stress {
        Some(r) => out.push_str(&format!(
            "  \"stress\": {{\"name\": \"{}\", \"instrs\": {}, \"values\": {}, \"events\": {}, \
             \"expand_s\": {}, \"movement_s\": {}, \"cycle_s\": {}, \"total_s\": {}, \
             \"makespan\": {}, \"fingerprint\": \"{:016x}\"}},\n",
            r.name,
            r.instrs,
            r.values,
            r.events,
            json_num(r.expand_s),
            json_num(r.movement_s),
            json_num(r.cycle_s),
            json_num(r.total_s()),
            r.makespan,
            r.fingerprint
        )),
        None => out.push_str("  \"stress\": null,\n"),
    }
    match &rolled {
        Some(r) => out.push_str(&format!(
            "  \"rolled\": {{\"trips\": {}, \"rolled_nodes\": {}, \"unrolled_nodes\": {}, \
             \"base_trips\": {}, \"k\": {}, \"flat_frontend_s\": {}, \"flat_total_s\": {}, \
             \"probe_s\": {}, \"materialize_s\": {}, \"rolled_total_s\": {}, \"verify_s\": {}, \
             \"speedup\": {}, \"makespan\": {}, \"fingerprint\": \"{:016x}\", \"equal\": {}, \
             \"cache_distinct\": {}}},\n",
            r.trips,
            r.rolled_nodes,
            r.unrolled_nodes,
            r.base_trips,
            r.k,
            json_num(r.flat_frontend_s),
            json_num(r.flat_total_s),
            json_num(r.probe_s),
            json_num(r.materialize_s),
            json_num(r.rolled_total_s),
            json_num(r.verify_s),
            json_num(r.speedup),
            r.makespan,
            r.fingerprint,
            r.equal,
            r.cache_distinct
        )),
        None => out.push_str("  \"rolled\": null,\n"),
    }
    out.push_str(&format!(
        "  \"cache\": {{\"benchmark\": \"{}\", \"cold_s\": {}, \"hit_s\": {}, \"speedup\": {}, \
         \"verified\": {}}},\n",
        largest_bench.name,
        json_num(cold_s),
        json_num(hit_s),
        json_num(cache_speedup),
        cache_ok
    ));
    out.push_str(&format!(
        "  \"parallel\": {{\"threads\": {par_threads}, \"serial_suite_s\": {}, \
         \"parallel_suite_s\": {}, \"speedup\": {}, \"fingerprints_equal\": {}}},\n",
        json_num(serial_suite_s),
        json_num(parallel_suite_s),
        json_num(par_speedup),
        fingerprints_equal
    ));
    out.push_str(&format!(
        "  \"seed_baseline\": {{\"benchmark\": \"{SEED_BENCH}\", \"pass3_s\": {SEED_PASS3_S}, \
         \"source\": \"{SEED_SOURCE}\"}},\n"
    ));
    out.push_str("  \"gates\": {\n");
    out.push_str(&format!(
        "    \"pass3_speedup_vs_seed\": {{\"required\": 2.0, \"actual\": {}, \"enforced\": {}, \"pass\": {}}},\n",
        json_num(pass3_speedup),
        pass3_enforced,
        pass3_pass
    ));
    out.push_str(&format!(
        "    \"cache_hit_speedup\": {{\"required\": {}, \"actual\": {}, \"enforced\": true, \"pass\": {}}},\n",
        json_num(cache_required),
        json_num(cache_speedup),
        cache_pass
    ));
    out.push_str(&format!(
        "    \"parallel_fingerprints_equal\": {{\"enforced\": {}, \"pass\": {}}},\n",
        !expect_hit, fingerprints_equal
    ));
    out.push_str(&format!(
        "    \"parallel_suite_speedup\": {{\"required\": 1.8, \"actual\": {}, \"enforced\": {}, \"pass\": {}}},\n",
        json_num(par_speedup),
        par_enforced,
        par_pass
    ));
    out.push_str(&format!(
        "    \"rolled_speedup\": {{\"required\": {}, \"actual\": {}, \"enforced\": {}, \"pass\": {}}},\n",
        json_num(rolled_required),
        json_num(rolled_speedup),
        rolled_enforced,
        rolled_speedup_pass
    ));
    out.push_str(&format!(
        "    \"rolled_equal\": {{\"enforced\": {rolled_enforced}, \"pass\": {rolled_equal_pass}}},\n"
    ));
    out.push_str(&format!(
        "    \"rolled_cache_distinct\": {{\"enforced\": {rolled_enforced}, \"pass\": {rolled_cache_pass}}},\n"
    ));
    out.push_str(&format!(
        "    \"cache_hits\": {{\"enforced\": {}, \"pass\": {}}}\n",
        expect_hit, hits_pass
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("failed to write bench_compile JSON");
    println!("wrote {out_path}");

    if let Some(fp_path) = &fingerprints_path {
        let mut fp = String::new();
        for r in &rows {
            fp.push_str(&format!(
                "{} {:016x} {}\n",
                r.name.replace(' ', "_"),
                r.fingerprint,
                r.makespan
            ));
        }
        std::fs::write(fp_path, fp).expect("failed to write fingerprints file");
        println!("wrote {fp_path}");
    }

    // --- Schema diff vs the committed report: the key *set* must match
    // (values are machine-dependent; the shape is the contract).
    if let Some(ref_path) = &schema_ref {
        let reference = std::fs::read_to_string(ref_path)
            .unwrap_or_else(|e| panic!("cannot read schema reference {ref_path}: {e}"));
        let keys = |s: &str| -> Vec<String> {
            let mut ks: Vec<String> = s
                .split('"')
                .skip(1)
                .step_by(2)
                .zip(s.split('"').skip(2).step_by(2))
                .filter(|(_, after)| after.trim_start().starts_with(':'))
                .map(|(k, _)| k.to_string())
                .collect();
            ks.sort();
            ks.dedup();
            ks
        };
        let (got, want) = (keys(&out), keys(&reference));
        if got != want {
            let missing: Vec<_> = want.iter().filter(|k| !got.contains(k)).collect();
            let extra: Vec<_> = got.iter().filter(|k| !want.contains(k)).collect();
            eprintln!("SCHEMA DRIFT vs {ref_path}: missing {missing:?}, extra {extra:?}");
            std::process::exit(1);
        }
        println!("schema matches {ref_path}");
    }

    if check {
        let mut failed = Vec::new();
        if !pass3_pass {
            failed.push(format!("pass3_speedup_vs_seed ({pass3_speedup:.2} < 2.0)"));
        }
        if !cache_pass {
            failed.push(format!("cache_hit_speedup ({cache_speedup:.2} < {cache_required})"));
        }
        if !fingerprints_equal {
            failed.push("parallel_fingerprints_equal".to_string());
        }
        if !par_pass {
            failed.push(format!("parallel_suite_speedup ({par_speedup:.2} < 1.8)"));
        }
        if !rolled_speedup_pass {
            failed.push(format!("rolled_speedup ({rolled_speedup:.2} < {rolled_required})"));
        }
        if !rolled_equal_pass {
            failed.push("rolled_equal (stamped schedule diverged from flat compile)".to_string());
        }
        if !rolled_cache_pass {
            failed.push("rolled_cache_distinct (rolled/unrolled share a cache entry)".to_string());
        }
        if !hits_pass {
            failed.push(format!("cache_hits ({misses} miss(es) under --expect-hit)"));
        }
        if !failed.is_empty() {
            eprintln!("GATE FAILURES: {}", failed.join(", "));
            std::process::exit(1);
        }
        println!("all enforced gates pass");
    }
}
