//! Compile-time benchmark: per-pass wall-clock over the benchmark
//! suite, a synthetic stress program ~10× the largest benchmark, the
//! schedule cache's cold/hit cost, and serial-vs-parallel determinism.
//!
//! ```text
//! cargo run -p f1-bench --release --bin bench_compile            # full scale
//! cargo run ... --bin bench_compile -- --quick --check           # CI smoke
//! ```
//!
//! Flags:
//!
//! * `--quick` — run at the reduced `F1_SCALE` default (8) with a small
//!   stress program; without it the suite runs at full scale.
//! * `--check` — enforce the regression gates (exit 1 on violation).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_compile.json`).
//! * `--fingerprints PATH` — additionally write just the per-benchmark
//!   schedule fingerprints (stable across runs; CI diffs two runs'
//!   files to prove cross-process cache coherence).
//! * `--expect-hit` — serve every benchmark compile from the schedule
//!   cache, failing if any misses; re-verifies each cached schedule
//!   with the stream checker. Skips the timing-only sections.
//! * `--schema-ref PATH` — compare this run's JSON key set against a
//!   reference report (the committed `BENCH_compile.json`); exit 1 on
//!   schema drift.
//!
//! Timings are wall-clock and machine-dependent; the *gates* are chosen
//! to hold on any multi-core runner (and the two hardest ones —
//! byte-identical parallel schedules, ≥10× cache-hit speedup — are
//! machine-independent by construction). The committed
//! `BENCH_compile.json` records a full-scale run; the seed baseline it
//! gates pass 3 against was measured at commit 82ebae9 on the same
//! machine that produced the committed report.

use f1_arch::ArchConfig;
use f1_bench::bench_scale_or;
use f1_compiler::cache::{self, CacheStatus};
use f1_compiler::dsl::Program;
use f1_compiler::expand::{self, ExpandOptions};
use f1_compiler::par::with_compile_threads;
use f1_compiler::{cycle, movement};
use f1_workloads::all_benchmarks;
use std::time::Instant;

/// Pass-3 wall-clock on the largest full-scale benchmark at the growth
/// seed (commit 82ebae9), before this module's scheduler rework — the
/// denominator of the ≥2× pass-3 gate.
const SEED_PASS3_S: f64 = 11.16;
const SEED_BENCH: &str = "Logistic Regression";
const SEED_SOURCE: &str = "measured at commit 82ebae9, F1_SCALE=1, single-threaded";

/// FNV-1a over a string — the repo's schedule fingerprint idiom.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct PassTimes {
    name: String,
    instrs: usize,
    values: usize,
    events: usize,
    expand_s: f64,
    movement_s: f64,
    cycle_s: f64,
    makespan: u64,
    fingerprint: u64,
}

impl PassTimes {
    fn total_s(&self) -> f64 {
        self.expand_s + self.movement_s + self.cycle_s
    }
}

/// Times the three passes separately and fingerprints the emitted
/// schedule. Also returns the artifacts for cache seeding.
fn time_passes(
    name: &str,
    program: &Program,
    arch: &ArchConfig,
) -> (PassTimes, (expand::Expanded, movement::MovePlan, cycle::CycleSchedule)) {
    let opts = ExpandOptions { machine: Some(arch.clone()), ..Default::default() };
    let t0 = Instant::now();
    let ex = expand::expand(program, &opts);
    let t1 = t0.elapsed().as_secs_f64();
    let plan = movement::schedule(&ex, arch);
    let t2 = t0.elapsed().as_secs_f64();
    let cs = cycle::schedule(&ex, &plan, arch);
    let t3 = t0.elapsed().as_secs_f64();
    let pt = PassTimes {
        name: name.to_string(),
        instrs: ex.dfg.instrs().len(),
        values: ex.dfg.values().len(),
        events: plan.events.len(),
        expand_s: t1,
        movement_s: t2 - t1,
        cycle_s: t3 - t2,
        makespan: cs.makespan,
        fingerprint: fnv64(&format!("{:?}", cs.schedule)),
    };
    (pt, (ex, plan, cs))
}

/// Builds the synthetic stress program: a rolled mat-vec sized (by
/// expanded-DFG instruction count) at `factor`× the given target. Two
/// cheap calibration expansions pick the row count; the caller reports
/// the size actually reached.
fn stress_program(n: usize, l: usize, target_instrs: usize, arch: &ArchConfig) -> Program {
    let opts = ExpandOptions { machine: Some(arch.clone()), ..Default::default() };
    let probe_rows = 4usize;
    let base = expand::expand(&Program::listing2_matvec(n, l, 1), &opts).dfg.instrs().len();
    let probe =
        expand::expand(&Program::listing2_matvec(n, l, probe_rows), &opts).dfg.instrs().len();
    let per_row = (probe.saturating_sub(base) / (probe_rows - 1)).max(1);
    let rows = (target_instrs.saturating_sub(base) / per_row).max(1);
    Program::listing2_matvec(n, l, rows)
}

fn json_num(x: f64) -> String {
    format!("{x:.4}")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let quick = flag("--quick");
    let check = flag("--check");
    let expect_hit = flag("--expect-hit");
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_compile.json".to_string());
    let fingerprints_path = opt("--fingerprints");
    let schema_ref = opt("--schema-ref");

    let scale = if quick { bench_scale_or(8) } else { bench_scale_or(1) };
    let arch = ArchConfig::f1_default();
    let benches = all_benchmarks(scale);
    let cores = rayon::current_num_threads();
    println!(
        "bench_compile: scale 1/{scale}, {cores} core(s){}",
        if quick { ", quick" } else { "" }
    );

    // --- Per-benchmark pass timings (single-threaded for stable
    // numbers), seeding the schedule cache as we go. With --expect-hit
    // every compile must instead be served from the cache.
    let mut rows: Vec<PassTimes> = Vec::new();
    let mut misses = 0usize;
    println!(
        "\n{:<30} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "instrs", "events", "expand", "movemnt", "cycle", "total"
    );
    for b in &benches {
        if expect_hit {
            let t0 = Instant::now();
            let ((ex, _plan, cs), status) = cache::compile_cached(&b.program, &arch);
            let load_s = t0.elapsed().as_secs_f64();
            if status != CacheStatus::Hit {
                misses += 1;
            }
            // A deserialized schedule is only trusted after the stream
            // checker re-verifies it.
            let makespan = f1_sim::check_streams(&ex, &cs, &arch);
            rows.push(PassTimes {
                name: b.name.to_string(),
                instrs: ex.dfg.instrs().len(),
                values: ex.dfg.values().len(),
                events: 0,
                expand_s: 0.0,
                movement_s: 0.0,
                cycle_s: 0.0,
                makespan,
                fingerprint: fnv64(&format!("{:?}", cs.schedule)),
            });
            println!(
                "{:<30} {:>9} {:>9} {:>35.2}s  ({})",
                b.name,
                ex.dfg.instrs().len(),
                "-",
                load_s,
                if status == CacheStatus::Hit { "cache hit" } else { "CACHE MISS" }
            );
            continue;
        }
        let (pt, (ex, plan, cs)) =
            with_compile_threads(1, || time_passes(b.name, &b.program, &arch));
        if let Err(e) = cache::store_dsl(&b.program, &arch, (&ex, &plan, &cs)) {
            eprintln!("[bench_compile] cache seed failed for {}: {e}", b.name);
        }
        println!(
            "{:<30} {:>9} {:>9} {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s",
            pt.name,
            pt.instrs,
            pt.events,
            pt.expand_s,
            pt.movement_s,
            pt.cycle_s,
            pt.total_s()
        );
        rows.push(pt);
    }
    let serial_suite_s: f64 = rows.iter().map(|r| r.total_s()).sum();

    // --- Parallel re-run: same suite with the intra-compile parallel
    // regions enabled. Schedules must be byte-identical (fingerprints);
    // the wall-clock ratio is the suite speedup.
    let par_threads = cores.max(2);
    let mut parallel_suite_s = 0.0f64;
    let mut fingerprints_equal = true;
    if !expect_hit {
        for (b, serial_row) in benches.iter().zip(&rows) {
            let (pt, _) =
                with_compile_threads(par_threads, || time_passes(b.name, &b.program, &arch));
            parallel_suite_s += pt.total_s();
            if pt.fingerprint != serial_row.fingerprint {
                fingerprints_equal = false;
                eprintln!(
                    "[bench_compile] PARALLEL DIVERGENCE on {}: {:016x} != {:016x}",
                    b.name, pt.fingerprint, serial_row.fingerprint
                );
            }
        }
        println!(
            "\nparallel ({par_threads} threads): suite {:.2}s vs serial {:.2}s ({:.2}x), schedules {}",
            parallel_suite_s,
            serial_suite_s,
            serial_suite_s / parallel_suite_s.max(1e-9),
            if fingerprints_equal { "byte-identical" } else { "DIVERGED" }
        );
    }

    // --- Stress program: ~10× the largest benchmark's expanded size at
    // full scale (~2× in quick mode, to keep CI smoke fast).
    let mut stress: Option<PassTimes> = None;
    if !expect_hit {
        let largest = rows.iter().max_by_key(|r| r.instrs).expect("suite is non-empty");
        let factor = if quick { 2 } else { 10 };
        let (n, l) = (1 << 14, 16);
        let sp = stress_program(n, l, largest.instrs * factor, &arch);
        let (pt, _) = with_compile_threads(1, || time_passes("synthetic-stress", &sp, &arch));
        println!(
            "stress ({}x largest): {} instrs  expand {:.2}s  movement {:.2}s  cycle {:.2}s",
            factor, pt.instrs, pt.expand_s, pt.movement_s, pt.cycle_s
        );
        stress = Some(pt);
    }

    // --- Cache cold vs hit on the largest benchmark.
    let largest_idx = (0..rows.len()).max_by_key(|&i| rows[i].instrs).expect("suite is non-empty");
    let largest_bench = &benches[largest_idx];
    cache::evict_dsl(&largest_bench.program, &arch);
    let t0 = Instant::now();
    let (_, cold_status) = cache::compile_cached(&largest_bench.program, &arch);
    let cold_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let ((hit_ex, _, hit_cs), hit_status) = cache::compile_cached(&largest_bench.program, &arch);
    let hit_s = t0.elapsed().as_secs_f64();
    let hit_fingerprint = fnv64(&format!("{:?}", hit_cs.schedule));
    f1_sim::check_streams(&hit_ex, &hit_cs, &arch);
    let cache_ok = cold_status == CacheStatus::Miss
        && hit_status == CacheStatus::Hit
        && hit_fingerprint == rows[largest_idx].fingerprint;
    let cache_speedup = cold_s / hit_s.max(1e-9);
    println!(
        "cache ({}): cold {:.2}s, hit {:.3}s ({:.1}x), artifacts {}",
        largest_bench.name,
        cold_s,
        hit_s,
        cache_speedup,
        if cache_ok { "verified" } else { "MISMATCH" }
    );

    // --- Gates.
    let pass3_s = rows[largest_idx].cycle_s;
    let pass3_speedup = SEED_PASS3_S / pass3_s.max(1e-9);
    let pass3_enforced = !quick && !expect_hit && scale == 1;
    let pass3_pass = !pass3_enforced || pass3_speedup >= 2.0;
    let cache_required = if quick { 2.0 } else { 10.0 };
    let cache_pass = cache_ok && cache_speedup >= cache_required;
    let par_enforced = !expect_hit && cores >= 4;
    let par_speedup = serial_suite_s / parallel_suite_s.max(1e-9);
    let par_pass = !par_enforced || par_speedup >= 1.8;
    let hits_pass = !expect_hit || misses == 0;

    // --- JSON report.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"f1-bench-compile-v1\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"instrs\": {}, \"values\": {}, \"events\": {}, \
             \"expand_s\": {}, \"movement_s\": {}, \"cycle_s\": {}, \"total_s\": {}, \
             \"makespan\": {}, \"fingerprint\": \"{:016x}\"}}{}\n",
            r.name,
            r.instrs,
            r.values,
            r.events,
            json_num(r.expand_s),
            json_num(r.movement_s),
            json_num(r.cycle_s),
            json_num(r.total_s()),
            r.makespan,
            r.fingerprint,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match &stress {
        Some(r) => out.push_str(&format!(
            "  \"stress\": {{\"name\": \"{}\", \"instrs\": {}, \"values\": {}, \"events\": {}, \
             \"expand_s\": {}, \"movement_s\": {}, \"cycle_s\": {}, \"total_s\": {}, \
             \"makespan\": {}, \"fingerprint\": \"{:016x}\"}},\n",
            r.name,
            r.instrs,
            r.values,
            r.events,
            json_num(r.expand_s),
            json_num(r.movement_s),
            json_num(r.cycle_s),
            json_num(r.total_s()),
            r.makespan,
            r.fingerprint
        )),
        None => out.push_str("  \"stress\": null,\n"),
    }
    out.push_str(&format!(
        "  \"cache\": {{\"benchmark\": \"{}\", \"cold_s\": {}, \"hit_s\": {}, \"speedup\": {}, \
         \"verified\": {}}},\n",
        largest_bench.name,
        json_num(cold_s),
        json_num(hit_s),
        json_num(cache_speedup),
        cache_ok
    ));
    out.push_str(&format!(
        "  \"parallel\": {{\"threads\": {par_threads}, \"serial_suite_s\": {}, \
         \"parallel_suite_s\": {}, \"speedup\": {}, \"fingerprints_equal\": {}}},\n",
        json_num(serial_suite_s),
        json_num(parallel_suite_s),
        json_num(par_speedup),
        fingerprints_equal
    ));
    out.push_str(&format!(
        "  \"seed_baseline\": {{\"benchmark\": \"{SEED_BENCH}\", \"pass3_s\": {SEED_PASS3_S}, \
         \"source\": \"{SEED_SOURCE}\"}},\n"
    ));
    out.push_str("  \"gates\": {\n");
    out.push_str(&format!(
        "    \"pass3_speedup_vs_seed\": {{\"required\": 2.0, \"actual\": {}, \"enforced\": {}, \"pass\": {}}},\n",
        json_num(pass3_speedup),
        pass3_enforced,
        pass3_pass
    ));
    out.push_str(&format!(
        "    \"cache_hit_speedup\": {{\"required\": {}, \"actual\": {}, \"enforced\": true, \"pass\": {}}},\n",
        json_num(cache_required),
        json_num(cache_speedup),
        cache_pass
    ));
    out.push_str(&format!(
        "    \"parallel_fingerprints_equal\": {{\"enforced\": {}, \"pass\": {}}},\n",
        !expect_hit, fingerprints_equal
    ));
    out.push_str(&format!(
        "    \"parallel_suite_speedup\": {{\"required\": 1.8, \"actual\": {}, \"enforced\": {}, \"pass\": {}}},\n",
        json_num(par_speedup),
        par_enforced,
        par_pass
    ));
    out.push_str(&format!(
        "    \"cache_hits\": {{\"enforced\": {}, \"pass\": {}}}\n",
        expect_hit, hits_pass
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("failed to write bench_compile JSON");
    println!("wrote {out_path}");

    if let Some(fp_path) = &fingerprints_path {
        let mut fp = String::new();
        for r in &rows {
            fp.push_str(&format!(
                "{} {:016x} {}\n",
                r.name.replace(' ', "_"),
                r.fingerprint,
                r.makespan
            ));
        }
        std::fs::write(fp_path, fp).expect("failed to write fingerprints file");
        println!("wrote {fp_path}");
    }

    // --- Schema diff vs the committed report: the key *set* must match
    // (values are machine-dependent; the shape is the contract).
    if let Some(ref_path) = &schema_ref {
        let reference = std::fs::read_to_string(ref_path)
            .unwrap_or_else(|e| panic!("cannot read schema reference {ref_path}: {e}"));
        let keys = |s: &str| -> Vec<String> {
            let mut ks: Vec<String> = s
                .split('"')
                .skip(1)
                .step_by(2)
                .zip(s.split('"').skip(2).step_by(2))
                .filter(|(_, after)| after.trim_start().starts_with(':'))
                .map(|(k, _)| k.to_string())
                .collect();
            ks.sort();
            ks.dedup();
            ks
        };
        let (got, want) = (keys(&out), keys(&reference));
        if got != want {
            let missing: Vec<_> = want.iter().filter(|k| !got.contains(k)).collect();
            let extra: Vec<_> = got.iter().filter(|k| !want.contains(k)).collect();
            eprintln!("SCHEMA DRIFT vs {ref_path}: missing {missing:?}, extra {extra:?}");
            std::process::exit(1);
        }
        println!("schema matches {ref_path}");
    }

    if check {
        let mut failed = Vec::new();
        if !pass3_pass {
            failed.push(format!("pass3_speedup_vs_seed ({pass3_speedup:.2} < 2.0)"));
        }
        if !cache_pass {
            failed.push(format!("cache_hit_speedup ({cache_speedup:.2} < {cache_required})"));
        }
        if !fingerprints_equal {
            failed.push("parallel_fingerprints_equal".to_string());
        }
        if !par_pass {
            failed.push(format!("parallel_suite_speedup ({par_speedup:.2} < 1.8)"));
        }
        if !hits_pass {
            failed.push(format!("cache_hits ({misses} miss(es) under --expect-hit)"));
        }
        if !failed.is_empty() {
            eprintln!("GATE FAILURES: {}", failed.join(", "));
            std::process::exit(1);
        }
        println!("all enforced gates pass");
    }
}
