//! Fig 9: per-benchmark off-chip data movement breakdown (a) and average
//! power breakdown (b).

use f1_arch::ArchConfig;
use f1_bench::{bench_scale, run_benchmark};
use f1_workloads::all_benchmarks;

fn main() {
    let scale = bench_scale();
    let arch = ArchConfig::f1_default();
    println!(
        "Fig 9a: Off-chip data movement breakdown (fractions of total bytes; scale 1/{scale})\n"
    );
    println!(
        "{:<30} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "Benchmark", "KSH-C", "In-C", "KSH-NC", "In-NC", "Int-Ld", "Int-St", "Total[MB]"
    );
    let benches = all_benchmarks(scale);
    let mut reports = Vec::new();
    for b in &benches {
        let r = run_benchmark(b, &arch);
        let t = r.traffic;
        let tot = t.total().max(1) as f64;
        println!(
            "{:<30} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>10.1}",
            b.name,
            t.ksh_compulsory as f64 / tot * 100.0,
            t.input_compulsory as f64 / tot * 100.0,
            t.ksh_non_compulsory as f64 / tot * 100.0,
            t.input_non_compulsory as f64 / tot * 100.0,
            t.interm_load as f64 / tot * 100.0,
            t.interm_store as f64 / tot * 100.0,
            tot / (1024.0 * 1024.0)
        );
        reports.push((b.name, r));
    }
    println!("\nPaper shape: hints dominate deep workloads (LogReg, DB Lookup, bootstrapping, up to 94%);");
    println!(
        "non-compulsory traffic adds only 5-18% except LoLa-CIFAR (intermediates dominate).\n"
    );

    println!("Fig 9b: Average power breakdown [W]\n");
    println!(
        "{:<30} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Benchmark", "HBM", "Scratch", "NoC", "RF", "FUs", "Total", "Move%"
    );
    for (name, r) in &reports {
        let p = &r.power;
        println!(
            "{:<30} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>7.0}%",
            name,
            p.hbm_w,
            p.scratchpad_w,
            p.noc_w,
            p.rf_w,
            p.fus_w,
            p.total_w(),
            p.data_movement_fraction() * 100.0
        );
    }
    println!(
        "\nPaper shape: 59-96 W averages; computation is 20-30% of power, data movement dominates."
    );

    // IR pass effect on the DFGs behind these breakdowns (hom-op counts
    // before/after CSE + DCE + rotation dedup + folding + hoisting; the
    // stats were computed when the benchmarks above were built).
    println!("\nIR pass effect per benchmark (hom-ops before -> after, key-switches):");
    for b in &benches {
        println!(
            "  {:<30} ops {:>5} -> {:<5}  keyswitch {:>4} -> {:<4}  (cse {}, dce {}, rot {}, fold {}, hoist {})",
            b.name,
            b.opt.nodes_before,
            b.opt.nodes_after,
            b.opt.keyswitch_before,
            b.opt.keyswitch_after,
            b.opt.cse_merged,
            b.opt.dead_removed,
            b.opt.rotations_merged,
            b.opt.folded,
            b.opt.hoisted
        );
    }
}
