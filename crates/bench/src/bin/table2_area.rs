//! Table 2: area and TDP breakdown of the default F1 configuration.

use f1_arch::{ArchConfig, AreaBreakdown};

fn main() {
    let cfg = ArchConfig::f1_default();
    let b = AreaBreakdown::for_config(&cfg);
    println!("Table 2: Area and TDP of F1 (model; paper totals 151.4 mm2, 180.4 W)\n");
    println!("{:<42} {:>12} {:>10}", "Component", "Area [mm2]", "TDP [W]");
    for row in &b.rows {
        println!("{:<42} {:>12.2} {:>10.2}", row.component, row.area_mm2, row.tdp_w);
    }
    println!("{:<42} {:>12.1} {:>10.1}", "Total F1", b.total_area_mm2, b.total_tdp_w);
    println!("\nPeak modular arithmetic: {:.1} tera-ops/s (paper: 36)", cfg.peak_tops());
    println!(
        "On-chip storage: {} MB; HBM bandwidth: {} GB/s",
        cfg.scratchpad_bytes() / (1024 * 1024),
        cfg.hbm_phys as u64 * cfg.hbm_gbps_per_phy
    );
}
