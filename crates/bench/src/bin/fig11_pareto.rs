//! Fig 11: performance vs area across F1 configurations (design-space
//! sweep of clusters / scratchpad banks / HBM PHYs).

use f1_arch::{ArchConfig, AreaBreakdown};
use f1_bench::{bench_scale, gmean};
use f1_workloads::all_benchmarks;

fn main() {
    let scale = bench_scale();
    println!("Fig 11: gmean normalized performance vs area (scale 1/{scale})\n");
    println!("{:<10} {:>12} {:>14} {:>12}", "factor", "area [mm2]", "gmean cycles", "norm perf");
    let benches = all_benchmarks(scale);
    let factors = [0.25, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    for &f in &factors {
        let arch = ArchConfig::scaled(f);
        let area = AreaBreakdown::for_config(&arch).total_area_mm2;
        let mut cycles = Vec::new();
        for b in &benches {
            let (ex, plan, cs) = f1_compiler::compile(&b.program, &arch);
            let _ = (&ex, &plan);
            cycles.push(cs.makespan as f64);
        }
        rows.push((f, area, gmean(&cycles)));
    }
    let best = rows.last().unwrap().2;
    for (f, area, g) in &rows {
        println!("{:<10.2} {:>12.1} {:>14.0} {:>12.3}", f, area, g, best / g);
    }
    println!("\nPaper shape: performance grows about linearly with area over this range.");
}
