//! Determinism probe: compiles the benchmark suite twice and proves the
//! emitted static schedules are byte-identical (exit 1 otherwise), then
//! prints a stable per-benchmark fingerprint.
//!
//! CI runs this binary twice in separate processes and diffs the two
//! outputs: std's per-process random hash seeds mean any surviving
//! hash-iteration-order leak shows up as a fingerprint (or makespan)
//! difference between runs.

use f1_arch::ArchConfig;
use f1_bench::bench_scale;
use f1_workloads::all_benchmarks;

/// FNV-1a over the Debug rendering of the schedule streams.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let scale = bench_scale();
    let arch = ArchConfig::f1_default();
    println!("Determinism check (scale 1/{scale}): double-compile fingerprints\n");
    println!("{:<30} {:>12} {:>18}", "Benchmark", "Makespan", "Stream FNV-1a");
    let mut failed = false;
    for b in all_benchmarks(scale) {
        let (_, _, cs1) = f1_compiler::compile(&b.program, &arch);
        let (_, _, cs2) = f1_compiler::compile(&b.program, &arch);
        let f1 = fnv(format!("{:?}", cs1.schedule).as_bytes());
        let f2 = fnv(format!("{:?}", cs2.schedule).as_bytes());
        let ok = cs1.makespan == cs2.makespan && f1 == f2;
        if !ok {
            failed = true;
            eprintln!(
                "NONDETERMINISM: {} makespan {} vs {}, fnv {:016x} vs {:016x}",
                b.name, cs1.makespan, cs2.makespan, f1, f2
            );
        }
        println!("{:<30} {:>12} {:>18}", b.name, cs1.makespan, format!("{f1:016x}"));
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nAll schedules byte-identical across the in-process double compile.");
    println!("(CI diffs two separate runs of this output to catch cross-process leaks.)");
}
