//! Static-analysis driver over the benchmark suite: runs the compiler's
//! analyzer (noise abstract interpretation, typing validation, pressure,
//! lints) on all seven paper benchmarks and writes `ANALYSIS.json`.
//!
//! ```text
//! cargo run -p f1-bench --release --bin analyze              # writes ANALYSIS.json
//! cargo run ... --bin analyze -- --out other.json            # elsewhere
//! ```
//!
//! The output is deterministic (the analyses are pure functions of the
//! IR), so CI regenerates it and diffs against the committed file: any
//! drift in node counts, noise margins or diagnostics shows up as a
//! reviewable diff.
//!
//! Each benchmark is analyzed twice:
//!
//! * **hand-managed** — the paper-faithful program at Table 3's `(N, L)`.
//!   Its margins are reported as numbers only; `noise::budget-exhausted`
//!   is demoted to Info ([`Benchmark::HAND_MANAGED_NOTE`]) because the
//!   paper's own parameters under-provision the deep benchmarks and that
//!   is a property of the reproduction target, not a bug.
//! * **managed** — the same circuit after `insert_rescales` +
//!   `param_search`: hand-placed switches dropped, placement re-derived
//!   under the policy, and the smallest `(N, L)` with a ≥ 8-bit
//!   worst-case margin found. This is the merge gate: the process exits
//!   1 if any managed program carries an Error-severity diagnostic or
//!   fails the search.

use f1_arch::ArchConfig;
use f1_compiler::analysis::param_search::{search, SearchSpec};
use f1_compiler::analysis::{Analyzer, Severity};
use f1_workloads::{all_benchmarks, Benchmark};

/// JSON string escaping for the few metacharacters diagnostics can hold.
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "ANALYSIS.json".to_string());

    let arch = ArchConfig::f1_default();
    let spec = SearchSpec::default();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"f1-analysis-v2\",\n");
    out.push_str("  \"scale\": 1,\n");
    out.push_str(&format!(
        "  \"managed_spec\": {{\"target_margin_bits\": {:.1}, \"min_security_bits\": {:.1}, \"policy\": \"{}\"}},\n",
        spec.target_margin_bits,
        spec.min_security_bits,
        spec.policy.label()
    ));
    out.push_str("  \"benchmarks\": [\n");

    let benchmarks = all_benchmarks(1);
    let mut total_errors = 0usize;
    println!(
        "{:<28} {:>6} {:>6} {:>9} {:>9} {:>5} {:>7} {:>9} {:>6}",
        "benchmark", "nodes", "opt", "wc-margin", "est-marg.", "L*", "N*", "wc-mgd", "errs"
    );
    // The heavy per-benchmark work (optimize, analyze, (N, L) search,
    // managed-program re-analysis) is independent across benchmarks; run
    // it under the compile-parallelism knob (`F1_PAR_COMPILE=1` forces
    // serial). Output stays deterministic: `par_map_threads` preserves
    // order and the JSON below is assembled serially.
    let arch_ref = &arch;
    let spec_ref = &spec;
    let analyses = rayon::par_map_threads(
        f1_compiler::par::compile_threads(),
        &benchmarks,
        |b: &Benchmark| {
            let mut analyzer = Analyzer::new().with_arch(arch_ref.clone());
            analyzer.registry_mut().override_severity(
                "noise::budget-exhausted",
                Severity::Info,
                Benchmark::HAND_MANAGED_NOTE,
            );
            let (opt, _) = b.fhe.optimize();
            let report = analyzer.analyze(&opt);
            // The merge gate: re-derive switch placement, search the
            // smallest (N, L) with the target margin, and analyze that
            // program with NO severity overrides.
            let found = search(&b.fhe, spec_ref);
            let managed_errors = match &found {
                Some(r) => Analyzer::new()
                    .with_arch(arch_ref.clone())
                    .analyze(&r.managed)
                    .count(Severity::Error),
                None => 1, // unsearchable: gate failure
            };
            (opt, report, found, managed_errors)
        },
    );
    for (bi, (b, (opt, report, found, managed_errors))) in
        benchmarks.iter().zip(&analyses).enumerate()
    {
        let managed_errors = *managed_errors;
        let errors = report.count(Severity::Error);
        let warnings = report.count(Severity::Warning);
        let infos = report.count(Severity::Info);
        total_errors += errors;
        total_errors += managed_errors;

        println!(
            "{:<28} {:>6} {:>6} {:>9.1} {:>9.1} {:>5} {:>7} {:>9} {:>6}",
            b.name,
            b.opt.nodes_before,
            b.opt.nodes_after,
            report.noise.min_margin_wc,
            report.noise.min_margin_est,
            found.as_ref().map_or("-".into(), |r| r.l.to_string()),
            found.as_ref().map_or("-".into(), |r| r.n_secure.to_string()),
            found.as_ref().map_or("-".into(), |r| format!("{:+.1}", r.stats.min_margin_wc_after)),
            errors + managed_errors,
        );

        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", esc(b.name)));
        out.push_str(&format!("      \"scheme\": \"{}\",\n", b.scheme.label()));
        out.push_str(&format!("      \"n\": {},\n", b.n));
        out.push_str(&format!("      \"l\": {},\n", b.l));
        out.push_str(&format!("      \"nodes_before_opt\": {},\n", b.opt.nodes_before));
        out.push_str(&format!("      \"nodes_after_opt\": {},\n", b.opt.nodes_after));
        out.push_str(&format!("      \"keyswitch_ops\": {},\n", opt.keyswitch_count()));
        out.push_str("      \"noise\": {\n");
        out.push_str(&format!(
            "        \"min_margin_wc_bits\": {:.1},\n",
            report.noise.min_margin_wc
        ));
        out.push_str(&format!(
            "        \"min_margin_est_bits\": {:.1},\n",
            report.noise.min_margin_est
        ));
        out.push_str(&format!(
            "        \"critical_node\": {},\n",
            report.noise.critical.map_or("null".to_string(), |c| c.0.to_string())
        ));
        out.push_str(&format!(
            "        \"critical_path\": [{}]\n",
            report
                .noise
                .critical_path
                .iter()
                .map(|v| v.0.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("      },\n");
        out.push_str("      \"managed\": ");
        match &found {
            Some(r) => {
                out.push_str("{\n");
                out.push_str(&format!("        \"policy\": \"{}\",\n", spec.policy.label()));
                out.push_str(&format!("        \"l\": {},\n", r.l));
                out.push_str(&format!("        \"n_secure\": {},\n", r.n_secure));
                out.push_str(&format!("        \"security_bits\": {:.1},\n", r.security_bits));
                out.push_str(&format!(
                    "        \"min_margin_wc_bits\": {:.1},\n",
                    r.stats.min_margin_wc_after
                ));
                out.push_str(&format!(
                    "        \"min_margin_est_bits\": {:.1},\n",
                    r.stats.min_margin_est_after
                ));
                out.push_str(&format!("        \"rescales_inserted\": {},\n", r.stats.inserted));
                out.push_str(&format!("        \"hand_switches_dropped\": {},\n", r.stats.dropped));
                out.push_str(&format!("        \"errors\": {managed_errors}\n"));
                out.push_str("      },\n");
            }
            None => out.push_str("null,\n"),
        }
        out.push_str("      \"pressure\": {\n");
        out.push_str(&format!(
            "        \"peak_live_bytes\": {},\n",
            report.pressure.peak_live_bytes
        ));
        out.push_str(&format!("        \"live_at_peak\": {},\n", report.pressure.live_at_peak));
        out.push_str(&format!("        \"max_hint_bytes\": {},\n", report.pressure.max_hint_bytes));
        out.push_str(&format!(
            "        \"total_hint_bytes\": {},\n",
            report.pressure.total_hint_bytes
        ));
        out.push_str(&format!("        \"distinct_hints\": {},\n", report.pressure.distinct_hints));
        out.push_str(&format!("        \"capacity_bytes\": {},\n", report.pressure.capacity_bytes));
        out.push_str(&format!("        \"spills\": {}\n", report.pressure.spills()));
        out.push_str("      },\n");
        out.push_str("      \"waivers\": [");
        // The waiver list is static per benchmark (the same override is
        // installed for every hand-managed program); reconstruct it here
        // rather than shipping an Analyzer out of the parallel region.
        let mut waiver_src = Analyzer::new();
        waiver_src.registry_mut().override_severity(
            "noise::budget-exhausted",
            Severity::Info,
            Benchmark::HAND_MANAGED_NOTE,
        );
        let waivers: Vec<String> = waiver_src
            .registry_mut()
            .overrides()
            .iter()
            .map(|o| {
                format!(
                    "{{\"rule\": \"{}\", \"severity\": \"{}\", \"justification\": \"{}\"}}",
                    esc(&o.rule),
                    o.severity.label(),
                    esc(&o.justification)
                )
            })
            .collect();
        out.push_str(&waivers.join(", "));
        out.push_str("],\n");
        out.push_str("      \"diagnostics\": [");
        let diags: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "\n        {{\"rule\": \"{}\", \"severity\": \"{}\", \"node\": {}, \"message\": \"{}\"}}",
                    esc(d.rule),
                    d.severity.label(),
                    d.node.map_or("null".to_string(), |v| v.0.to_string()),
                    esc(&d.message)
                )
            })
            .collect();
        out.push_str(&diags.join(","));
        if !diags.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("],\n");
        out.push_str(&format!("      \"errors\": {errors},\n"));
        out.push_str(&format!("      \"warnings\": {warnings},\n"));
        out.push_str(&format!("      \"infos\": {infos}\n"));
        out.push_str("    }");
        out.push_str(if bi + 1 < benchmarks.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"total_errors\": {total_errors}\n"));
    out.push_str("}\n");

    std::fs::write(&out_path, out).expect("failed to write analysis JSON");
    println!("\nwrote {out_path}");

    if total_errors > 0 {
        println!("FAILED: {total_errors} Error-severity diagnostic(s) across the suite");
        std::process::exit(1);
    }
    println!("no Error-severity diagnostics across the suite (managed gate included)");
}
