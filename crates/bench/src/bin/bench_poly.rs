//! Software polynomial-stack microbenchmarks with a tracked JSON trajectory.
//!
//! Times the hot kernels of the CPU baseline — forward/inverse NTT (lazy
//! and retained-reference), negacyclic multiplication, decomposition
//! key-switching (scratch-arena and a faithful reconstruction of the
//! pre-lazy-reduction allocation-heavy formulation), and a full BGV
//! homomorphic multiply — at paper sizes, and writes `BENCH_poly.json`
//! so every PR has a recorded perf trajectory.
//!
//! ```text
//! cargo run -p f1-bench --release --bin bench_poly            # full suite
//! F1_BENCH_QUICK=1 cargo run ... --bin bench_poly             # CI smoke
//! cargo run ... --bin bench_poly -- --check BENCH_poly.json   # regression gate
//! ```
//!
//! `--check <file>` compares the fresh run against a previously committed
//! JSON: it fails (exit 1) if any matching kernel regressed by more than
//! 1.5x, and always enforces the lazy-vs-reference speedup floor (NTT and
//! key-switch must be ≥ 2x faster than the pre-PR kernels).

use f1_fhe::bgv::{KeySet, Plaintext};
use f1_fhe::keys::SecretKey;
use f1_fhe::keyswitch::{DecompHint, KsScratch};
use f1_fhe::params::BgvParams;
use f1_modarith::{primes, Modulus};
use f1_poly::ntt::NttTables;
use f1_poly::rns::{Domain, RnsContext, RnsPoly};
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Minimum wall time per timed sample, so fast kernels batch iterations.
const SAMPLE_TARGET_S: f64 = 0.01;

/// One measured kernel data point.
struct Record {
    kernel: &'static str,
    n: usize,
    level: usize,
    ns_per_op: f64,
}

impl Record {
    fn throughput(&self) -> f64 {
        1e9 / self.ns_per_op
    }
    fn key(&self) -> (String, usize, usize) {
        (self.kernel.to_string(), self.n, self.level)
    }
}

/// Times `f`, returning the median per-iteration nanoseconds across
/// `samples` samples (each sample batches iterations to ~10 ms).
fn time_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up and per-iteration estimate.
    let start = Instant::now();
    f();
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((SAMPLE_TARGET_S / once) as u64).clamp(1, 1 << 20);
    let mut per_iter = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    per_iter[per_iter.len() / 2]
}

/// The pre-PR key-switch formulation, reconstructed faithfully for the
/// before/after record: strict (non-lazy) butterflies for every transform,
/// per-digit allocation of the lift, `truncate_level` clones of both hint
/// rows, and operator-chaining (`u0 = u0.add(&lifted.mul(&row))`) instead
/// of fused in-place accumulation.
fn keyswitch_pre_pr(hint: &DecompHint, x: &RnsPoly) -> (RnsPoly, RnsPoly) {
    let l = x.level();
    let ctx = x.context().clone();
    let n = x.n();
    // y = [INTT_reference(x[i])].
    let mut y = x.clone();
    for i in 0..l {
        ctx.tables(i).inverse_reference(y.limb_mut(i));
    }
    y.assume_domain(Domain::Coefficient);
    let mut u0 = RnsPoly::zero_ntt_at_level(&ctx, l);
    let mut u1 = u0.clone();
    for i in 0..l {
        let mi = *ctx.modulus(i);
        let mut lifted = RnsPoly::zero_at_level(&ctx, l);
        for j in 0..l {
            if j == i {
                lifted.limb_mut(j).copy_from_slice(x.limb(i));
                continue;
            }
            let mj = *ctx.modulus(j);
            for c in 0..n {
                let v = mj.reduce_i64(mi.center(y.limb(i)[c]));
                lifted.limb_mut(j)[c] = v;
            }
            ctx.tables(j).forward_reference(lifted.limb_mut(j));
        }
        lifted.assume_domain(Domain::Ntt);
        let row0 = hint.row(i).0.truncate_level(l);
        let row1 = hint.row(i).1.truncate_level(l);
        u0 = u0.add(&lifted.mul(&row0));
        u1 = u1.add(&lifted.mul(&row1));
    }
    (u0, u1)
}

fn bench_ntt(records: &mut Vec<Record>, samples: usize, sizes: &[usize]) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1);
    for &n in sizes {
        let q = primes::ntt_friendly_primes(n, 30, 1)[0];
        let m = Modulus::new(q);
        let tables = NttTables::new(n, m);
        let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let b: Vec<u32> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let mut buf = a.clone();
        records.push(Record {
            kernel: "ntt_forward",
            n,
            level: 1,
            ns_per_op: time_ns(samples, || {
                buf.copy_from_slice(&a);
                tables.forward(&mut buf);
            }),
        });
        records.push(Record {
            kernel: "ntt_forward_ref",
            n,
            level: 1,
            ns_per_op: time_ns(samples, || {
                buf.copy_from_slice(&a);
                tables.forward_reference(&mut buf);
            }),
        });
        let mut a_hat = a.clone();
        tables.forward(&mut a_hat);
        records.push(Record {
            kernel: "ntt_inverse",
            n,
            level: 1,
            ns_per_op: time_ns(samples, || {
                buf.copy_from_slice(&a_hat);
                tables.inverse(&mut buf);
            }),
        });
        records.push(Record {
            kernel: "ntt_inverse_ref",
            n,
            level: 1,
            ns_per_op: time_ns(samples, || {
                buf.copy_from_slice(&a_hat);
                tables.inverse_reference(&mut buf);
            }),
        });
        records.push(Record {
            kernel: "negacyclic_mul",
            n,
            level: 1,
            ns_per_op: time_ns(samples, || {
                let _ = tables.negacyclic_mul(&a, &b);
            }),
        });
    }
}

fn bench_keyswitch(records: &mut Vec<Record>, samples: usize, points: &[(usize, usize)]) {
    for &(n, l) in points {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x4B5);
        let ctx = RnsContext::for_ring(n, 30, l);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let target = sk.s_squared_at_level(l);
        let hint = DecompHint::generate(&sk, &target, l, 65537, 8, &mut rng);
        let x = RnsPoly::random_at_level(&ctx, l, &mut rng).to_ntt();
        let mut scratch = KsScratch::default();
        records.push(Record {
            kernel: "keyswitch",
            n,
            level: l,
            ns_per_op: time_ns(samples, || {
                let _ = hint.apply_with_scratch(&x, &mut scratch);
            }),
        });
        records.push(Record {
            kernel: "keyswitch_pre_pr",
            n,
            level: l,
            ns_per_op: time_ns(samples, || {
                let _ = keyswitch_pre_pr(&hint, &x);
            }),
        });
    }
}

fn bench_bgv_mul(records: &mut Vec<Record>, samples: usize, points: &[(usize, usize)]) {
    for &(n, l) in points {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB6);
        let params = BgvParams::test_small(n, l);
        let keys = KeySet::generate(&params, &mut rng);
        let m1 = Plaintext::from_coeffs(&params, &[3, 1, 4]);
        let m2 = Plaintext::from_coeffs(&params, &[1, 5]);
        let ct1 = keys.encrypt(&m1, &mut rng);
        let ct2 = keys.encrypt(&m2, &mut rng);
        let mut scratch = KsScratch::default();
        records.push(Record {
            kernel: "bgv_mul",
            n,
            level: l,
            ns_per_op: time_ns(samples, || {
                let _ = ct1.mul_with_scratch(&ct2, keys.relin_hint(), &mut scratch);
            }),
        });
    }
}

fn write_json(path: &str, records: &[Record], quick: bool) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"f1-bench-poly-v1\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_threads\": {},\n", rayon::current_num_threads()));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"level\": {}, \"ns_per_op\": {:.1}, \"throughput_ops_per_s\": {:.1}}}{comma}\n",
            r.kernel, r.n, r.level, r.ns_per_op, r.throughput()
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Parses records out of a previously emitted `BENCH_poly.json` (one
/// record object per line, the exact format [`write_json`] produces).
fn parse_json(text: &str) -> Vec<(String, usize, usize, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"kernel\":") {
            continue;
        }
        let field = |key: &str| -> Option<&str> {
            let pat = format!("\"{key}\": ");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"'))
        };
        if let (Some(k), Some(n), Some(l), Some(ns)) =
            (field("kernel"), field("n"), field("level"), field("ns_per_op"))
        {
            if let (Ok(n), Ok(l), Ok(ns)) = (n.parse(), l.parse(), ns.parse()) {
                out.push((k.to_string(), n, l, ns));
            }
        }
    }
    out
}

/// Enforces the lazy-vs-reference speedup floor on a fresh run: the
/// rewritten kernels must hold ≥ `min_ratio`x over the retained pre-PR
/// kernels. Returns failure descriptions.
fn check_speedup_floor(records: &[Record], min_ratio: f64) -> Vec<String> {
    let pairs = [
        ("ntt_forward", "ntt_forward_ref"),
        ("ntt_inverse", "ntt_inverse_ref"),
        ("keyswitch", "keyswitch_pre_pr"),
    ];
    let mut failures = Vec::new();
    for (new, old) in pairs {
        for r_new in records.iter().filter(|r| r.kernel == new) {
            let Some(r_old) = records
                .iter()
                .find(|r| r.kernel == old && r.n == r_new.n && r.level == r_new.level)
            else {
                continue;
            };
            let ratio = r_old.ns_per_op / r_new.ns_per_op;
            if ratio < min_ratio {
                failures.push(format!(
                    "{new} n={} L={}: only {ratio:.2}x over {old} (need >= {min_ratio}x)",
                    r_new.n, r_new.level
                ));
            }
        }
    }
    failures
}

fn main() {
    let quick = std::env::var("F1_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
    let args: Vec<String> = std::env::args().collect();
    let check_path =
        args.iter().position(|a| a == "--check").and_then(|i| args.get(i + 1)).cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_poly.json".to_string());

    let samples = if quick { 5 } else { 15 };
    let ntt_sizes: &[usize] = if quick { &[1 << 13] } else { &[1 << 13, 1 << 14] };
    let ks_points: &[(usize, usize)] =
        if quick { &[(1 << 13, 4)] } else { &[(1 << 13, 4), (1 << 13, 16), (1 << 14, 8)] };
    let mul_points: &[(usize, usize)] =
        if quick { &[(1 << 13, 4)] } else { &[(1 << 13, 4), (1 << 14, 8)] };

    // Read the committed reference BEFORE running (and before `--out`
    // overwrites it, which is the normal CI flow).
    let reference_text = check_path.as_ref().map(|path| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read reference {path}: {e}"))
    });

    let mut records = Vec::new();
    println!("Polynomial-stack microbenchmarks (quick={quick}, samples={samples})\n");
    bench_ntt(&mut records, samples, ntt_sizes);
    bench_keyswitch(&mut records, samples, ks_points);
    bench_bgv_mul(&mut records, samples, mul_points);

    println!("{:<20} {:>8} {:>6} {:>14} {:>16}", "kernel", "n", "L", "ns/op", "ops/s");
    for r in &records {
        println!(
            "{:<20} {:>8} {:>6} {:>14.1} {:>16.1}",
            r.kernel,
            r.n,
            r.level,
            r.ns_per_op,
            r.throughput()
        );
    }

    write_json(&out_path, &records, quick).expect("failed to write benchmark JSON");
    println!("\nwrote {out_path}");

    let mut failed = false;
    let floor_failures = check_speedup_floor(&records, 2.0);
    if floor_failures.is_empty() {
        println!("speedup floor: all rewritten kernels >= 2x over pre-PR kernels");
    } else {
        for f in &floor_failures {
            println!("SPEEDUP FLOOR FAILED: {f}");
        }
        failed = true;
    }

    if let (Some(path), Some(text)) = (check_path, reference_text) {
        let reference = parse_json(&text);
        assert!(!reference.is_empty(), "reference {path} holds no parseable records");
        // Host-speed normalization: the pre-PR kernels (`*_ref`,
        // `keyswitch_pre_pr`) are frozen code, so their current/reference
        // ratio measures how fast *this host* is relative to the machine
        // that recorded the JSON, not any code change. Scaling the 1.5x
        // gate by their median ratio keeps the check meaningful when CI
        // runs on different hardware than the committed reference.
        let mut probe_ratios: Vec<f64> = Vec::new();
        for (k, n, l, ref_ns) in &reference {
            if !(k.ends_with("_ref") || k == "keyswitch_pre_pr") {
                continue;
            }
            if let Some(cur) = records.iter().find(|r| r.key() == (k.clone(), *n, *l)) {
                probe_ratios.push(cur.ns_per_op / ref_ns);
            }
        }
        probe_ratios.sort_by(|a, b| a.total_cmp(b));
        let host_scale =
            if probe_ratios.is_empty() { 1.0 } else { probe_ratios[probe_ratios.len() / 2] };
        println!("host-speed scale vs reference machine: {host_scale:.2}x (from frozen kernels)");
        let mut compared = 0usize;
        for (k, n, l, ref_ns) in reference {
            let Some(cur) = records.iter().find(|r| r.key() == (k.clone(), n, l)) else {
                continue;
            };
            compared += 1;
            let ratio = cur.ns_per_op / (ref_ns * host_scale);
            if ratio > 1.5 {
                println!(
                    "REGRESSION: {k} n={n} L={l}: {:.1} ns vs host-normalized reference {:.1} ns ({ratio:.2}x)",
                    cur.ns_per_op,
                    ref_ns * host_scale
                );
                failed = true;
            }
        }
        println!("regression check vs {path}: {compared} kernels compared");
    }

    if failed {
        std::process::exit(1);
    }
}
