//! Table 3: full-benchmark execution times, CPU vs F1, and speedups.
//!
//! CPU times come from measured per-operation costs of the real `f1-fhe`
//! implementation charged against each program's operation mix
//! (DESIGN.md §2.2); F1 times come from the cycle-accurate schedule.
//!
//! Structure: per-op CPU costs are measured first, serially, on an
//! otherwise-quiet machine (they are wall-clock timings and memoized
//! across benchmarks), then the seven compile-and-simulate runs execute
//! concurrently — schedules and cycle counts are deterministic, so
//! parallelism changes wall time only.

use f1_arch::ArchConfig;
use f1_bench::{bench_scale, gmean, run_benchmark};
use f1_sim::SimReport;
use f1_workloads::{all_benchmarks, CpuBaseline};

fn main() {
    let scale = bench_scale();
    let arch = ArchConfig::f1_default();
    println!("Table 3: Performance of F1 and CPU on full FHE benchmarks (scale 1/{scale})\n");
    let benches = all_benchmarks(scale);
    // Phase 1: serial per-op measurement (memoized across benchmarks).
    let t0 = std::time::Instant::now();
    let baselines: Vec<CpuBaseline> =
        benches.iter().map(|b| CpuBaseline::measure(&b.program, 2048)).collect();
    eprintln!("[timing] baseline measurement: {:.2}s", t0.elapsed().as_secs_f64());
    // Phase 2: compile + simulate, in parallel when the host has spare
    // cores (schedules and cycle counts are deterministic either way).
    let t1 = std::time::Instant::now();
    let mut reports: Vec<Option<SimReport>> = (0..benches.len()).map(|_| None).collect();
    let arch_ref = &arch;
    let serial = f1_compiler::par::compile_threads() <= 1
        || std::env::var("F1_TABLE3_SERIAL").map(|v| v != "0").unwrap_or(false);
    if serial {
        for (b, slot) in benches.iter().zip(reports.iter_mut()) {
            let t = std::time::Instant::now();
            *slot = Some(run_benchmark(b, arch_ref));
            eprintln!("[timing] {:<30} schedule {:>6.2}s", b.name, t.elapsed().as_secs_f64());
        }
    } else {
        rayon::scope(|s| {
            for (b, slot) in benches.iter().zip(reports.iter_mut()) {
                s.spawn(move || {
                    let t = std::time::Instant::now();
                    *slot = Some(run_benchmark(b, arch_ref));
                    eprintln!(
                        "[timing] {:<30} schedule {:>6.2}s",
                        b.name,
                        t.elapsed().as_secs_f64()
                    );
                });
            }
        });
    }
    eprintln!("[timing] schedule+simulate: {:.2}s", t1.elapsed().as_secs_f64());

    println!("{:<30} {:>12} {:>12} {:>10}", "Benchmark", "CPU [ms]", "F1 [ms]", "Speedup");
    let mut speedups = Vec::new();
    for ((b, baseline), report) in benches.iter().zip(&baselines).zip(&reports) {
        let report = report.as_ref().expect("benchmark scheduled");
        let cpu_s = baseline.estimate_seconds_parallel(&b.program, b.n);
        let f1_ms = report.seconds * 1e3;
        let cpu_ms = cpu_s * 1e3;
        let speedup = cpu_s / report.seconds;
        speedups.push(speedup);
        println!("{:<30} {:>12.2} {:>12.4} {:>9.0}x", b.name, cpu_ms, f1_ms, speedup);
    }
    println!("{:<30} {:>12} {:>12} {:>9.0}x", "gmean speedup", "", "", gmean(&speedups));
    println!("\nPaper speedups: 5,011x / 17,412x / 15,086x / 7,217x / 6,722x / 1,830x / 1,195x (gmean 5,432x)");
    println!("Shape targets: 3-4 orders of magnitude; CKKS bootstrapping lowest (memory-bound).");

    // IR optimization effect: hom-op and expanded-DFG node counts before
    // vs after the frontend passes (CSE, DCE, rotation dedup, constant
    // folding, key-switch hoisting). Both variants expand under the same
    // options against the same machine; note the Auto key-switch chooser
    // re-decides per variant, so a flipped choice can shift (even
    // occasionally invert) the DFG delta — the signed percentage keeps
    // that honest. (Re-expanding here costs a few extra linear passes;
    // scheduling still dominates this bin's runtime.)
    println!("\nIR pass effect (frontend passes before key-switch expansion):");
    println!(
        "{:<30} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "Benchmark", "HomOps", "(opt)", "DFG nodes", "(opt)", "Saved"
    );
    for b in &benches {
        let opts = f1_compiler::ExpandOptions { machine: Some(arch.clone()), ..Default::default() };
        let dfg_before = f1_compiler::expand::expand(&b.program_unopt, &opts).dfg.instrs().len();
        let dfg_after = f1_compiler::expand::expand(&b.program, &opts).dfg.instrs().len();
        let saved = 100.0 * (dfg_before as f64 - dfg_after as f64) / (dfg_before.max(1)) as f64;
        println!(
            "{:<30} {:>9} {:>9} {:>10} {:>10} {:>7.1}%",
            b.name, b.opt.nodes_before, b.opt.nodes_after, dfg_before, dfg_after, saved
        );
    }

    // Rolled-loop frontend sizes: builders that express their main loop
    // as a Repeat region store the body once; the flat (unrolled) count
    // is what every later pass sees.
    println!("\nRolled loop regions (frontend node counts):");
    println!("{:<30} {:>9} {:>10} {:>8}", "Benchmark", "Rolled", "Unrolled", "Saved");
    for b in &benches {
        let unrolled = b.fhe.nodes().len();
        match b.rolled_nodes {
            Some(rolled) => {
                let saved = 100.0 * (unrolled as f64 - rolled as f64) / unrolled.max(1) as f64;
                println!("{:<30} {:>9} {:>10} {:>7.1}%", b.name, rolled, unrolled, saved);
            }
            None => println!("{:<30} {:>9} {:>10} {:>8}", b.name, "-", unrolled, "flat"),
        }
    }
}
