//! Table 3: full-benchmark execution times, CPU vs F1, and speedups.
//!
//! CPU times come from measured per-operation costs of the real `f1-fhe`
//! implementation charged against each program's operation mix
//! (DESIGN.md §2.2); F1 times come from the cycle-accurate schedule.

use f1_arch::ArchConfig;
use f1_bench::{bench_scale, gmean, run_benchmark};
use f1_workloads::{all_benchmarks, CpuBaseline};

fn main() {
    let scale = bench_scale();
    let arch = ArchConfig::f1_default();
    println!("Table 3: Performance of F1 and CPU on full FHE benchmarks (scale 1/{scale})\n");
    println!("{:<30} {:>12} {:>12} {:>10}", "Benchmark", "CPU [ms]", "F1 [ms]", "Speedup");
    let mut speedups = Vec::new();
    for b in all_benchmarks(scale) {
        let report = run_benchmark(&b, &arch);
        let baseline = CpuBaseline::measure(&b.program, 2048);
        let cpu_s = baseline.estimate_seconds_parallel(&b.program, b.n);
        let f1_ms = report.seconds * 1e3;
        let cpu_ms = cpu_s * 1e3;
        let speedup = cpu_s / report.seconds;
        speedups.push(speedup);
        println!("{:<30} {:>12.2} {:>12.4} {:>9.0}x", b.name, cpu_ms, f1_ms, speedup);
    }
    println!("{:<30} {:>12} {:>12} {:>9.0}x", "gmean speedup", "", "", gmean(&speedups));
    println!("\nPaper speedups: 5,011x / 17,412x / 15,086x / 7,217x / 6,722x / 1,830x / 1,195x (gmean 5,432x)");
    println!("Shape targets: 3-4 orders of magnitude; CKKS bootstrapping lowest (memory-bound).");
}
