//! `(N, L)` parameter-search driver over the benchmark suite.
//!
//! For every benchmark, finds the smallest `(N, L)` whose
//! rescale-managed program proves the default margin target (8 bits
//! worst-case) at ≥ 128-bit security — pure static analysis, no trial
//! decryptions — then validates one found point against real software
//! BGV: the managed program and the paper's hand-managed program must
//! decrypt bit-identically on the same inputs.
//!
//! ```text
//! cargo run -p f1-bench --release --bin param_search             # all + validate
//! cargo run ... --bin param_search -- --quick                    # validate db_lookup only
//! cargo run ... --bin param_search -- --no-validate --out P.json
//! ```
//!
//! The search runs over the full-size (scale 1) suite and is
//! deterministic, so CI regenerates `PARAM_SEARCH.json` and diffs it
//! against the committed file. The BGV validation runs on a
//! width-reduced instance (widths don't change the found `L`; depth is
//! preserved at every scale).

use f1_compiler::analysis::param_search::{search, SearchSpec};
use f1_compiler::ir::FheProgram;
use f1_fhe::bgv::Plaintext;
use f1_fhe::params::BgvParams;
use f1_sim::{bind_constants, BgvExecutor};
use f1_workloads::{all_benchmarks, benchmarks};
use rand::SeedableRng;
use std::collections::HashMap;

/// Runs a typed program functionally on real software BGV, binding
/// ciphertext/plaintext inputs by build-time ordinal.
fn run_functional(
    fhe: &FheProgram,
    params: &BgvParams,
    ct_data: &[Plaintext],
    pt_data: &[Plaintext],
) -> Vec<Plaintext> {
    let lowered = fhe.lower();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1D1F);
    let exec = BgvExecutor::new(params.clone(), &lowered.program, &mut rng);
    let mut inputs = HashMap::new();
    for &(ordinal, id) in &lowered.ct_inputs {
        inputs.insert(id, ct_data[ordinal as usize % ct_data.len()].clone());
    }
    let mut plains = bind_constants(&lowered, params);
    for &(ordinal, id) in &lowered.pt_inputs {
        plains.insert(id, pt_data[ordinal as usize % pt_data.len()].clone());
    }
    exec.run(&lowered.program, &inputs, &plains, &mut rng).outputs
}

/// Differential validation: the managed program must decrypt
/// bit-identically to the hand-managed original on real software BGV.
fn validate(name: &str, hand: &FheProgram, spec: &SearchSpec) -> bool {
    let r = match search(hand, spec) {
        Some(r) => r,
        None => {
            println!("  {name}: SEARCH FAILED, nothing to validate");
            return false;
        }
    };
    // One key set covers both variants: provision the chain at the
    // deeper of the two input levels.
    let hand_top = hand.nodes().iter().map(|n| n.ty.level).max().unwrap_or(1);
    let max_level = r.l.max(hand_top);
    let params = BgvParams::test_small(hand.n, max_level);
    let ct_data: Vec<Plaintext> = (0..16)
        .map(|i| Plaintext::from_coeffs(&params, &[(3 * i + 1) as u64, (i % 5) as u64]))
        .collect();
    let pt_data: Vec<Plaintext> =
        (0..16).map(|i| Plaintext::from_coeffs(&params, &[(2 * i + 1) as u64])).collect();
    let out_hand = run_functional(hand, &params, &ct_data, &pt_data);
    let out_managed = run_functional(&r.managed, &params, &ct_data, &pt_data);
    let mut ok = out_hand.len() == out_managed.len();
    if ok {
        'outer: for (h, m) in out_hand.iter().zip(&out_managed) {
            for j in 0..hand.n {
                if h.coeff(j) != m.coeff(j) {
                    ok = false;
                    break 'outer;
                }
            }
        }
    }
    println!(
        "  {name}: managed (L={}, N={}) vs hand-managed on software BGV: {}",
        r.l,
        r.n_secure,
        if ok { "bit-identical" } else { "MISMATCH" }
    );
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_validate = args.iter().any(|a| a == "--no-validate");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "PARAM_SEARCH.json".to_string());

    let spec = SearchSpec::default();
    let benchmarks_full = all_benchmarks(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"f1-param-search-v1\",\n");
    out.push_str("  \"scale\": 1,\n");
    out.push_str(&format!(
        "  \"spec\": {{\"target_margin_bits\": {:.1}, \"min_security_bits\": {:.1}, \"policy\": \"{}\", \"max_l\": {}}},\n",
        spec.target_margin_bits,
        spec.min_security_bits,
        spec.policy.label(),
        spec.max_l
    ));
    out.push_str("  \"benchmarks\": [\n");

    println!(
        "{:<28} {:>6} {:>5} {:>5} {:>8} {:>8} {:>9} {:>9} {:>8} {:>9}",
        "benchmark",
        "paperL",
        "L*",
        "lg N*",
        "sec-bits",
        "wc-marg",
        "est-marg",
        "inserted",
        "dropped",
        "wc-hand"
    );
    let mut failures = 0usize;
    for (bi, b) in benchmarks_full.iter().enumerate() {
        let found = search(&b.fhe, &spec);
        match &found {
            Some(r) => {
                println!(
                    "{:<28} {:>6} {:>5} {:>5} {:>8.1} {:>8.1} {:>9.1} {:>9} {:>8} {:>9.1}",
                    b.name,
                    b.l,
                    r.l,
                    r.n_secure.ilog2(),
                    r.security_bits,
                    r.stats.min_margin_wc_after,
                    r.stats.min_margin_est_after,
                    r.stats.inserted,
                    r.stats.dropped,
                    r.stats.min_margin_wc_before
                );
            }
            None => {
                println!(
                    "{:<28} {:>6} SEARCH FAILED (no L ≤ {} meets the target)",
                    b.name, b.l, spec.max_l
                );
                failures += 1;
            }
        }
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", b.name.replace('"', "\\\"")));
        out.push_str(&format!("      \"scheme\": \"{}\",\n", b.scheme.label()));
        out.push_str(&format!("      \"paper\": {{\"n\": {}, \"l\": {}}},\n", b.n, b.l));
        match &found {
            Some(r) => {
                out.push_str("      \"found\": {\n");
                out.push_str(&format!("        \"l\": {},\n", r.l));
                out.push_str(&format!("        \"n_secure\": {},\n", r.n_secure));
                out.push_str(&format!("        \"security_bits\": {:.1},\n", r.security_bits));
                out.push_str(&format!(
                    "        \"min_margin_wc_bits\": {:.1},\n",
                    r.stats.min_margin_wc_after
                ));
                out.push_str(&format!(
                    "        \"min_margin_est_bits\": {:.1},\n",
                    r.stats.min_margin_est_after
                ));
                out.push_str(&format!("        \"rescales_inserted\": {},\n", r.stats.inserted));
                out.push_str(&format!("        \"hand_switches_dropped\": {}\n", r.stats.dropped));
                out.push_str("      }\n");
            }
            None => out.push_str("      \"found\": null\n"),
        }
        out.push_str("    }");
        out.push_str(if bi + 1 < benchmarks_full.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(&out_path, out).expect("failed to write param-search JSON");
    println!("\nwrote {out_path}");

    if !no_validate {
        // Differential validation on real software BGV, width-reduced
        // for runtime (depth — and therefore the found L — is
        // scale-invariant).
        println!("\nvalidating against software BGV:");
        let db = benchmarks::db_lookup(64);
        if !validate(db.name, &db.fhe, &spec) {
            failures += 1;
        }
        if !quick {
            let boot = benchmarks::bgv_bootstrapping(64);
            if !validate(boot.name, &boot.fhe, &spec) {
                failures += 1;
            }
        }
    }

    if failures > 0 {
        println!("FAILED: {failures} benchmark(s) unsearchable or mismatched");
        std::process::exit(1);
    }
}
