//! Tiny-pad sweep: makespan and traffic vs scratchpad capacity, 1–64 MB.
//!
//! The paper's decoupled data-movement design (§4.3) is only credible if
//! schedules stay *physically realizable* when the scratchpad shrinks:
//! spills and refetches must be co-scheduled with compute on the HBM
//! channel timelines, and consumers gated on refetch completion. This
//! sweep compiles LoLa-MNIST (unencrypted weights) at capacities from
//! 1 MB to the paper's 64 MB, validates every schedule with the
//! capacity-strict checker, and emits the makespan/traffic curve.
//!
//! Exits non-zero if makespan ever *increases* with capacity — the
//! self-check CI runs at `F1_SCALE=8`.

use f1_arch::ArchConfig;
use f1_bench::bench_scale;
use f1_workloads::benchmarks::lola_mnist_uw;

fn main() {
    let scale = bench_scale();
    let b = lola_mnist_uw(scale);
    println!("# Tiny-pad sweep: {} (scale 1/{scale})", b.name);
    println!(
        "capacity_mb,makespan_cycles,ms,traffic_mb,noncompulsory_mb,spill_refetch_mb,fu_util_pct"
    );
    let mut prev: Option<(u64, u64)> = None;
    for mb in [1u64, 2, 4, 8, 16, 32, 64] {
        let arch = ArchConfig::f1_default().with_scratchpad_mb(mb);
        let (ex, plan, cs) = f1_compiler::compile(&b.program, &arch);
        let r = f1_sim::check_schedule(&ex, &plan, &cs, &arch);
        let t = r.traffic;
        println!(
            "{mb},{},{:.3},{:.1},{:.1},{:.1},{:.1}",
            r.makespan,
            r.seconds * 1e3,
            t.total() as f64 / (1 << 20) as f64,
            t.non_compulsory() as f64 / (1 << 20) as f64,
            (t.interm_load + t.interm_store) as f64 / (1 << 20) as f64,
            r.avg_fu_utilization * 100.0
        );
        if let Some((pmb, pm)) = prev {
            assert!(
                r.makespan <= pm,
                "makespan must not increase with capacity: {pm} @ {pmb} MB -> {} @ {mb} MB",
                r.makespan
            );
        }
        prev = Some((mb, r.makespan));
    }
    eprintln!("\nShape: thrashing below the working set, flat once it fits (paper: no");
    eprintln!("benchmark spills at 64 MB; the knee is where capacity stops binding).");
}
