//! Criterion bench: the two key-switch variants (Listing 1 decomposition
//! vs GHS) — the §2.4 compute/hint-size tradeoff, measured in software.

use criterion::{criterion_group, criterion_main, Criterion};
use f1_fhe::keys::SecretKey;
use f1_fhe::keyswitch::{DecompHint, GhsHint, KsScratch};
use f1_poly::rns::{RnsContext, RnsPoly};
use rand::SeedableRng;

fn bench_keyswitch(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let n = 1 << 12;
    let l = 4usize;
    let ctx = RnsContext::for_ring(n, 30, 2 * l);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let target = sk.s_squared_at_level(l);
    let target_full = sk.s_squared_at_level(2 * l);
    let decomp = DecompHint::generate(&sk, &target, l, 65537, 8, &mut rng);
    let ghs = GhsHint::generate(&sk, &target_full, l, 65537, 8, &mut rng);
    let x = RnsPoly::random_at_level(&ctx, l, &mut rng).to_ntt();
    let mut scratch = KsScratch::default();
    c.bench_function("keyswitch_decomp_n4096_l4", |b| b.iter(|| decomp.apply(&x)));
    c.bench_function("keyswitch_decomp_scratch_n4096_l4", |b| {
        b.iter(|| decomp.apply_with_scratch(&x, &mut scratch));
    });
    c.bench_function("keyswitch_ghs_n4096_l4", |b| b.iter(|| ghs.apply(&x)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_keyswitch
}
criterion_main!(benches);
