//! Criterion bench: software throughput of the four Table 1 multiplier
//! algorithms (complements the structural hardware model).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use f1_modarith::{mul, primes, Modulus};

fn bench_modmul(c: &mut Criterion) {
    let q = primes::fhe_friendly_primes(30, 1)[0];
    let m = Modulus::new(q);
    let xs: Vec<(u32, u32)> = (0..1024).map(|i| (i * 1_000_003 % q, i * 7_777_777 % q)).collect();
    let mut g = c.benchmark_group("modmul_1024ops");
    g.bench_function("barrett", |b| {
        b.iter_batched(
            || xs.clone(),
            |v| v.iter().map(|&(x, y)| mul::barrett(&m, x, y)).fold(0u32, u32::wrapping_add),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("montgomery", |b| {
        b.iter_batched(
            || xs.clone(),
            |v| v.iter().map(|&(x, y)| mul::montgomery(&m, x, y)).fold(0u32, u32::wrapping_add),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("ntt_friendly", |b| {
        b.iter_batched(
            || xs.clone(),
            |v| v.iter().map(|&(x, y)| mul::ntt_friendly(&m, x, y)).fold(0u32, u32::wrapping_add),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("fhe_friendly", |b| {
        b.iter_batched(
            || xs.clone(),
            |v| v.iter().map(|&(x, y)| mul::fhe_friendly(&m, x, y)).fold(0u32, u32::wrapping_add),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_modmul
}
criterion_main!(benches);
