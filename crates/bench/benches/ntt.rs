//! Criterion bench: lazy-reduction NTT vs the strict reference transform
//! vs the hardware-shaped four-step NTT.

use criterion::{criterion_group, criterion_main, Criterion};
use f1_modarith::{primes, Modulus};
use f1_poly::four_step::FourStepNtt;
use f1_poly::ntt::NttTables;

fn bench_ntt(c: &mut Criterion) {
    for log_n in [12usize, 14] {
        let n = 1 << log_n;
        let q = primes::ntt_friendly_primes(n, 30, 1)[0];
        let m = Modulus::new(q);
        let tables = NttTables::new(n, m);
        let four = FourStepNtt::new(n, 128, m);
        let a: Vec<u32> = (0..n as u32).map(|i| i % q).collect();
        c.bench_function(&format!("ntt_lazy_n{n}"), |b| {
            b.iter(|| {
                let mut x = a.clone();
                tables.forward(&mut x);
                x
            });
        });
        c.bench_function(&format!("ntt_reference_n{n}"), |b| {
            b.iter(|| {
                let mut x = a.clone();
                tables.forward_reference(&mut x);
                x
            });
        });
        c.bench_function(&format!("ntt_four_step_n{n}"), |b| b.iter(|| four.forward(&a)));
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_ntt
}
criterion_main!(benches);
