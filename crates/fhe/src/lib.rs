//! # f1-fhe — the FHE schemes F1 accelerates
//!
//! F1 accelerates *primitive* operations (modular arithmetic, NTTs,
//! automorphisms) rather than full homomorphic operations, which lets one
//! set of functional units serve BGV, CKKS and GSW (paper §2.5). This crate
//! is the software substrate implementing those schemes end to end:
//!
//! * [`params`] — parameter sets (ring dimension, RNS chain, plaintext
//!   modulus, security estimation per §2.2.3).
//! * [`keys`] — secret keys and key generation.
//! * [`keyswitch`] — the two key-switching implementations the paper's
//!   compiler chooses between (§2.4, §4.2): the `L²`-hint decomposition
//!   variant of Listing 1 and a GHS-style variant with `O(L)` hints.
//! * [`bgv`] — the BGV scheme: encryption, homomorphic add/multiply,
//!   rotations, modulus switching, noise accounting (§2.2).
//! * [`encoding`] — SIMD slot packing for BGV plaintexts.
//! * [`ckks`] — CKKS approximate arithmetic with encode/decode through the
//!   canonical embedding, rescaling, and rotations.
//! * [`gsw`] — ring-GSW bit encryption and the external product.
//! * [`bootstrap`] — non-packed bootstrapping for BGV (digit extraction)
//!   and CKKS (sine-series EvalMod), the procedures behind the paper's two
//!   bootstrapping benchmarks (§7).
//!
//! # Example
//!
//! ```
//! use f1_fhe::params::BgvParams;
//! use f1_fhe::bgv;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let params = BgvParams::test_small(64, 3);
//! let keys = bgv::KeySet::generate(&params, &mut rng);
//! let m = bgv::Plaintext::from_coeffs(&params, &[1, 2, 3]);
//! let ct = keys.encrypt(&m, &mut rng);
//! let ct2 = ct.mul(&ct, &keys.relin_hint());
//! assert_eq!(keys.decrypt(&ct2).coeff(0), 1); // 1*1
//! ```

#![forbid(unsafe_code)]
// Index loops intentionally mirror the per-element/slot/limb loops structure of the
// hardware they model; iterator rewrites obscure that correspondence.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod bgv;
pub mod bootstrap;
pub mod ckks;
pub mod encoding;
pub mod gsw;
pub mod keys;
pub mod keyswitch;
pub mod noise;
pub mod params;

pub use params::{BgvParams, CkksParams};
