//! SIMD slot packing for BGV plaintexts (§2.1).
//!
//! With a plaintext modulus `t ≡ 1 (mod 2N)` the ring `R_t` splits fully:
//! a plaintext polynomial is equivalent to a vector of `N` values mod `t`
//! (its evaluations at the primitive `2N`-th roots of unity mod `t`), and
//! homomorphic add/multiply act *slot-wise* while automorphisms permute
//! slots. We organize the `N` slots as the standard `2 × N/2` hypercube:
//! row `r`, position `j` holds the evaluation at exponent `±3^j mod 2N`,
//! so that the automorphism `σ_3` — the paper's `Rotate` — cyclically
//! rotates each row by one position.

use crate::bgv::Plaintext;
use crate::params::BgvParams;
use f1_modarith::Modulus;
use f1_poly::ntt::{bit_reverse, NttTables};

/// Encoder/decoder between slot vectors and BGV plaintexts.
#[derive(Debug)]
pub struct SlotEncoder {
    n: usize,
    t: u64,
    tables: NttTables,
    /// `slot_of[row][j]` = NTT output slot holding evaluation exponent
    /// `3^j` (row 0) or `-3^j` (row 1).
    slot_of: [Vec<usize>; 2],
}

impl SlotEncoder {
    /// Builds an encoder for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a prime with `t ≡ 1 (mod 2N)` (no full slot
    /// splitting exists otherwise).
    pub fn new(params: &BgvParams) -> Self {
        let n = params.n;
        let t = params.plaintext_modulus;
        let tm = Modulus::new(u32::try_from(t).expect("slot packing needs t < 2^31"));
        assert!(tm.supports_ntt(n), "plaintext modulus {t} is not ≡ 1 mod 2N; slots unavailable");
        let tables = NttTables::new(n, tm);
        let log_n = n.trailing_zeros();
        let two_n = 2 * n;
        let mut slot_of = [vec![0usize; n / 2], vec![0usize; n / 2]];
        let mut k = 1usize; // 3^0
        for j in 0..n / 2 {
            // Exponent k (row 0) and 2N - k (row 1); the NTT slot holding
            // evaluation exponent e is bitrev((e-1)/2).
            slot_of[0][j] = bit_reverse((k - 1) / 2, log_n);
            slot_of[1][j] = bit_reverse((two_n - k - 1) / 2, log_n);
            k = (k * 3) % two_n;
        }
        Self { n, t, tables, slot_of }
    }

    /// Number of slots per row (`N/2`).
    pub fn row_len(&self) -> usize {
        self.n / 2
    }

    /// Encodes a `2 × N/2` slot matrix into a plaintext polynomial.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not `N/2` long.
    pub fn encode(&self, rows: &[Vec<u64>; 2], params: &BgvParams) -> Plaintext {
        assert_eq!(rows[0].len(), self.n / 2);
        assert_eq!(rows[1].len(), self.n / 2);
        let mut evals = vec![0u32; self.n];
        for r in 0..2 {
            for j in 0..self.n / 2 {
                evals[self.slot_of[r][j]] = (rows[r][j] % self.t) as u32;
            }
        }
        self.tables.inverse(&mut evals);
        let coeffs: Vec<u64> = evals.iter().map(|&c| c as u64).collect();
        Plaintext::from_coeffs(params, &coeffs)
    }

    /// Decodes a plaintext polynomial into its `2 × N/2` slot matrix.
    pub fn decode(&self, m: &Plaintext) -> [Vec<u64>; 2] {
        let mut evals: Vec<u32> = m.coeffs().iter().map(|&c| c as u32).collect();
        self.tables.forward(&mut evals);
        let mut rows = [vec![0u64; self.n / 2], vec![0u64; self.n / 2]];
        for r in 0..2 {
            for j in 0..self.n / 2 {
                rows[r][j] = evals[self.slot_of[r][j]] as u64;
            }
        }
        rows
    }

    /// The automorphism exponent realizing a slot rotation by `amount`
    /// (each row rotates cyclically by `amount` positions): `3^amount`.
    pub fn rotation_exponent(&self, amount: usize) -> usize {
        f1_poly::automorphism::rotation_exponent(amount, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgv::KeySet;
    use rand::{Rng, SeedableRng};

    fn setup() -> (BgvParams, SlotEncoder, KeySet, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x51D7);
        let params = BgvParams::test_small(64, 3);
        let enc = SlotEncoder::new(&params);
        let keys = KeySet::generate(&params, &mut rng);
        (params, enc, keys, rng)
    }

    fn random_rows(n: usize, t: u64, rng: &mut impl Rng) -> [Vec<u64>; 2] {
        [
            (0..n / 2).map(|_| rng.gen_range(0..t)).collect(),
            (0..n / 2).map(|_| rng.gen_range(0..t)).collect(),
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (params, enc, _keys, mut rng) = setup();
        let rows = random_rows(64, params.plaintext_modulus, &mut rng);
        let m = enc.encode(&rows, &params);
        assert_eq!(enc.decode(&m), rows);
    }

    #[test]
    fn homomorphic_ops_are_slotwise() {
        let (params, enc, keys, mut rng) = setup();
        let t = params.plaintext_modulus;
        let r1 = random_rows(64, t, &mut rng);
        let r2 = random_rows(64, t, &mut rng);
        let ct1 = keys.encrypt(&enc.encode(&r1, &params), &mut rng);
        let ct2 = keys.encrypt(&enc.encode(&r2, &params), &mut rng);
        let sum = enc.decode(&keys.decrypt(&ct1.add(&ct2)));
        let prod = enc.decode(&keys.decrypt(&ct1.mul(&ct2, keys.relin_hint())));
        for r in 0..2 {
            for j in 0..32 {
                assert_eq!(sum[r][j], (r1[r][j] + r2[r][j]) % t, "add slot ({r},{j})");
                assert_eq!(
                    prod[r][j],
                    (r1[r][j] as u128 * r2[r][j] as u128 % t as u128) as u64,
                    "mul slot ({r},{j})"
                );
            }
        }
    }

    #[test]
    fn rotation_shifts_rows_cyclically() {
        let (params, enc, mut keys, mut rng) = setup();
        let rows: [Vec<u64>; 2] =
            [(0..32).map(|j| j as u64 + 1).collect(), (0..32).map(|j| j as u64 + 100).collect()];
        let ct = keys.encrypt(&enc.encode(&rows, &params), &mut rng);
        let k = enc.rotation_exponent(1);
        keys.add_rotation_hint(k, &mut rng);
        let rotated = ct.automorphism(k, keys.rotation_hint(k));
        let got = enc.decode(&keys.decrypt(&rotated));
        // σ_3 rotates each row by one position (direction pinned here).
        for r in 0..2 {
            let want: Vec<u64> = (0..32).map(|j| rows[r][(j + 1) % 32]).collect();
            let want_rev: Vec<u64> = (0..32).map(|j| rows[r][(j + 31) % 32]).collect();
            assert!(
                got[r] == want || got[r] == want_rev,
                "row {r} not a unit rotation: {:?}",
                &got[r][..6]
            );
        }
    }

    #[test]
    fn rotation_by_r_composes() {
        let (params, enc, mut keys, mut rng) = setup();
        let rows: [Vec<u64>; 2] =
            [(0..32).map(|j| j as u64).collect(), (0..32).map(|j| 2 * j as u64).collect()];
        let ct = keys.encrypt(&enc.encode(&rows, &params), &mut rng);
        let k1 = enc.rotation_exponent(1);
        let k3 = enc.rotation_exponent(3);
        keys.add_rotation_hint(k1, &mut rng);
        keys.add_rotation_hint(k3, &mut rng);
        let thrice = ct
            .automorphism(k1, keys.rotation_hint(k1))
            .automorphism(k1, keys.rotation_hint(k1))
            .automorphism(k1, keys.rotation_hint(k1));
        let direct = ct.automorphism(k3, keys.rotation_hint(k3));
        assert_eq!(
            enc.decode(&keys.decrypt(&thrice)),
            enc.decode(&keys.decrypt(&direct)),
            "rotate(1)^3 == rotate(3)"
        );
    }

    #[test]
    fn inner_sum_via_rotations() {
        // The innerSum pattern of Listing 2: log2(N/2) rotate-and-add steps
        // leave every slot of each row holding the row's total.
        let (params, enc, mut keys, mut rng) = setup();
        let t = params.plaintext_modulus;
        let rows = random_rows(64, 256, &mut rng);
        let mut ct = keys.encrypt(&enc.encode(&rows, &params), &mut rng);
        for i in 0..5 {
            let k = enc.rotation_exponent(1 << i);
            keys.add_rotation_hint(k, &mut rng);
            ct = ct.add(&ct.automorphism(k, keys.rotation_hint(k)));
        }
        let got = enc.decode(&keys.decrypt(&ct));
        for r in 0..2 {
            let total: u64 = rows[r].iter().sum::<u64>() % t;
            assert!(got[r].iter().all(|&v| v == total), "row {r} not all-equal to {total}");
        }
    }
}
