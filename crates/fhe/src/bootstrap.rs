//! Non-packed bootstrapping for BGV and CKKS (§7's two bootstrapping
//! benchmarks).
//!
//! Bootstrapping refreshes an exhausted ciphertext by homomorphically
//! evaluating (part of) the decryption function (§2.2.2). Both procedures
//! here are *functional*: they really do refresh ciphertexts, and the unit
//! tests decrypt the outputs to prove it. They follow the papers the F1
//! evaluation cites:
//!
//! * [`BgvBootstrapper`] — Alperin-Sheriff–Peikert-style \[3\] non-packed
//!   BGV bootstrapping for `t = 2`: modulus-switch the exhausted
//!   ciphertext to a power-of-two modulus, homomorphically decrypt with an
//!   encrypted secret key, project to the constant coefficient with the
//!   trace (a ladder of automorphisms — keyswitch-heavy, which is what
//!   makes bootstrapping expensive on F1), then clear the high digits by
//!   repeated squaring (digit extraction).
//! * [`CkksBootstrapper`] — HEAAN-style \[16\] non-packed CKKS
//!   bootstrapping: raise the modulus (which adds a `q_1 * I` error term),
//!   project to the constant coefficient with the trace, and evaluate
//!   `x mod q_1` via the scaled-sine approximation (Taylor series of the
//!   complex exponential followed by double-angle squarings).

use crate::bgv;
use crate::ckks;
use crate::keys::SecretKey;
use crate::keyswitch::GhsHint;
use crate::params::{BgvParams, CkksParams};
use rand::Rng;

/// The ladder of automorphism exponents whose composed `(1 + σ_k)` stages
/// compute the trace `Σ_k σ_k` over all `N` automorphisms: `3^{2^i}` for
/// `i = 0..ν-2` (covering the ⟨3⟩ subgroup) plus `2N - 1` (the `σ_{-1}`
/// coset).
pub fn trace_exponents(n: usize) -> Vec<usize> {
    let nu = n.trailing_zeros() as usize;
    let two_n = 2 * n;
    let mut exps = Vec::with_capacity(nu);
    let mut k = 3usize;
    for _ in 0..nu - 1 {
        exps.push(k);
        k = (k * k) % two_n;
    }
    exps.push(two_n - 1);
    exps
}

// ---------------------------------------------------------------------
// BGV
// ---------------------------------------------------------------------

/// Non-packed BGV bootstrapping for binary plaintexts (`t = 2`).
///
/// Pipeline (Alperin-Sheriff–Peikert \[3\] adapted to the RNS setting):
/// LSB→MSB conversion (multiply by `2^{-1} mod q_1`), modulus switch to
/// `q̃ = 2^ρ`, homomorphic inner product against `Enc(s)`, trace projection
/// to the constant slot, exact division by `N`, offset, and Halevi–Shoup
/// digit extraction (`ρ` levels deep, ~`ρ²/2` ciphertext squarings — the
/// "tens to hundreds of homomorphic operations" of §2.2.2).
///
/// Requires an *FHE-friendly* chain (`q ≡ 1 mod 2^16`), which pins every
/// mod-switch correction factor to 1 throughout the power-of-two plaintext
/// phases.
pub struct BgvBootstrapper {
    /// Bootstrapping plaintext modulus `t' = 2^{ν+ρ+1}` parameters
    /// (shares the ring context with the base scheme).
    boot_params: BgvParams,
    /// Keys over `t'` (same secret key as the base scheme).
    boot_keys: bgv::KeySet,
    /// `Enc_{t'}(s)` at the top level — the bootstrapping key.
    boot_key_ct: bgv::Ciphertext,
    /// Intermediate modulus width `ρ` (`q̃ = 2^ρ`).
    rho: u32,
    nu: u32,
}

impl BgvBootstrapper {
    /// Builds a bootstrapper for the base scheme of `base_keys`
    /// (which must use `t = 2`).
    ///
    /// `rho` is the power-of-two intermediate modulus width; it must be at
    /// least `ν + 2` so rounding errors stay below the noise budget, and
    /// the digit extraction consumes about `ρ` levels.
    ///
    /// # Panics
    ///
    /// Panics if the base plaintext modulus is not 2 or `rho < ν + 2`.
    pub fn new(base_params: &BgvParams, sk: &SecretKey, rho: u32, rng: &mut impl Rng) -> Self {
        assert_eq!(base_params.plaintext_modulus, 2, "BGV bootstrapping targets t = 2");
        let n = base_params.n;
        let nu = n.trailing_zeros();
        assert!(rho > nu, "need rho >= nu + 1 = {} (got {rho})", nu + 1);
        assert!(rho < 16, "rho + 1 must not exceed the FHE-friendly 2^16 class");
        for m in base_params.context().moduli() {
            assert!(
                m.is_fhe_friendly(),
                "BGV bootstrapping requires an FHE-friendly chain (BgvParams::new_fhe_friendly)"
            );
        }
        let t_boot = 1u64 << (nu + rho + 1);
        let boot_params = base_params.with_plaintext_modulus(t_boot);
        let mut boot_keys = bgv::KeySet::from_secret_key(&boot_params, sk.clone(), rng);
        for k in trace_exponents(n) {
            boot_keys.add_rotation_hint(k, rng);
        }
        // Bootstrapping key: Enc_{t'}(s) under s itself (circular security,
        // as all practical bootstrapping assumes).
        let s_coeffs: Vec<u64> =
            sk.signed_coeffs().iter().map(|&c| c.rem_euclid(t_boot as i64) as u64).collect();
        let s_plain = bgv::Plaintext::from_coeffs(&boot_params, &s_coeffs);
        let boot_key_ct = boot_keys.encrypt(&s_plain, rng);
        Self { boot_params, boot_keys, boot_key_ct, rho, nu }
    }

    /// Size in bytes of the bootstrapping key material resident during a
    /// bootstrap (the encrypted secret key; rotation/relin hints are
    /// accounted separately by the scheduler).
    pub fn boot_key_bytes(&self) -> usize {
        self.boot_key_ct.size_bytes()
    }

    /// Refreshes an exhausted level-1 ciphertext, returning a ciphertext
    /// at roughly `L_max - ρ` with fresh noise.
    ///
    /// # Panics
    ///
    /// Panics if `ct` is not at level 1.
    pub fn bootstrap(&self, ct: &bgv::Ciphertext) -> bgv::Ciphertext {
        assert_eq!(ct.level(), 1, "bootstrap input must be an exhausted level-1 ciphertext");
        let n = ct.a.n();
        let rho = self.rho;
        // Step 0: LSB -> MSB: multiply both polynomials by 2^{-1} mod q_1,
        // turning phase m + 2e into m*(q_1+1)/2 + e — the top bit now
        // carries m and survives any modulus switch.
        let msb = self.to_msb_form(ct);
        // Step 1: switch (in the clear — one scalar multiply + round per
        // coefficient) to q̃ = 2^ρ by plain rounding.
        let (a_t, b_t) = self.switch_to_power_of_two(&msb);
        // Step 2: homomorphic inner product u = b̃ - ã * s over t'.
        // ã multiplies the encrypted secret key as an unencrypted
        // polynomial (the cheap plaintext multiply of §2.1).
        let a_plain = bgv::Plaintext::from_coeffs(&self.boot_params, &a_t);
        let b_plain = bgv::Plaintext::from_coeffs(&self.boot_params, &b_t);
        let mut z = self
            .boot_key_ct
            .mul_plain(&a_plain, &self.boot_params)
            .neg()
            .add_plain(&b_plain, &self.boot_params);
        // Step 3: trace — project onto the constant coefficient. Each
        // stage is an automorphism + key-switch + add; the value becomes
        // N * u_0 = 2^ν * u_0 (mod t').
        for k in trace_exponents(n) {
            z = z.add(&z.automorphism(k, self.boot_keys.rotation_hint(k)));
        }
        // Step 4: exact division by 2^ν (the phase is divisible by 2^ν as
        // an integer), dropping the plaintext modulus to 2^{ρ+1}. The value
        // is now u_0 = m*2^{ρ-1} + ε + 2^ρ*I (|ε| < 2^{ρ-2}).
        let extract_params = self.boot_params.with_plaintext_modulus(1u64 << (rho + 1));
        let z = z.exact_divide_pow2(self.nu, &extract_params);
        // Step 5: offset by 2^{ρ-2} so ε becomes non-negative and cannot
        // borrow out of bit ρ-1.
        let offset = bgv::Plaintext::from_coeffs(&extract_params, &[1u64 << (rho - 2)]);
        let z = z.add_plain(&offset, &extract_params);
        // Step 6: Halevi–Shoup digit extraction: ρ outer steps; row j holds
        // the digit-j approximation and is squared once per step within its
        // own power-of-two plaintext modulus. The final y is ≡ m (mod 2).
        let y_final = self.digit_extract_top(&z, rho as usize);
        // Step 7: reinterpret at t = 2 — every noise term is even and the
        // correction factor is 1 on an FHE-friendly chain.
        let mut out = y_final;
        debug_assert_eq!(out.correction % 2, 1);
        out.pt_modulus = 2;
        out.correction = 1;
        out.noise_log2 = (rho + 1) as f64 + 8.0;
        out
    }

    /// Halevi–Shoup extraction of digit `e-1` from a ciphertext whose
    /// value lives mod `2^{e+1}` (validated bit-for-bit against a plain
    /// integer model in this module's development history; see tests).
    fn digit_extract_top(&self, z0: &bgv::Ciphertext, e: usize) -> bgv::Ciphertext {
        let relin = self.boot_keys.relin_hint();
        // rows[j]: approximation of digit j, plaintext modulus 2^{e+1-j}.
        let mut rows: Vec<bgv::Ciphertext> = Vec::new();
        // z, mod-switched in lockstep with the rows so levels line up.
        let mut z_cur = z0.clone();
        for k in 0..e {
            let mut y = z_cur.clone();
            for row in rows.iter().take(k) {
                // y and row share plaintext modulus and level by
                // construction; remove digit j and halve.
                let half_params = self.boot_params.with_plaintext_modulus(y.pt_modulus >> 1);
                y = y.sub(row).exact_divide_pow2(1, &half_params);
            }
            if k == e - 1 {
                return y;
            }
            rows.push(y);
            // Advance: mod-switch everything one level, then square each row
            // once within its own modulus.
            z_cur = z_cur.mod_switch_down();
            for row in rows.iter_mut() {
                *row = row.mod_switch_down().square(relin);
            }
        }
        unreachable!("loop returns at k = e-1")
    }

    /// LSB→MSB conversion: scale both polynomials by `2^{-1} mod Q`.
    fn to_msb_form(&self, ct: &bgv::Ciphertext) -> bgv::Ciphertext {
        let ctx = ct.a.context().clone();
        let mut a = ct.a.clone();
        let mut b = ct.b.clone();
        for j in 0..ct.level() {
            let m = ctx.modulus(j);
            let inv2 = m.inv(2);
            for poly in [&mut a, &mut b] {
                for x in poly.limb_mut(j).iter_mut() {
                    *x = m.mul(*x, inv2);
                }
            }
        }
        bgv::Ciphertext { a, b, ..ct.clone() }
    }

    /// Modulus-switches a level-1 MSB-form ciphertext (in the clear) to
    /// `q̃ = 2^ρ` by plain nearest-integer rounding.
    fn switch_to_power_of_two(&self, ct: &bgv::Ciphertext) -> (Vec<u64>, Vec<u64>) {
        let q1 = ct.a.context().modulus(0).value() as f64;
        let q_t = 1u64 << self.rho;
        let scale = q_t as f64 / q1;
        let a = ct.a.to_coeff();
        let b = ct.b.to_coeff();
        let m0 = ct.a.context().modulus(0);
        let round_plain = |c: u32| -> u64 {
            let centered = m0.center(c);
            ((centered as f64 * scale).round() as i64).rem_euclid(q_t as i64) as u64
        };
        let a_t: Vec<u64> = a.limb(0).iter().map(|&c| round_plain(c)).collect();
        let b_t: Vec<u64> = b.limb(0).iter().map(|&c| round_plain(c)).collect();
        (a_t, b_t)
    }
}

// ---------------------------------------------------------------------
// CKKS
// ---------------------------------------------------------------------

/// Non-packed CKKS bootstrapping via the scaled-sine approximation.
pub struct CkksBootstrapper {
    params: CkksParams,
    keys_rotation: Vec<(usize, GhsHint)>,
    /// Taylor degree for `exp(iθ)`.
    taylor_degree: usize,
    /// Number of double-angle squarings.
    double_angles: u32,
}

impl CkksBootstrapper {
    /// Builds a bootstrapper sharing the key set's secret key; generates
    /// the ν trace rotation hints.
    pub fn new(keys: &mut ckks::KeySet, rng: &mut impl Rng) -> Self {
        let params = keys.params().clone();
        let n = params.n;
        let mut keys_rotation = Vec::new();
        for k in trace_exponents(n) {
            keys.add_rotation_hint(k, rng);
            keys_rotation.push((k, keys.rotation_hint(k).clone()));
        }
        // Double-angle count: the sine argument before reduction is up to
        // 2π(I_0 + |v|) with |I_0| <= (N+1)/2 (dense ternary keys), and the
        // Taylor window wants |θ| <= ~0.4 rad. HEAAN uses sparse keys to
        // keep this flat in N; we size it from N directly.
        let r = (n.trailing_zeros() + 3).max(6);
        Self { params, keys_rotation, taylor_degree: 7, double_angles: r }
    }

    /// Levels consumed by one bootstrap: θ scaling (three steps) + Taylor +
    /// double angles + final correction (the trace and exact division are
    /// level-free).
    pub fn depth(&self) -> usize {
        3 + 1 + self.taylor_degree + self.double_angles as usize + 1
    }

    /// The scale bootstrap inputs must use: `q_0 / 32`, paired with the
    /// two-limb base modulus `q_0 = q_1 q_2 ≈ 2^50`. The factor 32 is the
    /// sine-linearization headroom (HEAAN's `q_0/Δ` ratio); it also
    /// multiplies every EvalMod noise term into the recovered value, so it
    /// is kept as small as the cubic sine error allows.
    pub fn input_scale(&self) -> f64 {
        let ctx = self.params.context();
        ctx.modulus(0).value() as f64 * ctx.modulus(1).value() as f64 / 32.0
    }

    /// Refreshes a level-2 CKKS ciphertext at the bootstrap input scale
    /// (see [`CkksBootstrapper::input_scale`]), returning a ciphertext at
    /// a higher level encrypting approximately the same values.
    ///
    /// # Panics
    ///
    /// Panics if the input is not at level 2 or not at the input scale.
    pub fn bootstrap(&self, ct: &ckks::Ciphertext, keys: &ckks::KeySet) -> ckks::Ciphertext {
        assert_eq!(ct.level(), 2, "bootstrap input must be a level-2 ciphertext (q0 = q1*q2)");
        assert!(
            (ct.scale / self.input_scale() - 1.0).abs() < 1e-9,
            "bootstrap input must be at the input scale q_0/32"
        );
        let l_max = self.params.max_level;
        let n = ct.a.n();
        // Step 1: modulus raise — reinterpret (a, b) mod Q_max. The phase
        // becomes φ + q_0 * I with |I| <= (N+1)/2.
        let raised = ckks::Ciphertext {
            a: ct.a.to_coeff().extend_basis(l_max).to_ntt(),
            b: ct.b.to_coeff().extend_basis(l_max).to_ntt(),
            scale: ct.scale,
        };
        // Step 2: trace to the constant coefficient (phase becomes N·φ_0),
        // then divide the phase by N = 2^ν *exactly* (modular inverse of
        // 2^ν — the traced phase is divisible by N as an integer). A
        // rescale-based normalization would multiply the phase by
        // (1/N)(1+ε) and break the exact q_0·I multiples the sine needs.
        let mut z = raised;
        for (k, hint) in &self.keys_rotation {
            z = z.add(&z.automorphism(*k, hint));
        }
        let z = z.exact_divide_pow2(n.trailing_zeros());
        // Step 3: EvalMod — evaluate (q0/2π) sin(2π u / q0) at u = φ_0:
        //   θ = u * 2π/(q0 * 2^r); E = exp(iθ) by Taylor; square r times;
        //   result = Im(E) * q0/(2π).
        let ctx = self.params.context();
        let q0 = ctx.modulus(0).value() as f64 * ctx.modulus(1).value() as f64;
        let two_pi = std::f64::consts::TAU;
        let delta_in = z.scale; // ≈ Δ*2^15 after normalization
                                // value(θ) = 2π * phase(z) / (q0 * 2^r). The combined constant is
                                // ~2^-15; applying it in two balanced steps keeps each rounded
                                // integer near 2^17, preserving angle precision.
        let c_v = two_pi * delta_in / (q0 * 2f64.powi(self.double_angles as i32));
        let c_half = c_v.sqrt();
        let theta_wide =
            z.mul_scalar_f64(c_half, self.params.scale).mul_scalar_f64(c_half, self.params.scale);
        // theta_wide still carries the input's oversized declared scale
        // (≈ Δ·2^15). Normalize back to the working scale Δ with an exact
        // integer rescale: multiplying by round(Δ·q_next/scale) with a
        // unit value factor has no rounding error on the value.
        let q_next = ctx.modulus(theta_wide.level() - 1).value() as f64;
        let s_fix = (self.params.scale * q_next / theta_wide.scale).round();
        let theta = theta_wide.mul_scalar_f64(1.0, s_fix);
        let (mut re, mut im) = self.complex_exp(&theta, keys);
        for _ in 0..self.double_angles {
            let re2 = re.mul(&re, keys.relin_hint());
            let im2 = im.mul(&im, keys.relin_hint());
            let cross = re.mul(&im, keys.relin_hint());
            re = re2.sub(&im2);
            im = cross.add(&cross);
        }
        // Im(exp(2πi*u/q0)) = sin(2π u/q0) ≈ 2π Δ_in v / q0 — the q0*I
        // term vanished inside the sine. Undo the factor to recover v.
        im.mul_scalar_f64(q0 / (two_pi * delta_in), self.params.scale)
    }

    /// Taylor evaluation of `exp(iθ)` by Horner's rule: returns the
    /// (real, imaginary) ciphertext pair.
    fn complex_exp(
        &self,
        theta: &ckks::Ciphertext,
        keys: &ckks::KeySet,
    ) -> (ckks::Ciphertext, ckks::Ciphertext) {
        // Coefficients 1/k!.
        let mut inv_fact = vec![1f64; self.taylor_degree + 1];
        for k in 1..=self.taylor_degree {
            inv_fact[k] = inv_fact[k - 1] / k as f64;
        }
        // Horner: E = c_d; E = E*(iθ) + c_k. E*(iθ) = (-im*θ, re*θ).
        let zero = theta.mul_scalar_f64(0.0, self.params.scale);
        let mut re = zero.add_const(inv_fact[self.taylor_degree]);
        let mut im = zero;
        for k in (0..self.taylor_degree).rev() {
            let new_re = im.mul(theta, keys.relin_hint()).neg().add_const(inv_fact[k]);
            let new_im = re.mul(theta, keys.relin_hint());
            re = new_re;
            im = new_im;
        }
        (re, im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn trace_exponent_ladder_is_complete() {
        // The subgroup generated by the ladder (via products of subsets)
        // must be all N odd residues mod 2N.
        let n = 64usize;
        let exps = trace_exponents(n);
        assert_eq!(exps.len(), 6); // nu = 6
        let mut coverage = std::collections::HashSet::new();
        coverage.insert(1usize);
        for &k in &exps {
            let snapshot: Vec<usize> = coverage.iter().copied().collect();
            for s in snapshot {
                coverage.insert(s * k % (2 * n));
            }
        }
        assert_eq!(coverage.len(), n, "trace ladder must cover all automorphisms");
    }

    #[test]
    fn trace_projects_to_constant_times_n() {
        // Apply the ladder to a plain polynomial and check Σ σ_k kills all
        // non-constant coefficients.
        use f1_poly::rns::{RnsContext, RnsPoly};
        let ctx = RnsContext::for_ring(32, 30, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let p = RnsPoly::random_at_level(&ctx, 1, &mut rng);
        let mut acc = p.clone();
        for k in trace_exponents(32) {
            acc = acc.add(&acc.automorphism(k));
        }
        let m = ctx.modulus(0);
        let expect0 = m.mul(p.limb(0)[0], 32 % m.value());
        assert_eq!(acc.limb(0)[0], expect0, "constant coefficient must be N * p_0");
        for c in 1..32 {
            assert_eq!(acc.limb(0)[c], 0, "coefficient {c} must vanish under the trace");
        }
    }

    #[test]
    fn bgv_bootstrap_refreshes_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
        // N = 32 (nu=5), rho = 7, t' = 2^13, Lmax = 12.
        let params = BgvParams::new_fhe_friendly(32, 12, 0, 2);
        let keys = bgv::KeySet::generate(&params, &mut rng);
        let boot = BgvBootstrapper::new(&params, keys.secret_key(), 7, &mut rng);
        for bit in [0u64, 1] {
            let m = bgv::Plaintext::from_coeffs(&params, &[bit]);
            let exhausted = keys.encrypt_at_level(&m, 1, &mut rng);
            let fresh = boot.bootstrap(&exhausted);
            assert!(fresh.level() > 1, "bootstrap must raise the level, got {}", fresh.level());
            assert_eq!(keys.decrypt(&fresh).coeff(0), bit, "bit {bit} lost in bootstrap");
            assert!(
                fresh.noise_budget_bits() > 20.0,
                "no noise budget after bootstrap: {}",
                fresh.noise_budget_bits()
            );
        }
    }

    #[test]
    fn ckks_bootstrap_recovers_value() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xCB07);
        // Small ring, deep chain for the sine evaluation (~19 levels:
        // normalization, θ scaling, 7 Horner steps, 8 double-angle
        // squarings, final rescale).
        let params = CkksParams::new(32, 23, 24, (1u64 << 25) as f64);
        let mut keys = ckks::KeySet::generate(&params, &mut rng);
        let boot = CkksBootstrapper::new(&mut keys, &mut rng);
        let v = 0.375f64;
        let vals = vec![ckks::Complex::new(v, 0.0); 16];
        let encoded =
            keys.encoder().encode_with_scale(&vals, params.context(), 2, boot.input_scale());
        let ct = keys.encrypt_poly(&encoded.to_ntt(), 2, boot.input_scale(), &mut rng);
        let fresh = boot.bootstrap(&ct, &keys);
        assert!(fresh.level() > 1, "level after bootstrap: {}", fresh.level());
        let got = keys.decrypt(&fresh);
        assert!(
            (got[0].re - v).abs() < 0.05,
            "value {v} came back as {:?} (scale {})",
            got[0],
            fresh.scale
        );
    }
}
