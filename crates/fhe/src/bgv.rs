//! The BGV scheme (§2.2): encryption, homomorphic operations, modulus
//! switching and noise accounting.
//!
//! Conventions: a ciphertext is `(a, b)` with `b = a*s + t*e + m (mod Q_l)`;
//! decryption recovers `e' = b - a*s` centered mod `Q_l`, then `m = e' mod
//! t`. Homomorphic multiplication tensors and key-switches exactly as
//! §2.2.1 describes; homomorphic permutation applies the automorphism to
//! both polynomials and key-switches `σ_k(a)`.

use crate::keys::SecretKey;
use crate::keyswitch::{DecompHint, GhsHint, KsScratch};
use crate::noise;
use crate::params::BgvParams;
use f1_poly::crt;
use f1_poly::rns::{Domain, RnsPoly};
use rand::Rng;
use std::collections::HashMap;

/// A BGV plaintext: `N` coefficients modulo `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaintext {
    t: u64,
    coeffs: Vec<u64>,
}

impl Plaintext {
    /// Builds a plaintext from (not necessarily reduced) coefficients;
    /// missing positions are zero.
    pub fn from_coeffs(params: &BgvParams, coeffs: &[u64]) -> Self {
        assert!(coeffs.len() <= params.n);
        let mut c = vec![0u64; params.n];
        for (dst, &src) in c.iter_mut().zip(coeffs) {
            *dst = src % params.plaintext_modulus;
        }
        Self { t: params.plaintext_modulus, coeffs: c }
    }

    /// The plaintext modulus.
    pub fn modulus(&self) -> u64 {
        self.t
    }

    /// Coefficient `i`.
    pub fn coeff(&self, i: usize) -> u64 {
        self.coeffs[i]
    }

    /// All coefficients.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Negacyclic product of two plaintexts (mod t), the expected result
    /// of a homomorphic multiplication.
    pub fn ring_mul(&self, other: &Self) -> Self {
        assert_eq!(self.t, other.t);
        let n = self.coeffs.len();
        let mut out = vec![0i128; n];
        for i in 0..n {
            if self.coeffs[i] == 0 {
                continue;
            }
            for j in 0..n {
                let p = self.coeffs[i] as i128 * other.coeffs[j] as i128;
                if i + j < n {
                    out[i + j] += p;
                } else {
                    out[i + j - n] -= p;
                }
            }
        }
        let t = self.t as i128;
        Self { t: self.t, coeffs: out.iter().map(|&x| x.rem_euclid(t) as u64).collect() }
    }

    /// Element-wise sum mod t.
    pub fn ring_add(&self, other: &Self) -> Self {
        assert_eq!(self.t, other.t);
        Self {
            t: self.t,
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| (a + b) % self.t)
                .collect(),
        }
    }
}

/// A BGV ciphertext: `(a, b)` in NTT form at some level, plus noise
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    /// The `a` polynomial (mask).
    pub a: RnsPoly,
    /// The `b` polynomial (body).
    pub b: RnsPoly,
    /// Estimated `log2` of the noise magnitude `|t*e|` (tracked, not
    /// measured; see [`KeySet::decrypt_noise`] for ground truth).
    pub noise_log2: f64,
    /// Plaintext correction factor `F`: the raw decryption equals
    /// `F * m (mod t)`. Modulus switching multiplies the embedded plaintext
    /// by `q_top^{-1} mod t`, so `F` accumulates those factors (SEAL-style
    /// bookkeeping); [`KeySet::decrypt`] divides it back out.
    pub correction: u64,
    /// The plaintext modulus `t` (carried so correction arithmetic is
    /// self-contained).
    pub pt_modulus: u64,
}

impl Ciphertext {
    /// Current level (number of RNS limbs).
    pub fn level(&self) -> usize {
        self.a.level()
    }

    /// Ciphertext size in bytes (2 polynomials).
    pub fn size_bytes(&self) -> usize {
        self.a.size_bytes() + self.b.size_bytes()
    }

    /// Remaining noise budget in bits at this level: `log2(Q_l/2) -
    /// noise_log2`. Decryption fails when this reaches zero (§2.2.2).
    pub fn noise_budget_bits(&self) -> f64 {
        let log_q = self.a.context().log_q(self.level()) as f64;
        (log_q - 1.0) - self.noise_log2
    }
}

/// Key material: the secret key plus relinearization and rotation hints.
///
/// Key-switch hints are the dominant working set of FHE programs (§2.4);
/// this struct is what workloads hand to the compiler to size hint traffic.
pub struct KeySet {
    params: BgvParams,
    sk: SecretKey,
    relin: DecompHint,
    relin_ghs: Option<GhsHint>,
    rotation: HashMap<usize, DecompHint>,
}

impl KeySet {
    /// Generates a key set (no rotation hints yet; see
    /// [`KeySet::add_rotation_hint`]).
    pub fn generate(params: &BgvParams, rng: &mut impl Rng) -> Self {
        let sk = SecretKey::generate(params.context(), rng);
        Self::from_secret_key(params, sk, rng)
    }

    /// Builds hints for an existing secret key (bootstrapping shares the
    /// secret key between the base scheme and the boot plaintext space).
    pub fn from_secret_key(params: &BgvParams, sk: SecretKey, rng: &mut impl Rng) -> Self {
        let l = params.max_level;
        let t = params.plaintext_modulus;
        let relin =
            DecompHint::generate(&sk, &sk.s_squared_at_level(l), l, t, params.error_eta, rng);
        let relin_ghs = if params.special_levels > 0 {
            let full = params.context().max_level();
            Some(GhsHint::generate(&sk, &sk.s_squared_at_level(full), l, t, params.error_eta, rng))
        } else {
            None
        };
        Self { params: params.clone(), sk, relin, relin_ghs, rotation: HashMap::new() }
    }

    /// The parameter set.
    pub fn params(&self) -> &BgvParams {
        &self.params
    }

    /// The secret key (client-side material; bootstrapping setup needs it
    /// to build the encrypted key).
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// The relinearization hint (for homomorphic multiplication).
    pub fn relin_hint(&self) -> &DecompHint {
        &self.relin
    }

    /// The GHS relinearization hint, if special primes were provisioned.
    pub fn relin_hint_ghs(&self) -> Option<&GhsHint> {
        self.relin_ghs.as_ref()
    }

    /// Generates and caches the hint for automorphism exponent `k`.
    pub fn add_rotation_hint(&mut self, k: usize, rng: &mut impl Rng) {
        let l = self.params.max_level;
        let t = self.params.plaintext_modulus;
        let target = self.sk.s_automorphism_at_level(k, l);
        let hint = DecompHint::generate(&self.sk, &target, l, t, self.params.error_eta, rng);
        self.rotation.insert(k, hint);
    }

    /// The hint for automorphism exponent `k`.
    ///
    /// # Panics
    ///
    /// Panics if the hint was never generated.
    pub fn rotation_hint(&self, k: usize) -> &DecompHint {
        self.rotation
            .get(&k)
            .unwrap_or_else(|| panic!("no rotation hint for k={k}; call add_rotation_hint"))
    }

    /// Symmetric encryption at the top level: `ct = (a, a*s + t*e + m)`.
    pub fn encrypt(&self, m: &Plaintext, rng: &mut impl Rng) -> Ciphertext {
        self.encrypt_at_level(m, self.params.max_level, rng)
    }

    /// Symmetric encryption at a chosen level.
    pub fn encrypt_at_level(&self, m: &Plaintext, level: usize, rng: &mut impl Rng) -> Ciphertext {
        let ctx = self.params.context();
        let t = self.params.plaintext_modulus;
        let mut a = RnsPoly::random_at_level(ctx, level, rng);
        a.ntt_inplace();
        let mut te = RnsPoly::random_error(ctx, level, self.params.error_eta, rng);
        te.mul_scalar_assign(u32::try_from(t).expect("t fits u32"));
        te.ntt_inplace();
        let mut m_poly = plaintext_to_poly(m, level, &self.params);
        m_poly.ntt_inplace();
        let s = self.sk.s_at_level(level);
        let mut b = a.mul(&s);
        b.add_assign(&te);
        b.add_assign(&m_poly);
        let noise = noise::fresh_est(t, self.params.error_eta);
        Ciphertext { a, b, noise_log2: noise, correction: 1, pt_modulus: t }
    }

    /// Encryption of zero used as a fresh mask (public-key-style noise
    /// flooding is out of scope; symmetric encryption suffices for
    /// benchmarking the server side, which never encrypts).
    pub fn encrypt_zero(&self, level: usize, rng: &mut impl Rng) -> Ciphertext {
        let zero = Plaintext::from_coeffs(&self.params, &[]);
        self.encrypt_at_level(&zero, level, rng)
    }

    /// Decrypts a ciphertext (using the plaintext modulus the ciphertext
    /// carries, which bootstrapping changes mid-pipeline).
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let l = ct.level();
        let s = self.sk.s_at_level(l);
        let noise_poly = ct.b.sub(&ct.a.mul(&s)).to_coeff();
        let t = ct.pt_modulus;
        let f_inv = inv_mod(ct.correction % t, t);
        let centered = crt::reconstruct_centered(&noise_poly);
        let coeffs: Vec<u64> = centered
            .iter()
            .map(|c| {
                let raw = crt::centered_mod_small(c, t);
                ((raw as u128 * f_inv as u128) % t as u128) as u64
            })
            .collect();
        Plaintext { t, coeffs }
    }

    /// Measures the true noise magnitude `log2 |b - a*s - m|` (ground truth
    /// for the tracked estimate).
    pub fn decrypt_noise(&self, ct: &Ciphertext) -> f64 {
        let l = ct.level();
        let s = self.sk.s_at_level(l);
        let m = self.decrypt(ct);
        let t = ct.pt_modulus;
        let raw: Vec<u64> = m
            .coeffs()
            .iter()
            .map(|&c| ((c as u128 * (ct.correction % t) as u128) % t as u128) as u64)
            .collect();
        let m_raw = Plaintext { t, coeffs: raw };
        let m_poly = plaintext_to_poly(&m_raw, l, &self.params);
        let noise = ct.b.sub(&ct.a.mul(&s)).sub(&m_poly.to_ntt()).to_coeff();
        crt::log2_infinity_norm(&noise)
    }
}

/// Lifts a plaintext into an RNS polynomial with centered coefficients.
fn plaintext_to_poly(m: &Plaintext, level: usize, params: &BgvParams) -> RnsPoly {
    let t = m.t as i64;
    let signed: Vec<i64> =
        m.coeffs.iter().map(|&c| if c as i64 > t / 2 { c as i64 - t } else { c as i64 }).collect();
    RnsPoly::from_signed_coeffs(params.context(), level, &signed)
}

impl Ciphertext {
    /// Homomorphic addition (pure polynomial adds, §2.2.1).
    ///
    /// If the two operands carry different correction factors (e.g. one
    /// was modulus-switched and the other freshly encrypted), the other
    /// operand is scaled by the factor ratio first.
    pub fn add(&self, other: &Self) -> Self {
        let other = other.align_correction_to(self);
        Self {
            a: self.a.add(&other.a),
            b: self.b.add(&other.b),
            noise_log2: noise::add_est(self.noise_log2, other.noise_log2),
            correction: self.correction,
            pt_modulus: self.pt_modulus,
        }
    }

    /// Negation (the plaintext negates; noise magnitude is unchanged).
    pub fn neg(&self) -> Self {
        Self {
            a: self.a.neg(),
            b: self.b.neg(),
            noise_log2: self.noise_log2,
            correction: self.correction,
            pt_modulus: self.pt_modulus,
        }
    }

    /// Exactly divides the embedded plaintext by `2^k`, reducing the
    /// declared plaintext modulus from `t` to `t / 2^k`.
    ///
    /// Valid only when the ciphertext phase is divisible by `2^k` as an
    /// integer (e.g. after the bootstrap trace multiplies the value by
    /// `N = 2^ν`): multiplying both polynomials by `2^{-k} mod Q` then
    /// yields the small quotient exactly. The noise divides along with the
    /// value.
    pub fn exact_divide_pow2(&self, k: u32, new_params: &BgvParams) -> Self {
        assert_eq!(
            self.pt_modulus >> k,
            new_params.plaintext_modulus,
            "target plaintext modulus must be t / 2^k"
        );
        let mut a = self.a.clone();
        let mut b = self.b.clone();
        let ctx = self.a.context().clone();
        for j in 0..self.level() {
            let m = ctx.modulus(j);
            let inv = m.inv(m.pow(2, k as u64));
            for poly in [&mut a, &mut b] {
                for x in poly.limb_mut(j).iter_mut() {
                    *x = m.mul(*x, inv);
                }
            }
        }
        Self {
            a,
            b,
            noise_log2: (self.noise_log2 - k as f64).max(1.0),
            correction: self.correction % new_params.plaintext_modulus,
            pt_modulus: new_params.plaintext_modulus,
        }
    }

    /// Homomorphic subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        let other = other.align_correction_to(self);
        Self {
            a: self.a.sub(&other.a),
            b: self.b.sub(&other.b),
            noise_log2: noise::add_est(self.noise_log2, other.noise_log2),
            correction: self.correction,
            pt_modulus: self.pt_modulus,
        }
    }

    /// Rescales this ciphertext's embedded plaintext so its correction
    /// factor matches `target`'s (a centered scalar multiply mod t).
    fn align_correction_to(&self, target: &Self) -> Self {
        if self.correction == target.correction {
            return self.clone();
        }
        let t = self.pt_modulus;
        // ratio = F_target / F_self (mod t); scaling raw by ratio turns an
        // F_self-corrected ciphertext into an F_target-corrected one.
        let ratio = ((target.correction as u128 * inv_mod(self.correction % t, t) as u128)
            % t as u128) as u64;
        let scaled = self.scale_raw_mod_t(ratio, t);
        Self { correction: target.correction, ..scaled }
    }

    /// Multiplies both polynomials by the centered representative of
    /// `factor mod t` (used for correction alignment).
    fn scale_raw_mod_t(&self, factor: u64, t: u64) -> Self {
        let f_centered = if factor > t / 2 { factor as i64 - t as i64 } else { factor as i64 };
        let (fr, neg) =
            if f_centered < 0 { ((-f_centered) as u32, true) } else { (f_centered as u32, false) };
        let mut a = self.a.mul_scalar(fr);
        let mut b = self.b.mul_scalar(fr);
        if neg {
            a = a.neg();
            b = b.neg();
        }
        Self {
            a,
            b,
            noise_log2: noise::scale_est(self.noise_log2, fr),
            correction: self.correction,
            pt_modulus: self.pt_modulus,
        }
    }

    /// Adds an unencrypted plaintext (cheap, §2.1). The plaintext is
    /// pre-scaled by this ciphertext's correction factor.
    pub fn add_plain(&self, m: &Plaintext, params: &BgvParams) -> Self {
        let t = params.plaintext_modulus;
        let f = self.correction % t;
        let scaled: Vec<u64> =
            m.coeffs().iter().map(|&c| ((c as u128 * f as u128) % t as u128) as u64).collect();
        let m_f = Plaintext { t, coeffs: scaled };
        let mp = plaintext_to_poly(&m_f, self.level(), params).to_ntt();
        Self {
            a: self.a.clone(),
            b: self.b.add(&mp),
            noise_log2: self.noise_log2,
            correction: self.correction,
            pt_modulus: self.pt_modulus,
        }
    }

    /// Multiplies by an unencrypted plaintext (both polynomials scale;
    /// noise grows by the plaintext magnitude — the "cheaper" unencrypted
    /// operand multiply of §2.1).
    pub fn mul_plain(&self, m: &Plaintext, params: &BgvParams) -> Self {
        let mp = plaintext_to_poly(m, self.level(), params).to_ntt();
        Self {
            a: self.a.mul(&mp),
            b: self.b.mul(&mp),
            noise_log2: noise::mul_plain_est(self.noise_log2, params.plaintext_modulus, params.n),
            correction: self.correction,
            pt_modulus: self.pt_modulus,
        }
    }

    /// Homomorphic multiplication: tensor + key-switch (§2.2.1).
    ///
    /// `ct× = (l2, l1, l0) = (a0a1, a0b1 + a1b0, b0b1)`; `l2` is
    /// key-switched to produce `(u0, u1)` and the result is
    /// `(l1 + u1, l0 + u0)`. One-shot arena; programs evaluating many
    /// multiplies should hold a [`KsScratch`] and call
    /// [`Ciphertext::mul_with_scratch`].
    pub fn mul(&self, other: &Self, relin: &DecompHint) -> Self {
        self.mul_with_scratch(other, relin, &mut KsScratch::default())
    }

    /// Homomorphic multiplication reusing a caller-held key-switch scratch
    /// arena: the tensor products run in place ([`RnsPoly::mul_assign`] /
    /// [`RnsPoly::fma_assign`]), so steady state allocates only the output
    /// ciphertext.
    pub fn mul_with_scratch(
        &self,
        other: &Self,
        relin: &DecompHint,
        scratch: &mut KsScratch,
    ) -> Self {
        let mut l2 = self.a.clone();
        l2.mul_assign(&other.a);
        let (u0, u1) = relin.apply_with_scratch(&l2, scratch);
        // l1 = a0*b1 + a1*b0, then + u1 — fused into one accumulator.
        let mut a = self.a.clone();
        a.mul_assign(&other.b);
        a.fma_assign(&other.a, &self.b);
        a.add_assign(&u1);
        let mut b = self.b.clone();
        b.mul_assign(&other.b);
        b.add_assign(&u0);
        Self {
            a,
            b,
            noise_log2: noise::mul_est(self.noise_log2, other.noise_log2, self.a.n()),
            correction: mul_mod_u64(self.correction, other.correction, self.pt_modulus),
            pt_modulus: self.pt_modulus,
        }
    }

    /// Homomorphic multiplication using the GHS key-switch variant.
    pub fn mul_ghs(&self, other: &Self, relin: &GhsHint) -> Self {
        let mut l2 = self.a.clone();
        l2.mul_assign(&other.a);
        let (u0, u1) = relin.apply(&l2);
        let mut a = self.a.clone();
        a.mul_assign(&other.b);
        a.fma_assign(&other.a, &self.b);
        a.add_assign(&u1);
        let mut b = self.b.clone();
        b.mul_assign(&other.b);
        b.add_assign(&u0);
        Self {
            a,
            b,
            noise_log2: noise::mul_est(self.noise_log2, other.noise_log2, self.a.n()),
            correction: mul_mod_u64(self.correction, other.correction, self.pt_modulus),
            pt_modulus: self.pt_modulus,
        }
    }

    /// Squares the ciphertext (saves one tensor multiply vs `mul`).
    pub fn square(&self, relin: &DecompHint) -> Self {
        self.mul(self, relin)
    }

    /// Homomorphic permutation: automorphism on both polynomials followed
    /// by a key-switch of `σ_k(a)` (§2.2.1). `hint` must target `σ_k(s)`.
    pub fn automorphism(&self, k: usize, hint: &DecompHint) -> Self {
        self.automorphism_with_scratch(k, hint, &mut KsScratch::default())
    }

    /// [`Ciphertext::automorphism`] reusing a caller-held key-switch arena.
    pub fn automorphism_with_scratch(
        &self,
        k: usize,
        hint: &DecompHint,
        scratch: &mut KsScratch,
    ) -> Self {
        let mut a_s = self.a.automorphism(k);
        a_s.neg_assign();
        // Key-switch -σ_k(a): (u0, u1) with u0 - u1*s = -σ(a)σ(s) + tE,
        // so (u1, σ(b) + u0) decrypts to σ(m): b' - a'*s = σ(b) + u0 - u1*s
        // = σ(b) - σ(a)σ(s) + tE = σ(m) + t(σ(e) + E).
        let (u0, u1) = hint.apply_with_scratch(&a_s, scratch);
        let mut b = self.b.automorphism(k);
        b.add_assign(&u0);
        Self {
            a: u1,
            b,
            noise_log2: noise::aut_est(self.noise_log2),
            correction: self.correction,
            pt_modulus: self.pt_modulus,
        }
    }

    /// BGV modulus switching (§2.2.2): rescales from `Q_l` to `Q_{l-1}`,
    /// dividing the noise by `q_l` while preserving `m mod t`.
    ///
    /// Per remaining limb `j`: `c'_j = (c_j - δ) * q_l^{-1} mod q_j`, where
    /// `δ ≡ c (mod q_l)`, `δ ≡ 0 (mod t)`, `|δ| <= t*q_l/2`.
    pub fn mod_switch(&self, params: &BgvParams) -> Self {
        debug_assert_eq!(params.plaintext_modulus, self.pt_modulus);
        self.mod_switch_down()
    }

    /// Modulus switching driven by the ciphertext's own plaintext modulus
    /// (bootstrapping changes that modulus mid-pipeline).
    pub fn mod_switch_down(&self) -> Self {
        let l = self.level();
        assert!(l >= 2, "cannot modulus-switch below level 1");
        let t = self.pt_modulus;
        let q_top = self.a.context().modulus(l - 1).value() as u64;
        let q_top_inv_t = inv_mod(q_top % t, t);
        Self {
            a: mod_switch_poly(&self.a, t),
            b: mod_switch_poly(&self.b, t),
            // Noise shrinks by log2(q_l) but gains the rounding term
            // ~ t * |s|_1; net effect tracked coarsely.
            noise_log2: noise::mod_switch_est(
                self.noise_log2,
                (q_top as f64).log2(),
                t,
                self.a.n(),
            ),
            correction: mul_mod_u64(self.correction, q_top_inv_t, t),
            pt_modulus: self.pt_modulus,
        }
    }
}

/// `x^{-1} mod m` via the extended Euclidean algorithm.
///
/// # Panics
///
/// Panics if `gcd(x, m) != 1`.
pub(crate) fn inv_mod(x: u64, m: u64) -> u64 {
    let (mut r0, mut r1) = (m as i128, (x % m) as i128);
    let (mut t0, mut t1) = (0i128, 1i128);
    while r1 != 0 {
        let q = r0 / r1;
        (r0, r1) = (r1, r0 - q * r1);
        (t0, t1) = (t1, t0 - q * t1);
    }
    assert_eq!(r0, 1, "inv_mod: arguments not coprime");
    t0.rem_euclid(m as i128) as u64
}

pub(crate) fn mul_mod_u64(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Divide-and-round one polynomial by its top limb prime, preserving the
/// value mod `t` (set `t = 1` for CKKS-style plain rounding; CKKS rescaling
/// reuses this kernel).
pub fn mod_switch_poly(p: &RnsPoly, t: u64) -> RnsPoly {
    let l = p.level();
    let ctx = p.context().clone();
    let top_idx = l - 1;
    let coeff = p.to_coeff();
    let top_m = *ctx.modulus(top_idx);
    let t_inv_top = if t == 1 { 1 } else { top_m.inv((t % top_m.value() as u64) as u32) };
    let mut out = RnsPoly::zero_at_level(&ctx, l - 1);
    let top_limb = coeff.limb(top_idx);
    for j in 0..l - 1 {
        let mj = *ctx.modulus(j);
        let q_top_inv = mj.inv((top_m.value() as u64 % mj.value() as u64) as u32);
        let t_red = (t % mj.value() as u64) as u32;
        let src = coeff.limb(j);
        let dst = out.limb_mut(j);
        for ((d, &s), &top) in dst.iter_mut().zip(src).zip(top_limb) {
            let mu = top_m.mul(top, t_inv_top);
            let mu_centered = top_m.center(mu);
            let delta = mj.mul(mj.reduce_i64(mu_centered), t_red);
            *d = mj.mul(mj.sub(s, delta), q_top_inv);
        }
    }
    if p.domain() == Domain::Ntt {
        out.to_ntt()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup(levels: usize) -> (BgvParams, KeySet, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB61);
        let params = BgvParams::test_small(64, levels);
        let keys = KeySet::generate(&params, &mut rng);
        (params, keys, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (params, keys, mut rng) = setup(3);
        let m = Plaintext::from_coeffs(&params, &[5, 17, 65536, 0, 42]);
        let ct = keys.encrypt(&m, &mut rng);
        assert_eq!(keys.decrypt(&ct), m);
        assert!(ct.noise_budget_bits() > 40.0, "fresh budget: {}", ct.noise_budget_bits());
    }

    #[test]
    fn homomorphic_addition() {
        let (params, keys, mut rng) = setup(3);
        let m1 = Plaintext::from_coeffs(&params, &[1, 2, 3]);
        let m2 = Plaintext::from_coeffs(&params, &[10, 20, 65530]);
        let ct = keys.encrypt(&m1, &mut rng).add(&keys.encrypt(&m2, &mut rng));
        assert_eq!(keys.decrypt(&ct), m1.ring_add(&m2));
    }

    #[test]
    fn homomorphic_multiplication() {
        let (params, keys, mut rng) = setup(3);
        let m1 = Plaintext::from_coeffs(&params, &[3, 1]);
        let m2 = Plaintext::from_coeffs(&params, &[5, 0, 2]);
        let ct1 = keys.encrypt(&m1, &mut rng);
        let ct2 = keys.encrypt(&m2, &mut rng);
        let prod = ct1.mul(&ct2, keys.relin_hint());
        assert_eq!(keys.decrypt(&prod), m1.ring_mul(&m2));
    }

    #[test]
    fn multiplication_with_negacyclic_wraparound() {
        let (params, keys, mut rng) = setup(3);
        let mut c1 = vec![0u64; 64];
        c1[63] = 1;
        let mut c2 = vec![0u64; 64];
        c2[1] = 1;
        let m1 = Plaintext::from_coeffs(&params, &c1);
        let m2 = Plaintext::from_coeffs(&params, &c2);
        let prod = keys.encrypt(&m1, &mut rng).mul(&keys.encrypt(&m2, &mut rng), keys.relin_hint());
        // X^63 * X = X^64 = -1 ≡ t-1 mod t.
        let got = keys.decrypt(&prod);
        assert_eq!(got.coeff(0), params.plaintext_modulus - 1);
    }

    #[test]
    fn plain_operations() {
        let (params, keys, mut rng) = setup(2);
        let m = Plaintext::from_coeffs(&params, &[7, 8]);
        let p = Plaintext::from_coeffs(&params, &[3]);
        let ct = keys.encrypt(&m, &mut rng);
        assert_eq!(keys.decrypt(&ct.add_plain(&p, &params)), m.ring_add(&p));
        assert_eq!(keys.decrypt(&ct.mul_plain(&p, &params)), m.ring_mul(&p));
    }

    #[test]
    fn homomorphic_automorphism() {
        let (params, mut keys, mut rng) = setup(3);
        let k = 3usize;
        keys.add_rotation_hint(k, &mut rng);
        let m = Plaintext::from_coeffs(&params, &[1, 2, 3, 4]);
        let ct = keys.encrypt(&m, &mut rng);
        let rotated = ct.automorphism(k, keys.rotation_hint(k));
        let got = keys.decrypt(&rotated);
        // Expected: σ_k applied to the plaintext polynomial mod t.
        let t = params.plaintext_modulus;
        let mut want = vec![0u64; 64];
        for i in 0..64 {
            let j2 = (i * k) % 128;
            let v = m.coeff(i);
            if j2 < 64 {
                want[j2] = (want[j2] + v) % t;
            } else {
                want[j2 - 64] = (want[j2 - 64] + t - v % t) % t;
            }
        }
        assert_eq!(got.coeffs(), &want[..]);
    }

    #[test]
    fn mod_switch_preserves_plaintext_and_cuts_noise() {
        let (params, keys, mut rng) = setup(3);
        let m = Plaintext::from_coeffs(&params, &[11, 22, 33]);
        // Grow the noise first (a fresh ciphertext already sits at the
        // mod-switch rounding floor, so switching it cannot shrink noise —
        // the paper applies mod switching right before multiplications,
        // after noise has accumulated, §2.2.2).
        let ct = keys.encrypt(&m, &mut rng).square(keys.relin_hint());
        let m_sq = m.ring_mul(&m);
        let noise_before = keys.decrypt_noise(&ct);
        let switched = ct.mod_switch(&params);
        assert_eq!(switched.level(), 2);
        assert_eq!(keys.decrypt(&switched), m_sq);
        let noise_after = keys.decrypt_noise(&switched);
        // Noise must shrink by roughly log2(q_top) ≈ 30 bits, modulo the
        // additive rounding term.
        assert!(
            noise_after < noise_before - 5.0,
            "noise {noise_before:.1} -> {noise_after:.1} did not shrink"
        );
    }

    #[test]
    fn multiplicative_depth_chain() {
        // Square 3 times, mod-switching before each subsequent square
        // (the paper's usage, §2.2.2). The final multiply happens at
        // level 2: decomposition key-switching adds ~q-sized noise, so
        // level 1 is reserved for additions only.
        let (params, keys, mut rng) = setup(4);
        let m = Plaintext::from_coeffs(&params, &[2]);
        let mut acc = keys.encrypt(&m, &mut rng);
        let mut expected = 2u64;
        for step in 0..3 {
            if step > 0 {
                acc = acc.mod_switch(&params);
            }
            acc = acc.square(keys.relin_hint());
            expected = expected * expected % params.plaintext_modulus;
        }
        assert_eq!(acc.level(), 2);
        assert_eq!(keys.decrypt(&acc).coeff(0), expected);
    }

    #[test]
    fn ghs_multiplication_matches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB62);
        let params = BgvParams::test_with_specials(64, 3, 4);
        let keys = KeySet::generate(&params, &mut rng);
        let m1 = Plaintext::from_coeffs(&params, &[4, 1]);
        let m2 = Plaintext::from_coeffs(&params, &[9]);
        let ct1 = keys.encrypt_at_level(&m1, 3, &mut rng);
        let ct2 = keys.encrypt_at_level(&m2, 3, &mut rng);
        let prod = ct1.mul_ghs(&ct2, keys.relin_hint_ghs().unwrap());
        assert_eq!(keys.decrypt(&prod), m1.ring_mul(&m2));
    }

    #[test]
    fn noise_tracking_is_conservative_enough() {
        let (params, keys, mut rng) = setup(3);
        let m = Plaintext::from_coeffs(&params, &[5]);
        let ct = keys.encrypt(&m, &mut rng);
        let sq = ct.square(keys.relin_hint());
        let measured = keys.decrypt_noise(&sq);
        // Tracked estimate must not be wildly below the measurement.
        assert!(
            sq.noise_log2 + 40.0 > measured,
            "tracked {} vs measured {measured}",
            sq.noise_log2
        );
        let _ = params;
    }
}
