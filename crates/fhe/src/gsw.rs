//! Ring-GSW encryption and the external product (§2.5).
//!
//! GSW features reduced, asymmetric noise growth under multiplication but
//! encrypts only a small amount of information per ciphertext. F1 supports
//! it with the same functional units because its kernels are the same
//! primitives: NTTs, modular multiplies and adds. We implement the
//! RNS-limb-gadget variant: a GSW ciphertext encrypting a bit `μ` is a
//! `2L × 2` matrix of RLWE rows, and the external product with an RLWE
//! ciphertext decomposes the RLWE polynomials limb-by-limb (the same
//! decomposition machinery as Listing 1's key-switch).

use crate::keys::SecretKey;
use f1_poly::rns::{Domain, RnsContext, RnsPoly};
use rand::Rng;
use std::sync::Arc;

/// An RLWE sample `(a, b)` with phase `φ = b - a*s`.
#[derive(Debug, Clone)]
pub struct Rlwe {
    /// Mask polynomial (NTT domain).
    pub a: RnsPoly,
    /// Body polynomial (NTT domain).
    pub b: RnsPoly,
}

impl Rlwe {
    /// A trivial (noiseless, unmasked) encryption of `m`: `(0, m)`.
    pub fn trivial(m: &RnsPoly) -> Self {
        assert_eq!(m.domain(), Domain::Ntt);
        Self { a: RnsPoly::zero_ntt_at_level(m.context(), m.level()), b: m.clone() }
    }

    /// A fresh encryption of `m` under `sk` with error parameter `eta`.
    pub fn encrypt(m: &RnsPoly, sk: &SecretKey, eta: u32, rng: &mut impl Rng) -> Self {
        let ctx = m.context().clone();
        let level = m.level();
        let a = RnsPoly::random_at_level(&ctx, level, rng).to_ntt();
        let e = RnsPoly::random_error(&ctx, level, eta, rng).to_ntt();
        let b = a.mul(&sk.s_at_level(level)).add(&e).add(m);
        Self { a, b }
    }

    /// The phase `b - a*s` in coefficient form (decryption modulo noise).
    pub fn phase(&self, sk: &SecretKey) -> RnsPoly {
        self.b.sub(&self.a.mul(&sk.s_at_level(self.a.level()))).to_coeff()
    }
}

/// A GSW ciphertext encrypting a small scalar (usually a bit).
///
/// Rows `0..L` act on the decomposed `b` polynomial of an RLWE input;
/// rows `L..2L` act on the decomposed `a` polynomial.
#[derive(Debug, Clone)]
pub struct GswCiphertext {
    level: usize,
    /// `rows[r] = (a_r, b_r)` in NTT domain.
    rows: Vec<(RnsPoly, RnsPoly)>,
}

impl GswCiphertext {
    /// Encrypts the scalar `mu` (typically 0 or 1).
    pub fn encrypt(mu: u64, sk: &SecretKey, level: usize, eta: u32, rng: &mut impl Rng) -> Self {
        let ctx = sk.context().clone();
        let mu_r = u32::try_from(mu).expect("GSW payloads are small scalars");
        let mut rows = Vec::with_capacity(2 * level);
        // b-block: phase(row_i) = mu * g_i  (indicator gadget, limb i).
        for i in 0..level {
            let (a, mut b) = fresh_zero(&ctx, sk, level, eta, rng);
            add_gadget(&mut b, i, mu_r, &ctx);
            rows.push((a, b));
        }
        // a-block: rows encrypting -mu * g_i * s: add mu*g_i to the *mask*.
        for i in 0..level {
            let (mut a, b) = fresh_zero(&ctx, sk, level, eta, rng);
            add_gadget(&mut a, i, mu_r, &ctx);
            rows.push((a, b));
        }
        Self { level, rows }
    }

    /// Size in bytes (the `2L * 2` residue-polynomial matrix).
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().map(|(a, b)| a.size_bytes() + b.size_bytes()).sum()
    }

    /// External product `GSW(μ) ⊡ RLWE(m) -> RLWE(μ*m)`.
    ///
    /// Decomposes both polynomials of `ct` limb-by-limb (centered lift,
    /// exactly the key-switch lift of Listing 1) and accumulates the
    /// matching GSW rows.
    pub fn external_product(&self, ct: &Rlwe) -> Rlwe {
        let l = ct.a.level();
        assert!(l <= self.level, "GSW level {} below input level {l}", self.level);
        let ctx = ct.a.context().clone();
        let b_coeff = ct.b.to_coeff();
        let a_coeff = ct.a.to_coeff();
        let mut out_a = RnsPoly::zero_ntt_at_level(&ctx, l);
        let mut out_b = RnsPoly::zero_ntt_at_level(&ctx, l);
        for i in 0..l {
            let dec_b = lift_limb_ntt(&b_coeff, i, l, &ctx);
            let (ra, rb) = (&self.rows[i].0.truncate_level(l), &self.rows[i].1.truncate_level(l));
            out_a = out_a.add(&dec_b.mul(ra));
            out_b = out_b.add(&dec_b.mul(rb));
            // a-block rows are offset by the GSW's own level, not l.
            let dec_a = lift_limb_ntt(&a_coeff, i, l, &ctx);
            let (sa, sb) = (
                &self.rows[self.level + i].0.truncate_level(l),
                &self.rows[self.level + i].1.truncate_level(l),
            );
            // Add: the a-block rows already carry phase e - mu*g_i*s, so
            // accumulating them contributes -mu*(a*s) as required.
            out_a = out_a.add(&dec_a.mul(sa));
            out_b = out_b.add(&dec_a.mul(sb));
        }
        Rlwe { a: out_a, b: out_b }
    }
}

/// Fresh RLWE encryption of zero as a row template.
fn fresh_zero(
    ctx: &Arc<RnsContext>,
    sk: &SecretKey,
    level: usize,
    eta: u32,
    rng: &mut impl Rng,
) -> (RnsPoly, RnsPoly) {
    let a = RnsPoly::random_at_level(ctx, level, rng).to_ntt();
    let e = RnsPoly::random_error(ctx, level, eta, rng).to_ntt();
    let b = a.mul(&sk.s_at_level(level)).add(&e);
    (a, b)
}

/// Adds `mu * g_i` (gadget: the constant `mu` on limb `i` only) to `p`.
fn add_gadget(p: &mut RnsPoly, i: usize, mu: u32, ctx: &Arc<RnsContext>) {
    // The constant polynomial mu has every NTT slot equal to mu.
    let m = ctx.modulus(i);
    let mu_r = mu % m.value();
    for x in p.limb_mut(i).iter_mut() {
        *x = m.add(*x, mu_r);
    }
}

/// Centered lift of limb `i` into all `l` bases, NTT domain (shared shape
/// with the key-switch lift).
fn lift_limb_ntt(y: &RnsPoly, i: usize, l: usize, ctx: &Arc<RnsContext>) -> RnsPoly {
    let mi = *ctx.modulus(i);
    let src = y.limb(i);
    let mut out = RnsPoly::zero_at_level(ctx, l);
    let tables = ctx.clone();
    out.for_each_limb_mut(|j, mj, limb| {
        for (x, &s) in limb.iter_mut().zip(src) {
            *x = mj.reduce_i64(mi.center(s));
        }
        tables.tables(j).forward(limb);
    });
    // The limbs were filled with NTT-domain data directly.
    out.assume_domain(Domain::Ntt);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_poly::crt;
    use rand::SeedableRng;

    fn setup() -> (Arc<RnsContext>, SecretKey, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x65);
        let ctx = RnsContext::for_ring(64, 30, 3);
        let sk = SecretKey::generate(&ctx, &mut rng);
        (ctx, sk, rng)
    }

    /// A plaintext living in the high bits so GSW noise stays separable.
    fn big_message(ctx: &Arc<RnsContext>, v: i64) -> RnsPoly {
        let mut coeffs = vec![0i64; 64];
        coeffs[0] = v << 40;
        RnsPoly::from_signed_coeffs(ctx, 3, &coeffs).to_ntt()
    }

    fn phase_coeff0(r: &Rlwe, sk: &SecretKey) -> i64 {
        let p = r.phase(sk);
        let c = crt::reconstruct_centered(&p);
        let mag = c[0].1.to_u128().unwrap_or(u128::MAX) as i64;
        let v = if c[0].0 { -mag } else { mag };
        // Round away the noise below bit 40.
        (v + (1 << 39)) >> 40
    }

    #[test]
    fn external_product_by_one_preserves() {
        let (ctx, sk, mut rng) = setup();
        let m = big_message(&ctx, 5);
        let rlwe = Rlwe::encrypt(&m, &sk, 4, &mut rng);
        let gsw = GswCiphertext::encrypt(1, &sk, 3, 4, &mut rng);
        let prod = gsw.external_product(&rlwe);
        assert_eq!(phase_coeff0(&prod, &sk), 5);
    }

    #[test]
    fn external_product_by_zero_annihilates() {
        let (ctx, sk, mut rng) = setup();
        let m = big_message(&ctx, 7);
        let rlwe = Rlwe::encrypt(&m, &sk, 4, &mut rng);
        let gsw = GswCiphertext::encrypt(0, &sk, 3, 4, &mut rng);
        let prod = gsw.external_product(&rlwe);
        assert_eq!(phase_coeff0(&prod, &sk), 0);
    }

    #[test]
    fn external_product_chains() {
        // GSW(1) ⊡ (GSW(1) ⊡ RLWE(m)) == m: the asymmetric noise growth
        // property in action (noise adds, it does not multiply).
        let (ctx, sk, mut rng) = setup();
        let m = big_message(&ctx, 3);
        let rlwe = Rlwe::encrypt(&m, &sk, 4, &mut rng);
        let g1 = GswCiphertext::encrypt(1, &sk, 3, 4, &mut rng);
        let out = g1.external_product(&g1.external_product(&rlwe));
        assert_eq!(phase_coeff0(&out, &sk), 3);
    }

    #[test]
    fn trivial_rlwe_phase_is_message() {
        let (ctx, sk, _rng) = setup();
        let m = big_message(&ctx, 9);
        let t = Rlwe::trivial(&m);
        assert_eq!(phase_coeff0(&t, &sk), 9);
    }

    #[test]
    fn gsw_size_matches_2l_by_2_matrix() {
        let (_ctx, sk, mut rng) = setup();
        let gsw = GswCiphertext::encrypt(1, &sk, 3, 4, &mut rng);
        // 2L rows x 2 polys x L limbs x N coeffs x 4 bytes.
        assert_eq!(gsw.size_bytes(), 2 * 3 * 2 * 3 * 64 * 4);
    }
}
