//! FHE parameter sets (§2.2.3, §7).
//!
//! A parameter set fixes the ring dimension `N`, the RNS modulus chain
//! `q_1..q_L` (plus the special primes the GHS key-switch variant needs),
//! the plaintext modulus `t` (BGV) or scale (CKKS), and the error
//! distribution. The paper's security rule of thumb — `N / log Q` must
//! stay above a scheme-dependent floor — is checked by
//! [`security_level_bits`].

use f1_poly::rns::RnsContext;
use std::sync::Arc;

/// Width in bits of every generated BGV RNS limb prime.
///
/// The paper's functional simulator samples NTT-friendly primes of roughly
/// 24 bits (§8.5); we default to 30 bits (still one 32-bit word) for extra
/// noise headroom per limb.
pub const LIMB_BITS: u32 = 30;

/// Width in bits of CKKS limb primes.
///
/// CKKS rescaling divides the fixed-point scale by one limb prime per
/// multiplication, so limbs are sized to the scale (`q_i ≈ Δ`) to keep the
/// scale stationary across levels — the standard RNS-CKKS discipline.
pub const CKKS_LIMB_BITS: u32 = 25;

/// Estimates the security level in bits for ring dimension `n` and total
/// ciphertext modulus width `log_q` bits, following the homomorphic
/// encryption standard's ternary-secret tables \[2\] (linear interpolation
/// between table rows; the paper's §2.2.3 rule).
pub fn security_level_bits(n: usize, log_q: u32) -> f64 {
    // (N, log Q) pairs giving ~128-bit security per the HE standard.
    // At fixed N, halving log Q roughly doubles the security level.
    const TABLE_128: &[(usize, f64)] =
        &[(1024, 27.0), (2048, 54.0), (4096, 109.0), (8192, 218.0), (16384, 438.0), (32768, 881.0)];
    let budget_128 = TABLE_128
        .iter()
        .find(|&&(tn, _)| tn >= n)
        .map(|&(_, b)| b)
        .unwrap_or(881.0 * (n as f64 / 32768.0));
    128.0 * budget_128 / log_q as f64
}

/// Parameters for the BGV scheme.
#[derive(Debug, Clone)]
pub struct BgvParams {
    /// Ring dimension `N`.
    pub n: usize,
    /// Number of ciphertext limbs at the top level (the paper's `L`).
    pub max_level: usize,
    /// Number of special primes reserved for GHS key-switching.
    pub special_levels: usize,
    /// Plaintext modulus `t`.
    pub plaintext_modulus: u64,
    /// Centered-binomial error parameter η (std-dev ≈ sqrt(η/2)).
    pub error_eta: u32,
    /// Shared polynomial context over the full chain (limbs + specials).
    ctx: Arc<RnsContext>,
}

impl BgvParams {
    /// Builds a parameter set, generating the RNS chain.
    ///
    /// # Panics
    ///
    /// Panics if `t < 2`, if `t` shares a factor with the generated chain
    /// (BGV needs `gcd(t, Q) = 1`), or the chain cannot be generated.
    pub fn new(n: usize, max_level: usize, special_levels: usize, t: u64) -> Self {
        Self::with_prime_class(n, max_level, special_levels, t, false)
    }

    /// Builds a parameter set whose chain consists of *FHE-friendly* primes
    /// (`q ≡ 1 mod 2^16`, §5.3). Besides enabling the cheap modular
    /// multiplier, this class makes `q^{-1} ≡ 1` modulo every power-of-two
    /// plaintext modulus up to `2^16`, so bootstrapping's digit extraction
    /// runs with trivial correction factors.
    pub fn new_fhe_friendly(n: usize, max_level: usize, special_levels: usize, t: u64) -> Self {
        Self::with_prime_class(n, max_level, special_levels, t, true)
    }

    fn with_prime_class(
        n: usize,
        max_level: usize,
        special_levels: usize,
        t: u64,
        fhe_friendly: bool,
    ) -> Self {
        assert!(t >= 2, "plaintext modulus must be at least 2");
        let ctx = if fhe_friendly {
            let qs =
                f1_modarith::primes::fhe_friendly_primes(LIMB_BITS, max_level + special_levels);
            RnsContext::from_moduli(n, &qs)
        } else {
            RnsContext::for_ring(n, LIMB_BITS, max_level + special_levels)
        };
        for m in ctx.moduli() {
            assert!(
                !(m.value() as u64).is_multiple_of(t),
                "plaintext modulus must be coprime to the chain"
            );
        }
        Self { n, max_level, special_levels, plaintext_modulus: t, error_eta: 8, ctx }
    }

    /// A small parameter set for fast unit tests: `t = 65537` (SIMD-capable
    /// for every supported `N`), no special primes.
    pub fn test_small(n: usize, levels: usize) -> Self {
        Self::new(n, levels, 0, 65537)
    }

    /// A parameter set with special primes for GHS key-switching tests.
    pub fn test_with_specials(n: usize, levels: usize, specials: usize) -> Self {
        Self::new(n, levels, specials, 65537)
    }

    /// The shared polynomial context (program limbs followed by special
    /// primes).
    pub fn context(&self) -> &Arc<RnsContext> {
        &self.ctx
    }

    /// Security estimate at the top level.
    pub fn security_bits(&self) -> f64 {
        security_level_bits(self.n, self.ctx.log_q(self.max_level + self.special_levels))
    }

    /// `log2` of the top-level ciphertext modulus (excluding specials).
    pub fn log_q(&self) -> u32 {
        self.ctx.log_q(self.max_level)
    }

    /// A parameter set sharing this one's ring context but with a
    /// different plaintext modulus — bootstrapping temporarily raises the
    /// plaintext modulus to `2^{ν+ρ+1}` while keeping the same keys.
    ///
    /// # Panics
    ///
    /// Panics if the new modulus shares a factor with the chain.
    pub fn with_plaintext_modulus(&self, t: u64) -> Self {
        assert!(t >= 2);
        for m in self.ctx.moduli() {
            assert!(
                !(m.value() as u64).is_multiple_of(t),
                "plaintext modulus must be coprime to the chain"
            );
        }
        Self { plaintext_modulus: t, ..self.clone() }
    }
}

/// Parameters for the CKKS scheme.
#[derive(Debug, Clone)]
pub struct CkksParams {
    /// Ring dimension `N` (slots = N/2).
    pub n: usize,
    /// Number of ciphertext limbs at the top level.
    pub max_level: usize,
    /// Number of special primes for GHS key-switching.
    pub special_levels: usize,
    /// Fixed-point scale Δ applied at encoding.
    pub scale: f64,
    /// Centered-binomial error parameter.
    pub error_eta: u32,
    ctx: Arc<RnsContext>,
}

impl CkksParams {
    /// Builds a CKKS parameter set.
    pub fn new(n: usize, max_level: usize, special_levels: usize, scale: f64) -> Self {
        let ctx = RnsContext::for_ring(n, CKKS_LIMB_BITS, max_level + special_levels);
        Self { n, max_level, special_levels, scale, error_eta: 4, ctx }
    }

    /// Small test parameters: scale 2^25 matches the 25-bit limb width so
    /// the scale is stationary under rescaling, with enough special primes
    /// for GHS rotation key-switching (`P >= Q`).
    pub fn test_small(n: usize, levels: usize) -> Self {
        Self::new(n, levels, levels + 1, (1u64 << 25) as f64)
    }

    /// The shared polynomial context.
    pub fn context(&self) -> &Arc<RnsContext> {
        &self.ctx
    }

    /// Security estimate at the top level.
    pub fn security_bits(&self) -> f64 {
        security_level_bits(self.n, self.ctx.log_q(self.max_level + self.special_levels))
    }
}

/// The three microbenchmark parameter sets of Table 4.
///
/// Returns `(N, target log Q, L at 30-bit limbs)` triples: the paper's
/// `(2^12, 109)`, `(2^13, 218)`, `(2^14, 438)`.
pub fn table4_parameter_sets() -> [(usize, u32, usize); 3] {
    [(1 << 12, 109, 4), (1 << 13, 218, 8), (1 << 14, 438, 15)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_matches_he_standard_anchors() {
        // The anchor points themselves must give ~128 bits.
        for (n, logq) in [(1024usize, 27u32), (4096, 109), (16384, 438)] {
            let s = security_level_bits(n, logq);
            assert!((s - 128.0).abs() < 1e-9, "n={n} logq={logq}: {s}");
        }
        // Narrower Q at the same N is more secure.
        assert!(security_level_bits(16384, 219) > security_level_bits(16384, 438));
        // Wider Q at the same N is less secure.
        assert!(security_level_bits(4096, 218) < 128.0);
    }

    #[test]
    fn bgv_params_build_chain() {
        let p = BgvParams::test_small(64, 4);
        assert_eq!(p.context().max_level(), 4);
        assert_eq!(p.plaintext_modulus, 65537);
        assert!(p.log_q() >= 4 * (LIMB_BITS - 1));
    }

    #[test]
    fn specials_extend_the_chain() {
        let p = BgvParams::test_with_specials(64, 3, 2);
        assert_eq!(p.context().max_level(), 5);
        assert_eq!(p.max_level, 3);
    }

    #[test]
    fn table4_sets_cover_paper_columns() {
        let sets = table4_parameter_sets();
        assert_eq!(sets[0].0, 4096);
        assert_eq!(sets[1].1, 218);
        assert_eq!(sets[2].2, 15);
        for (n, logq, l) in sets {
            // L limbs at 30 bits must reach the paper's target log Q.
            assert!((l as u32 * LIMB_BITS) >= logq, "n={n}: {l} limbs < {logq} bits");
        }
    }
}
