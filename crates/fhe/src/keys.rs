//! Secret keys and key generation.

use f1_poly::rns::{RnsContext, RnsPoly};
use rand::Rng;
use std::sync::Arc;

/// A ternary secret key `s`, stored in NTT form over the *full* context
/// chain (program limbs plus special primes) so any level prefix can be
/// truncated from it.
#[derive(Debug, Clone)]
pub struct SecretKey {
    ctx: Arc<RnsContext>,
    /// `s` in NTT form at the full chain length.
    s_ntt: RnsPoly,
    /// The signed ternary coefficients (kept for bootstrapping-key
    /// generation, where `s` itself must be encrypted).
    s_signed: Vec<i64>,
}

impl SecretKey {
    /// Samples a fresh ternary secret key.
    pub fn generate(ctx: &Arc<RnsContext>, rng: &mut impl Rng) -> Self {
        let s_signed: Vec<i64> = (0..ctx.n()).map(|_| rng.gen_range(-1i64..=1)).collect();
        let s = RnsPoly::from_signed_coeffs(ctx, ctx.max_level(), &s_signed);
        Self { ctx: ctx.clone(), s_ntt: s.to_ntt(), s_signed }
    }

    /// The shared context.
    pub fn context(&self) -> &Arc<RnsContext> {
        &self.ctx
    }

    /// `s` in NTT form truncated to `level` limbs.
    pub fn s_at_level(&self, level: usize) -> RnsPoly {
        self.s_ntt.truncate_level(level)
    }

    /// `s²` in NTT form truncated to `level` limbs (the key homomorphic
    /// multiplication key-switches away from, §2.2.1).
    pub fn s_squared_at_level(&self, level: usize) -> RnsPoly {
        let s = self.s_at_level(level);
        s.mul(&s)
    }

    /// `σ_k(s)` in NTT form truncated to `level` limbs (the key a
    /// homomorphic permutation key-switches away from).
    pub fn s_automorphism_at_level(&self, k: usize, level: usize) -> RnsPoly {
        self.s_at_level(level).automorphism(k)
    }

    /// The signed ternary coefficients of `s` (client-side secret; used to
    /// generate bootstrapping keys, which encrypt `s` under itself).
    pub fn signed_coeffs(&self) -> &[i64] {
        &self.s_signed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn secret_key_is_ternary_and_consistent() {
        let ctx = RnsContext::for_ring(64, 30, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&ctx, &mut rng);
        assert!(sk.signed_coeffs().iter().all(|&c| (-1..=1).contains(&c)));
        // NTT form round-trips to the signed coefficients.
        let back = sk.s_at_level(3).to_coeff();
        let direct = RnsPoly::from_signed_coeffs(&ctx, 3, sk.signed_coeffs());
        assert_eq!(back, direct);
    }

    #[test]
    fn s_squared_matches_ring_product() {
        let ctx = RnsContext::for_ring(64, 30, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let s = sk.s_at_level(2);
        assert_eq!(sk.s_squared_at_level(2), s.mul(&s));
    }

    #[test]
    fn automorphism_key_consistency() {
        let ctx = RnsContext::for_ring(64, 30, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let via_ntt = sk.s_automorphism_at_level(3, 2).to_coeff();
        let direct = RnsPoly::from_signed_coeffs(&ctx, 2, sk.signed_coeffs()).automorphism(3);
        assert_eq!(via_ntt, direct);
    }
}
