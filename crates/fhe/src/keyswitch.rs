//! Key-switching: the dominant FHE kernel (§2.4) in its two variants.
//!
//! Key-switching re-encrypts a polynomial `x` that is implicitly multiplied
//! by some other secret `s'` (e.g. `s²` after a tensor product, `σ_k(s)`
//! after an automorphism) into the original key `s`. It returns `(u0, u1)`
//! with
//!
//! ```text
//!   u0 - u1 * s  =  x * s'  +  t_err * E      (mod Q_l)
//! ```
//!
//! where `t_err` is the plaintext modulus for BGV (so the added noise stays
//! a multiple of `t`) or 1 for CKKS.
//!
//! Two implementations, matching the algorithmic choice the paper's
//! compiler exploits (§2.4, §4.2):
//!
//! * [`DecompHint`] — the RNS-decomposition variant of **Listing 1**:
//!   hints are `L × L` matrices of residue vectors (32 MB at `L = 16`,
//!   `N = 16K` — exactly the paper's example), compute is `L²` NTTs +
//!   `2L²` multiplies + `2L²` adds.
//! * [`GhsHint`] — a GHS-style variant [34, 45] whose hint grows `O(L)`:
//!   one pair of polynomials over the extended basis `Q·P` (`P` a product
//!   of special primes). It needs more compute per limb (basis extension
//!   into the special primes and a rounded division by `P`) but much less
//!   hint traffic, becoming attractive at very large `L` — the tradeoff
//!   §2.4 describes.

use crate::keys::SecretKey;
use f1_modarith::slice_ops;
use f1_poly::rns::{Domain, RnsContext, RnsPoly};
use rand::Rng;
use std::sync::Arc;

/// Reusable scratch buffers for the decomposition key-switch.
///
/// [`DecompHint::apply_with_scratch`] needs two working polynomials: the
/// coefficient-domain copy of the input (`y` in Listing 1) and the lifted
/// digit being accumulated. Holding them in a caller-owned arena means the
/// digit-decomposition inner loop of a whole program reuses one pair of
/// allocations; `Default::default()` starts empty and the buffers are
/// grown (and re-homed to a new context) on first use.
#[derive(Debug, Default)]
pub struct KsScratch {
    /// Coefficient-domain copy of the key-switch input.
    y: Option<RnsPoly>,
    /// The lifted digit polynomial (Listing 1's `xqj` row).
    lifted: Option<RnsPoly>,
}

/// Which key-switch implementation to use (the compiler's choice, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySwitchVariant {
    /// Listing 1: `L²` hints, lowest compute.
    Decomposition,
    /// GHS-style: `O(L)` hints, more compute.
    Ghs,
}

/// Operation counts for one key-switch at level `l`, used by the compiler
/// cost model and by the paper's Listing-1 analysis (`L²` NTTs, `2L²`
/// multiplies, `2L²` adds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySwitchCost {
    /// Number of `N`-point NTT/INTT invocations.
    pub ntts: usize,
    /// Number of element-wise `N`-vector multiplies.
    pub muls: usize,
    /// Number of element-wise `N`-vector adds.
    pub adds: usize,
    /// Hint bytes that must be resident for the operation.
    pub hint_bytes: usize,
}

impl KeySwitchVariant {
    /// The cost of one key-switch at level `l` with ring dimension `n`
    /// (and `k` special primes for the GHS variant).
    pub fn cost(&self, l: usize, k_special: usize, n: usize) -> KeySwitchCost {
        match self {
            // Listing 1: L INTTs for y, L*(L-1) forward NTTs for the lifts,
            // 2L^2 multiplies and 2L^2 adds; hints are 2 * L * L RVecs.
            KeySwitchVariant::Decomposition => KeySwitchCost {
                ntts: l + l * (l - 1),
                muls: 2 * l * l,
                adds: 2 * l * l,
                hint_bytes: 2 * l * l * n * 4,
            },
            // GHS: INTT the l limbs, extend into k specials (l*k NTTs on
            // the lifted limbs... k NTTs per special over the lifted value),
            // 2 (l+k) multiplies for the hint product, then the rounded
            // division by P: per special, (l + k) scalar-multiply-add
            // passes and INTT/NTT pairs to move between domains.
            KeySwitchVariant::Ghs => KeySwitchCost {
                ntts: l + k_special + 2 * (l + k_special),
                muls: 2 * (l + k_special) + 2 * k_special * (l + k_special),
                adds: 2 * (l + k_special) + 2 * k_special * (l + k_special),
                hint_bytes: 2 * (l + k_special) * n * 4,
            },
        }
    }
}

/// The Listing-1 hint: one `(ksh0, ksh1)` row per source limb.
///
/// Row `i` quasi-encrypts `s' * e_i` under `s`, where `e_i` is the CRT
/// idempotent of limb `i` (whose RNS representation is the indicator
/// vector) — truncating rows and limbs therefore yields a correct hint for
/// every lower level, which is how one hint serves the whole program as
/// modulus switching sheds limbs.
#[derive(Debug, Clone)]
pub struct DecompHint {
    level: usize,
    /// The noise multiplier the hint was generated with (t for BGV, 1 for
    /// CKKS); retained for diagnostics and scheduling metadata.
    pub error_scale: u64,
    /// `rows[i] = (ksh0_i, ksh1_i)`, NTT domain, `level` limbs each.
    rows: Vec<(RnsPoly, RnsPoly)>,
}

impl DecompHint {
    /// Generates a hint re-encrypting `target` (e.g. `s²` or `σ_k(s)`, NTT
    /// domain at `level`) into `sk`.
    pub fn generate(
        sk: &SecretKey,
        target: &RnsPoly,
        level: usize,
        error_scale: u64,
        eta: u32,
        rng: &mut impl Rng,
    ) -> Self {
        Self::generate_with(sk, target, level, error_scale, eta, rng, true, true)
    }

    /// Test-isolation constructor: toggles the random mask and the noise
    /// term independently.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn generate_with(
        sk: &SecretKey,
        target: &RnsPoly,
        level: usize,
        error_scale: u64,
        eta: u32,
        rng: &mut impl Rng,
        with_mask: bool,
        with_noise: bool,
    ) -> Self {
        assert_eq!(target.domain(), Domain::Ntt);
        assert_eq!(target.level(), level);
        let ctx = sk.context().clone();
        let s = sk.s_at_level(level);
        let mut rows = Vec::with_capacity(level);
        for i in 0..level {
            let a = if with_mask {
                RnsPoly::random_at_level(&ctx, level, rng).to_ntt()
            } else {
                RnsPoly::zero_ntt_at_level(&ctx, level)
            };
            let e = if with_noise {
                RnsPoly::random_error(&ctx, level, eta, rng)
                    .to_ntt()
                    .mul_scalar(scale_residue(error_scale))
            } else {
                RnsPoly::zero_ntt_at_level(&ctx, level)
            };
            // gadget * target: zero every limb except limb i.
            let mut g_target = target.clone();
            for j in 0..level {
                if j != i {
                    g_target.limb_mut(j).iter_mut().for_each(|x| *x = 0);
                }
            }
            // ksh0 = a*s + t*e + g_i*s', ksh1 = a, so that
            // u0 - u1*s = Σ lift_i*(t*e_i) + x*s'.
            let ksh0 = a.mul(&s).add(&e).add(&g_target);
            rows.push((ksh0, a));
        }
        Self { level, error_scale, rows }
    }

    /// The level the hint was generated at.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Read access to hint row `i`: the `(ksh0_i, ksh1_i)` pair (NTT
    /// domain, `level` limbs each). Exposed for benchmarks and traffic
    /// analyses.
    pub fn row(&self, i: usize) -> (&RnsPoly, &RnsPoly) {
        let (r0, r1) = &self.rows[i];
        (r0, r1)
    }

    /// A zero-mask, zero-noise hint: `rows[i] = (g_i * target, 0)`.
    /// Test-only scaffolding to isolate the gadget identity
    /// `Σ lift_i ⊙ g_i·target == x·target`.
    #[doc(hidden)]
    pub fn generate_noiseless_for_tests(sk: &SecretKey, target: &RnsPoly, level: usize) -> Self {
        let ctx = sk.context().clone();
        let mut rows = Vec::with_capacity(level);
        for i in 0..level {
            let mut g_target = target.clone();
            for j in 0..level {
                if j != i {
                    g_target.limb_mut(j).iter_mut().for_each(|x| *x = 0);
                }
            }
            rows.push((g_target, RnsPoly::zero_ntt_at_level(&ctx, level)));
        }
        Self { level, error_scale: 1, rows }
    }

    /// Hint size in bytes when used at level `l`.
    pub fn size_bytes_at(&self, l: usize) -> usize {
        let n = self.rows[0].0.n();
        2 * l * l * n * 4
    }

    /// Applies the key-switch to `x` (NTT domain, level `l <= level`).
    ///
    /// Convenience wrapper over [`DecompHint::apply_with_scratch`] with a
    /// one-shot arena.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in NTT domain or exceeds the hint's level.
    pub fn apply(&self, x: &RnsPoly) -> (RnsPoly, RnsPoly) {
        self.apply_with_scratch(x, &mut KsScratch::default())
    }

    /// Applies the key-switch to `x`, reusing `scratch`'s buffers for the
    /// digit-decomposition inner loop.
    ///
    /// This is Listing 1: INTT each limb, lift into the other bases, NTT
    /// back, and multiply-accumulate the hint products — the lift lands in
    /// the scratch arena and the accumulation is fused ([`RnsPoly::fma_assign`]
    /// shape), so steady state allocates only the returned `(u0, u1)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in NTT domain or exceeds the hint's level.
    pub fn apply_with_scratch(&self, x: &RnsPoly, scratch: &mut KsScratch) -> (RnsPoly, RnsPoly) {
        assert_eq!(x.domain(), Domain::Ntt, "key-switch input must be in NTT domain");
        let l = x.level();
        assert!(l <= self.level, "hint level {} below input level {l}", self.level);
        let ctx = x.context().clone();
        // Line 3 of Listing 1: y = [INTT(x[i])], into the scratch arena.
        let y = match &mut scratch.y {
            Some(y) => {
                y.clone_from(x);
                y
            }
            slot => slot.insert(x.clone()),
        };
        y.intt_inplace();
        let lifted = match &mut scratch.lifted {
            Some(p) if Arc::ptr_eq(p.context(), &ctx) => p,
            slot => slot.insert(RnsPoly::zero_at_level(&ctx, l)),
        };
        let mut u0 = RnsPoly::zero_ntt_at_level(&ctx, l);
        let mut u1 = RnsPoly::zero_ntt_at_level(&ctx, l);
        for (i, (row0, row1)) in self.rows.iter().take(l).enumerate() {
            // Lines 7-8: lift limb i into every base (xqj); the j == i case
            // reuses x[i] directly.
            lift_limb_into(y, i, l, &ctx, Some(x), lifted);
            // Lines 9-10: multiply-accumulate against both hint rows. Rows
            // live at the hint's level; reading their first `l` limbs is the
            // truncation that keeps one hint valid for every lower level.
            for j in 0..l {
                let mj = ctx.modulus(j);
                slice_ops::fma_slice(mj, u0.limb_mut(j), lifted.limb(j), row0.limb(j));
                slice_ops::fma_slice(mj, u1.limb_mut(j), lifted.limb(j), row1.limb(j));
            }
        }
        (u0, u1)
    }
}

/// The GHS-style hint: a single row over the extended basis `Q_max * P`.
#[derive(Debug, Clone)]
pub struct GhsHint {
    /// Program level the hint serves (max level).
    level: usize,
    /// Index where special primes start in the chain (= max program level).
    special_start: usize,
    /// Number of special primes `K`.
    special_count: usize,
    error_scale: u64,
    /// `(ksh0, ksh1)` over `special_start + special_count` limbs, NTT.
    ksh0: RnsPoly,
    ksh1: RnsPoly,
}

impl GhsHint {
    /// Generates a GHS hint re-encrypting `target` into `sk`.
    ///
    /// `target` must be given at the *full* chain length (program limbs +
    /// specials); the hint encrypts `P * target` so that the rounded
    /// division by `P` after the product leaves `x * target` plus small
    /// noise.
    ///
    /// # Panics
    ///
    /// Panics if the context has no special primes.
    pub fn generate(
        sk: &SecretKey,
        target_full: &RnsPoly,
        program_level: usize,
        error_scale: u64,
        eta: u32,
        rng: &mut impl Rng,
    ) -> Self {
        let ctx = sk.context().clone();
        let full = ctx.max_level();
        let k = full - program_level;
        assert!(k > 0, "GHS key-switching requires special primes in the chain");
        assert_eq!(target_full.level(), full);
        assert_eq!(target_full.domain(), Domain::Ntt);
        let s = sk.s_at_level(full);
        let a = RnsPoly::random_at_level(&ctx, full, rng).to_ntt();
        let e = RnsPoly::random_error(&ctx, full, eta, rng)
            .to_ntt()
            .mul_scalar(scale_residue(error_scale));
        // P mod each limb: product of the special primes.
        let mut p_target = target_full.clone();
        for j in 0..full {
            let m = ctx.modulus(j);
            let mut p_mod = 1u32;
            for sp in program_level..full {
                p_mod = m.mul(p_mod, (ctx.modulus(sp).value() as u64 % m.value() as u64) as u32);
            }
            for x in p_target.limb_mut(j).iter_mut() {
                *x = m.mul(*x, p_mod);
            }
        }
        // ksh0 = a*s + t*e + P*s', ksh1 = a (same convention as DecompHint).
        let ksh0 = a.mul(&s).add(&e).add(&p_target);
        Self {
            level: program_level,
            special_start: program_level,
            special_count: k,
            error_scale,
            ksh0,
            ksh1: a,
        }
    }

    /// Hint size in bytes when used at level `l`.
    pub fn size_bytes_at(&self, l: usize) -> usize {
        2 * (l + self.special_count) * self.ksh0.n() * 4
    }

    /// Applies the GHS key-switch to `x` (NTT domain, level `l <= level`).
    ///
    /// Pipeline: lift `x` into the special basis, multiply by the hint over
    /// `Q_l * P`, then divide by `P` with `t`-preserving rounding.
    pub fn apply(&self, x: &RnsPoly) -> (RnsPoly, RnsPoly) {
        assert_eq!(x.domain(), Domain::Ntt);
        let l = x.level();
        assert!(l <= self.level);
        let ctx = x.context().clone();
        let n = x.n();
        // Lift x into program limbs 0..l plus the specials using the
        // floating-point-assisted RNS base extension (HPS-style): exact for
        // chains far deeper than ours, and O(N * l * (l+K)) word ops — the
        // same arithmetic shape the accelerator executes as vector ops.
        let y = x.to_coeff();
        let lvl_limbs: Vec<usize> =
            (0..l).chain(self.special_start..self.special_start + self.special_count).collect();
        let crt = ctx.crt_level(l);
        // Per-coefficient digits yhat_i = [x_i * (Q/q_i)^{-1}]_{q_i} and the
        // overflow estimate alpha = round(sum yhat_i / q_i), so that
        // x = sum yhat_i * (Q/q_i) - alpha * Q exactly, with x in [0, Q).
        let mut yhat = vec![vec![0u32; n]; l];
        let mut alpha = vec![0u64; n];
        {
            let mut frac = vec![0f64; n];
            for i in 0..l {
                let mi = ctx.modulus(i);
                let inv = crt.q_over_qi_inv[i];
                let qi_f = mi.value() as f64;
                let src = y.limb(i);
                for c in 0..n {
                    let d = mi.mul(src[c], inv);
                    yhat[i][c] = d;
                    frac[c] += d as f64 / qi_f;
                }
            }
            for c in 0..n {
                alpha[c] = frac[c].round() as u64;
            }
        }
        let mut ext_limbs: Vec<Vec<u32>> = Vec::with_capacity(lvl_limbs.len());
        for &j in &lvl_limbs {
            let mj = ctx.modulus(j);
            let w_ij: Vec<u32> =
                (0..l).map(|i| crt.q_over_qi[i].rem_u64(mj.value() as u64) as u32).collect();
            let q_mod_j = crt.q_big.rem_u64(mj.value() as u64) as u32;
            let mut limb = vec![0u32; n];
            for c in 0..n {
                let mut acc = 0u64;
                for i in 0..l {
                    acc += yhat[i][c] as u64 * w_ij[i] as u64 % mj.value() as u64;
                }
                // acc sums l reduced terms (< q_j < 2^31 each) and alpha
                // counts at most l overflow units, so both operands stay
                // < l * 2^31 << 2^63 — reduce_u64's Barrett fast path.
                let pos = mj.reduce_u64(acc);
                let corr = mj.reduce_u64(alpha[c] * q_mod_j as u64);
                limb[c] = mj.sub(pos, corr);
            }
            self.ntt_limb(&ctx, j, &mut limb);
            ext_limbs.push(limb);
        }
        // Multiply by the hint over the extended basis.
        let mut u0_limbs: Vec<Vec<u32>> = Vec::with_capacity(lvl_limbs.len());
        let mut u1_limbs: Vec<Vec<u32>> = Vec::with_capacity(lvl_limbs.len());
        for (pos, &j) in lvl_limbs.iter().enumerate() {
            let m = ctx.modulus(j);
            let h0 = self.ksh0.limb(j);
            let h1 = self.ksh1.limb(j);
            let mut l0 = vec![0u32; n];
            let mut l1 = vec![0u32; n];
            for c in 0..n {
                l0[c] = m.mul(ext_limbs[pos][c], h0[c]);
                l1[c] = m.mul(ext_limbs[pos][c], h1[c]);
            }
            u0_limbs.push(l0);
            u1_limbs.push(l1);
        }
        // Rounded division by P with t-preserving correction, special by
        // special. Work in coefficient domain.
        for limbs in [&mut u0_limbs, &mut u1_limbs] {
            for (pos, &j) in lvl_limbs.iter().enumerate() {
                self.intt_limb(&ctx, j, &mut limbs[pos]);
            }
        }
        let t = self.error_scale;
        for sp in (0..self.special_count).rev() {
            let sp_pos = l + sp;
            let sp_idx = self.special_start + sp;
            let p = ctx.modulus(sp_idx);
            let t_inv_p = if t == 1 { 1 } else { p.inv((t % p.value() as u64) as u32) };
            for limbs in [&mut u0_limbs, &mut u1_limbs] {
                let (head, tail) = limbs.split_at_mut(sp_pos);
                let top = &tail[0];
                for (pos2, limb) in head.iter_mut().enumerate() {
                    let j = if pos2 < l { pos2 } else { self.special_start + (pos2 - l) };
                    let mj = ctx.modulus(j);
                    let p_inv = mj.inv((p.value() as u64 % mj.value() as u64) as u32);
                    let t_red = (t % mj.value() as u64) as u32;
                    for c in 0..top.len() {
                        // delta = t * [top * t^{-1}]_p centered: congruent to
                        // the residue mod p and to 0 mod t.
                        let mu = p.mul(top[c], t_inv_p);
                        let mu_c = p.center(mu);
                        let delta = mj.mul(mj.reduce_i64(mu_c), t_red);
                        let num = mj.sub(limb[c], delta);
                        limb[c] = mj.mul(num, p_inv);
                    }
                }
                limbs.truncate(sp_pos);
            }
        }
        // Re-assemble RnsPolys at level l (NTT domain).
        let mut u0 = RnsPoly::zero_at_level(&ctx, l);
        let mut u1 = RnsPoly::zero_at_level(&ctx, l);
        for j in 0..l {
            u0.limb_mut(j).copy_from_slice(&u0_limbs[j]);
            u1.limb_mut(j).copy_from_slice(&u1_limbs[j]);
        }
        (u0.to_ntt(), u1.to_ntt())
    }

    fn ntt_limb(&self, ctx: &Arc<RnsContext>, j: usize, limb: &mut [u32]) {
        ctx.tables(j).forward(limb);
    }

    fn intt_limb(&self, ctx: &Arc<RnsContext>, j: usize, limb: &mut [u32]) {
        ctx.tables(j).inverse(limb);
    }
}

/// Lifts limb `i` of the coefficient-domain polynomial `y` into all `l`
/// bases via the centered representative, writing an NTT-domain polynomial
/// into `out` (Listing 1 lines 7-8). When `orig` is given, limb `i` is
/// copied from it verbatim (the `i == j` shortcut of line 8). The per-base
/// reductions and NTTs run limb-parallel on large rings.
fn lift_limb_into(
    y: &RnsPoly,
    i: usize,
    l: usize,
    ctx: &Arc<RnsContext>,
    orig: Option<&RnsPoly>,
    out: &mut RnsPoly,
) {
    let mi = *ctx.modulus(i);
    let src = y.limb(i);
    // Every coefficient of every limb is written below (copy or
    // reduce+NTT), so the scratch reshape skips zeroing.
    out.reshape_for_overwrite(l, Domain::Coefficient);
    let tables = ctx.clone();
    out.for_each_limb_mut(|j, mj, limb| {
        if j == i {
            if let Some(o) = orig {
                limb.copy_from_slice(o.limb(i));
                return;
            }
        }
        for (x, &s) in limb.iter_mut().zip(src) {
            *x = mj.reduce_i64(mi.center(s));
        }
        tables.tables(j).forward(limb);
    });
    // The limbs were filled with NTT-domain data directly.
    out.assume_domain(Domain::Ntt);
}

fn scale_residue(t: u64) -> u32 {
    // Error scale as a small residue multiplier; t < 2^31 in all our
    // parameter sets.
    u32::try_from(t).expect("error scale must fit in 32 bits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_poly::crt;
    use rand::SeedableRng;

    /// Checks u0 - u1*s ≡ x*target + t*E with small E.
    fn check_keyswitch(
        _ctx: &Arc<RnsContext>,
        sk: &SecretKey,
        x: &RnsPoly,
        target: &RnsPoly,
        (u0, u1): (RnsPoly, RnsPoly),
        t: u64,
        max_noise_log2: f64,
    ) {
        let l = x.level();
        let s = sk.s_at_level(l);
        let lhs = u0.sub(&u1.mul(&s));
        let want = x.mul(&target.truncate_level(l));
        let diff = lhs.sub(&want).to_coeff();
        // The difference must be t * (small); verify magnitude and
        // divisibility by t.
        let centered = crt::reconstruct_centered(&diff);
        for (c, val) in centered.iter().enumerate() {
            assert_eq!(val.1.rem_u64(t), 0, "noise at coeff {c} not a multiple of t");
        }
        let noise = crt::log2_infinity_norm(&diff);
        assert!(
            noise < max_noise_log2,
            "key-switch noise too large: 2^{noise:.1} (limit 2^{max_noise_log2})"
        );
    }

    #[test]
    fn decomp_keyswitch_is_correct() {
        let ctx = RnsContext::for_ring(64, 30, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let target = sk.s_squared_at_level(3);
        let hint = DecompHint::generate(&sk, &target, 3, 65537, 8, &mut rng);
        let x = RnsPoly::random_at_level(&ctx, 3, &mut rng).to_ntt();
        let out = hint.apply(&x);
        // Noise bound: |x̂_i| < q/2 ~ 2^29, times t*e (~2^20), times N*L.
        check_keyswitch(&ctx, &sk, &x, &target, out, 65537, 29.0 + 17.0 + 4.0 + 12.0);
    }

    #[test]
    fn decomp_keyswitch_at_lower_level() {
        // A hint generated at level 3 must remain correct after modulus
        // switching drops the ciphertext to level 2.
        let ctx = RnsContext::for_ring(64, 30, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let target = sk.s_squared_at_level(3);
        let hint = DecompHint::generate(&sk, &target, 3, 65537, 8, &mut rng);
        let x = RnsPoly::random_at_level(&ctx, 2, &mut rng).to_ntt();
        let out = hint.apply(&x);
        check_keyswitch(&ctx, &sk, &x, &target, out, 65537, 62.0);
    }

    #[test]
    fn ghs_keyswitch_is_correct() {
        // 3 program limbs + 3 specials (P > Q so the rounded division
        // leaves small noise).
        let ctx = RnsContext::for_ring(64, 30, 6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let target_full = sk.s_squared_at_level(6);
        let hint = GhsHint::generate(&sk, &target_full, 3, 65537, 8, &mut rng);
        let x = RnsPoly::random_at_level(&ctx, 3, &mut rng).to_ntt();
        let out = hint.apply(&x);
        check_keyswitch(&ctx, &sk, &x, &target_full, out, 65537, 60.0);
    }

    #[test]
    fn keyswitch_outputs_are_canonical_and_scratch_invariant() {
        // The fused fma accumulation must leave every residue < q, and a
        // reused scratch arena must not change results (including across
        // inputs of different levels).
        let ctx = RnsContext::for_ring(64, 30, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let target = sk.s_squared_at_level(3);
        let hint = DecompHint::generate(&sk, &target, 3, 65537, 8, &mut rng);
        let mut scratch = KsScratch::default();
        for level in [3usize, 2, 3] {
            let x = RnsPoly::random_at_level(&ctx, level, &mut rng).to_ntt();
            let (u0, u1) = hint.apply(&x);
            let (s0, s1) = hint.apply_with_scratch(&x, &mut scratch);
            assert_eq!(u0, s0, "scratch reuse changed u0 at level {level}");
            assert_eq!(u1, s1, "scratch reuse changed u1 at level {level}");
            for p in [&u0, &u1] {
                for i in 0..p.level() {
                    let q = ctx.modulus(i).value();
                    assert!(p.limb(i).iter().all(|&c| c < q), "residue >= q in limb {i}");
                }
            }
        }
    }

    #[test]
    fn hint_sizes_scale_as_documented() {
        // Paper §2.4: at L=16, N=16K, decomposition hints total 32 MB per
        // (ksh0, ksh1) pair; GHS hints grow linearly.
        let cost_decomp = KeySwitchVariant::Decomposition.cost(16, 0, 16384);
        assert_eq!(cost_decomp.hint_bytes, 32 * 1024 * 1024);
        let cost_ghs = KeySwitchVariant::Ghs.cost(16, 16, 16384);
        assert!(cost_ghs.hint_bytes < cost_decomp.hint_bytes / 7);
        assert!(cost_ghs.muls > cost_decomp.muls, "GHS trades compute for hint size");
    }

    #[test]
    fn listing1_op_counts() {
        // L^2 NTTs (L inverse + L(L-1) forward), 2L^2 muls, 2L^2 adds.
        let c = KeySwitchVariant::Decomposition.cost(16, 0, 16384);
        assert_eq!(c.ntts, 16 * 16);
        assert_eq!(c.muls, 2 * 16 * 16);
        assert_eq!(c.adds, 2 * 16 * 16);
    }
}
