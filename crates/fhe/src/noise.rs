//! Noise accounting shared by the runtime schemes and the static
//! analyzer (§2.2.2).
//!
//! Two families of formulas live here, both in the `log2` domain:
//!
//! - **Tracked estimates** (`*_est`): the heuristic recurrences the
//!   runtime [`crate::bgv::Ciphertext`] carries in `noise_log2`. These
//!   follow average-case growth and are what the scheme code has always
//!   used; they are *estimates*, not bounds.
//! - **Worst-case bounds** (`NoiseModel::wc_*`): sound upper bounds on
//!   the noise magnitude `|t·e|` (infinity norm of the decryption
//!   residue), derived from the centered-binomial error bound `|e| ≤ η`
//!   and per-coefficient magnitudes. The compiler's static noise-budget
//!   analysis interprets programs over these; the differential proptests
//!   in `tests/ir_differential.rs` check the bound dominates measured
//!   noise on the real BGV stack.
//!
//! Only the BGV bounds are validated against a real executor; the CKKS
//! and GSW models follow the same derivation style but are
//! heuristic-grade until those schemes gain functional executors (the
//! analyzer accordingly caps their findings at warning severity).

use crate::params::{CKKS_LIMB_BITS, LIMB_BITS};

/// `log2(2^a + 2^b)` — addition of magnitudes carried in the log domain.
///
/// Tolerates `-inf` (the magnitude of an exactly-zero term, e.g. the
/// noise of an unencrypted operand).
pub fn log2_add(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if lo == f64::NEG_INFINITY || hi - lo > 64.0 {
        return hi;
    }
    hi + (1.0 + (lo - hi).exp2()).log2()
}

/// Tracked estimate for a fresh encryption: `log2(t) + log2(σ) + 1` with
/// `σ ≈ sqrt(η/2)` the error standard deviation.
pub fn fresh_est(t: u64, eta: u32) -> f64 {
    (t as f64).log2() + (eta as f64 / 2.0).sqrt().log2().max(0.0) + 1.0
}

/// Tracked estimate for homomorphic addition/subtraction.
pub fn add_est(a: f64, b: f64) -> f64 {
    a.max(b) + 1.0
}

/// Tracked estimate for ciphertext-ciphertext multiplication (tensor +
/// key-switch): noises multiply and pick up a ring-convolution factor.
pub fn mul_est(a: f64, b: f64, n: usize) -> f64 {
    a + b + (n as f64).log2()
}

/// Tracked estimate for plaintext multiplication: the plaintext operand
/// contributes its magnitude (≤ t) times the average convolution growth.
pub fn mul_plain_est(a: f64, t: u64, n: usize) -> f64 {
    a + (t as f64).log2() + (n as f64).log2() / 2.0
}

/// Tracked estimate for a homomorphic automorphism (key-switch additive
/// noise, small relative to the operand).
pub fn aut_est(a: f64) -> f64 {
    a + 2.0
}

/// Tracked estimate for BGV modulus switching: noise shrinks by the
/// dropped limb's width but cannot fall below the rounding floor
/// `~ t * |s|_1`.
pub fn mod_switch_est(a: f64, log2_q_top: f64, t: u64, n: usize) -> f64 {
    (a - log2_q_top).max((t as f64).log2() + (n as f64).log2())
}

/// Tracked estimate for scaling both polynomials by a centered factor
/// `|f| = fr` (correction alignment).
pub fn scale_est(a: f64, fr: u32) -> f64 {
    a + (fr.max(1) as f64).log2()
}

/// Which scheme's recurrences a [`NoiseModel`] uses where the formulas
/// differ (multiplication and level changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseScheme {
    /// BGV: exact integers mod `t`, noise is `|t·e|`.
    Bgv,
    /// CKKS: fixed-point; "noise" is the error under the scale.
    Ckks,
    /// GSW: matrix ciphertexts driving external products.
    Gsw,
}

/// A static noise model: everything the abstract interpreter needs to
/// evaluate per-op noise growth without a key or a ciphertext.
///
/// Limb widths are taken conservatively: generated chain primes of
/// `limb_bits` bits lie in `[2^(limb_bits-1), 2^limb_bits)`, so the model
/// uses `limb_bits - 1` as each limb's guaranteed width when *crediting*
/// modulus (budget, mod-switch reduction) — an under-estimate of capacity
/// and of noise reduction, hence sound in both uses.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Ring dimension `N`.
    pub n: usize,
    /// Bits per RNS limb prime.
    pub limb_bits: u32,
    /// `log2` of the plaintext modulus `t` (BGV), of the scale Δ (CKKS),
    /// or `1` bit (GSW bit plaintexts).
    pub log2_t: f64,
    /// `log2` of the centered-binomial error bound η.
    pub log2_eta: f64,
    /// Scheme selector for the recurrences that differ.
    pub scheme: NoiseScheme,
}

impl NoiseModel {
    /// BGV model for plaintext modulus `t` and error parameter `eta`.
    pub fn bgv(n: usize, t: u64, eta: u32) -> Self {
        Self {
            n,
            limb_bits: LIMB_BITS,
            log2_t: (t as f64).log2(),
            log2_eta: (eta as f64).log2(),
            scheme: NoiseScheme::Bgv,
        }
    }

    /// BGV model at the workload defaults (`t = 65537`, `η = 8`).
    pub fn bgv_default(n: usize) -> Self {
        Self::bgv(n, 65537, 8)
    }

    /// CKKS model at the workload defaults (Δ = 2^25, `η = 4`).
    pub fn ckks(n: usize) -> Self {
        Self {
            n,
            limb_bits: CKKS_LIMB_BITS,
            log2_t: f64::from(CKKS_LIMB_BITS),
            log2_eta: 2.0,
            scheme: NoiseScheme::Ckks,
        }
    }

    /// GSW model (bit plaintexts, BGV-width limbs, `η = 8`).
    pub fn gsw(n: usize) -> Self {
        Self { n, limb_bits: LIMB_BITS, log2_t: 1.0, log2_eta: 3.0, scheme: NoiseScheme::Gsw }
    }

    /// `log2 N`.
    fn log2_n(&self) -> f64 {
        (self.n as f64).log2()
    }

    /// Worst-case ring-convolution expansion in the canonical embedding:
    /// `√N` with a small constant for the sub-Gaussian tail (the
    /// high-probability bound CKKS analyses use; coefficient-domain `N`
    /// would re-count the embedding the scale headroom already pays for).
    fn log2_conv_wc(&self) -> f64 {
        0.5 * self.log2_n() + 3.0
    }

    /// Average-case convolution expansion (`√N`, no tail constant).
    fn log2_conv_est(&self) -> f64 {
        0.5 * self.log2_n()
    }

    /// Guaranteed (lower-bound) `log2 Q_l` at `level` limbs.
    pub fn log2_q(&self, level: usize) -> f64 {
        level as f64 * f64::from(self.limb_bits - 1)
    }

    /// Decryption-correctness ceiling at `level`: noise above
    /// `log2(Q_l / 2)` breaks decryption (§2.2.2). The remaining margin
    /// for a node is `budget_bits(level) - noise`.
    pub fn budget_bits(&self, level: usize) -> f64 {
        self.log2_q(level) - 1.0
    }

    // ---- tracked estimates (the runtime recurrences, statically) ----

    /// Estimate for a ciphertext input encrypted at some level
    /// (`log2(t·σ) + 1` with `σ = sqrt(η/2)`).
    pub fn est_fresh(&self) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv => self.log2_t + ((self.log2_eta - 1.0) / 2.0).max(0.0) + 1.0,
            // CKKS/GSW fresh noise is the raw error, not t-scaled.
            NoiseScheme::Ckks | NoiseScheme::Gsw => self.log2_eta + 1.0,
        }
    }

    /// Estimate for addition.
    pub fn est_add(&self, a: f64, b: f64) -> f64 {
        add_est(a, b)
    }

    /// Estimate for ciphertext multiplication at `level` limbs.
    pub fn est_mul(&self, a: f64, b: f64, level: usize) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv => mul_est(a, b, self.n),
            NoiseScheme::Ckks => self.est_mul_ckks(a, 1, b, 1, level),
            // GSW external product: additive growth by N·l·2^limb.
            NoiseScheme::Gsw => {
                log2_add(a, b)
                    + self.log2_n()
                    + f64::from(self.limb_bits)
                    + (level.max(1) as f64).log2()
            }
        }
    }

    /// Estimate for plaintext multiplication.
    pub fn est_mul_plain(&self, a: f64) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv | NoiseScheme::Gsw => a + self.log2_t + self.log2_n() / 2.0,
            NoiseScheme::Ckks => self.est_mul_plain_ckks(a, 1, 1),
        }
    }

    /// Estimate for an automorphism.
    pub fn est_aut(&self, a: f64) -> f64 {
        aut_est(a)
    }

    /// Estimate for modulus switching / rescaling *from* `level`.
    pub fn est_mod_switch(&self, a: f64, _level: usize) -> f64 {
        let floor = match self.scheme {
            NoiseScheme::Bgv => self.log2_t + self.log2_n(),
            NoiseScheme::Ckks | NoiseScheme::Gsw => self.log2_eta + 1.0,
        };
        // The dropped limb is at least 2^(limb_bits - 1) — credit only
        // the guaranteed width.
        (a - f64::from(self.limb_bits - 1)).max(floor)
    }

    /// Estimate for correction-factor alignment before an addition whose
    /// operands carry different factors (scale by ≤ t/2).
    pub fn est_align(&self, a: f64) -> f64 {
        a + (self.log2_t - 1.0).max(0.0)
    }

    // ---- worst-case bounds (sound for BGV) ----

    /// Bound on fresh-encryption noise: `|t·e| ≤ t·η` (BGV); for CKKS the
    /// raw error plus the `√N`-grade encoding-rounding term.
    pub fn wc_fresh(&self) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv => self.log2_t + self.log2_eta,
            NoiseScheme::Ckks => log2_add(self.log2_eta + 1.0, self.log2_conv_wc()),
            NoiseScheme::Gsw => self.log2_eta + 1.0,
        }
    }

    /// Bound on key-switch additive noise at `level` limbs.
    ///
    /// BGV/GSW use the limb-decomposition variant: `l · N · 2^limb_bits ·
    /// t · η` (one hint row per limb, each row's error `t·e` convolved
    /// with a limb-sized digit). CKKS parameter sets provision GHS-grade
    /// special primes (`P ≥ Q`, [`crate::params::CkksParams::test_small`]),
    /// so the hint product's noise is divided back down by `P` and only
    /// `≈ √N·η` survives the rounded division — no digit-width or `t`
    /// term.
    pub fn wc_keyswitch(&self, level: usize) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv | NoiseScheme::Gsw => {
                (level.max(1) as f64).log2()
                    + self.log2_n()
                    + f64::from(self.limb_bits)
                    + self.log2_t
                    + self.log2_eta
            }
            NoiseScheme::Ckks => self.log2_n() + self.log2_eta + 1.0,
        }
    }

    /// Bound on addition of aligned operands: `n_a + n_b + 2t` (the sum
    /// of plaintexts re-centers mod t, absorbing ≤ 2·(t/2) into noise).
    /// CKKS addition is exact on the encoded reals: noises just add.
    pub fn wc_add(&self, a: f64, b: f64) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv | NoiseScheme::Gsw => log2_add(log2_add(a, b), self.log2_t + 1.0),
            NoiseScheme::Ckks => log2_add(a, b),
        }
    }

    /// Bound on adding a runtime plaintext: BGV re-centers mod `t`; CKKS
    /// picks up only the plaintext's encoding-rounding error.
    pub fn wc_add_plain(&self, a: f64) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv | NoiseScheme::Gsw => log2_add(a, self.log2_t),
            NoiseScheme::Ckks => log2_add(a, self.log2_conv_wc()),
        }
    }

    /// Tracked estimate for adding a runtime plaintext.
    pub fn est_add_plain(&self, a: f64) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv | NoiseScheme::Gsw => log2_add(a, self.log2_t),
            NoiseScheme::Ckks => log2_add(a, self.log2_conv_est()),
        }
    }

    /// Bound on correction-factor alignment: scaling by a centered
    /// factor `|f| ≤ t/2` gives `(t/2)·(n + t/2) + t`.
    pub fn wc_align(&self, a: f64) -> f64 {
        let half_t = self.log2_t - 1.0;
        log2_add(log2_add(a + half_t, 2.0 * half_t), self.log2_t)
    }

    /// Bound on ciphertext multiplication at `level` limbs:
    /// `N·(n_a + t/2)·(n_b + t/2) + t + ks(level)` — the phase product
    /// convolves the full phases (noise plus embedded plaintext), then
    /// the embedded product re-centers mod t, then relinearization adds
    /// its key-switch noise.
    ///
    /// For CKKS this signature has no operand scales to work with, so it
    /// assumes scale Δ on both sides; the analyzer calls the scale-aware
    /// [`NoiseModel::wc_mul_ckks`] directly.
    pub fn wc_mul(&self, a: f64, b: f64, level: usize) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv => {
                let half_t = self.log2_t - 1.0;
                let phases = log2_add(a, half_t) + log2_add(b, half_t);
                log2_add(log2_add(self.log2_n() + phases, self.log2_t), self.wc_keyswitch(level))
            }
            NoiseScheme::Ckks => self.wc_mul_ckks(a, 1, b, 1, level),
            NoiseScheme::Gsw => {
                log2_add(a, b)
                    + self.log2_n()
                    + f64::from(self.limb_bits)
                    + (level.max(1) as f64).log2()
            }
        }
    }

    /// Scale-aware CKKS multiplication bound. Operand scales are in Δ
    /// units ([`crate::params::CkksParams`] discipline: a value at scale
    /// `s` embeds its message at magnitude ≈ `Δ^s`). The product noise is
    /// the cross terms `m_a·e_b + m_b·e_a + e_a·e_b` — the message
    /// product `m_a·m_b` is *not* noise; the margin computation charges
    /// it separately as scale headroom — convolved at `√N` grade, plus
    /// relinearization's key-switch noise.
    pub fn wc_mul_ckks(&self, a: f64, sa: u32, b: f64, sb: u32, level: usize) -> f64 {
        let ma = f64::from(sa) * self.log2_t; // log2 |m_a| ≤ sa·log2 Δ
        let mb = f64::from(sb) * self.log2_t;
        let cross = log2_add(log2_add(ma + b, mb + a), a + b);
        log2_add(self.log2_conv_wc() + cross, self.wc_keyswitch(level))
    }

    /// Tracked-estimate counterpart of [`NoiseModel::wc_mul_ckks`].
    pub fn est_mul_ckks(&self, a: f64, sa: u32, b: f64, sb: u32, level: usize) -> f64 {
        let ma = f64::from(sa) * self.log2_t;
        let mb = f64::from(sb) * self.log2_t;
        let cross = log2_add(log2_add(ma + b, mb + a), a + b);
        log2_add(self.log2_conv_est() + cross, self.wc_keyswitch(level) - 1.0)
    }

    /// Bound on plaintext multiplication: `N·(t/2)·(n + t/2) + t`.
    ///
    /// CKKS callers with scale information should use
    /// [`NoiseModel::wc_mul_plain_ckks`]; this signature assumes a Δ-scale
    /// plaintext operand.
    pub fn wc_mul_plain(&self, a: f64) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv | NoiseScheme::Gsw => {
                let half_t = self.log2_t - 1.0;
                log2_add(self.log2_n() + half_t + log2_add(a, half_t), self.log2_t)
            }
            NoiseScheme::Ckks => self.wc_mul_plain_ckks(a, 1, 1),
        }
    }

    /// Scale-aware CKKS plaintext multiplication bound: the ciphertext's
    /// noise scaled by the plaintext magnitude (`Δ^sp`), plus the
    /// ciphertext's message (`Δ^sa`) times the plaintext's sub-unit
    /// encoding-rounding error, both at `√N` convolution grade.
    pub fn wc_mul_plain_ckks(&self, a: f64, sa: u32, sp: u32) -> f64 {
        let mp = f64::from(sp) * self.log2_t;
        let ma = f64::from(sa) * self.log2_t;
        self.log2_conv_wc() + log2_add(mp + a, ma - 1.0)
    }

    /// Tracked-estimate counterpart of [`NoiseModel::wc_mul_plain_ckks`].
    pub fn est_mul_plain_ckks(&self, a: f64, sa: u32, sp: u32) -> f64 {
        let mp = f64::from(sp) * self.log2_t;
        let ma = f64::from(sa) * self.log2_t;
        self.log2_conv_est() + log2_add(mp + a, ma - 1.0)
    }

    /// Bound on an automorphism: the permuted noise plus the key-switch
    /// of the permuted mask — `n + ks(level) + t` for BGV (key-switch
    /// noise is a multiple of `t`), no `t` term for CKKS.
    pub fn wc_aut(&self, a: f64, level: usize) -> f64 {
        match self.scheme {
            NoiseScheme::Bgv | NoiseScheme::Gsw => {
                log2_add(log2_add(a, self.wc_keyswitch(level)), self.log2_t)
            }
            NoiseScheme::Ckks => log2_add(a, self.wc_keyswitch(level)),
        }
    }

    /// Bound on modulus switching from `level`: the noise divides by the
    /// dropped prime (credited at its guaranteed width) and gains the
    /// rounding term from the δ-correction — `t·(N + 2)` for BGV, the
    /// `√N`-grade canonical rounding for CKKS.
    pub fn wc_mod_switch(&self, a: f64, _level: usize) -> f64 {
        let rounding = match self.scheme {
            NoiseScheme::Bgv => self.log2_t + (self.n as f64 + 2.0).log2(),
            NoiseScheme::Ckks => self.log2_conv_wc() - 1.0,
            NoiseScheme::Gsw => (self.n as f64 + 2.0).log2(),
        };
        log2_add(a - f64::from(self.limb_bits - 1), rounding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgv::{KeySet, Plaintext};
    use crate::params::BgvParams;
    use rand::SeedableRng;

    #[test]
    fn log2_add_basics() {
        assert!((log2_add(3.0, 3.0) - 4.0).abs() < 1e-12);
        assert!((log2_add(10.0, f64::NEG_INFINITY) - 10.0).abs() < 1e-12);
        assert!((log2_add(0.0, 10.0) - log2_add(10.0, 0.0)).abs() < 1e-12);
        // Far-apart terms collapse to the max.
        assert_eq!(log2_add(200.0, 1.0), 200.0);
    }

    #[test]
    fn worst_case_dominates_estimate_per_op() {
        let m = NoiseModel::bgv_default(1 << 14);
        let a = 40.0;
        let b = 35.0;
        assert!(m.wc_fresh() >= m.est_fresh() - 2.0, "fresh: wc within σ slack of est");
        // est_add = max + 1 overshoots wc for unequal operands; equality
        // is the worst case and there wc must still dominate.
        assert!(m.wc_add(a, a) >= m.est_add(a, a));
        assert!(m.wc_mul(a, b, 8) >= m.est_mul(a, b, 8));
        assert!(m.wc_mul_plain(a) >= m.est_mul_plain(a));
        assert!(m.wc_aut(a, 8) >= m.est_aut(a));
        assert!(m.wc_mod_switch(a, 8) >= m.est_mod_switch(a, 8));
        assert!(m.wc_align(a) >= m.est_align(a));
    }

    #[test]
    fn wc_bounds_measured_noise_on_real_bgv() {
        // Spot soundness check against the real scheme at a small ring;
        // the full differential proptest lives in tests/ir_differential.rs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x2015E);
        let n = 64usize;
        let params = BgvParams::test_small(n, 4);
        let keys = KeySet::generate(&params, &mut rng);
        let model = NoiseModel::bgv(n, params.plaintext_modulus, params.error_eta);

        let m1 = Plaintext::from_coeffs(&params, &[7, 65535, 3]);
        let m2 = Plaintext::from_coeffs(&params, &[12345, 1]);
        let c1 = keys.encrypt(&m1, &mut rng);
        let c2 = keys.encrypt(&m2, &mut rng);
        let fresh_wc = model.wc_fresh();
        assert!(fresh_wc >= keys.decrypt_noise(&c1), "fresh bound");

        let sum = c1.add(&c2);
        let sum_wc = model.wc_add(fresh_wc, fresh_wc);
        assert!(sum_wc >= keys.decrypt_noise(&sum), "add bound");

        let prod = c1.mul(&c2, keys.relin_hint());
        let prod_wc = model.wc_mul(fresh_wc, fresh_wc, 4);
        assert!(prod_wc >= keys.decrypt_noise(&prod), "mul bound");

        let down = prod.mod_switch(&params);
        let down_wc = model.wc_mod_switch(prod_wc, 4);
        assert!(down_wc >= keys.decrypt_noise(&down), "mod-switch bound");

        let rot = {
            let mut keys = keys;
            keys.add_rotation_hint(3, &mut rng);
            let r = sum.automorphism(3, keys.rotation_hint(3));
            let aut_wc = model.wc_aut(sum_wc, 4);
            assert!(aut_wc >= keys.decrypt_noise(&r), "aut bound");
            r
        };
        drop(rot);
    }

    #[test]
    fn budget_is_conservative_vs_real_chain() {
        // The model's log2_q must under-estimate the real chain width so
        // "fits the budget" statically implies it fits at runtime.
        let params = BgvParams::test_small(64, 6);
        let model = NoiseModel::bgv(64, params.plaintext_modulus, params.error_eta);
        for l in 1..=6usize {
            let real = f64::from(params.context().log_q(l));
            assert!(model.log2_q(l) <= real, "level {l}: model {} > real {real}", model.log2_q(l));
        }
    }
}
