//! The CKKS scheme (§2.5): approximate arithmetic on encrypted fixed-point
//! vectors.
//!
//! CKKS encodes `N/2` complex values through the canonical embedding: a
//! plaintext polynomial evaluates to (scaled copies of) the values at the
//! primitive `2N`-th roots of unity. Multiplication rescales by one RNS
//! limb to keep the fixed-point scale bounded — the modulus-switching
//! machinery shared with BGV (`t = 1` rounding).

use crate::bgv::mod_switch_poly;
use crate::keys::SecretKey;
use crate::keyswitch::GhsHint;
use crate::params::CkksParams;
use f1_poly::crt;
use f1_poly::ntt::bit_reverse;
use f1_poly::rns::RnsPoly;
use rand::Rng;
use std::collections::HashMap;

/// A complex number (we avoid external dependencies).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im*i`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex exponential `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}
impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}
impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}
impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

/// Encoder between complex slot vectors and integer polynomials via the
/// canonical embedding (a floating-point negacyclic FFT with the same
/// merged-ψ structure as the NTT).
#[derive(Debug)]
pub struct CkksEncoder {
    n: usize,
    scale: f64,
    /// Slot j (0..N/2) reads FFT output position `slot_of[j]` (evaluation
    /// exponent 3^j, the orbit indexing that makes σ_3 a slot rotation).
    slot_of: Vec<usize>,
}

impl CkksEncoder {
    /// Builds an encoder for the parameter set.
    pub fn new(params: &CkksParams) -> Self {
        let n = params.n;
        let log_n = n.trailing_zeros();
        let two_n = 2 * n;
        let mut slot_of = Vec::with_capacity(n / 2);
        let mut k = 1usize;
        for _ in 0..n / 2 {
            slot_of.push(bit_reverse((k - 1) / 2, log_n));
            k = (k * 3) % two_n;
        }
        Self { n, scale: params.scale, slot_of }
    }

    /// Number of complex slots (`N/2`).
    pub fn slot_count(&self) -> usize {
        self.n / 2
    }

    /// Forward negacyclic FFT: coefficients -> evaluations at ψ^{2i+1}
    /// (bit-reversed slot order, matching the NTT convention).
    fn fft_forward(&self, a: &mut [Complex]) {
        let n = self.n;
        let mut t = n / 2;
        let mut m = 1usize;
        while m < n {
            for i in 0..m {
                // Twiddle = psi^{bitrev(m+i)} over 2N-th roots.
                let exp = bit_reverse(m + i, (2 * n).trailing_zeros() - 1);
                let w = Complex::cis(std::f64::consts::PI * exp as f64 / n as f64);
                let base = 2 * i * t;
                for j in base..base + t {
                    let u = a[j];
                    let v = a[j + t] * w;
                    a[j] = u + v;
                    a[j + t] = u - v;
                }
            }
            m *= 2;
            t /= 2;
        }
    }

    /// Inverse negacyclic FFT.
    fn fft_inverse(&self, a: &mut [Complex]) {
        let n = self.n;
        let mut t = 1usize;
        let mut m = n / 2;
        while m >= 1 {
            for i in 0..m {
                let exp = bit_reverse(m + i, (2 * n).trailing_zeros() - 1);
                let w = Complex::cis(-std::f64::consts::PI * exp as f64 / n as f64);
                let base = 2 * i * t;
                for j in base..base + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = u + v;
                    a[j + t] = (u - v) * w;
                }
            }
            m /= 2;
            t *= 2;
        }
        let inv_n = 1.0 / n as f64;
        for x in a.iter_mut() {
            *x = *x * inv_n;
        }
    }

    /// Encodes `N/2` complex values into an integer polynomial scaled by Δ.
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` values are supplied.
    pub fn encode(
        &self,
        values: &[Complex],
        ctx: &std::sync::Arc<f1_poly::rns::RnsContext>,
        level: usize,
    ) -> RnsPoly {
        self.encode_with_scale(values, ctx, level, self.scale)
    }

    /// Encodes with an explicit scale (bootstrapping encodes its input at
    /// a scale far below `q_1`).
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` values are supplied.
    pub fn encode_with_scale(
        &self,
        values: &[Complex],
        ctx: &std::sync::Arc<f1_poly::rns::RnsContext>,
        level: usize,
        scale: f64,
    ) -> RnsPoly {
        assert!(values.len() <= self.n / 2, "too many slots");
        let mut evals = vec![Complex::default(); self.n];
        let log_n = self.n.trailing_zeros();
        // Fill the orbit slots and their conjugate mirrors. The conjugate
        // of evaluation exponent k sits at exponent 2N-k.
        let two_n = 2 * self.n;
        let mut k = 1usize;
        for j in 0..self.n / 2 {
            let v = values.get(j).copied().unwrap_or_default();
            evals[self.slot_of[j]] = v;
            let conj_slot = bit_reverse((two_n - k - 1) / 2, log_n);
            evals[conj_slot] = v.conj();
            k = (k * 3) % two_n;
        }
        self.fft_inverse(&mut evals);
        let coeffs: Vec<i64> = evals
            .iter()
            .map(|c| {
                debug_assert!(c.im.abs() < 1e-3, "conjugate symmetry violated: {}", c.im);
                (c.re * scale).round() as i64
            })
            .collect();
        RnsPoly::from_signed_coeffs(ctx, level, &coeffs)
    }

    /// Decodes a coefficient-domain polynomial (with the given scale) back
    /// into complex slot values.
    pub fn decode(&self, p: &RnsPoly, scale: f64) -> Vec<Complex> {
        let centered = crt::reconstruct_centered(p);
        let mut a: Vec<Complex> = centered
            .iter()
            .map(|(neg, mag)| {
                let v = mag.to_f64();
                Complex::new(if *neg { -v } else { v }, 0.0)
            })
            .collect();
        self.fft_forward(&mut a);
        (0..self.n / 2).map(|j| a[self.slot_of[j]] * (1.0 / scale)).collect()
    }

    /// The automorphism exponent rotating slots by `amount` (`3^amount`).
    pub fn rotation_exponent(&self, amount: usize) -> usize {
        f1_poly::automorphism::rotation_exponent(amount, self.n)
    }
}

/// A CKKS ciphertext: `(a, b)` plus the fixed-point scale.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    /// Mask polynomial.
    pub a: RnsPoly,
    /// Body polynomial.
    pub b: RnsPoly,
    /// Fixed-point scale Δ of the embedded values.
    pub scale: f64,
}

impl Ciphertext {
    /// Current level.
    pub fn level(&self) -> usize {
        self.a.level()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.a.size_bytes() + self.b.size_bytes()
    }
}

/// CKKS key material.
pub struct KeySet {
    params: CkksParams,
    encoder: CkksEncoder,
    sk: SecretKey,
    relin: GhsHint,
    rotation: HashMap<usize, GhsHint>,
}

impl KeySet {
    /// Generates keys (relinearization hint included).
    ///
    /// CKKS uses GHS key-switching throughout: decomposition key-switch
    /// noise is `q`-sized, which a CKKS payload at scale Δ ≈ q cannot
    /// absorb — the very tradeoff the paper's compiler reasons about
    /// (§2.4, §4.2).
    pub fn generate(params: &CkksParams, rng: &mut impl Rng) -> Self {
        let sk = SecretKey::generate(params.context(), rng);
        let full = params.context().max_level();
        let relin = GhsHint::generate(
            &sk,
            &sk.s_squared_at_level(full),
            params.max_level,
            1,
            params.error_eta,
            rng,
        );
        Self {
            params: params.clone(),
            encoder: CkksEncoder::new(params),
            sk,
            relin,
            rotation: HashMap::new(),
        }
    }

    /// The parameter set.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// The slot encoder.
    pub fn encoder(&self) -> &CkksEncoder {
        &self.encoder
    }

    /// The relinearization hint.
    pub fn relin_hint(&self) -> &GhsHint {
        &self.relin
    }

    /// Generates and caches the hint for automorphism exponent `k`.
    ///
    /// CKKS rotation hints use the GHS variant: a decomposition key-switch
    /// adds `q`-sized noise, which would swamp a CKKS payload living at
    /// scale Δ — exactly the algorithmic-choice pressure §2.4 describes.
    ///
    /// # Panics
    ///
    /// Panics if the parameter set has no special primes.
    pub fn add_rotation_hint(&mut self, k: usize, rng: &mut impl Rng) {
        let full = self.params.context().max_level();
        let target = self.sk.s_automorphism_at_level(k, full);
        let hint = GhsHint::generate(
            &self.sk,
            &target,
            self.params.max_level,
            1,
            self.params.error_eta,
            rng,
        );
        self.rotation.insert(k, hint);
    }

    /// The hint for automorphism exponent `k`.
    ///
    /// # Panics
    ///
    /// Panics if the hint was never generated.
    pub fn rotation_hint(&self, k: usize) -> &GhsHint {
        self.rotation
            .get(&k)
            .unwrap_or_else(|| panic!("no rotation hint for k={k}; call add_rotation_hint"))
    }

    /// Encrypts complex slot values at the top level.
    pub fn encrypt(&self, values: &[Complex], rng: &mut impl Rng) -> Ciphertext {
        self.encrypt_at_level(values, self.params.max_level, rng)
    }

    /// Encrypts at a chosen level.
    pub fn encrypt_at_level(
        &self,
        values: &[Complex],
        level: usize,
        rng: &mut impl Rng,
    ) -> Ciphertext {
        let ctx = self.params.context();
        let m = self.encoder.encode(values, ctx, level).to_ntt();
        self.encrypt_poly(&m, level, self.params.scale, rng)
    }

    /// Encrypts an already-encoded polynomial (NTT domain) with a given
    /// scale — the entry point bootstrapping uses.
    pub fn encrypt_poly(
        &self,
        m: &RnsPoly,
        level: usize,
        scale: f64,
        rng: &mut impl Rng,
    ) -> Ciphertext {
        let ctx = self.params.context();
        let a = RnsPoly::random_at_level(ctx, level, rng).to_ntt();
        let e = RnsPoly::random_error(ctx, level, self.params.error_eta, rng).to_ntt();
        let s = self.sk.s_at_level(level);
        let b = a.mul(&s).add(&e).add(m);
        Ciphertext { a, b, scale }
    }

    /// Decrypts to complex slot values.
    pub fn decrypt(&self, ct: &Ciphertext) -> Vec<Complex> {
        let s = self.sk.s_at_level(ct.level());
        let phase = ct.b.sub(&ct.a.mul(&s)).to_coeff();
        self.encoder.decode(&phase, ct.scale)
    }
}

impl Ciphertext {
    /// Homomorphic addition (scales must match; levels are aligned by
    /// truncation).
    ///
    /// # Panics
    ///
    /// Panics if the operand scales differ by more than 0.01%.
    pub fn add(&self, other: &Self) -> Self {
        assert!(
            (self.scale / other.scale - 1.0).abs() < 1e-4,
            "scale mismatch: {} vs {}",
            self.scale,
            other.scale
        );
        let l = self.level().min(other.level());
        let (x, y) = (self.truncate_level(l), other.truncate_level(l));
        Self { a: x.a.add(&y.a), b: x.b.add(&y.b), scale: self.scale }
    }

    /// Homomorphic subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        assert!((self.scale / other.scale - 1.0).abs() < 1e-4);
        let l = self.level().min(other.level());
        let (x, y) = (self.truncate_level(l), other.truncate_level(l));
        Self { a: x.a.sub(&y.a), b: x.b.sub(&y.b), scale: self.scale }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self { a: self.a.neg(), b: self.b.neg(), scale: self.scale }
    }

    /// Homomorphic multiplication: tensor, relinearize, then rescale by
    /// the top limb (scale becomes `Δ² / q_top`). Operands at different
    /// levels are aligned by truncating the deeper one.
    pub fn mul(&self, other: &Self, relin: &GhsHint) -> Self {
        let l = self.level().min(other.level());
        let x = self.truncate_level(l);
        let y = other.truncate_level(l);
        let l2 = x.a.mul(&y.a);
        let l1 = x.a.mul(&y.b).add(&y.a.mul(&x.b));
        let l0 = x.b.mul(&y.b);
        let (u0, u1) = relin.apply(&l2);
        let raw = Self { a: l1.add(&u1), b: l0.add(&u0), scale: x.scale * y.scale };
        raw.rescale()
    }

    /// Adds the real constant `c` (broadcast to every slot) at this
    /// ciphertext's scale: the constant polynomial `round(c * scale)` is
    /// added to every NTT slot of `b`.
    pub fn add_const(&self, c: f64) -> Self {
        let v = (c * self.scale).round() as i64;
        let mut out = self.clone();
        for j in 0..out.b.level() {
            let m = *out.b.context().modulus(j);
            let vr = m.reduce_i64(v);
            for x in out.b.limb_mut(j).iter_mut() {
                *x = m.add(*x, vr);
            }
        }
        out
    }

    /// Multiplies by an unencrypted (already encoded, NTT-domain) plaintext
    /// polynomial with the given scale, then rescales.
    pub fn mul_plain(&self, m: &RnsPoly, m_scale: f64) -> Self {
        let raw = Self { a: self.a.mul(m), b: self.b.mul(m), scale: self.scale * m_scale };
        raw.rescale()
    }

    /// Multiplies by a real scalar by scaling the encoded values (the
    /// scalar is absorbed into integer multiplication at the current
    /// scale), then rescales.
    pub fn mul_scalar_f64(&self, s: f64, scale: f64) -> Self {
        let s_int = (s * scale).round() as i64;
        let (mag, neg) = if s_int < 0 { ((-s_int) as u32, true) } else { (s_int as u32, false) };
        let mut a = self.a.mul_scalar(mag);
        let mut b = self.b.mul_scalar(mag);
        if neg {
            a = a.neg();
            b = b.neg();
        }
        Self { a, b, scale: self.scale * scale }.rescale()
    }

    /// Exactly divides the phase by `2^k` via multiplication with
    /// `2^{-k} mod Q` on every limb. Valid only when the phase is
    /// divisible by `2^k` as an integer (e.g. after the bootstrap trace
    /// multiplies it by `N`); unlike a rescale this keeps `q_0·I`
    /// structure exact, consumes no level, and leaves the scale declared
    /// unchanged (the *value* divides by `2^k`).
    pub fn exact_divide_pow2(&self, k: u32) -> Self {
        let ctx = self.a.context().clone();
        let mut a = self.a.clone();
        let mut b = self.b.clone();
        for j in 0..self.level() {
            let m = ctx.modulus(j);
            let inv = m.inv(m.pow(2, k as u64));
            for poly in [&mut a, &mut b] {
                for x in poly.limb_mut(j).iter_mut() {
                    *x = m.mul(*x, inv);
                }
            }
        }
        Self { a, b, scale: self.scale }
    }

    /// Rescales by the top RNS limb: divides values (and the scale) by
    /// `q_top` — CKKS's modulus-switching (§2.5 "forgoing" note: B/FV
    /// skips this; CKKS embraces it).
    pub fn rescale(&self) -> Self {
        let q_top = self.a.context().modulus(self.level() - 1).value() as f64;
        Self {
            a: mod_switch_poly(&self.a, 1),
            b: mod_switch_poly(&self.b, 1),
            scale: self.scale / q_top,
        }
    }

    /// Drops to a lower level without rescaling semantics (alignment aid).
    pub fn truncate_level(&self, level: usize) -> Self {
        Self { a: self.a.truncate_level(level), b: self.b.truncate_level(level), scale: self.scale }
    }

    /// Homomorphic slot rotation via `σ_k` + key-switch (GHS variant; see
    /// [`KeySet::add_rotation_hint`]).
    pub fn automorphism(&self, k: usize, hint: &GhsHint) -> Self {
        let a_s = self.a.automorphism(k);
        let b_s = self.b.automorphism(k);
        let (u0, u1) = hint.apply(&a_s.neg());
        Self { a: u1, b: b_s.add(&u0), scale: self.scale }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    fn setup(levels: usize) -> (CkksParams, KeySet, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xCC5);
        let params = CkksParams::test_small(64, levels);
        let keys = KeySet::generate(&params, &mut rng);
        (params, keys, rng)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (params, keys, _) = setup(3);
        let vals: Vec<Complex> =
            (0..32).map(|j| Complex::new(j as f64 / 7.0, -(j as f64) / 11.0)).collect();
        let p = keys.encoder().encode(&vals, params.context(), 3);
        let back = keys.encoder().decode(&p, params.scale);
        for (a, b) in back.iter().zip(&vals) {
            assert!(close(*a, *b, 1e-4), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (_params, keys, mut rng) = setup(3);
        let vals: Vec<Complex> = (0..32).map(|j| Complex::new(1.5 * j as f64, 0.25)).collect();
        let ct = keys.encrypt(&vals, &mut rng);
        let got = keys.decrypt(&ct);
        for (a, b) in got.iter().zip(&vals) {
            assert!(close(*a, *b, 1e-2), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn homomorphic_add_and_mul() {
        let (_params, keys, mut rng) = setup(3);
        let v1: Vec<Complex> = (0..32).map(|j| Complex::new(0.1 * j as f64, 0.0)).collect();
        let v2: Vec<Complex> = (0..32).map(|j| Complex::new(2.0 - 0.05 * j as f64, 0.0)).collect();
        let ct1 = keys.encrypt(&v1, &mut rng);
        let ct2 = keys.encrypt(&v2, &mut rng);
        let sum = keys.decrypt(&ct1.add(&ct2));
        let prod_ct = ct1.mul(&ct2, keys.relin_hint());
        assert_eq!(prod_ct.level(), 2, "mul must rescale one limb away");
        let prod = keys.decrypt(&prod_ct);
        for j in 0..32 {
            assert!(close(sum[j], v1[j] + v2[j], 1e-2));
            assert!(close(prod[j], v1[j] * v2[j], 0.05), "slot {j}: {:?}", prod[j]);
        }
    }

    #[test]
    fn rotation_permutes_slots() {
        let (_params, mut keys, mut rng) = setup(3);
        let vals: Vec<Complex> = (0..32).map(|j| Complex::new(j as f64, 0.0)).collect();
        let ct = keys.encrypt(&vals, &mut rng);
        let k = keys.encoder().rotation_exponent(1);
        keys.add_rotation_hint(k, &mut rng);
        let rot = keys.decrypt(&ct.automorphism(k, keys.rotation_hint(k)));
        // One-position cyclic rotation (either direction, pinned once).
        let fwd: Vec<Complex> = (0..32).map(|j| vals[(j + 1) % 32]).collect();
        let bwd: Vec<Complex> = (0..32).map(|j| vals[(j + 31) % 32]).collect();
        let matches = |target: &[Complex]| rot.iter().zip(target).all(|(a, b)| close(*a, *b, 0.05));
        assert!(matches(&fwd) || matches(&bwd), "rotation result incorrect: {:?}", &rot[..4]);
    }

    #[test]
    fn scalar_multiplication() {
        let (_params, keys, mut rng) = setup(3);
        let vals: Vec<Complex> = (0..32).map(|j| Complex::new(0.5 + j as f64 * 0.1, 0.0)).collect();
        let ct = keys.encrypt(&vals, &mut rng);
        let scaled = keys.decrypt(&ct.mul_scalar_f64(0.125, keys.params().scale));
        for j in 0..32 {
            assert!(close(scaled[j], vals[j] * 0.125, 1e-2));
        }
    }

    #[test]
    fn depth_two_circuit() {
        let (_params, keys, mut rng) = setup(4);
        let v: Vec<Complex> = (0..32).map(|j| Complex::new(0.9 - 0.02 * j as f64, 0.0)).collect();
        let ct = keys.encrypt(&v, &mut rng);
        let sq = ct.mul(&ct, keys.relin_hint());
        let quad = sq.mul(&sq, keys.relin_hint());
        let got = keys.decrypt(&quad);
        for j in 0..32 {
            let want = v[j] * v[j] * v[j] * v[j];
            assert!(close(got[j], want, 0.1), "slot {j}: {:?} vs {want:?}", got[j]);
        }
    }
}
