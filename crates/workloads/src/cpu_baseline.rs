//! The timed CPU software baseline for Table 3.
//!
//! The paper compares F1 against state-of-the-art software on a 4-core
//! Xeon. Our baseline is `f1-fhe` itself (DESIGN.md §2.2): we *measure*
//! each homomorphic operation class at the benchmark's exact `(N, L)` on
//! the host, then charge the program's operation mix against those
//! measurements. This per-op measurement approach keeps full-size
//! baselines tractable (LoLa-CIFAR in software took the paper 20
//! minutes); the measured per-op costs are real executions of the real
//! scheme, not estimates. A parallel-efficiency factor measured with
//! `std::thread::scope` models the paper's multicore baseline.

use f1_compiler::dsl::{HomOp, Program};
use f1_fhe::bgv::{KeySet, Plaintext};
use f1_fhe::keyswitch::KsScratch;
use f1_fhe::params::BgvParams;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Memo key: `(measure_n, op kind, level)`.
type CostKey = (usize, &'static str, usize);

/// Process-wide memo of measured per-op costs, keyed by
/// `(measure_n, kind, level)`. Benchmark programs overlap heavily in the
/// `(kind, level)` pairs they use, so one Table-3 run measures each pair
/// once instead of once per benchmark.
fn cost_cache() -> &'static Mutex<HashMap<CostKey, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<CostKey, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Process-wide memo of the measured multicore scaling factor per
/// `measure_n`.
fn speedup_cache() -> &'static Mutex<HashMap<usize, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Sample-count knob for the per-op measurements: `F1_BASELINE_REPS` sets
/// the repetition count for the heavy ops (`mul`, `aut`); light ops run
/// `2*reps + 1` times. The default of 2 reproduces the historical sample
/// counts (2 heavy / 5 light); raise it for tighter estimates. Malformed
/// or zero values panic (`f1_poly::env` policy) instead of silently
/// measuring at the default.
fn baseline_reps() -> usize {
    f1_poly::env::parse_env_nonzero_or("F1_BASELINE_REPS", 2)
}

/// Measured per-operation CPU costs at one `(N, L)` point.
#[derive(Debug, Clone)]
pub struct CpuBaseline {
    n: usize,
    /// seconds per op, by (kind, level).
    costs: HashMap<(&'static str, usize), f64>,
    /// Multicore scaling factor (≥ 1) measured with scoped threads.
    pub parallel_speedup: f64,
}

fn kind_of(op: &HomOp) -> Option<&'static str> {
    match op {
        HomOp::Input { .. } | HomOp::PlainInput { .. } => None,
        HomOp::Add { .. } | HomOp::AddPlain { .. } => Some("add"),
        HomOp::Mul { .. } => Some("mul"),
        HomOp::MulPlain { .. } => Some("mul_plain"),
        HomOp::Aut { .. } => Some("aut"),
        HomOp::ModSwitch { .. } => Some("mod_switch"),
    }
}

impl CpuBaseline {
    /// Measures per-op costs for every `(kind, level)` pair a program
    /// uses, on a reduced-but-real instance: the ring dimension is
    /// `measure_n` (costs scale as `N log N`, which we apply analytically
    /// and report).
    ///
    /// Measurements are memoized process-wide by `(measure_n, kind,
    /// level)`, so a Table-3 run over many benchmarks measures each pair
    /// (and the multicore scaling factor) exactly once. `F1_BASELINE_REPS`
    /// controls the sample count (default 2 heavy / 5 light reps).
    pub fn measure(program: &Program, measure_n: usize) -> Self {
        let mut needed: Vec<(&'static str, usize)> = Vec::new();
        for (i, op) in program.ops().iter().enumerate() {
            if let Some(k) = kind_of(op) {
                let lvl = program.level_of(f1_compiler::dsl::CtId(i as u32)).max(1);
                // mod_switch consumes the level above its output.
                let lvl = if k == "mod_switch" { lvl + 1 } else { lvl };
                if !needed.contains(&(k, lvl)) {
                    needed.push((k, lvl));
                }
            }
        }
        let mut costs = HashMap::new();
        let missing: Vec<(&'static str, usize)> = {
            let cache = cost_cache().lock().unwrap();
            needed
                .iter()
                .filter(|&&(k, lvl)| !cache.contains_key(&(measure_n, k, lvl)))
                .copied()
                .collect()
        };
        let speedup_known = speedup_cache().lock().unwrap().contains_key(&measure_n);
        if !missing.is_empty() || !speedup_known {
            // Key generation is itself expensive, so it only happens when
            // at least one pair (or the scaling factor) is unmeasured.
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xBA5E);
            let max_level = needed.iter().map(|&(_, l)| l).max().unwrap_or(1);
            let params = BgvParams::test_small(measure_n, max_level);
            let mut keys = KeySet::generate(&params, &mut rng);
            keys.add_rotation_hint(3, &mut rng);
            let m = Plaintext::from_coeffs(&params, &[5, 7, 11]);
            let heavy_reps = baseline_reps();
            let light_reps = 2 * heavy_reps + 1;
            let mut scratch = KsScratch::default();
            for (k, lvl) in missing {
                let ct = keys.encrypt_at_level(&m, lvl, &mut rng);
                let reps = if k == "mul" || k == "aut" { heavy_reps } else { light_reps };
                let start = Instant::now();
                for _ in 0..reps {
                    match k {
                        "add" => {
                            let _ = ct.add(&ct);
                        }
                        "mul" => {
                            let _ = ct.mul_with_scratch(&ct, keys.relin_hint(), &mut scratch);
                        }
                        "mul_plain" => {
                            let _ = ct.mul_plain(&m, &params);
                        }
                        "aut" => {
                            let _ = ct.automorphism_with_scratch(
                                3,
                                keys.rotation_hint(3),
                                &mut scratch,
                            );
                        }
                        "mod_switch" => {
                            if lvl >= 2 {
                                let _ = ct.mod_switch_down();
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                let per_op = start.elapsed().as_secs_f64() / reps as f64;
                cost_cache().lock().unwrap().insert((measure_n, k, lvl), per_op);
            }
            if !speedup_known {
                // Parallel efficiency: run independent op streams across
                // cores (the paper parallelizes its DB-lookup baseline, §7).
                let s = Self::measure_parallel_speedup(&keys, &params, &m);
                speedup_cache().lock().unwrap().insert(measure_n, s);
            }
        }
        {
            let cache = cost_cache().lock().unwrap();
            for (k, lvl) in needed {
                costs.insert((k, lvl), cache[&(measure_n, k, lvl)]);
            }
        }
        let parallel_speedup = speedup_cache().lock().unwrap()[&measure_n];
        Self { n: measure_n, costs, parallel_speedup }
    }

    fn measure_parallel_speedup(keys: &KeySet, params: &BgvParams, m: &Plaintext) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
        let ct = keys.encrypt(m, &mut rng);
        let work = |reps: usize| {
            for _ in 0..reps {
                let _ = ct.mul(&ct, keys.relin_hint());
            }
        };
        let t1 = {
            let s = Instant::now();
            work(2);
            s.elapsed().as_secs_f64()
        };
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8);
        let t_par = {
            let s = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| work(2));
                }
            });
            s.elapsed().as_secs_f64()
        };
        // threads × work done in t_par vs 1 × in t1.
        let speedup = (threads as f64 * t1 / t_par).max(1.0);
        let _ = params;
        speedup.min(threads as f64)
    }

    /// Estimated single-thread seconds for a program at ring dimension
    /// `target_n` (costs measured at `self.n` scale by `N log N`).
    pub fn estimate_seconds(&self, program: &Program, target_n: usize) -> f64 {
        let scale =
            (target_n as f64 * (target_n as f64).log2()) / (self.n as f64 * (self.n as f64).log2());
        let mut total = 0.0;
        for (i, op) in program.ops().iter().enumerate() {
            if let Some(k) = kind_of(op) {
                let lvl = program.level_of(f1_compiler::dsl::CtId(i as u32)).max(1);
                let lvl = if k == "mod_switch" { lvl + 1 } else { lvl };
                total += self.costs.get(&(k, lvl)).copied().unwrap_or_else(|| {
                    // Fall back to the nearest measured level of the kind.
                    self.costs
                        .iter()
                        .filter(|((kk, _), _)| *kk == k)
                        .map(|(_, &c)| c)
                        .fold(0.0, f64::max)
                });
            }
        }
        total * scale
    }

    /// Estimated multicore seconds (the paper's baseline uses all cores).
    pub fn estimate_seconds_parallel(&self, program: &Program, target_n: usize) -> f64 {
        self.estimate_seconds(program, target_n) / self.parallel_speedup
    }

    /// Directly measured end-to-end evaluation of a (small) program via
    /// the functional simulator — used to validate the per-op estimates.
    pub fn measure_direct(program: &Program, params: BgvParams) -> Duration {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD137);
        let exec = f1_sim::BgvExecutor::new(params, program, &mut rng);
        let run = exec.run(program, &HashMap::new(), &HashMap::new(), &mut rng);
        run.eval_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn baseline_measures_and_estimates() {
        let b = benchmarks::lola_mnist_uw(8);
        let base = CpuBaseline::measure(&b.program, 256);
        let t = base.estimate_seconds(&b.program, b.n);
        assert!(t > 0.0, "estimate must be positive");
        assert!(base.parallel_speedup >= 1.0);
        let tp = base.estimate_seconds_parallel(&b.program, b.n);
        assert!(tp <= t);
    }

    #[test]
    fn estimate_tracks_direct_measurement() {
        // On a small program at the measurement size itself, the per-op
        // estimate must land within 3x of a direct execution (per-op
        // timing ignores allocator effects but must capture the scale).
        let mut p = Program::new(256);
        let x = p.input(3);
        let y = p.mul(x, x);
        let z = p.rotate(y, 1);
        let w = p.add(y, z);
        p.output(w);
        let base = CpuBaseline::measure(&p, 256);
        let est = base.estimate_seconds(&p, 256);
        let params = BgvParams::test_small(256, 3);
        let direct = CpuBaseline::measure_direct(&p, params).as_secs_f64();
        let ratio = est / direct;
        assert!(
            (0.2..5.0).contains(&ratio),
            "estimate {est:.6}s vs direct {direct:.6}s (ratio {ratio:.2})"
        );
    }
}
