//! The seven full-program benchmarks (§7 "Benchmarks"), written on the
//! typed [`FheProgram`] frontend.
//!
//! Each builder constructs a scheme-typed circuit (CKKS for the neural
//! networks and HELR, BGV for DB lookup and BGV bootstrapping), then
//! [`Benchmark`] runs the IR optimization pipeline and lowers to the
//! scheduler-facing DSL program. Both the optimized program (what the
//! scheduling passes and the CPU baseline consume) and the unoptimized
//! lowering (for before/after accounting in the paper bins) are kept.

use f1_compiler::dsl::Program;
use f1_compiler::ir::{FheProgram, IrId, NodeStep, OptStats, Scheme};
use serde::{Deserialize, Serialize};

/// One benchmark: a typed FHE program plus its identity and parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Benchmark {
    /// Paper name (Table 3 row label).
    pub name: &'static str,
    /// Ring dimension.
    pub n: usize,
    /// Starting number of RNS limbs.
    pub l: usize,
    /// The typed frontend program (pre-optimization).
    pub fhe: FheProgram,
    /// The scheduler-facing program: optimized IR, lowered.
    pub program: Program,
    /// The unoptimized lowering (before/after accounting).
    pub program_unopt: Program,
    /// IR optimization statistics for this benchmark.
    pub opt: OptStats,
    /// Scale divisor applied relative to the paper's full instance
    /// (1 = full size; >1 = reduced for tractable scheduling, with the
    /// reduction documented in EXPERIMENTS.md).
    pub scale: usize,
    /// Which scheme the original uses (typing only — at the instruction
    /// level all schemes lower identically, the paper's point, §2.5).
    pub scheme: Scheme,
    /// Frontend node count of the *rolled* form when the builder uses a
    /// [`f1_compiler::ir::RepeatSpec`] region (loop body stored once);
    /// `None` when the builder is inherently flat. Compare against
    /// `fhe.nodes().len()` for the unrolled size.
    pub rolled_nodes: Option<usize>,
}

impl Benchmark {
    /// Optimizes and lowers a built frontend program.
    fn finish(name: &'static str, l: usize, fhe: FheProgram, scale: usize) -> Self {
        Self::finish_rolled(name, l, fhe, scale, None)
    }

    /// [`Self::finish`] for builders that constructed (part of) the
    /// program as a rolled region: records the rolled node count next to
    /// the flat program all downstream consumers see.
    fn finish_rolled(
        name: &'static str,
        l: usize,
        fhe: FheProgram,
        scale: usize,
        rolled_nodes: Option<usize>,
    ) -> Self {
        let n = fhe.n;
        let scheme = fhe.scheme();
        let program_unopt = fhe.lower().program;
        let (optimized, opt) = fhe.optimize();
        let program = optimized.lower().program;
        Benchmark { name, n, l, fhe, program, program_unopt, opt, scale, scheme, rolled_nodes }
    }

    /// Justification recorded when the analyzer demotes
    /// `noise::budget-exhausted` to Info on the *hand-managed* programs.
    ///
    /// The hand-placed mod-switch schedules reproduce the paper's
    /// operation counts at its Table 3 `(N, L)` points; their static
    /// margins are reported as numbers only. The merge gate lives on the
    /// *managed* programs instead: `insert_rescales` re-derives the
    /// switch placement and the `(N, L)` search proves a positive
    /// worst-case margin, so an Error there is a real regression rather
    /// than an artifact of paper-faithful parameters.
    pub const HAND_MANAGED_NOTE: &'static str =
        "hand-managed paper-faithful (N, L): margins reported as numbers only; the Error \
         gate runs on the rescale-managed program at the searched (N, L)";
}

/// Builds all seven benchmarks at a given reduction scale (`1` = full).
///
/// `scale` divides the *width* of each workload (channel counts, entry
/// counts, feature blocks) but never its depth, so level structure and
/// hint-reuse behavior are preserved.
pub fn all_benchmarks(scale: usize) -> Vec<Benchmark> {
    assert!(scale >= 1);
    vec![
        lola_cifar_uw(scale),
        lola_mnist_uw(scale),
        lola_mnist_ew(scale),
        logistic_regression(scale),
        db_lookup(scale),
        bgv_bootstrapping(scale),
        ckks_bootstrapping(scale),
    ]
}

fn div(x: usize, scale: usize) -> usize {
    (x / scale).max(1)
}

/// Depth-ish parameters (digit-extraction ρ, double-angle counts) shrink
/// with the square root of the scale: their *cost* is quadratic-ish in
/// them, so this keeps the reduction factor comparable to the width-based
/// benchmarks while preserving the deep-level structure.
fn div_sqrt(x: usize, scale: usize) -> usize {
    let s = (scale as f64).sqrt().round() as usize;
    (x / s.max(1)).max(2)
}

/// LoLa-MNIST with unencrypted weights \[15\]: conv (5×5 windows as
/// rotate + multiply-by-plain + add) → square → dense → square → dense.
/// Starting L = 4 (the paper's "relatively low L" trio).
pub fn lola_mnist_uw(scale: usize) -> Benchmark {
    let n = 1 << 14;
    let l = 4;
    let mut p = FheProgram::new(n, Scheme::Ckks);
    let x = p.input(l);
    // Conv layer: 25 taps: rotate the input window, scale by the kernel.
    let taps = div(25, scale);
    let mut acc: Option<IrId> = None;
    for tap in 0..taps {
        let w = p.plain_input(l);
        let r = if tap == 0 { x } else { p.rotate(x, tap) };
        let m = p.mul_plain(r, w);
        acc = Some(match acc {
            None => m,
            Some(a) => p.add(a, m),
        });
    }
    let conv = acc.unwrap();
    // Square activation (the only ct×ct multiplies in the UW variant).
    let act1 = p.square(conv);
    let act1 = p.rescale(act1);
    // Dense layer 1: blocks of multiply-by-plain + inner sums.
    let blocks = div(10, scale);
    let mut outs = Vec::new();
    for _ in 0..blocks {
        let w = p.plain_input(l - 1);
        let m = p.mul_plain(act1, w);
        let s = p.inner_sum(m, 64);
        outs.push(s);
    }
    // Square + dense layer 2 on the first block (LoLa keeps outputs packed).
    let mut h = outs[0];
    for &o in &outs[1..] {
        h = p.add(h, o);
    }
    let act2 = p.square(h);
    let act2 = p.rescale(act2);
    let w_out = p.plain_input(l - 2);
    let logits = p.mul_plain(act2, w_out);
    let final_sum = p.inner_sum(logits, 16);
    p.output(final_sum);
    Benchmark::finish("LoLa-MNIST Unencryp. Wghts.", l, p, scale)
}

/// LoLa-MNIST with encrypted weights: same shape, but weights are
/// ciphertexts, so every weight application is a full homomorphic
/// multiplication with relinearization. Starting L = 6.
pub fn lola_mnist_ew(scale: usize) -> Benchmark {
    let n = 1 << 14;
    let l = 6;
    let mut p = FheProgram::new(n, Scheme::Ckks);
    let x = p.input(l);
    let taps = div(25, scale);
    let mut acc: Option<IrId> = None;
    for tap in 0..taps {
        let w = p.input(l); // encrypted weights
        let r = if tap == 0 { x } else { p.rotate(x, tap) };
        let m = p.mul(r, w);
        acc = Some(match acc {
            None => m,
            Some(a) => p.add(a, m),
        });
    }
    let conv = p.rescale(acc.unwrap());
    let act1 = p.square(conv);
    let act1 = p.rescale(act1);
    let blocks = div(10, scale);
    let mut outs = Vec::new();
    for _ in 0..blocks {
        let w = p.input(l - 2); // encrypted weights arrive pre-switched
        let m = p.mul(act1, w);
        let s = p.inner_sum(m, 64);
        outs.push(s);
    }
    let mut h = outs[0];
    for &o in &outs[1..] {
        h = p.add(h, o);
    }
    let h = p.rescale(h);
    let act2 = p.square(h);
    let act2 = p.rescale(act2);
    let w_out = p.input(l - 4);
    let logits = p.mul(act2, w_out);
    let final_sum = p.inner_sum(logits, 16);
    p.output(final_sum);
    Benchmark::finish("LoLa-MNIST Encryp. Wghts.", l, p, scale)
}

/// LoLa-CIFAR (unencrypted weights), the largest network: 6 layers
/// (2 conv + 4 dense in LoLa's packed formulation), starting L = 8.
/// The full instance is ~50× LoLa-MNIST's work; `scale` divides layer
/// widths. (At full size the conv rotation patterns wrap their windows,
/// so rotation dedup merges the duplicate automorphisms.)
pub fn lola_cifar_uw(scale: usize) -> Benchmark {
    let n = 1 << 14;
    let l = 8;
    let mut p = FheProgram::new(n, Scheme::Ckks);
    let x = p.input(l);
    // Conv 1: 3 input channels × 25 taps.
    let taps1 = div(75, scale);
    let mut acc: Option<IrId> = None;
    for tap in 0..taps1 {
        let w = p.plain_input(l);
        let r = if tap == 0 { x } else { p.rotate(x, 1 + (tap % 63)) };
        let m = p.mul_plain(r, w);
        acc = Some(match acc {
            None => m,
            Some(a) => p.add(a, m),
        });
    }
    let c1 = acc.unwrap();
    let a1 = p.square(c1);
    let a1 = p.rescale(a1);
    // Conv 2: 25 taps × 8 output groups.
    let groups = div(8, scale);
    let taps2 = div(25, scale.min(5));
    let mut conv2_outs = Vec::new();
    for g in 0..groups {
        let mut acc2: Option<IrId> = None;
        for tap in 0..taps2 {
            let w = p.plain_input(l - 1);
            let r = p.rotate(a1, 1 + ((g * taps2 + tap) % 127));
            let m = p.mul_plain(r, w);
            acc2 = Some(match acc2 {
                None => m,
                Some(a) => p.add(a, m),
            });
        }
        conv2_outs.push(acc2.unwrap());
    }
    let mut c2 = conv2_outs[0];
    for &o in &conv2_outs[1..] {
        c2 = p.add(c2, o);
    }
    let a2 = p.square(c2);
    let a2 = p.rescale(a2);
    // Dense stack: 4 layers of (blocks × mul_plain + inner sums).
    let mut h = a2;
    let widths = [div(64, scale), div(32, scale), div(16, scale), div(10, scale)];
    for (layer, &w_blocks) in widths.iter().enumerate() {
        let lev = l - 2 - layer;
        let mut outs = Vec::new();
        for _ in 0..w_blocks {
            let w = p.plain_input(lev);
            let m = p.mul_plain(h, w);
            let s = p.inner_sum(m, 128);
            outs.push(s);
        }
        let mut acc3 = outs[0];
        for &o in &outs[1..] {
            acc3 = p.add(acc3, o);
        }
        if layer < widths.len() - 1 {
            h = p.rescale(acc3);
        } else {
            h = acc3;
        }
    }
    p.output(h);
    Benchmark::finish("LoLa-CIFAR Unencryp. Wghts.", l, p, scale)
}

/// HELR logistic regression \[40\]: one training batch, 256 features ×
/// 256 samples, starting L = 16 — the "large log Q" workload whose hint
/// traffic dominates (Fig 9a). Feature blocks carry *distinct* packed
/// sample ciphertexts (the seed version reused one ciphertext for every
/// block, a modeling shortcut the IR's CSE would rightly collapse).
pub fn logistic_regression(scale: usize) -> Benchmark {
    let n = 1 << 14;
    let l = 16;
    let mut p = FheProgram::new(n, Scheme::Ckks);
    let w = p.input(l); // encrypted model
    let blocks = div(32, scale); // feature blocks
    let sample_blocks: Vec<IrId> = (0..blocks).map(|_| p.input(l)).collect();
    // Forward pass: per block, x·w inner products via rotate-and-add.
    let mut dots = Vec::new();
    for &xb in &sample_blocks {
        let prod = p.mul(xb, w);
        let s = p.inner_sum(prod, 256);
        dots.push(s);
    }
    let mut z = dots[0];
    for &d in &dots[1..] {
        z = p.add(z, d);
    }
    // Sigmoid: degree-7 polynomial (HELR's least-squares fit), evaluated
    // with 3 sequential squarings + combine, rescaling en route.
    let z = p.rescale(z);
    let z2 = p.square(z);
    let z2 = p.rescale(z2);
    let z4 = p.square(z2);
    let z4 = p.rescale(z4);
    let c1 = p.plain_input(l - 3);
    let t1 = p.mul_plain(z4, c1);
    let sig = p.inner_sum(t1, 4);
    // Gradient: per feature block, sigmoid × samples, summed.
    let mut grads = Vec::new();
    for &xb in &sample_blocks {
        let xs = p.rescale(xb);
        let xs = p.rescale(xs);
        let xs = p.rescale(xs);
        let g = p.mul(sig, xs);
        let g = p.inner_sum(g, 256);
        grads.push(g);
    }
    let mut g_total = grads[0];
    for &g in &grads[1..] {
        g_total = p.add(g_total, g);
    }
    // Weight update: w - eta * grad.
    let eta = p.plain_input(l - 3);
    let step = p.mul_plain(g_total, eta);
    let mut w_down = w;
    for _ in 0..3 {
        w_down = p.rescale(w_down);
    }
    let w_new = p.add(w_down, step);
    p.output(w_new);
    Benchmark::finish("Logistic Regression", l, p, scale)
}

/// DB lookup, adapted from HElib's BGV_country_db_lookup \[41\] at the
/// paper's hardened parameters (L = 17, N = 16K): compare an encrypted
/// query against every encrypted key, mask the values, and sum.
pub fn db_lookup(scale: usize) -> Benchmark {
    let n = 1 << 14;
    let l = 17;
    let mut p = FheProgram::new(n, Scheme::Bgv);
    let query = p.input(l);
    let entries = div(64, scale);
    let mut masked = Vec::new();
    for _ in 0..entries {
        let key = p.input(l);
        // diff = query - key (an add-type op; subtraction has the same
        // cost), then an equality indicator via Fermat-style squarings
        // (depth 4), mod-switching to keep noise in check.
        let diff = p.add(query, key);
        let mut eq = p.square(diff);
        for _ in 0..3 {
            eq = p.mod_switch(eq);
            eq = p.square(eq);
        }
        let value = p.plain_input(p.level_of(eq));
        let hit = p.mul_plain(eq, value);
        masked.push(hit);
    }
    let mut acc = masked[0];
    for &m in &masked[1..] {
        acc = p.add(acc, m);
    }
    let result = p.inner_sum(acc, 64);
    p.output(result);
    Benchmark::finish("DB Lookup", l, p, scale)
}

/// Non-packed BGV bootstrapping (Alperin-Sheriff–Peikert \[3\]) at
/// L_max = 24: the operation trace of `f1-fhe`'s real bootstrapper —
/// homomorphic inner product, ν-stage trace (automorphism-heavy), exact
/// division, and Halevi–Shoup digit extraction (ρ² /2 squarings).
pub fn bgv_bootstrapping(scale: usize) -> Benchmark {
    let n = 1 << 14;
    let l_max = 24;
    let nu = 14usize; // log2 N
    let rho = div_sqrt(15, scale);
    let mut p = FheProgram::new(n, Scheme::Bgv);
    // Bootstrapping key: Enc(s) at L_max; ã/b̃ as plaintext operands.
    let boot_key = p.input(l_max);
    let a_tilde = p.plain_input(l_max);
    let b_tilde = p.plain_input(l_max);
    // Inner product: z = b̃ - ã*Enc(s).
    let prod = p.mul_plain(boot_key, a_tilde);
    let mut z = p.add_plain(prod, b_tilde);
    // Trace: ν automorphism stages (the 3^{2^i} ladder + σ_{-1}).
    let two_n = 2 * n;
    let mut k = 3usize;
    for _ in 0..nu - 1 {
        let rot = p.aut(z, k);
        z = p.add(z, rot);
        k = (k * k) % two_n;
    }
    let rot = p.aut(z, two_n - 1);
    z = p.add(z, rot);
    // Exact division by 2^ν: a scalar multiply on both polynomials.
    let inv = p.plain_input(l_max);
    z = p.mul_plain(z, inv);
    // Halevi–Shoup digit extraction: ρ outer steps; step k recomputes y
    // (k subtract+halve pairs) and squares all k rows once.
    let mut rows: Vec<IrId> = Vec::new();
    let mut z_cur = z;
    for kk in 0..rho {
        let mut y = z_cur;
        for &row in rows.iter().take(kk) {
            let s = p.add(y, row); // subtract (adder FU)
            let half = p.plain_input(p.level_of(s));
            y = p.mul_plain(s, half); // exact halving (scalar multiply)
        }
        if kk == rho - 1 {
            p.output(y);
            break;
        }
        rows.push(y);
        // Lockstep mod switch + square every row.
        z_cur = p.mod_switch(z_cur);
        for row in rows.iter_mut() {
            let down = p.mod_switch(*row);
            *row = p.square(down);
        }
    }
    Benchmark::finish("BGV Bootstrapping", l_max, p, scale)
}

/// Non-packed CKKS bootstrapping (HEAAN \[16\]) at L_max = 24: modulus
/// raise, trace, then EvalMod by the scaled-sine method (Taylor Horner +
/// double-angle squarings). Far fewer multiplications than BGV
/// bootstrapping, hence less hint reuse (§7). (The re/im state starts
/// from the same value, so the first Horner step's two multiplies are
/// genuinely common subexpressions — visible in the IR stats.)
pub fn ckks_bootstrapping(scale: usize) -> Benchmark {
    let n = 1 << 14;
    let l_max = 24;
    let nu = 14usize;
    let taylor = div_sqrt(7, scale);
    let double_angles = div_sqrt(9, scale); // sparse-key HEAAN setting
    let mut p = FheProgram::new(n, Scheme::Ckks);
    let ct = p.input(l_max); // the raised ciphertext
                             // Trace ladder.
    let two_n = 2 * n;
    let mut z = ct;
    let mut k = 3usize;
    for _ in 0..nu - 1 {
        let rot = p.aut(z, k);
        z = p.add(z, rot);
        k = (k * k) % two_n;
    }
    let rot = p.aut(z, two_n - 1);
    z = p.add(z, rot);
    // Exact 1/N normalization + two-step angle constant + scale fix.
    for _ in 0..3 {
        let c = p.plain_input(p.level_of(z));
        z = p.mul_plain(z, c);
        z = p.rescale(z);
    }
    // Horner Taylor: re/im pair, two ct×ct muls per step + rescales.
    // The first step is peeled — re and im both start at `z`, so its
    // operand references are indistinguishable; from step 1 on the
    // iterations are generic and live in a rolled Repeat region (body
    // stored once, Taylor coefficient stepping one plaintext ordinal
    // forward and one level down per trip). Unrolling reproduces the
    // handwritten loop byte for byte (pinned by a test below).
    let (mut re, mut im);
    {
        let new_re = p.mul(z, z);
        let new_re = p.rescale(new_re);
        let c = p.plain_input(p.level_of(new_re));
        re = p.add_plain(new_re, c);
        let new_im = p.mul(z, z);
        im = p.rescale(new_im);
        z = p.rescale(z);
    }
    assert!(taylor >= 2, "div_sqrt floors at 2");
    let t = p.begin_repeat();
    let new_re = p.mul(im, z);
    let new_re = p.rescale(new_re);
    let c = p.plain_input(p.level_of(new_re));
    let new_re = p.add_plain(new_re, c);
    let new_im = p.mul(re, z);
    let new_im = p.rescale(new_im);
    let z_next = p.rescale(z);
    p.end_repeat(
        t,
        (taylor - 1) as u32,
        vec![(re, new_re), (im, new_im), (z, z_next)],
        vec![(c, NodeStep { d_ordinal: 1, d_level: -1, d_k: 0 })],
    );
    let rolled_prefix = p.nodes().len();
    let (mut p, map) = p.unroll_map();
    let unrolled_at_loop = p.nodes().len();
    re = map[new_re.0 as usize];
    im = map[new_im.0 as usize];
    // Double-angle squarings: 3 muls per step.
    for _ in 0..double_angles {
        let re2 = p.square(re);
        let im2 = p.square(im);
        let cross = p.mul(re, im);
        let diff = p.add(re2, im2);
        re = p.rescale(diff);
        let twice = p.add(cross, cross);
        im = p.rescale(twice);
    }
    let c_final = p.plain_input(p.level_of(im));
    let out = p.mul_plain(im, c_final);
    p.output(out);
    let rolled_nodes = rolled_prefix + (p.nodes().len() - unrolled_at_loop);
    Benchmark::finish_rolled("CKKS Bootstrapping", l_max, p, scale, Some(rolled_nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_compiler::expand::{expand, ExpandOptions};
    use f1_compiler::ir::FheOp;

    #[test]
    fn all_benchmarks_build_and_expand() {
        for b in all_benchmarks(8) {
            let ex = expand(&b.program, &ExpandOptions::default());
            assert!(
                ex.dfg.instrs().len() > 100,
                "{}: only {} instructions",
                b.name,
                ex.dfg.instrs().len()
            );
        }
    }

    /// The handwritten (fully unrolled) CKKS bootstrapping builder that
    /// `ckks_bootstrapping` replaced with a rolled Repeat region — kept
    /// here verbatim as the reference the rolled builder must reproduce.
    fn ckks_bootstrapping_handwritten(scale: usize) -> FheProgram {
        let n = 1 << 14;
        let l_max = 24;
        let nu = 14usize;
        let taylor = div_sqrt(7, scale);
        let double_angles = div_sqrt(9, scale);
        let mut p = FheProgram::new(n, Scheme::Ckks);
        let ct = p.input(l_max);
        let two_n = 2 * n;
        let mut z = ct;
        let mut k = 3usize;
        for _ in 0..nu - 1 {
            let rot = p.aut(z, k);
            z = p.add(z, rot);
            k = (k * k) % two_n;
        }
        let rot = p.aut(z, two_n - 1);
        z = p.add(z, rot);
        for _ in 0..3 {
            let c = p.plain_input(p.level_of(z));
            z = p.mul_plain(z, c);
            z = p.rescale(z);
        }
        let mut re = z;
        let mut im = z;
        for _ in 0..taylor {
            let new_re = p.mul(im, z);
            let new_re = p.rescale(new_re);
            let c = p.plain_input(p.level_of(new_re));
            let new_re = p.add_plain(new_re, c);
            let new_im = p.mul(re, z);
            let new_im = p.rescale(new_im);
            re = new_re;
            im = new_im;
            z = p.rescale(z);
        }
        for _ in 0..double_angles {
            let re2 = p.square(re);
            let im2 = p.square(im);
            let cross = p.mul(re, im);
            let diff = p.add(re2, im2);
            re = p.rescale(diff);
            let twice = p.add(cross, cross);
            im = p.rescale(twice);
        }
        let c_final = p.plain_input(p.level_of(im));
        let out = p.mul_plain(im, c_final);
        p.output(out);
        p
    }

    #[test]
    fn ckks_rolled_region_unrolls_to_the_handwritten_loop() {
        for scale in [1, 8] {
            let rolled = ckks_bootstrapping(scale);
            let hand = ckks_bootstrapping_handwritten(scale);
            assert_eq!(
                format!("{:?}", rolled.fhe),
                format!("{:?}", hand),
                "scale {scale}: rolled builder diverges from the handwritten loop"
            );
            let rolled_nodes = rolled.rolled_nodes.expect("CKKS boot reports its rolled size");
            assert!(
                rolled_nodes <= rolled.fhe.nodes().len(),
                "rolled form ({rolled_nodes} nodes) cannot exceed unrolled ({})",
                rolled.fhe.nodes().len()
            );
            if scale == 1 {
                // At full scale the Taylor loop runs 7 steps: 6 stamped
                // trips of 7-node body each, so 5 × 7 nodes are saved.
                assert!(
                    rolled_nodes < rolled.fhe.nodes().len(),
                    "full-scale rolled form must be strictly smaller"
                );
            }
        }
    }

    #[test]
    fn paper_parameters_match() {
        let bs = all_benchmarks(8);
        let by_name = |n: &str| bs.iter().find(|b| b.name.contains(n)).unwrap();
        assert_eq!(by_name("Logistic").l, 16);
        assert_eq!(by_name("DB Lookup").l, 17);
        assert_eq!(by_name("DB Lookup").n, 1 << 14);
        assert_eq!(by_name("BGV Boot").l, 24);
        assert_eq!(by_name("CKKS Boot").l, 24);
        assert_eq!(by_name("MNIST Unencryp").l, 4);
        assert_eq!(by_name("MNIST Encryp").l, 6);
        assert_eq!(by_name("CIFAR").l, 8);
    }

    #[test]
    fn schemes_are_typed() {
        let bs = all_benchmarks(8);
        let by_name = |n: &str| bs.iter().find(|b| b.name.contains(n)).unwrap();
        assert_eq!(by_name("DB Lookup").scheme, Scheme::Bgv);
        assert_eq!(by_name("BGV Boot").scheme, Scheme::Bgv);
        assert_eq!(by_name("CIFAR").scheme, Scheme::Ckks);
        assert_eq!(by_name("Logistic").scheme, Scheme::Ckks);
    }

    #[test]
    fn bootstrapping_is_automorphism_heavy() {
        let b = bgv_bootstrapping(4);
        let auts = b.fhe.nodes().iter().filter(|n| matches!(n.op, FheOp::Aut { .. })).count();
        assert_eq!(auts, 14, "ν trace stages");
        // The trace automorphisms all feed adds that also consume their
        // input, so the optimizer must preserve every one of them.
        let auts_opt = b
            .program
            .ops()
            .iter()
            .filter(|o| matches!(o, f1_compiler::dsl::HomOp::Aut { .. }))
            .count();
        assert_eq!(auts_opt, 14);
    }

    #[test]
    fn ckks_boot_has_fewer_muls_than_bgv_boot() {
        let count_muls =
            |b: &Benchmark| b.fhe.nodes().iter().filter(|n| matches!(n.op, FheOp::Mul(..))).count();
        let bgv = bgv_bootstrapping(1);
        let ckks = ckks_bootstrapping(1);
        assert!(
            count_muls(&ckks) < count_muls(&bgv),
            "CKKS {} vs BGV {} (paper §7: CKKS bootstrapping has many fewer multiplications)",
            count_muls(&ckks),
            count_muls(&bgv)
        );
    }

    #[test]
    fn scaling_reduces_width_not_depth() {
        let full = db_lookup(1);
        let small = db_lookup(8);
        assert!(small.program.ops().len() < full.program.ops().len() / 4);
        // Depth preserved: both bottom out at the same level.
        let min_level = |b: &Benchmark| {
            (0..b.program.ops().len())
                .map(|i| b.program.level_of(f1_compiler::dsl::CtId(i as u32)))
                .min()
                .unwrap()
        };
        assert_eq!(min_level(&full), min_level(&small));
    }

    #[test]
    fn ir_passes_find_real_redundancy() {
        // CKKS bootstrapping: re and im start equal, so the first Horner
        // step's two multiplies (and their rescales) are CSE-equal. BGV
        // bootstrapping: digit extraction's first lockstep mod-switch
        // duplicates the z chain's. Both must show up as node reductions.
        for b in [ckks_bootstrapping(8), bgv_bootstrapping(8)] {
            assert!(b.opt.removed() > 0, "{}: expected a node reduction, got {:?}", b.name, b.opt);
            assert!(b.program.ops().len() < b.program_unopt.ops().len(), "{}", b.name);
        }
    }

    #[test]
    fn optimized_benchmarks_stay_semantically_sized() {
        // Optimization must trim, not gut: every benchmark keeps ≥ 80%
        // of its hom-ops (the passes remove genuine redundancy only).
        for b in all_benchmarks(8) {
            let (before, after) = (b.opt.nodes_before, b.opt.nodes_after);
            assert!(after * 10 >= before * 8, "{}: {before} -> {after} ops", b.name);
        }
    }
}
