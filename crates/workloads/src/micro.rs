//! Table 4 microbenchmarks: single ciphertext operations at the paper's
//! three parameter points.

use f1_arch::heax::HeaxModel;
use f1_arch::ArchConfig;
use f1_compiler::dsl::Program;
use f1_compiler::ir::{FheProgram, Scheme};
use f1_isa::FuType;
use serde::{Deserialize, Serialize};

/// One microbenchmark row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicroOp {
    /// NTT of one ciphertext (2 polynomials × L limbs).
    Ntt,
    /// Automorphism of one ciphertext.
    Automorphism,
    /// Homomorphic multiplication.
    HomMul,
    /// Homomorphic permutation (automorphism + key-switch).
    HomPerm,
}

impl MicroOp {
    /// All four rows, Table 4 order.
    pub const ALL: [MicroOp; 4] =
        [MicroOp::Ntt, MicroOp::Automorphism, MicroOp::HomMul, MicroOp::HomPerm];

    /// Row label.
    pub fn label(&self) -> &'static str {
        match self {
            MicroOp::Ntt => "NTT",
            MicroOp::Automorphism => "Automorphism",
            MicroOp::HomMul => "Homomorphic multiply",
            MicroOp::HomPerm => "Homomorphic permutation",
        }
    }
}

/// F1's reciprocal throughput for a microbenchmark, in seconds.
///
/// Microbenchmarks are pure compute (the paper notes they "miss the data
/// movement bottlenecks"), so reciprocal throughput is the steady-state
/// issue rate of the work on the available FUs, not the latency of one
/// isolated operation.
pub fn f1_reciprocal_s(op: MicroOp, n: usize, l: usize, arch: &ArchConfig) -> f64 {
    let g = arch.occupancy(FuType::Ntt, n); // = N/lanes for all FU classes
    let cyc = |vectors: usize, fu: FuType| -> f64 {
        let units = (arch.fus_per_cluster(fu) * arch.clusters) as f64;
        vectors as f64 * g as f64 / units
    };
    let cycles = match op {
        MicroOp::Ntt => cyc(2 * l, FuType::Ntt),
        MicroOp::Automorphism => cyc(2 * l, FuType::Aut),
        MicroOp::HomMul => {
            // Tensor 4L mults + keyswitch: L² NTTs, 2L² mults, ~2L² adds;
            // classes run concurrently, the slowest pipe dominates.
            let ntts = cyc(l * l, FuType::Ntt);
            let muls = cyc(4 * l + 2 * l * l, FuType::Mul);
            let adds = cyc(3 * l + 2 * l * (l - 1), FuType::Add);
            ntts.max(muls).max(adds)
        }
        MicroOp::HomPerm => {
            let auts = cyc(2 * l, FuType::Aut);
            let ntts = cyc(l * l, FuType::Ntt);
            let muls = cyc(2 * l * l, FuType::Mul);
            auts.max(ntts).max(muls)
        }
    };
    cycles / (arch.freq_ghz * 1e9)
}

/// The HEAX_σ comparator's reciprocal throughput (see
/// [`f1_arch::heax`]).
pub fn heax_reciprocal_s(op: MicroOp, n: usize, l: usize) -> f64 {
    let m = HeaxModel::default();
    match op {
        MicroOp::Ntt => m.ciphertext_ntt_s(n, l),
        MicroOp::Automorphism => m.ciphertext_aut_s(n, l),
        MicroOp::HomMul => m.hom_mul_s(n, l),
        MicroOp::HomPerm => m.hom_perm_s(n, l),
    }
}

/// A single-operation program for CPU-baseline measurement, built on the
/// typed frontend and lowered through the IR pipeline.
pub fn micro_program(op: MicroOp, n: usize, l: usize) -> Program {
    let mut p = FheProgram::new(n, Scheme::Bgv);
    let x = p.input(l);
    match op {
        MicroOp::Ntt | MicroOp::HomMul => {
            // The CPU cost of a standalone NTT is measured from hom-mul
            // pieces; at the DSL level both reduce to Mul.
            let y = p.input(l);
            let m = p.mul(x, y);
            p.output(m);
        }
        MicroOp::Automorphism | MicroOp::HomPerm => {
            let r = p.aut(x, 3);
            p.output(r);
        }
    }
    p.optimize().0.lower().program
}

/// The paper's Table 4 reference speedups (for EXPERIMENTS.md shape
/// comparison): `(op, N, logQ, F1 ns, vs CPU, vs HEAX_σ)`.
pub fn paper_table4() -> Vec<(&'static str, usize, u32, f64, f64, f64)> {
    vec![
        ("NTT", 1 << 12, 109, 12.8, 17148.0, 1600.0),
        ("NTT", 1 << 13, 218, 44.8, 10736.0, 1733.0),
        ("NTT", 1 << 14, 438, 179.2, 8838.0, 1866.0),
        ("Automorphism", 1 << 12, 109, 12.8, 7364.0, 440.0),
        ("Automorphism", 1 << 13, 218, 44.8, 8250.0, 426.0),
        ("Automorphism", 1 << 14, 438, 179.2, 16957.0, 430.0),
        ("Homomorphic multiply", 1 << 12, 109, 60.0, 48640.0, 172.0),
        ("Homomorphic multiply", 1 << 13, 218, 300.0, 27069.0, 148.0),
        ("Homomorphic multiply", 1 << 14, 438, 2000.0, 14396.0, 190.0),
        ("Homomorphic permutation", 1 << 12, 109, 40.0, 17488.0, 256.0),
        ("Homomorphic permutation", 1 << 13, 218, 224.0, 10814.0, 198.0),
        ("Homomorphic permutation", 1 << 14, 438, 1680.0, 6421.0, 227.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_fhe::params::table4_parameter_sets;

    #[test]
    fn f1_micro_times_track_paper_order_of_magnitude() {
        let arch = ArchConfig::f1_default();
        for (label, n, _logq, f1_ns, _, _) in paper_table4() {
            let op = MicroOp::ALL.iter().copied().find(|o| o.label() == label).unwrap();
            let l = table4_parameter_sets()
                .iter()
                .find(|&&(tn, _, _)| tn == n)
                .map(|&(_, _, l)| l)
                .unwrap();
            let modeled_ns = f1_reciprocal_s(op, n, l, &arch) * 1e9;
            let ratio = modeled_ns / f1_ns;
            assert!(
                (0.1..10.0).contains(&ratio),
                "{label} at N={n}: modeled {modeled_ns:.1} ns vs paper {f1_ns} ns"
            );
        }
    }

    #[test]
    fn f1_beats_heax_by_orders_of_magnitude() {
        let arch = ArchConfig::f1_default();
        for (n, _logq, l) in table4_parameter_sets() {
            for op in MicroOp::ALL {
                let f1 = f1_reciprocal_s(op, n, l, &arch);
                let hx = heax_reciprocal_s(op, n, l);
                let speedup = hx / f1;
                assert!(speedup > 50.0, "{op:?} at N={n}: speedup over HEAX only {speedup:.0}x");
            }
        }
    }

    #[test]
    fn micro_programs_compile() {
        for op in MicroOp::ALL {
            let p = micro_program(op, 1 << 12, 4);
            let ex = f1_compiler::expand::expand(&p, &Default::default());
            assert!(!ex.dfg.instrs().is_empty());
        }
    }
}
