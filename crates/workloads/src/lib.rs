//! # f1-workloads — the paper's evaluation benchmarks (§7)
//!
//! Seven full FHE programs expressed on the typed `FheProgram` frontend
//! (scheme-aware levels/scales, optimized and lowered through the IR
//! pass pipeline), mirroring the paper's benchmark suite: the three LoLa
//! neural networks, HELR logistic regression, HElib's DB lookup, and
//! non-packed BGV/CKKS bootstrapping.
//! Workload *structure* (operation mix, depths, rotation patterns,
//! parameters) follows the sources the paper ports; weights/data are
//! synthetic (see DESIGN.md §2.4).
//!
//! Also provides the Table 4 microbenchmarks and the timed CPU software
//! baseline used by Table 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod cpu_baseline;
pub mod micro;

pub use benchmarks::{all_benchmarks, Benchmark};
pub use cpu_baseline::CpuBaseline;
