//! # f1-arch — the F1 architecture description and hardware models
//!
//! The compiler consumes an architecture description file (Fig 3) and the
//! simulator charges time and energy against it. This crate provides:
//!
//! * [`config`] — [`config::ArchConfig`]: clusters, lanes, functional
//!   units, scratchpad, HBM, NoC and the dual-frequency design of §6,
//!   plus the FU latency/occupancy model the static scheduler relies on.
//! * [`area`] — the area/TDP model that regenerates Table 2 and scales
//!   with the configuration for Fig 11's design-space exploration.
//! * [`energy`] — per-event energies behind Fig 9b's power breakdown.
//! * [`heax`] — the HEAX_σ comparator model used by Table 4
//!   (a fixed-pipeline FPGA accelerator with low-throughput FUs; see
//!   DESIGN.md §2.3 for the substitution rationale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod config;
pub mod energy;
pub mod heax;

pub use area::{AreaBreakdown, AreaRow};
pub use config::ArchConfig;
pub use energy::EnergyModel;
