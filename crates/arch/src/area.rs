//! Area and TDP model — regenerates Table 2 and scales for Fig 11.
//!
//! Per-component constants come from the paper's 14/12 nm synthesis
//! (Table 2); composite areas are *computed* from the configuration, so
//! the same model serves the design-space sweep of §8.4.

use crate::config::ArchConfig;
use f1_isa::FuType;

/// Per-unit area (mm²) and TDP (W) constants from Table 2.
mod unit {
    /// NTT FU.
    pub const NTT: (f64, f64) = (2.27, 4.80);
    /// Automorphism FU.
    pub const AUT: (f64, f64) = (0.58, 0.99);
    /// Multiply FU.
    pub const MUL: (f64, f64) = (0.25, 0.60);
    /// Add FU.
    pub const ADD: (f64, f64) = (0.03, 0.05);
    /// Vector register file, per 512 KB.
    pub const RF_512K: (f64, f64) = (0.56, 1.67);
    /// Scratchpad SRAM, per 4 MB bank.
    pub const BANK_4M: (f64, f64) = (48.09 / 16.0, 20.35 / 16.0);
    /// One 16×16 512-byte bit-sliced crossbar [58].
    pub const XBAR_16: (f64, f64) = (10.02 / 3.0, 19.65 / 3.0);
    /// One HBM2 PHY.
    pub const HBM_PHY: (f64, f64) = (29.80 / 2.0, 0.45 / 2.0);
}

/// One row of the Table 2 breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaRow {
    /// Component name, matching Table 2's labels.
    pub component: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Thermal design power in W.
    pub tdp_w: f64,
}

/// The full area/TDP breakdown of a configuration.
#[derive(Debug, Clone)]
pub struct AreaBreakdown {
    /// Rows in Table 2 order.
    pub rows: Vec<AreaRow>,
    /// Total area.
    pub total_area_mm2: f64,
    /// Total TDP.
    pub total_tdp_w: f64,
}

impl AreaBreakdown {
    /// Computes the breakdown for a configuration.
    pub fn for_config(cfg: &ArchConfig) -> Self {
        let fu = |count: usize, (a, p): (f64, f64)| (count as f64 * a, count as f64 * p);
        let (ntt_a, ntt_p) = fu(cfg.ntts_per_cluster, unit::NTT);
        let (aut_a, aut_p) = fu(cfg.auts_per_cluster, unit::AUT);
        let (mul_a, mul_p) = fu(cfg.muls_per_cluster, unit::MUL);
        let (add_a, add_p) = fu(cfg.adds_per_cluster, unit::ADD);
        let rf_scale = cfg.rf_bytes_per_cluster as f64 / (512.0 * 1024.0);
        let (rf_a, rf_p) = (unit::RF_512K.0 * rf_scale, unit::RF_512K.1 * rf_scale);
        let cluster_a = ntt_a + aut_a + mul_a + add_a + rf_a;
        let cluster_p = ntt_p + aut_p + mul_p + add_p + rf_p;
        let compute_a = cluster_a * cfg.clusters as f64;
        let compute_p = cluster_p * cfg.clusters as f64;

        let bank_scale = cfg.bank_bytes as f64 / (4.0 * 1024.0 * 1024.0);
        let pad_a = unit::BANK_4M.0 * bank_scale * cfg.scratchpad_banks as f64;
        let pad_p = unit::BANK_4M.1 * bank_scale * cfg.scratchpad_banks as f64;
        // Crossbar area grows quadratically with port count [58]; three
        // crossbars connect banks and clusters.
        let ports = cfg.clusters.max(cfg.scratchpad_banks) as f64;
        let xbar_scale = (ports / 16.0).powi(2);
        let noc_a = 3.0 * unit::XBAR_16.0 * xbar_scale;
        let noc_p = 3.0 * unit::XBAR_16.1 * xbar_scale;
        let mem_if_a = unit::HBM_PHY.0 * cfg.hbm_phys as f64;
        let mem_if_p = unit::HBM_PHY.1 * cfg.hbm_phys as f64;
        let memsys_a = pad_a + noc_a + mem_if_a;
        let memsys_p = pad_p + noc_p + mem_if_p;

        let rows = vec![
            AreaRow { component: "NTT FU".into(), area_mm2: ntt_a, tdp_w: ntt_p },
            AreaRow { component: "Automorphism FU".into(), area_mm2: aut_a, tdp_w: aut_p },
            AreaRow {
                component: "Multiply FU".into(),
                area_mm2: mul_a / cfg.muls_per_cluster.max(1) as f64,
                tdp_w: mul_p / cfg.muls_per_cluster.max(1) as f64,
            },
            AreaRow {
                component: "Add FU".into(),
                area_mm2: add_a / cfg.adds_per_cluster.max(1) as f64,
                tdp_w: add_p / cfg.adds_per_cluster.max(1) as f64,
            },
            AreaRow { component: "Vector RegFile (512 KB)".into(), area_mm2: rf_a, tdp_w: rf_p },
            AreaRow { component: "Compute cluster".into(), area_mm2: cluster_a, tdp_w: cluster_p },
            AreaRow {
                component: format!("Total compute ({} clusters)", cfg.clusters),
                area_mm2: compute_a,
                tdp_w: compute_p,
            },
            AreaRow {
                component: format!(
                    "Scratchpad ({}x{} MB banks)",
                    cfg.scratchpad_banks,
                    cfg.bank_bytes / (1024 * 1024)
                ),
                area_mm2: pad_a,
                tdp_w: pad_p,
            },
            AreaRow {
                component: "3xNoC (bit-sliced crossbars)".into(),
                area_mm2: noc_a,
                tdp_w: noc_p,
            },
            AreaRow {
                component: format!("Memory interface ({}xHBM2 PHYs)", cfg.hbm_phys),
                area_mm2: mem_if_a,
                tdp_w: mem_if_p,
            },
            AreaRow {
                component: "Total memory system".into(),
                area_mm2: memsys_a,
                tdp_w: memsys_p,
            },
        ];
        Self { rows, total_area_mm2: compute_a + memsys_a, total_tdp_w: compute_p + memsys_p }
    }

    /// The paper's published totals for the default configuration.
    pub fn paper_totals() -> (f64, f64) {
        (151.4, 180.4)
    }

    /// Row lookup by (partial) component name.
    pub fn row(&self, name: &str) -> Option<&AreaRow> {
        self.rows.iter().find(|r| r.component.contains(name))
    }
}

/// Per-FU TDP in watts, used by the energy model to convert busy cycles
/// into joules.
pub fn fu_tdp_w(fu: FuType) -> f64 {
    match fu {
        FuType::Ntt => unit::NTT.1,
        FuType::Aut => unit::AUT.1,
        FuType::Mul => unit::MUL.1,
        FuType::Add => unit::ADD.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reproduces_table2() {
        let b = AreaBreakdown::for_config(&ArchConfig::f1_default());
        let (paper_area, paper_tdp) = AreaBreakdown::paper_totals();
        assert!(
            (b.total_area_mm2 - paper_area).abs() / paper_area < 0.01,
            "total area {} vs paper {paper_area}",
            b.total_area_mm2
        );
        assert!(
            (b.total_tdp_w - paper_tdp).abs() / paper_tdp < 0.01,
            "total TDP {} vs paper {paper_tdp}",
            b.total_tdp_w
        );
        // Spot-check rows against Table 2.
        let cluster = b.row("Compute cluster").unwrap();
        assert!((cluster.area_mm2 - 3.97).abs() < 0.02, "{}", cluster.area_mm2);
        assert!((cluster.tdp_w - 8.75).abs() < 0.03);
        let pad = b.row("Scratchpad").unwrap();
        assert!((pad.area_mm2 - 48.09).abs() < 0.01);
        let compute = b.row("Total compute").unwrap();
        assert!((compute.area_mm2 - 63.52).abs() < 0.1);
    }

    #[test]
    fn area_scales_down_with_smaller_configs() {
        let half = AreaBreakdown::for_config(&ArchConfig::scaled(0.5));
        let full = AreaBreakdown::for_config(&ArchConfig::f1_default());
        assert!(half.total_area_mm2 < full.total_area_mm2 * 0.7);
        assert!(half.total_area_mm2 > full.total_area_mm2 * 0.3);
    }

    #[test]
    fn memory_takes_most_area() {
        // §6: FUs take 42% of area; memory system dominates the rest.
        let b = AreaBreakdown::for_config(&ArchConfig::f1_default());
        let mem = b.row("Total memory system").unwrap().area_mm2;
        assert!(mem / b.total_area_mm2 > 0.5);
    }
}
