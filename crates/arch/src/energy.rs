//! Per-event energy model behind the Fig 9b power breakdown.
//!
//! Average power = (Σ event energies) / execution time. Constants follow
//! published HBM2/SRAM figures at 14/12 nm ([32, 63] in the paper) and the
//! FU TDPs of Table 2 converted to energy per busy cycle.

use crate::area::fu_tdp_w;
use crate::config::ArchConfig;
use f1_isa::FuType;
use serde::{Deserialize, Serialize};

/// Energy cost constants (picojoules per byte unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// HBM2 access energy per byte (≈ 3.9 pJ/bit including PHY \[63\]).
    pub hbm_pj_per_byte: f64,
    /// Scratchpad SRAM access energy per byte.
    pub scratchpad_pj_per_byte: f64,
    /// On-chip network traversal energy per byte.
    pub noc_pj_per_byte: f64,
    /// Register-file access energy per byte.
    pub rf_pj_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            hbm_pj_per_byte: 31.2,
            scratchpad_pj_per_byte: 2.4,
            noc_pj_per_byte: 1.9,
            rf_pj_per_byte: 1.1,
        }
    }
}

/// Event counts accumulated by the simulator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyCounters {
    /// Bytes moved over HBM (both directions).
    pub hbm_bytes: u64,
    /// Bytes read/written at scratchpad banks.
    pub scratchpad_bytes: u64,
    /// Bytes traversing the NoC.
    pub noc_bytes: u64,
    /// Bytes read/written at register files.
    pub rf_bytes: u64,
    /// Busy cycles per FU class, summed over all instances.
    pub fu_busy_cycles: [u64; 4],
    /// Busy cycles summed across HBM channels — the contention model's
    /// occupancy bookkeeping (each transfer holds one channel for
    /// `mem_channel_cycles(bytes)`); the simulator re-derives and
    /// cross-checks it against the memory streams.
    pub hbm_channel_busy_cycles: u64,
    /// Busy cycles summed across crossbar port lanes (each on-chip
    /// transfer holds one lane for `net_cycles(bytes)`); cross-checked
    /// against the network stream the same way.
    pub xbar_busy_cycles: u64,
}

impl EnergyCounters {
    /// Records `cycles` of activity on one FU of class `fu`.
    pub fn add_fu_busy(&mut self, fu: FuType, cycles: u64) {
        self.fu_busy_cycles[fu_index(fu)] += cycles;
    }

    /// Field-wise difference `self - earlier`. Panics on underflow —
    /// counters are cumulative, so a later schedule dominates an earlier
    /// one field by field.
    pub fn delta(&self, earlier: &EnergyCounters) -> EnergyCounters {
        let mut fu = [0u64; 4];
        for (i, f) in fu.iter_mut().enumerate() {
            *f = self.fu_busy_cycles[i] - earlier.fu_busy_cycles[i];
        }
        EnergyCounters {
            hbm_bytes: self.hbm_bytes - earlier.hbm_bytes,
            scratchpad_bytes: self.scratchpad_bytes - earlier.scratchpad_bytes,
            noc_bytes: self.noc_bytes - earlier.noc_bytes,
            rf_bytes: self.rf_bytes - earlier.rf_bytes,
            fu_busy_cycles: fu,
            hbm_channel_busy_cycles: self.hbm_channel_busy_cycles - earlier.hbm_channel_busy_cycles,
            xbar_busy_cycles: self.xbar_busy_cycles - earlier.xbar_busy_cycles,
        }
    }

    /// Field-wise `self + k * step` — extends cumulative counters across
    /// `k` extra repetitions of a pattern that adds `step` per repetition.
    pub fn plus_scaled(&self, step: &EnergyCounters, k: u64) -> EnergyCounters {
        let mut fu = [0u64; 4];
        for (i, f) in fu.iter_mut().enumerate() {
            *f = self.fu_busy_cycles[i] + k * step.fu_busy_cycles[i];
        }
        EnergyCounters {
            hbm_bytes: self.hbm_bytes + k * step.hbm_bytes,
            scratchpad_bytes: self.scratchpad_bytes + k * step.scratchpad_bytes,
            noc_bytes: self.noc_bytes + k * step.noc_bytes,
            rf_bytes: self.rf_bytes + k * step.rf_bytes,
            fu_busy_cycles: fu,
            hbm_channel_busy_cycles: self.hbm_channel_busy_cycles
                + k * step.hbm_channel_busy_cycles,
            xbar_busy_cycles: self.xbar_busy_cycles + k * step.xbar_busy_cycles,
        }
    }
}

fn fu_index(fu: FuType) -> usize {
    match fu {
        FuType::Ntt => 0,
        FuType::Aut => 1,
        FuType::Mul => 2,
        FuType::Add => 3,
    }
}

/// The Fig 9b breakdown: average power per component class, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// HBM accesses.
    pub hbm_w: f64,
    /// Scratchpad accesses.
    pub scratchpad_w: f64,
    /// NoC traffic.
    pub noc_w: f64,
    /// Register files.
    pub rf_w: f64,
    /// Functional units.
    pub fus_w: f64,
}

impl PowerBreakdown {
    /// Total average power.
    pub fn total_w(&self) -> f64 {
        self.hbm_w + self.scratchpad_w + self.noc_w + self.rf_w + self.fus_w
    }

    /// Fraction of power spent on data movement (everything but FUs) —
    /// the paper's "computation consumes 20-30% of power, and data
    /// movement dominates" claim (§8.2).
    pub fn data_movement_fraction(&self) -> f64 {
        1.0 - self.fus_w / self.total_w()
    }
}

impl EnergyModel {
    /// Converts event counters plus a makespan into the average-power
    /// breakdown of Fig 9b.
    pub fn power_breakdown(
        &self,
        counters: &EnergyCounters,
        makespan_cycles: u64,
        cfg: &ArchConfig,
    ) -> PowerBreakdown {
        let seconds = makespan_cycles.max(1) as f64 / (cfg.freq_ghz * 1e9);
        let pj = |bytes: u64, per_byte: f64| bytes as f64 * per_byte * 1e-12;
        let mut fus_j = 0.0;
        for fu in FuType::ALL {
            let busy = counters.fu_busy_cycles[fu_index(fu)] as f64;
            fus_j += busy * fu_tdp_w(fu) / (cfg.freq_ghz * 1e9);
        }
        PowerBreakdown {
            hbm_w: pj(counters.hbm_bytes, self.hbm_pj_per_byte) / seconds,
            scratchpad_w: pj(counters.scratchpad_bytes, self.scratchpad_pj_per_byte) / seconds,
            noc_w: pj(counters.noc_bytes, self.noc_pj_per_byte) / seconds,
            rf_w: pj(counters.rf_bytes, self.rf_pj_per_byte) / seconds,
            fus_w: fus_j / seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bandwidth_hbm_power_is_plausible() {
        // Streaming 1 TB/s for 1M cycles (1 ms): HBM power ≈ 32 W, the
        // ballpark of HBM2 at full tilt.
        let model = EnergyModel::default();
        let cfg = ArchConfig::f1_default();
        // 1 KB/cycle for 1M cycles.
        let c = EnergyCounters { hbm_bytes: 1024 * 1_000_000, ..Default::default() };
        let p = model.power_breakdown(&c, 1_000_000, &cfg);
        assert!((25.0..40.0).contains(&p.hbm_w), "hbm power {}", p.hbm_w);
    }

    #[test]
    fn fu_power_caps_at_tdp() {
        // All 16 NTT units busy every cycle: power = 16 × 4.8 W.
        let model = EnergyModel::default();
        let cfg = ArchConfig::f1_default();
        let mut c = EnergyCounters::default();
        c.add_fu_busy(FuType::Ntt, 16 * 1_000_000);
        let p = model.power_breakdown(&c, 1_000_000, &cfg);
        assert!((p.fus_w - 16.0 * 4.8).abs() < 0.1, "{}", p.fus_w);
    }

    #[test]
    fn breakdown_totals_and_fraction() {
        let model = EnergyModel::default();
        let cfg = ArchConfig::f1_default();
        let mut c = EnergyCounters {
            hbm_bytes: 500_000_000,
            scratchpad_bytes: 2_000_000_000,
            noc_bytes: 1_500_000_000,
            rf_bytes: 3_000_000_000,
            ..Default::default()
        };
        c.add_fu_busy(FuType::Mul, 10_000_000);
        let p = model.power_breakdown(&c, 1_000_000, &cfg);
        let sum = p.hbm_w + p.scratchpad_w + p.noc_w + p.rf_w + p.fus_w;
        assert!((p.total_w() - sum).abs() < 1e-9);
        assert!(p.data_movement_fraction() > 0.5, "data movement should dominate");
    }
}
