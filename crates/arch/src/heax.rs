//! HEAX_σ comparator model for Table 4.
//!
//! HEAX \[65\] is the fastest prior FHE accelerator: an FPGA design with a
//! fixed-function CKKS key-switching pipeline built from relatively
//! low-throughput functional units at ~300 MHz. HEAX does not implement
//! automorphisms, so the paper extends each key-switch pipeline with an
//! SRAM-based scalar automorphism unit and calls the result HEAX_σ.
//!
//! We model HEAX_σ's reciprocal throughput structurally from the published
//! architecture (butterflies/cycle, lane counts, clock) rather than
//! transcribing the paper's speedup table — see DESIGN.md §2.3. The test
//! suite cross-checks the model's outputs against the paper's implied
//! numbers at the ±40% level, which is as close as a reconstruction of an
//! FPGA pipeline from its paper can honestly claim.

/// HEAX_σ model parameters (from the HEAX paper's architecture).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeaxModel {
    /// FPGA clock in Hz.
    pub clock_hz: f64,
    /// NTT butterflies retired per cycle.
    pub ntt_butterflies_per_cycle: f64,
    /// Elements per cycle of the (added) SRAM automorphism unit.
    pub aut_elements_per_cycle: f64,
    /// Lanes of the element-wise modular multiplier arrays.
    pub mul_lanes: f64,
    /// Parallel NTT cores inside the fused key-switch pipeline (the
    /// standalone NTT benchmark exercises a single core, matching how the
    /// paper microbenchmarks the unit).
    pub ks_ntt_cores: f64,
}

impl Default for HeaxModel {
    fn default() -> Self {
        Self {
            clock_hz: 300e6,
            ntt_butterflies_per_cycle: 32.0,
            aut_elements_per_cycle: 20.0,
            mul_lanes: 128.0,
            ks_ntt_cores: 8.0,
        }
    }
}

impl HeaxModel {
    /// Seconds for one limb-NTT of size `n`.
    fn limb_ntt_s(&self, n: usize) -> f64 {
        let butterflies = n as f64 / 2.0 * (n as f64).log2();
        butterflies / self.ntt_butterflies_per_cycle / self.clock_hz
    }

    /// Seconds for one limb automorphism (scalar SRAM unit).
    fn limb_aut_s(&self, n: usize) -> f64 {
        n as f64 / self.aut_elements_per_cycle / self.clock_hz
    }

    /// Seconds for one limb element-wise multiply.
    fn limb_mul_s(&self, n: usize) -> f64 {
        n as f64 / self.mul_lanes / self.clock_hz
    }

    /// Reciprocal throughput of an NTT on a full ciphertext (2 polynomials
    /// × `l` limbs), seconds.
    pub fn ciphertext_ntt_s(&self, n: usize, l: usize) -> f64 {
        2.0 * l as f64 * self.limb_ntt_s(n)
    }

    /// Reciprocal throughput of an automorphism on a full ciphertext.
    pub fn ciphertext_aut_s(&self, n: usize, l: usize) -> f64 {
        2.0 * l as f64 * self.limb_aut_s(n)
    }

    /// Reciprocal throughput of a homomorphic multiplication (tensor +
    /// key-switch, the fused HEAX pipeline).
    pub fn hom_mul_s(&self, n: usize, l: usize) -> f64 {
        let l_f = l as f64;
        // Tensor: 4 limb-multiplies; key-switch: l^2 limb-NTTs spread over
        // the pipeline's parallel NTT cores, overlapped with the 2l^2
        // hint multiplies (the deeper of the two paths dominates).
        let tensor = 4.0 * l_f * self.limb_mul_s(n);
        tensor + self.keyswitch_s(n, l)
    }

    /// Reciprocal throughput of the fused key-switch pipeline.
    fn keyswitch_s(&self, n: usize, l: usize) -> f64 {
        let l_f = l as f64;
        let ks_ntts = l_f * l_f * self.limb_ntt_s(n) / self.ks_ntt_cores;
        let ks_muls = 2.0 * l_f * l_f * self.limb_mul_s(n);
        ks_ntts.max(ks_muls)
    }

    /// Reciprocal throughput of a homomorphic permutation (automorphism +
    /// key-switch).
    pub fn hom_perm_s(&self, n: usize, l: usize) -> f64 {
        let l_f = l as f64;
        let aut = 2.0 * l_f * self.limb_aut_s(n);
        aut + self.keyswitch_s(n, l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's implied HEAX_σ reciprocal throughputs (F1 time × the
    /// reported speedup), used as cross-check anchors.
    fn implied_anchor_s() -> Vec<(&'static str, usize, usize, f64)> {
        vec![
            ("ntt", 1 << 12, 4, 12.8e-9 * 1600.0),
            ("ntt", 1 << 14, 15, 179.2e-9 * 1866.0),
            ("aut", 1 << 12, 4, 12.8e-9 * 440.0),
            ("aut", 1 << 14, 15, 179.2e-9 * 430.0),
            ("mul", 1 << 13, 8, 300e-9 * 148.0),
            ("perm", 1 << 13, 8, 224e-9 * 198.0),
        ]
    }

    #[test]
    fn model_tracks_paper_implied_throughputs() {
        let m = HeaxModel::default();
        for (op, n, l, implied) in implied_anchor_s() {
            let modeled = match op {
                "ntt" => m.ciphertext_ntt_s(n, l),
                "aut" => m.ciphertext_aut_s(n, l),
                "mul" => m.hom_mul_s(n, l),
                "perm" => m.hom_perm_s(n, l),
                _ => unreachable!(),
            };
            let ratio = modeled / implied;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{op} at N={n}, L={l}: modeled {modeled:.2e}s vs implied {implied:.2e}s (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn throughput_scales_with_parameters() {
        let m = HeaxModel::default();
        assert!(m.ciphertext_ntt_s(1 << 14, 15) > m.ciphertext_ntt_s(1 << 12, 4));
        assert!(m.hom_mul_s(1 << 13, 8) > m.ciphertext_aut_s(1 << 13, 8));
        assert!(m.hom_perm_s(1 << 13, 8) > m.hom_mul_s(1 << 13, 8) * 0.5);
    }

    #[test]
    fn keyswitch_dominates_hom_mul() {
        // The key-switch portion must dominate the tensor (§2.4).
        let m = HeaxModel::default();
        let l = 8usize;
        let n = 1 << 13;
        let tensor = 4.0 * l as f64 * n as f64 / m.mul_lanes / m.clock_hz;
        assert!(m.hom_mul_s(n, l) > 3.0 * tensor);
    }
}
