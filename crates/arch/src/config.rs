//! The architecture description (Fig 3's input file) and timing model.

use f1_isa::FuType;
use serde::{Deserialize, Serialize};

/// Complete description of an F1 configuration.
///
/// The default ([`ArchConfig::f1_default`]) matches the paper's
/// implementation (§6): 16 compute clusters × 128 lanes, each cluster with
/// 1 NTT, 1 automorphism, 2 multiplier and 2 adder FUs plus a 512 KB
/// banked register file; a 64 MB scratchpad in 16 banks; two HBM2 PHYs at
/// 512 GB/s each; compute at 1 GHz with double-pumped memories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Number of compute clusters.
    pub clusters: usize,
    /// Vector lanes per FU (`E`).
    pub lanes: usize,
    /// NTT units per cluster.
    pub ntts_per_cluster: usize,
    /// Automorphism units per cluster.
    pub auts_per_cluster: usize,
    /// Multiplier units per cluster.
    pub muls_per_cluster: usize,
    /// Adder units per cluster.
    pub adds_per_cluster: usize,
    /// Register-file bytes per cluster.
    pub rf_bytes_per_cluster: u64,
    /// Scratchpad banks.
    pub scratchpad_banks: usize,
    /// Bytes per scratchpad bank.
    pub bank_bytes: u64,
    /// HBM2 PHYs.
    pub hbm_phys: usize,
    /// Bandwidth per PHY in GB/s.
    pub hbm_gbps_per_phy: u64,
    /// Independent HBM channels across all PHYs (8 per HBM2 stack). The
    /// cycle-level scheduler issues loads on all channels concurrently
    /// with compute, each at `hbm_bytes_per_cycle / hbm_channels`,
    /// instead of serializing transfers on one aggregate counter.
    pub hbm_channels: usize,
    /// Parallel 512-byte port lanes per (source, destination) pair on
    /// the on-chip crossbars (§6: three 16×16 crossbars). A transfer
    /// occupies one lane for `net_cycles(bytes)` cycles; contention is
    /// explicit instead of a flat per-hop constant.
    pub xbar_ports: usize,
    /// Compute clock in GHz (memories run at 2×, §6).
    pub freq_ghz: f64,
    /// Worst-case HBM access latency in compute cycles (§3: static
    /// scheduling assumes the worst case and buffers early arrivals).
    pub hbm_latency_cycles: u64,
    /// Table 5 ablation: replace the four-step NTT unit with HEAX-style
    /// low-throughput units (one butterfly stage per cycle), scaled in
    /// count so aggregate throughput matches.
    pub low_throughput_ntt: bool,
    /// Table 5 ablation: replace the vector automorphism unit with serial
    /// SRAM-based units, scaled in count so aggregate throughput matches.
    pub low_throughput_aut: bool,
}

impl ArchConfig {
    /// The paper's F1 configuration (§6, Table 2).
    pub fn f1_default() -> Self {
        Self {
            clusters: 16,
            lanes: 128,
            ntts_per_cluster: 1,
            auts_per_cluster: 1,
            muls_per_cluster: 2,
            adds_per_cluster: 2,
            rf_bytes_per_cluster: 512 * 1024,
            scratchpad_banks: 16,
            bank_bytes: 4 * 1024 * 1024,
            hbm_phys: 2,
            hbm_gbps_per_phy: 512,
            hbm_channels: 16,
            xbar_ports: 1,
            freq_ghz: 1.0,
            hbm_latency_cycles: 250,
            low_throughput_ntt: false,
            low_throughput_aut: false,
        }
    }

    /// A scaled configuration for the Fig 11 design-space sweep: `factor`
    /// scales clusters, scratchpad banks and HBM PHYs together (rounding
    /// up to at least one of each).
    pub fn scaled(factor: f64) -> Self {
        let base = Self::f1_default();
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        let phys = ((base.hbm_phys as f64 * factor).round() as usize).clamp(1, 4);
        Self {
            clusters: scale(base.clusters),
            scratchpad_banks: scale(base.scratchpad_banks),
            hbm_phys: phys,
            hbm_channels: 8 * phys,
            ..base
        }
    }

    /// Total scratchpad capacity in bytes.
    pub fn scratchpad_bytes(&self) -> u64 {
        self.scratchpad_banks as u64 * self.bank_bytes
    }

    /// Resizes the scratchpad to `mb` megabytes, keeping the bank count
    /// (the tiny-pad sweep knob: capacity-constrained configurations keep
    /// the paper's banking/NoC topology while shrinking storage).
    ///
    /// # Panics
    ///
    /// Panics if `mb` megabytes do not divide evenly across the banks.
    pub fn with_scratchpad_mb(mut self, mb: u64) -> Self {
        let total = mb * 1024 * 1024;
        assert_eq!(
            total % self.scratchpad_banks as u64,
            0,
            "{mb} MB does not split across {} banks",
            self.scratchpad_banks
        );
        self.bank_bytes = total / self.scratchpad_banks as u64;
        self
    }

    /// Total off-chip bandwidth in bytes per compute cycle.
    pub fn hbm_bytes_per_cycle(&self) -> f64 {
        (self.hbm_phys as u64 * self.hbm_gbps_per_phy) as f64 / self.freq_ghz
    }

    /// Number of FUs of a class in one cluster.
    pub fn fus_per_cluster(&self, fu: FuType) -> usize {
        match fu {
            FuType::Ntt => {
                if self.low_throughput_ntt {
                    // Aggregate-throughput-matched serial units (§8.3).
                    self.ntts_per_cluster * LT_NTT_COUNT
                } else {
                    self.ntts_per_cluster
                }
            }
            FuType::Aut => {
                if self.low_throughput_aut {
                    self.auts_per_cluster * LT_AUT_COUNT
                } else {
                    self.auts_per_cluster
                }
            }
            FuType::Mul => self.muls_per_cluster,
            FuType::Add => self.adds_per_cluster,
        }
    }

    /// Issue occupancy in cycles for one `n`-element vector operation on
    /// an FU of class `fu`: fully pipelined units consume `E` elements per
    /// cycle, so a residue vector occupies the unit for `n / lanes` cycles
    /// (§3). Low-throughput ablation units are slower per §8.3.
    pub fn occupancy(&self, fu: FuType, n: usize) -> u64 {
        let base = (n / self.lanes).max(1) as u64;
        match fu {
            FuType::Ntt if self.low_throughput_ntt => base * LT_NTT_COUNT as u64,
            FuType::Aut if self.low_throughput_aut => base * LT_AUT_COUNT as u64,
            _ => base,
        }
    }

    /// Pipeline latency in cycles from first input to first output for an
    /// `n`-element vector operation (§3: fixed latencies exposed to the
    /// compiler; no stall logic exists in hardware).
    pub fn latency(&self, fu: FuType, n: usize) -> u64 {
        let g = (n / self.lanes).max(1) as u64;
        match fu {
            // Two E-point NTT passes around a transpose: the transpose
            // buffers E/2 vectors before the first output (Fig 7).
            FuType::Ntt => {
                let fill = self.lanes as u64 / 2 + 2 * (self.lanes as u64).ilog2() as u64;
                let lat = g + fill;
                if self.low_throughput_ntt {
                    lat * LT_NTT_COUNT as u64
                } else {
                    lat
                }
            }
            // Column permute, transpose (E/2 fill), row permute, transpose.
            FuType::Aut => {
                let lat = g + self.lanes as u64;
                if self.low_throughput_aut {
                    lat * LT_AUT_COUNT as u64
                } else {
                    lat
                }
            }
            FuType::Mul => 8,
            FuType::Add => 4,
        }
    }

    /// Cycles for one value transfer of `bytes` over the on-chip network:
    /// bank and network ports are 512 bytes wide (§3), so a 64 KB residue
    /// vector streams at the rate its consumer eats it.
    pub fn net_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(512)
    }

    /// Cycles to move `bytes` between HBM and a scratchpad bank at the
    /// configured aggregate bandwidth.
    pub fn mem_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.hbm_bytes_per_cycle()).ceil() as u64
    }

    /// Cycles one HBM channel needs to move `bytes`: channels split the
    /// aggregate bandwidth evenly, so a single transfer streams slower
    /// but `hbm_channels` transfers proceed concurrently.
    pub fn mem_channel_cycles(&self, bytes: u64) -> u64 {
        let per_channel = self.hbm_bytes_per_cycle() / self.hbm_channels.max(1) as f64;
        (bytes as f64 / per_channel).ceil() as u64
    }

    /// Peak modular-arithmetic throughput in tera-ops/second: every lane
    /// of every multiplier/adder FU plus the NTT unit's internal
    /// butterflies (896 multipliers and as many adders, §5.2) can retire
    /// one 32-bit modular op per cycle — the paper's "36 tera-ops/second"
    /// (§1).
    pub fn peak_tops(&self) -> f64 {
        let ntt_ops = 2 * 896 * self.ntts_per_cluster;
        let lane_ops = self.lanes * (self.muls_per_cluster + self.adds_per_cluster);
        (self.clusters as f64) * (ntt_ops + lane_ops) as f64 * self.freq_ghz / 1000.0
    }
}

/// Throughput-matching multiplier for the low-throughput-NTT ablation: a
/// HEAX-style pipeline processes one butterfly stage per cycle, i.e.
/// `log2(N) ≈ 14` passes; we deploy 8× more units at 8× the occupancy
/// each, matching aggregate throughput as §8.3 prescribes.
pub const LT_NTT_COUNT: usize = 8;
/// Same for the serial SRAM automorphism ablation.
pub const LT_AUT_COUNT: usize = 8;

impl Default for ArchConfig {
    fn default() -> Self {
        Self::f1_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ArchConfig::f1_default();
        assert_eq!(c.scratchpad_bytes(), 64 * 1024 * 1024, "64 MB scratchpad");
        assert_eq!(c.hbm_phys as u64 * c.hbm_gbps_per_phy, 1024, "1 TB/s HBM");
        assert_eq!(c.clusters, 16);
        assert_eq!(c.lanes, 128);
        // "36 tera-ops/second of 32-bit modular arithmetic" (§1).
        let tops = c.peak_tops();
        assert!((30.0..42.0).contains(&tops), "peak {tops} TOPS");
    }

    #[test]
    fn occupancy_scales_with_vector_length() {
        let c = ArchConfig::f1_default();
        assert_eq!(c.occupancy(FuType::Ntt, 16384), 128);
        assert_eq!(c.occupancy(FuType::Ntt, 1024), 8);
        assert_eq!(c.occupancy(FuType::Add, 16384), 128);
    }

    #[test]
    fn low_throughput_ablations_conserve_aggregate() {
        let mut c = ArchConfig::f1_default();
        c.low_throughput_ntt = true;
        let per_unit = c.occupancy(FuType::Ntt, 16384);
        let units = c.fus_per_cluster(FuType::Ntt);
        assert_eq!(per_unit, 128 * 8);
        assert_eq!(units, 8);
        // aggregate vectors/cycle identical to the baseline
        let baseline = ArchConfig::f1_default();
        let agg_lt = units as f64 / per_unit as f64;
        let agg = baseline.fus_per_cluster(FuType::Ntt) as f64
            / baseline.occupancy(FuType::Ntt, 16384) as f64;
        assert!((agg_lt - agg).abs() < 1e-12);
    }

    #[test]
    fn latencies_are_positive_and_exposed() {
        let c = ArchConfig::f1_default();
        for fu in FuType::ALL {
            assert!(c.latency(fu, 16384) > 0);
        }
        assert!(c.latency(FuType::Ntt, 16384) > c.latency(FuType::Mul, 16384));
    }

    #[test]
    fn scratchpad_resize_keeps_banking() {
        let c = ArchConfig::f1_default().with_scratchpad_mb(4);
        assert_eq!(c.scratchpad_bytes(), 4 * 1024 * 1024);
        assert_eq!(c.scratchpad_banks, 16, "bank count unchanged");
        assert_eq!(ArchConfig::f1_default().with_scratchpad_mb(64), ArchConfig::f1_default());
    }

    #[test]
    fn scaled_configs_change_resources() {
        let half = ArchConfig::scaled(0.5);
        assert_eq!(half.clusters, 8);
        assert_eq!(half.scratchpad_banks, 8);
        assert_eq!(half.hbm_phys, 1);
        assert_eq!(half.hbm_channels, 8, "8 channels per HBM2 stack");
        let double = ArchConfig::scaled(2.0);
        assert_eq!(double.clusters, 32);
        assert_eq!(double.hbm_phys, 4, "PHY count clamps at 4");
        assert_eq!(double.hbm_channels, 32);
    }

    #[test]
    fn channel_bandwidth_partitions_aggregate() {
        let c = ArchConfig::f1_default();
        // 16 channels split 1 KB/cycle: a 64 KB residue vector takes 1024
        // cycles on one channel, but 16 vectors stream concurrently at
        // the same aggregate rate as `mem_cycles`.
        assert_eq!(c.mem_channel_cycles(65536), 1024);
        assert_eq!(c.mem_channel_cycles(65536), c.mem_cycles(65536) * c.hbm_channels as u64);
    }

    #[test]
    fn transfer_cycle_model() {
        let c = ArchConfig::f1_default();
        // A 64 KB residue vector over a 512-byte port: 128 cycles — the
        // rate one FU consumes it (§3).
        assert_eq!(c.net_cycles(65536), 128);
        assert_eq!(c.mem_cycles(65536), 64, "1 TB/s moves 1 KB per cycle");
    }
}
