//! Capacity-faithful functional replay of a static schedule.
//!
//! The checker proves the schedule's *timing* is legal; this module
//! proves its *data routing* is. It executes the emitted streams in cycle
//! order against an explicit memory hierarchy — an HBM map and a
//! byte-counted scratchpad — with eviction semantics taken literally:
//!
//! * a load copies the value HBM → scratchpad at its completion cycle;
//! * a store copies scratchpad → HBM at its completion cycle;
//! * an eviction **destroys** the scratchpad copy (spilled data survives
//!   only because its writeback ran first);
//! * an instruction reads its operands from the scratchpad at its issue
//!   cycle — if an operand was evicted and its refetch has not landed,
//!   the replay panics, because the bits are simply not there.
//!
//! Replaying a schedule and comparing every program output bit-for-bit
//! against direct dataflow evaluation ([`eval_dfg`]) therefore proves the
//! scheduler reordered, spilled, refetched and re-homed values without
//! ever computing on stale or missing data. Operations use deterministic
//! mock semantics (distinct mixing functions per opcode), so any operand
//! mix-up changes the output bits.

use f1_arch::ArchConfig;
use f1_compiler::CycleSchedule;
use f1_isa::dfg::{Dfg, ValueId, VectorOp};
use f1_isa::streams::MemDir;
use std::collections::HashMap;

/// Elements per mock value vector (small: routing, not throughput).
pub const REPLAY_LANES: usize = 4;

/// Deterministic pseudo-random fill for a graph input, keyed by value id.
pub fn mock_inputs(dfg: &Dfg) -> HashMap<ValueId, Vec<u64>> {
    let mut out = HashMap::new();
    for v in dfg.values() {
        if dfg.producer(v.id).is_none() {
            out.insert(
                v.id,
                (0..REPLAY_LANES).map(|i| splitmix(v.id.0 as u64, i as u64)).collect(),
            );
        }
    }
    out
}

fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z =
        seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i.wrapping_mul(0xBF58476D1CE4E5B9));
    z ^= z >> 30;
    z = z.wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Mock vector semantics: one distinct, order-sensitive mixing function
/// per opcode (shared by direct evaluation and replay).
fn apply(op: VectorOp, ins: &[&Vec<u64>]) -> Vec<u64> {
    let len = REPLAY_LANES;
    match op {
        VectorOp::Add => (0..len).map(|i| ins[0][i].wrapping_add(ins[1][i])).collect(),
        VectorOp::Sub => (0..len).map(|i| ins[0][i].wrapping_sub(ins[1][i])).collect(),
        VectorOp::Mul => (0..len).map(|i| ins[0][i].wrapping_mul(ins[1][i]) ^ 0xF1).collect(),
        VectorOp::ScalarMul => {
            (0..len).map(|i| ins[0][i].wrapping_mul(0x10001).wrapping_add(7)).collect()
        }
        VectorOp::ScalarMulAdd => {
            (0..len).map(|i| ins[0][i].wrapping_add(ins[1][i].wrapping_mul(0x101))).collect()
        }
        VectorOp::Ntt => (0..len).map(|i| ins[0][(i + 1) % len].rotate_left(7) ^ 0xA5A5).collect(),
        VectorOp::Intt => {
            (0..len).map(|i| ins[0][(i + len - 1) % len].rotate_right(5) ^ 0x5A5A).collect()
        }
        VectorOp::Aut { k } => {
            (0..len).map(|i| ins[0][(i * (k | 1)) % len].wrapping_add(k as u64)).collect()
        }
        VectorOp::Copy => ins[0].clone(),
    }
}

/// Direct dataflow evaluation in DFG creation order (the reference).
/// Returns every value's bits.
pub fn eval_dfg(dfg: &Dfg, inputs: &HashMap<ValueId, Vec<u64>>) -> HashMap<ValueId, Vec<u64>> {
    let mut vals: HashMap<ValueId, Vec<u64>> = inputs.clone();
    for instr in dfg.instrs() {
        let ins: Vec<&Vec<u64>> = instr
            .inputs
            .iter()
            .map(|v| vals.get(v).unwrap_or_else(|| panic!("operand {v:?} undefined")))
            .collect();
        let out = apply(instr.op, &ins);
        vals.insert(instr.output, out);
    }
    vals
}

/// Replays a schedule's streams in cycle order against an explicit
/// scratchpad + HBM, returning the bits stored to HBM for each program
/// output.
///
/// # Panics
///
/// Panics when the schedule computes on missing data (operand evicted
/// with no completed refetch), stores a value with no scratchpad copy,
/// or refetches a value HBM never received — each a
/// capacity-faithfulness bug the schedule must not contain. (The
/// byte-exact capacity proof lives in [`crate::check_schedule`].)
pub fn replay_schedule(
    dfg: &Dfg,
    cs: &CycleSchedule,
    arch: &ArchConfig,
    inputs: &HashMap<ValueId, Vec<u64>>,
) -> HashMap<ValueId, Vec<u64>> {
    // Phases order simultaneous events for data flow: a store lands in
    // HBM before anything destroys the pad copy, loads land before
    // compute reads, and evictions destroy copies last (the checker
    // guarantees every read is at or before its interval's end, and owns
    // the byte-exact capacity proof with allocation-at-start semantics).
    #[derive(Clone, Copy)]
    enum Ev {
        StoreDone(ValueId),
        LoadDone(ValueId),
        Exec(u32),
        Evict(ValueId),
    }
    let mut events: Vec<(u64, u8, Ev)> = Vec::new();
    for m in &cs.schedule.mem {
        let done = m.cycle + arch.mem_channel_cycles(m.bytes);
        match m.dir {
            MemDir::Store => events.push((done, 0, Ev::StoreDone(m.value))),
            MemDir::Load => events.push((done + arch.hbm_latency_cycles, 1, Ev::LoadDone(m.value))),
        }
    }
    for stream in &cs.schedule.compute {
        for e in stream {
            events.push((e.cycle, 2, Ev::Exec(e.instr.0)));
        }
    }
    for e in &cs.schedule.evict {
        events.push((e.cycle, 3, Ev::Evict(e.value)));
    }
    events.sort_by_key(|&(cycle, phase, ev)| {
        (
            cycle,
            phase,
            match ev {
                Ev::Exec(i) => i as u64,
                Ev::StoreDone(v) | Ev::Evict(v) | Ev::LoadDone(v) => v.0 as u64,
            },
        )
    });

    let mut hbm: HashMap<ValueId, Vec<u64>> = inputs.clone();
    let mut pad: HashMap<ValueId, Vec<u64>> = HashMap::new();
    for (cycle, _, ev) in events {
        match ev {
            Ev::LoadDone(v) => {
                let data = hbm
                    .get(&v)
                    .unwrap_or_else(|| panic!("load of {v:?} at {cycle}: HBM has no copy"))
                    .clone();
                pad.insert(v, data);
            }
            Ev::StoreDone(v) => {
                let data = pad
                    .get(&v)
                    .unwrap_or_else(|| panic!("store of {v:?} at {cycle}: not in scratchpad"))
                    .clone();
                hbm.insert(v, data);
            }
            Ev::Evict(v) => {
                assert!(pad.remove(&v).is_some(), "evict of {v:?} at {cycle}: not in scratchpad");
            }
            Ev::Exec(i) => {
                let instr = &dfg.instrs()[i as usize];
                let ins: Vec<&Vec<u64>> = instr
                    .inputs
                    .iter()
                    .map(|v| {
                        pad.get(v).unwrap_or_else(|| {
                            panic!(
                                "instr {i} at {cycle} reads {v:?} which is not in the \
                                 scratchpad (evicted with refetch incomplete?)"
                            )
                        })
                    })
                    .collect();
                let out = apply(instr.op, &ins);
                pad.insert(instr.output, out);
            }
        }
    }
    let mut outs = HashMap::new();
    for &o in dfg.outputs() {
        let data =
            hbm.get(&o).unwrap_or_else(|| panic!("output {o:?} never stored to HBM")).clone();
        outs.insert(o, data);
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_compiler::dsl::Program;

    fn arch_with_pad(kb: u64) -> ArchConfig {
        let mut arch = ArchConfig::f1_default();
        arch.scratchpad_banks = 1;
        arch.bank_bytes = kb * 1024;
        arch
    }

    #[test]
    fn replay_matches_direct_eval_at_full_capacity() {
        let p = Program::listing2_matvec(1 << 10, 4, 2);
        let arch = ArchConfig::f1_default();
        let (ex, _, cs) = f1_compiler::compile(&p, &arch);
        let inputs = mock_inputs(&ex.dfg);
        let direct = eval_dfg(&ex.dfg, &inputs);
        let replayed = replay_schedule(&ex.dfg, &cs, &arch, &inputs);
        for &o in ex.dfg.outputs() {
            assert_eq!(replayed[&o], direct[&o], "output {o:?} differs");
        }
    }

    #[test]
    fn replay_matches_under_heavy_thrashing() {
        // A scratchpad of a few dozen 4 KB polynomials: the schedule is
        // full of spills, refetches and re-loads, and replay must still
        // reproduce the exact bits.
        let p = Program::listing2_matvec(1 << 10, 4, 2);
        let arch = arch_with_pad(64); // 16 values of 4 KB
        let (ex, plan, cs) = f1_compiler::compile(&p, &arch);
        assert!(plan.traffic.non_compulsory() > 0, "this pad must thrash");
        let inputs = mock_inputs(&ex.dfg);
        let direct = eval_dfg(&ex.dfg, &inputs);
        let replayed = replay_schedule(&ex.dfg, &cs, &arch, &inputs);
        for &o in ex.dfg.outputs() {
            assert_eq!(replayed[&o], direct[&o], "output {o:?} differs");
        }
    }

    #[test]
    #[should_panic(expected = "not in the")]
    fn replay_catches_premature_reads() {
        // Corrupt a valid schedule: pull an eviction earlier than a
        // reader of its value — the replay must see the missing bits.
        let p = Program::listing2_matvec(1 << 10, 4, 2);
        let arch = arch_with_pad(64);
        let (ex, _, mut cs) = f1_compiler::compile(&p, &arch);
        // Find an evicted, loaded value and destroy its pad copy right
        // after the load lands: every reader in between now reads a hole.
        let mut moved = false;
        for i in 0..cs.schedule.evict.len() {
            let v = cs.schedule.evict[i].value;
            if let Some(done) = cs
                .schedule
                .mem
                .iter()
                .filter(|m| m.dir == MemDir::Load && m.value == v)
                .map(|m| m.cycle + arch.mem_channel_cycles(m.bytes) + arch.hbm_latency_cycles)
                .min()
            {
                if done + 1 < cs.schedule.evict[i].cycle {
                    cs.schedule.evict[i].cycle = done + 1;
                    moved = true;
                    break;
                }
            }
        }
        assert!(moved, "need an evicted loaded value to corrupt");
        cs.schedule.evict.sort_by_key(|e| e.cycle);
        let inputs = mock_inputs(&ex.dfg);
        replay_schedule(&ex.dfg, &cs, &arch, &inputs);
    }
}
