//! The checker-style cycle simulator (§7) and evaluation statistics.

use f1_arch::energy::{EnergyModel, PowerBreakdown};
use f1_arch::ArchConfig;
use f1_compiler::expand::Expanded;
use f1_compiler::movement::TrafficBreakdown;
use f1_compiler::{CycleSchedule, MovePlan};
use f1_isa::streams::MemDir;
use f1_isa::{ComponentId, FuType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-window utilization series — the data behind Fig 10.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Window width in cycles.
    pub window: u64,
    /// Active-FU count per window, per class (Ntt, Aut, Mul, Add).
    pub fu_active: [Vec<f64>; 4],
    /// HBM bandwidth utilization per window, percent.
    pub hbm_util: Vec<f64>,
}

/// The simulator's verdict and statistics for one compiled program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Total cycles.
    pub makespan: u64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Off-chip traffic split (Fig 9a).
    pub traffic: TrafficBreakdown,
    /// Average-power split (Fig 9b).
    pub power: PowerBreakdown,
    /// Utilization series (Fig 10).
    pub timeline: Timeline,
    /// Average FU utilization (0..1) across the run (§8.2 reports ~30%).
    pub avg_fu_utilization: f64,
    /// Instruction-stream bytes as a fraction of off-chip traffic
    /// (§3: "<0.1%").
    pub instr_fetch_fraction: f64,
}

/// Validates a schedule and derives its statistics.
///
/// Independently re-verifies the overlapped schedule the list scheduler
/// emits: per-(cluster, FU, instance) occupancy, per-HBM-channel
/// exclusivity, per-crossbar-lane exclusivity, load/store ordering
/// against value production, streaming dependence timing, and the
/// scheduler's own availability/occupancy counters.
///
/// # Panics
///
/// Panics (like the paper's checker) on any missed dependence, resource
/// double-booking, or accounting mismatch.
pub fn check_schedule(
    expanded: &Expanded,
    plan: &MovePlan,
    cs: &CycleSchedule,
    arch: &ArchConfig,
) -> SimReport {
    let dfg = &expanded.dfg;
    let n = dfg.n;

    // --- Structural hazards: per (cluster, fu, slot), issues must be at
    // least `occupancy` apart (fully pipelined units, one vector each).
    for (c, stream) in cs.schedule.compute.iter().enumerate() {
        let mut by_slot: HashMap<(FuType, usize), Vec<u64>> = HashMap::new();
        for e in stream {
            assert!(
                e.fu_index < arch.fus_per_cluster(e.fu),
                "cluster {c} has no {:?} instance {}",
                e.fu,
                e.fu_index
            );
            by_slot.entry((e.fu, e.fu_index)).or_default().push(e.cycle);
        }
        for ((fu, slot), mut cycles) in by_slot {
            cycles.sort_unstable();
            let occ = arch.occupancy(fu, n);
            for w in cycles.windows(2) {
                assert!(
                    w[1] >= w[0] + occ,
                    "structural hazard on cluster {c} {fu:?}[{slot}]: issues at {} and {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    // --- HBM channels: each channel is exclusive; transfers on it must
    // be spaced by their per-channel streaming time.
    {
        let mut by_channel: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
        for m in &cs.schedule.mem {
            assert!(m.channel < arch.hbm_channels, "unknown HBM channel {}", m.channel);
            by_channel.entry(m.channel).or_default().push((m.cycle, m.bytes));
        }
        for (ch, mut xs) in by_channel {
            xs.sort_unstable();
            for w in xs.windows(2) {
                assert!(
                    w[1].0 >= w[0].0 + arch.mem_channel_cycles(w[0].1),
                    "HBM channel {ch} double-booked: transfers at {} and {}",
                    w[0].0,
                    w[1].0
                );
            }
        }
    }

    // --- Crossbar ports: per ((from, to), lane), transfers must be
    // spaced by their streaming time.
    {
        let mut by_lane: HashMap<(ComponentId, ComponentId, usize), Vec<(u64, u64)>> =
            HashMap::new();
        for e in &cs.schedule.net {
            assert!(e.port < arch.xbar_ports, "unknown crossbar lane {}", e.port);
            by_lane.entry((e.from, e.to, e.port)).or_default().push((e.cycle, e.bytes));
        }
        for (lane, mut xs) in by_lane {
            xs.sort_unstable();
            for w in xs.windows(2) {
                assert!(
                    w[1].0 >= w[0].0 + arch.net_cycles(w[0].1),
                    "crossbar lane {lane:?} double-booked: transfers at {} and {}",
                    w[0].0,
                    w[1].0
                );
            }
        }
    }

    // --- Dependences under rate-matched streaming semantics. A value is
    // available `latency` (plus the slow-producer catch-up) after its
    // producer issues, or once its earliest load completes; remote
    // consumption additionally needs a crossbar transfer that starts no
    // earlier than availability and lands before the consumer issues.
    let weight = |fu: FuType| f1_compiler::cycle::stream_weight(arch, fu, n);
    let mut load_done: HashMap<u32, u64> = HashMap::new();
    for m in &cs.schedule.mem {
        if m.dir == MemDir::Load {
            let done = m.cycle + arch.mem_channel_cycles(m.bytes) + arch.hbm_latency_cycles;
            let e = load_done.entry(m.value.0).or_insert(done);
            *e = (*e).min(done);
        }
    }
    let ready_at = |v: f1_isa::dfg::ValueId| -> u64 {
        match dfg.producer(v) {
            Some(p) => cs.done_cycle[p.0 as usize],
            None => {
                *load_done.get(&v.0).unwrap_or_else(|| panic!("value {v:?} used but never loaded"))
            }
        }
    };
    // Producer cluster per value (None = lives in a scratchpad bank).
    let mut cluster_of: HashMap<u32, usize> = HashMap::new();
    for (c, stream) in cs.schedule.compute.iter().enumerate() {
        for e in stream {
            cluster_of.insert(dfg.instr(e.instr).output.0, c);
        }
    }
    // Earliest on-cluster arrival per transferred (value, cluster).
    let mut arrival: HashMap<(u32, ComponentId), u64> = HashMap::new();
    for e in &cs.schedule.net {
        assert!(
            e.cycle >= ready_at(e.value),
            "net transfer of {:?} at {} before the value is available",
            e.value,
            e.cycle
        );
        let t = e.cycle + f1_compiler::cycle::XBAR_HOP_CYCLES;
        let a = arrival.entry((e.value.0, e.to)).or_insert(t);
        *a = (*a).min(t);
    }
    for (c, stream) in cs.schedule.compute.iter().enumerate() {
        for e in stream {
            let instr = dfg.instr(e.instr);
            assert_eq!(
                cs.issue_cycle[e.instr.0 as usize], e.cycle,
                "stream/issue mismatch for {:?}",
                e.instr
            );
            assert_eq!(
                cs.done_cycle[e.instr.0 as usize],
                e.cycle + weight(instr.op.fu_type()),
                "availability mismatch for {:?}",
                e.instr
            );
            for &v in &instr.inputs {
                let local = cluster_of.get(&v.0) == Some(&c);
                let ready = if local {
                    ready_at(v)
                } else {
                    // Remote (other-cluster or bank-resident) operands MUST
                    // arrive over the crossbar — a missing transfer is a
                    // scheduler bug, not a free pass.
                    arrival.get(&(v.0, ComponentId::Cluster(c))).copied().unwrap_or_else(|| {
                        panic!(
                            "instr {:?} on cluster {c} consumes remote {v:?} \
                             with no crossbar transfer to this cluster",
                            e.instr
                        )
                    })
                };
                assert!(
                    ready <= e.cycle,
                    "missed dependence: instr {:?} at {} uses {v:?} ready at {ready}",
                    e.instr,
                    e.cycle
                );
            }
        }
    }

    // --- Memory ordering against production: a store (or a spilled
    // intermediate's refetch) must not start before its value exists.
    for m in &cs.schedule.mem {
        if let Some(p) = dfg.producer(m.value) {
            assert!(
                m.cycle >= cs.done_cycle[p.0 as usize],
                "{:?} transfer of {:?} at {} before production",
                m.dir,
                m.value,
                m.cycle
            );
        }
    }

    // --- Counter cross-checks: the scheduler's occupancy bookkeeping
    // must match the streams it emitted.
    {
        let chan_busy: u64 = cs.schedule.mem.iter().map(|m| arch.mem_channel_cycles(m.bytes)).sum();
        assert_eq!(
            cs.counters.hbm_channel_busy_cycles, chan_busy,
            "HBM channel busy-cycle counter mismatch"
        );
        let xbar_busy: u64 = cs.schedule.net.iter().map(|e| arch.net_cycles(e.bytes)).sum();
        assert_eq!(cs.counters.xbar_busy_cycles, xbar_busy, "crossbar busy-cycle counter mismatch");
        let hbm_bytes: u64 = cs.schedule.mem.iter().map(|m| m.bytes).sum();
        assert_eq!(cs.counters.hbm_bytes, hbm_bytes, "HBM byte counter mismatch");
    }

    // --- Statistics.
    let makespan = cs.makespan.max(1);
    let window = (makespan / 160).max(1);
    let buckets = makespan.div_ceil(window) as usize;
    let mut timeline = Timeline {
        window,
        fu_active: [vec![0.0; buckets], vec![0.0; buckets], vec![0.0; buckets], vec![0.0; buckets]],
        hbm_util: vec![0.0; buckets],
    };
    let fu_idx = |fu: FuType| match fu {
        FuType::Ntt => 0usize,
        FuType::Aut => 1,
        FuType::Mul => 2,
        FuType::Add => 3,
    };
    let add_interval = |series: &mut Vec<f64>, start: u64, end: u64| {
        let mut c = start;
        while c < end {
            let b = (c / window) as usize;
            let bucket_end = (c / window + 1) * window;
            let step = bucket_end.min(end) - c;
            if b < series.len() {
                series[b] += step as f64;
            }
            c += step;
        }
    };
    let mut total_busy = 0u64;
    for stream in &cs.schedule.compute {
        for e in stream {
            let occ = arch.occupancy(e.fu, n);
            total_busy += occ;
            add_interval(&mut timeline.fu_active[fu_idx(e.fu)], e.cycle, e.cycle + occ);
        }
    }
    for m in &cs.schedule.mem {
        let mc = arch.mem_channel_cycles(m.bytes);
        add_interval(&mut timeline.hbm_util, m.cycle, m.cycle + mc);
    }
    for series in timeline.fu_active.iter_mut() {
        for v in series.iter_mut() {
            *v /= window as f64; // busy-cycles -> average active units
        }
    }
    // Channel busy-cycles over window × channels = bandwidth utilization.
    for v in timeline.hbm_util.iter_mut() {
        *v = *v / (window * arch.hbm_channels.max(1) as u64) as f64 * 100.0;
    }

    let total_fus: usize = (0..arch.clusters)
        .map(|_| FuType::ALL.iter().map(|&f| arch.fus_per_cluster(f)).sum::<usize>())
        .sum();
    let avg_fu_utilization = total_busy as f64 / (total_fus as u64 * makespan) as f64;

    let model = EnergyModel::default();
    let power = model.power_breakdown(&cs.counters, makespan, arch);
    let instr_fetch_fraction =
        cs.schedule.encoded_bytes() as f64 / cs.schedule.offchip_bytes().max(1) as f64;

    SimReport {
        makespan,
        seconds: cs.seconds(arch),
        traffic: plan.traffic,
        power,
        timeline,
        avg_fu_utilization,
        instr_fetch_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_compiler::dsl::Program;

    fn run(p: &Program) -> (Expanded, MovePlan, CycleSchedule, ArchConfig) {
        let arch = ArchConfig::f1_default();
        let (ex, plan, cs) = f1_compiler::compile(p, &arch);
        (ex, plan, cs, arch)
    }

    #[test]
    fn matvec_schedule_validates_and_reports() {
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let (ex, plan, cs, arch) = run(&p);
        let report = check_schedule(&ex, &plan, &cs, &arch);
        assert!(report.makespan > 0);
        assert!(report.seconds > 0.0);
        assert!(report.traffic.total() > 0);
        assert!(report.power.total_w() > 0.0);
        // At this test's N = 4096 the residue vectors are 16 KB; the
        // paper's 64 KB vectors (N = 16K) push the ratio ~4x lower, under
        // its 0.1% claim.
        assert!(
            report.instr_fetch_fraction < 0.02,
            "instruction fetches {} must be a tiny fraction of traffic",
            report.instr_fetch_fraction
        );
        assert!((0.0..=1.0).contains(&report.avg_fu_utilization));
    }

    #[test]
    fn timeline_conserves_busy_cycles() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let (ex, plan, cs, arch) = run(&p);
        let report = check_schedule(&ex, &plan, &cs, &arch);
        let t = &report.timeline;
        // Sum of (avg active × window) over buckets equals total busy
        // cycles per class.
        let ntt_busy: f64 = t.fu_active[0].iter().map(|v| v * t.window as f64).sum();
        let expected = cs.counters.fu_busy_cycles[0] as f64;
        assert!(
            (ntt_busy - expected).abs() / expected.max(1.0) < 0.01,
            "timeline NTT busy {ntt_busy} vs counters {expected}"
        );
    }

    #[test]
    fn power_is_dominated_by_data_movement() {
        // §8.2: computation is 20-30% of power for realistic programs.
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let (ex, plan, cs, arch) = run(&p);
        let report = check_schedule(&ex, &plan, &cs, &arch);
        assert!(
            report.power.data_movement_fraction() > 0.4,
            "data movement fraction {}",
            report.power.data_movement_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "structural hazard")]
    fn checker_catches_fu_hazards() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let (ex, plan, mut cs, arch) = run(&p);
        // Corrupt: delay the first of two same-slot NTT issues onto the
        // second's cycle (delaying keeps dependences satisfied, so the
        // checker must trip on the structural hazard specifically).
        let mut found = None;
        'outer: for stream in cs.schedule.compute.iter_mut() {
            let mut first: Option<usize> = None;
            for idx in 0..stream.len() {
                if stream[idx].fu == FuType::Ntt {
                    if let Some(fidx) = first {
                        if stream[fidx].fu_index == stream[idx].fu_index {
                            stream[fidx].cycle = stream[idx].cycle;
                            found = Some(());
                            break 'outer;
                        }
                    } else {
                        first = Some(idx);
                    }
                }
            }
        }
        assert!(found.is_some(), "test needs two NTT entries on one slot");
        // Re-sort so monotonicity holds but the hazard remains.
        for stream in cs.schedule.compute.iter_mut() {
            stream.sort_by_key(|e| e.cycle);
        }
        check_schedule(&ex, &plan, &cs, &arch);
    }
}
